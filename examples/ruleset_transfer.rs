//! Rule-set transfer: accumulate tuning knowledge on simple benchmarks, then
//! apply it to a previously unseen real application (the Fig. 7 scenario).
//!
//! ```sh
//! cargo run --release --example ruleset_transfer
//! ```

use agents::RuleSet;
use stellar::Stellar;
use workloads::WorkloadKind;

fn main() {
    let engine = Stellar::standard();
    let scale = 0.2;

    // Phase 1: learn from the benchmarks (cold, one after another, merging
    // every run's reflections into the global rule set).
    let mut rules = RuleSet::new();
    println!("=== phase 1: accumulate knowledge from benchmarks ===");
    for kind in [
        WorkloadKind::Ior64K,
        WorkloadKind::Ior16M,
        WorkloadKind::MdWorkbench8K,
    ] {
        let w = kind.spec().scaled(scale);
        let run = engine.tune(w.as_ref(), &mut rules, 7);
        println!(
            "  {:<16} x{:.2} in {} attempts -> {} new rules (global: {})",
            run.workload,
            run.best_speedup,
            run.attempts.len(),
            run.new_rules.len(),
            rules.len()
        );
    }

    // Phase 2: an application STELLAR has never seen.
    println!("\n=== phase 2: unseen application (AMReX plotfile kernel) ===");
    let app = WorkloadKind::Amrex.spec().scaled(scale);

    let mut empty = RuleSet::new();
    let cold = engine.tune(app.as_ref(), &mut empty, 8);
    let mut warm_rules = rules.clone();
    let warm = engine.tune(app.as_ref(), &mut warm_rules, 9);

    let fmt = |run: &stellar::TuningRun| {
        let mut s = String::from("1.00");
        for a in &run.attempts {
            s.push_str(&format!(" -> {:.2}", a.speedup));
        }
        s
    };
    println!("  without rules: {}   (best x{:.2})", fmt(&cold), cold.best_speedup);
    println!("  with rules:    {}   (best x{:.2})", fmt(&warm), warm.best_speedup);
    println!(
        "\nfirst-guess quality: cold x{:.2} vs warm x{:.2}",
        cold.attempts.first().map(|a| a.speedup).unwrap_or(1.0),
        warm.attempts.first().map(|a| a.speedup).unwrap_or(1.0),
    );
}
