//! Rule-set transfer: accumulate tuning knowledge on simple benchmarks, then
//! apply it to a previously unseen real application (the Fig. 7 scenario).
//!
//! ```sh
//! cargo run --release --example ruleset_transfer
//! ```
//!
//! Phase 1 accumulates sequentially through the compatibility wrapper
//! (`Stellar::tune`), exactly as the paper's single-cluster deployment
//! would. Phase 2 contrasts cold vs warm on the unseen application with a
//! parallel [`Campaign`] grid.

use agents::RuleSet;
use stellar::{Campaign, Stellar, TuningRun};
use workloads::WorkloadKind;

fn main() {
    let engine = Stellar::builder().build();
    let scale = 0.2;

    // Phase 1: learn from the benchmarks (cold, one after another, merging
    // every run's reflections into the global rule set).
    let mut rules = RuleSet::new();
    println!("=== phase 1: accumulate knowledge from benchmarks ===");
    for kind in [
        WorkloadKind::Ior64K,
        WorkloadKind::Ior16M,
        WorkloadKind::MdWorkbench8K,
    ] {
        let w = kind.spec().scaled(scale);
        let run = engine.tune(w.as_ref(), &mut rules, 7);
        println!(
            "  {:<16} x{:.2} in {} attempts -> {} new rules (global: {})",
            run.workload,
            run.best_speedup,
            run.attempts.len(),
            run.new_rules.len(),
            rules.len()
        );
    }

    // Phase 2: an application STELLAR has never seen — one cold campaign
    // cell and one primed with the accumulated rules, run as grids.
    println!("\n=== phase 2: unseen application (AMReX plotfile kernel) ===");
    let cold = Campaign::new(&engine)
        .kinds(&[WorkloadKind::Amrex], scale)
        .seeds([8])
        .run();
    let warm = Campaign::new(&engine)
        .kinds(&[WorkloadKind::Amrex], scale)
        .seeds([9])
        .starting_rules(rules)
        .run();

    let fmt = |run: &TuningRun| {
        let mut s = String::from("1.00");
        for a in &run.attempts {
            s.push_str(&format!(" -> {:.2}", a.speedup));
        }
        s
    };
    let cold_run = cold.cells[0].run().expect("perfect backend");
    let warm_run = warm.cells[0].run().expect("perfect backend");
    println!(
        "  without rules: {}   (best x{:.2})",
        fmt(cold_run),
        cold_run.best_speedup
    );
    println!(
        "  with rules:    {}   (best x{:.2})",
        fmt(warm_run),
        warm_run.best_speedup
    );
    println!(
        "\nfirst-guess quality: cold x{:.2} vs warm x{:.2}",
        cold_run.attempts.first().map(|a| a.speedup).unwrap_or(1.0),
        warm_run.attempts.first().map(|a| a.speedup).unwrap_or(1.0),
    );
}
