//! The Fig. 10 case study: a narrated MDWorkbench_8K tuning run — initial
//! I/O report, follow-up questions, per-attempt rationale, end reasoning,
//! and the generated rule.
//!
//! ```sh
//! cargo run --release --example case_study
//! ```

fn main() {
    println!("{}", stellar::experiments::case_study(0.3));
}
