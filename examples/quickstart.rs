//! Quickstart: tune one workload end to end with STELLAR.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the engine (offline RAG extraction over the synthetic manual),
//! runs IOR_16M under the default Lustre-like configuration, lets the agents
//! tune it (≤ 5 attempts), and prints the outcome plus the learned rules.

use agents::RuleSet;
use stellar::Stellar;
use workloads::WorkloadKind;

fn main() {
    // Offline phase: manual -> vector index -> 13 extracted tunables.
    let engine = Stellar::standard();
    println!(
        "offline extraction: {} / {} parameters selected\n",
        engine.extraction_report().selected,
        engine.extraction_report().total_params,
    );

    // Online phase: one complete Tuning Run.
    let workload = WorkloadKind::Ior16M.spec().scaled(0.25);
    let mut rules = RuleSet::new();
    let run = engine.tune(workload.as_ref(), &mut rules, 42);

    println!("workload: {}", run.workload);
    println!("default wall time: {:.3}s", run.default_wall);
    for a in &run.attempts {
        println!(
            "  attempt {}: {:.3}s  (x{:.2})",
            a.iteration, a.wall_secs, a.speedup
        );
    }
    println!(
        "\nbest: {:.3}s — x{:.2} speedup in {} attempts",
        run.best_wall,
        run.best_speedup,
        run.attempts.len()
    );
    println!("ended because: {}", run.end_reason);
    println!("\nbest configuration:\n{}", run.best_config.render());
    println!(
        "\nlearned {} rules; global rule set now:\n{}",
        run.new_rules.len(),
        rules.to_json()
    );
    println!(
        "\ntoken usage: tuning agent {} in / {} out ({:.0}% cached), analysis agent {} in / {} out",
        run.tuning_usage.input_tokens,
        run.tuning_usage.output_tokens,
        run.tuning_usage.cache_hit_ratio() * 100.0,
        run.analysis_usage.input_tokens,
        run.analysis_usage.output_tokens,
    );
}
