//! Quickstart: the three-layer STELLAR API end to end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! 1. **Builder** — construct the engine (offline RAG extraction over the
//!    synthetic manual) with fluent configuration.
//! 2. **Session** — run one Tuning Run step by step, watching every agent
//!    event as it happens, with a live transcript observer.
//! 3. **Campaign** — tune a small workload grid in parallel and aggregate,
//!    recording the whole run as a structured JSONL record
//!    (`stellar::obs`) and replaying the summary from the record alone.

use agents::RuleSet;
use stellar::{Campaign, JsonlEmitter, RunObserver, RunRecord, SessionEvent, StellarBuilder};
use workloads::WorkloadKind;

/// Prints each transcript line the Tuning Agent narrates, as it happens.
struct LivePrinter;

impl RunObserver for LivePrinter {
    fn on_transcript(&mut self, line: &str) {
        println!("    | {line}");
    }
}

fn main() {
    // ---- 1. Builder: offline phase (manual -> index -> 13 tunables). ----
    let engine = StellarBuilder::new()
        .attempt_budget(5) // the paper's configuration cap
        .build();
    println!(
        "offline extraction: {} / {} parameters selected\n",
        engine.extraction_report().selected,
        engine.extraction_report().total_params,
    );

    // ---- 2. Session: one observable Tuning Run. ----
    let workload = WorkloadKind::Ior16M.spec().scaled(0.25);
    let mut session = engine.session(workload.as_ref(), RuleSet::new(), 42);
    session.observe(Box::new(LivePrinter));

    println!("stepping the session:");
    while !session.is_ended() {
        match session.step() {
            SessionEvent::InitialRun { wall_secs } => {
                println!("  event: initial default run took {wall_secs:.3}s");
            }
            SessionEvent::AnalysisReport(report) => {
                println!(
                    "  event: analysis report — {:?}, {:.1} KiB mean writes",
                    report.classify(),
                    report.avg_write_size / 1024.0
                );
            }
            SessionEvent::MinorLoopQuestion { question, .. } => {
                println!("  event: minor-loop question {question:?}");
            }
            SessionEvent::Attempt(a) => {
                println!(
                    "  event: attempt {} -> {:.3}s (x{:.2})",
                    a.iteration, a.wall_secs, a.speedup
                );
            }
            SessionEvent::Waiting { call } => {
                // Only seen when the builder injects backend latency
                // (`.backend_latency(...)`): the turn's provider call is
                // in flight and the session is suspended — keep stepping
                // (or do other work) until it completes.
                println!("  event: waiting on backend call #{}", call.id());
            }
            SessionEvent::Ended { reason } => {
                println!("  event: ended — {reason}");
            }
            SessionEvent::Failed { error } => {
                // Only seen when the builder injects backend failures
                // (`.failures(...)`): terminal, with no tuning run —
                // collect the error via `drain_outcome()`/`into_outcome()`.
                println!("  event: failed — {error}");
            }
        }
    }
    let run = session.into_run();
    let mut rules = RuleSet::new();
    rules.merge(run.new_rules.clone());
    println!(
        "\nbest: {:.3}s — x{:.2} speedup in {} attempts; {} rules learned",
        run.best_wall,
        run.best_speedup,
        run.attempts.len(),
        run.new_rules.len(),
    );
    println!("best configuration:\n{}", run.best_config.render());
    println!(
        "token usage: tuning agent {} in / {} out ({:.0}% cached)\n",
        run.tuning_usage.input_tokens,
        run.tuning_usage.output_tokens,
        run.tuning_usage.cache_hit_ratio() * 100.0,
    );

    // ---- 3. Campaign: a parallel workload grid with warm rules,     ----
    // ----    recorded as a structured JSONL run record.              ----
    println!("campaign: two workloads x two seeds, warm rule sharing");
    let mut emitter = JsonlEmitter::new(Vec::new());
    let report = Campaign::new(&engine)
        .kinds(&[WorkloadKind::Ior16M, WorkloadKind::MdWorkbench8K], 0.15)
        .seeds([1, 2])
        .rule_mode(stellar::RuleMode::Warm)
        .starting_rules(rules)
        .observe(Box::new(&mut emitter)) // every event -> one JSON line
        .run();
    print!("{}", report.render());

    // The record alone reproduces the summary (what `stellar-replay`
    // does for files written with `stellar-tune campaign --emit`). The
    // canonical half of the record is byte-identical across serial,
    // parallel and latency-injected runs of the same seeded grid.
    let jsonl = String::from_utf8(emitter.into_inner()).expect("utf-8 record");
    let record = RunRecord::parse(&jsonl).expect("record parses back");
    println!(
        "\nrun record: {} line(s), {} canonical event(s); replayed summary:",
        record.lines.len(),
        record.events().count(),
    );
    print!("{}", record.summary());
}
