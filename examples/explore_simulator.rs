//! Direct use of the PFS simulator substrate: sweep one tunable and watch
//! the response surface — the landscape every autotuner in this repository
//! is searching.
//!
//! ```sh
//! cargo run --release --example explore_simulator
//! ```

use pfs::{ClusterSpec, PfsSimulator, TuningConfig};
use workloads::WorkloadKind;

fn main() {
    let sim = PfsSimulator::new(ClusterSpec::paper_cluster());
    println!("cluster: {}\n", sim.topology().describe());

    // Sweep stripe_count for a shared-file streaming workload vs a
    // small-file metadata workload: the sign of the effect flips.
    let sweeps: &[(&str, WorkloadKind)] = &[
        ("IOR_16M (streaming)", WorkloadKind::Ior16M),
        ("MDWorkbench_8K (metadata)", WorkloadKind::MdWorkbench8K),
    ];
    for (label, kind) in sweeps {
        println!("{label}: wall time vs stripe_count");
        let w = kind.spec().scaled(0.2);
        for sc in [1i32, 2, 5] {
            let mut cfg = TuningConfig::lustre_default();
            cfg.stripe_count = sc;
            let r = sim.run(w.generate(sim.topology(), 1), &cfg, 1);
            println!(
                "  stripe_count={sc}: {:>7.3}s   (bulk RPCs {}, MDS ops {}, \
                 lock revocations {})",
                r.wall_secs, r.bulk_rpcs, r.mds_ops, r.lock_revocations
            );
        }
        println!();
    }

    // Dirty-buffer sweep on random small writes: the coalescing effect.
    println!("IOR_64K (random 64 KiB writes): wall time vs osc.max_dirty_mb");
    let w = WorkloadKind::Ior64K.spec().scaled(0.25);
    for dirty in [32u32, 128, 512, 1024] {
        let mut cfg = TuningConfig::lustre_default();
        cfg.stripe_count = -1;
        cfg.osc_max_dirty_mb = dirty;
        let r = sim.run(w.generate(sim.topology(), 1), &cfg, 1);
        println!(
            "  max_dirty_mb={dirty:>5}: {:>7.3}s  (writer stalls {:.2}s, \
             disk seq/rand {}/{})",
            r.wall_secs, r.dirty_stall_secs, r.disk_seq_ops, r.disk_rand_ops
        );
    }
}
