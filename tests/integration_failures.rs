//! Failure-domain conformance: the acceptance properties of the
//! fallible-backend work, pinned end to end.
//!
//! 1. A campaign under seeded backend-failure injection emits a canonical
//!    JSONL stream that is byte-identical across serial, multi-threaded
//!    and latency-injected executions — retries and failures are part of
//!    the deterministic record, not scheduling noise.
//! 2. A panicking cell is isolated: it publishes
//!    [`CellOutcome::Failed`] while its siblings finish normally, and
//!    serial and parallel executions agree on every cell.
//! 3. A session that exhausts its retry budget ends with
//!    [`SessionEvent::Failed`] and a structured [`SessionError`] — never
//!    a panic.
//! 4. A campaign resumed from a crash-torn partial run record replays
//!    the completed rounds and recomputes the remainder, producing a
//!    report and canonical stream bit-identical to the uninterrupted
//!    run.

use llmsim::{FailureInjection, FailureProfile, LatencyProfile};
use stellar::{
    Campaign, CampaignReport, CellFailure, JsonlEmitter, RetryPolicy, RunRecord, SessionError,
    SessionEvent, SessionOutcome, Stellar, StellarBuilder,
};
use workloads::WorkloadKind;

const GRID: [WorkloadKind; 2] = [WorkloadKind::Ior64K, WorkloadKind::MdWorkbench2K];
const SCALE: f64 = 0.05;
const SEEDS: [u64; 2] = [71, 72];

/// An engine with the standard failure injection (seed 9) and a
/// three-attempt retry budget, plus optional backend latency.
fn engine(latency: Option<LatencyProfile>) -> Stellar {
    let mut b = StellarBuilder::new()
        .attempt_budget(3)
        .failures(FailureInjection::standard(9))
        .retry_policy(RetryPolicy {
            max_attempts: 3,
            ..Default::default()
        });
    if let Some(p) = latency {
        b = b.backend_latency(p);
    }
    b.build()
}

fn campaign(e: &Stellar) -> Campaign<'_> {
    Campaign::new(e).kinds(&GRID, SCALE).seeds(SEEDS)
}

/// Run the grid with a recording emitter attached; return the report and
/// the parsed record.
fn record_campaign(e: &Stellar, threads: usize, serial: bool) -> (CampaignReport, RunRecord) {
    let mut emitter = JsonlEmitter::new(Vec::new());
    let c = campaign(e).threads(threads).observe(Box::new(&mut emitter));
    let report = if serial { c.run_serial() } else { c.run() };
    drop(c); // release the emitter borrow held by the observer box
    let bytes = emitter.into_inner();
    let record = RunRecord::parse(std::str::from_utf8(&bytes).expect("utf-8")).expect("parses");
    (report, record)
}

/// Acceptance property 1: failure verdicts are drawn per submission
/// index, so the canonical stream — retries included — is identical
/// whether the grid runs serially, across four workers, or with
/// suspended cells under injected latency.
#[test]
fn injected_failure_campaign_is_deterministic_across_execution_shapes() {
    let instant = engine(None);
    let (_, serial) = record_campaign(&instant, 1, true);
    let (_, parallel) = record_campaign(&instant, 4, false);
    let latent_engine = engine(Some(LatencyProfile::fixed(2)));
    let (_, latent) = record_campaign(&latent_engine, 2, false);

    let canon = serial.canonical_jsonl();
    assert!(!canon.is_empty());
    assert_eq!(canon, parallel.canonical_jsonl(), "serial vs parallel");
    assert_eq!(canon, latent.canonical_jsonl(), "serial vs latency");
}

/// A workload whose stream generation panics: the cell's first
/// simulated execution unwinds mid-session. Cost hints delegate to the
/// wrapped workload so scheduler planning (which runs outside the cell's
/// failure domain) stays panic-free.
struct PanicOnGenerate(Box<dyn workloads::Workload>);

impl workloads::Workload for PanicOnGenerate {
    fn name(&self) -> String {
        "PanicCell".into()
    }

    fn generate(
        &self,
        _topo: &pfs::topology::ClusterSpec,
        _seed: u64,
    ) -> Vec<pfs::ops::RankStream> {
        panic!("injected cell panic")
    }

    fn scaled(&self, factor: f64) -> Box<dyn workloads::Workload> {
        Box::new(PanicOnGenerate(self.0.scaled(factor)))
    }

    fn describe(&self) -> String {
        self.0.describe()
    }

    fn cost_hint(&self, topo: &pfs::topology::ClusterSpec) -> workloads::CostHint {
        self.0.cost_hint(topo)
    }
}

/// Acceptance property 2: a panicking cell publishes
/// `CellOutcome::Failed` without aborting its siblings, and serial and
/// parallel executions agree cell for cell.
#[test]
fn panicking_cell_is_isolated_from_its_siblings() {
    let e = StellarBuilder::new().attempt_budget(3).build();
    let build = || {
        Campaign::new(&e)
            .workload(WorkloadKind::Ior64K.spec_at(SCALE))
            .workload(Box::new(PanicOnGenerate(
                WorkloadKind::Ior16M.spec_at(SCALE),
            )))
            .workload(WorkloadKind::MdWorkbench2K.spec_at(SCALE))
            .seeds([5])
    };
    let serial = build().run_serial();
    let parallel = build().threads(4).run();

    for (tag, report) in [("serial", &serial), ("parallel", &parallel)] {
        assert_eq!(report.cells.len(), 3, "{tag}");
        let failed = report.failed_cells();
        assert_eq!(failed.len(), 1, "{tag}: exactly the panicking cell fails");
        assert_eq!(failed[0].workload, "PanicCell", "{tag}");
        match failed[0].failure() {
            Some(CellFailure::Panic(msg)) => {
                assert!(msg.contains("injected cell panic"), "{tag}: {msg}");
            }
            other => panic!("{tag}: expected a panic failure, got {other:?}"),
        }
        assert!(report.cells[0].run().is_some(), "{tag}: sibling 0 finished");
        assert!(report.cells[2].run().is_some(), "{tag}: sibling 2 finished");
    }

    // Serial and parallel agree bit for bit, failed cell included.
    for (s, p) in serial.cells.iter().zip(&parallel.cells) {
        assert_eq!(s.workload, p.workload);
        assert_eq!(s.cell_seed, p.cell_seed);
        assert_eq!(s.failure(), p.failure());
        match (s.run(), p.run()) {
            (Some(a), Some(b)) => {
                assert_eq!(a.best_wall.to_bits(), b.best_wall.to_bits());
                assert_eq!(a.transcript, b.transcript);
            }
            (None, None) => {}
            _ => panic!("{}: serial and parallel outcomes disagree", s.workload),
        }
    }
}

/// Acceptance property 3: an all-transient backend with a spent retry
/// budget ends the session via `SessionEvent::Failed` and a structured
/// `RetriesExhausted` error — the drain never panics.
#[test]
fn retry_exhaustion_fails_the_session_without_panicking() {
    let e = StellarBuilder::new()
        .attempt_budget(2)
        .failures(FailureInjection {
            seed: 3,
            profile: FailureProfile {
                transient_rate: 1.0,
                fatal_rate: 0.0,
            },
        })
        .retry_policy(RetryPolicy {
            max_attempts: 2,
            backoff_ticks: 1,
            pending_timeout: None,
        })
        .build();
    let w = WorkloadKind::Ior16M.spec().scaled(0.08);
    let mut session = e.session(w.as_ref(), agents::RuleSet::new(), 11);
    let mut saw_failed = false;
    while !session.is_ended() {
        if let SessionEvent::Failed { error } = session.step() {
            saw_failed = true;
            assert!(matches!(error, SessionError::RetriesExhausted { .. }));
        }
    }
    assert!(saw_failed, "the terminal event must be Failed");
    match session.into_outcome() {
        SessionOutcome::Failed(SessionError::RetriesExhausted { attempts, .. }) => {
            assert_eq!(attempts, 2, "both budgeted submissions were spent");
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
}

/// Acceptance property 4: a campaign resumed from a crash-torn partial
/// record — complete round one, a torn final line — replays round one
/// from the record and recomputes round two, landing on a report and
/// canonical stream bit-identical to the uninterrupted run.
#[test]
fn resumed_campaign_is_bit_identical_to_uninterrupted() {
    let e = engine(None);
    let (full_report, full_record) = record_campaign(&e, 1, true);
    let full_jsonl = full_record.to_jsonl();

    // Crash simulation: keep everything before the second round, then
    // tear the write mid-line.
    let lines: Vec<&str> = full_jsonl.lines().collect();
    let second_round = lines
        .iter()
        .position(|l| l.contains("\"RoundStart\"") && l.contains(&format!("\"seed\":{}", SEEDS[1])))
        .expect("the record has a second round");
    let mut partial: String = lines[..second_round]
        .iter()
        .flat_map(|l| [*l, "\n"])
        .collect();
    partial.push_str("{\"v\":3,\"e\":{\"Cell"); // torn, no trailing newline

    let record = RunRecord::parse_partial(&partial).expect("partial record parses");
    let mut emitter = JsonlEmitter::new(Vec::new());
    let c = campaign(&e)
        .resume_from(&record)
        .expect("same grid, same flags: resumable")
        .observe(Box::new(&mut emitter));
    let resumed_report = c.run_serial();
    drop(c);
    let bytes = emitter.into_inner();
    let resumed_record =
        RunRecord::parse(std::str::from_utf8(&bytes).expect("utf-8")).expect("parses");

    assert_eq!(
        resumed_report.render(),
        full_report.render(),
        "the resumed report must be bit-identical"
    );
    assert_eq!(
        resumed_record.canonical_jsonl(),
        full_record.canonical_jsonl(),
        "the resumed canonical stream must be bit-identical"
    );
    assert_eq!(resumed_report.cells.len(), full_report.cells.len());
    for (r, f) in resumed_report.cells.iter().zip(&full_report.cells) {
        assert_eq!(r.run(), f.run(), "{} @ seed {}", f.workload, f.seed);
        assert_eq!(r.failure(), f.failure());
    }
    assert_eq!(resumed_report.rules, full_report.rules);
}
