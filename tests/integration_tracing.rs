//! Cross-crate integration: simulator ⇄ Darshan ⇄ Analysis Agent
//! consistency (conservation laws and classification stability).

use darshan::counters::Counter;
use darshan::{tables::to_tables, Collector};
use llmsim::{ModelProfile, SimLlm};
use pfs::{ClusterSpec, PfsSimulator, TuningConfig};
use workloads::WorkloadKind;

fn trace(kind: WorkloadKind, scale: f64) -> (pfs::RunResult, darshan::DarshanLog) {
    let sim = PfsSimulator::new(ClusterSpec::paper_cluster());
    let w = kind.spec().scaled(scale);
    let mut c = Collector::new(kind.label(), sim.topology().total_ranks());
    let r = sim.run_traced(
        w.generate(sim.topology(), 1),
        &TuningConfig::lustre_default(),
        1,
        &mut c,
    );
    (r, c.finish())
}

#[test]
fn darshan_conserves_bytes() {
    for kind in [
        WorkloadKind::Ior16M,
        WorkloadKind::MdWorkbench8K,
        WorkloadKind::Io500,
        WorkloadKind::Macsio512K,
    ] {
        let (run, log) = trace(kind, 0.1);
        let traced_written: i64 = log
            .records
            .iter()
            .map(|r| r.get(Counter::BytesWritten))
            .sum();
        let traced_read: i64 = log.records.iter().map(|r| r.get(Counter::BytesRead)).sum();
        assert_eq!(
            traced_written as u64,
            run.bytes_written,
            "{}: written mismatch",
            kind.label()
        );
        assert_eq!(
            traced_read as u64,
            run.bytes_read,
            "{}: read mismatch",
            kind.label()
        );
    }
}

#[test]
fn analysis_classification_is_stable_across_scales_and_configs() {
    use agents::WorkloadClass;
    let expectations = [
        (WorkloadKind::Ior16M, WorkloadClass::LargeSequentialShared),
        (WorkloadKind::Ior64K, WorkloadClass::RandomSmallShared),
        (
            WorkloadKind::MdWorkbench2K,
            WorkloadClass::MetadataSmallFiles,
        ),
        (WorkloadKind::Io500, WorkloadClass::MixedMultiPhase),
        (WorkloadKind::Macsio512K, WorkloadClass::SmallObjectDumps),
    ];
    for (kind, expected) in expectations {
        for scale in [0.1, 0.3] {
            let (_, log) = trace(kind, scale);
            let (header, tables) = to_tables(&log);
            let mut backend = SimLlm::new(ModelProfile::gpt_4o(), 1);
            let mut agent = agents::AnalysisAgent::new(&mut backend);
            let report = agent.initial_report(&header, &tables);
            assert_eq!(
                report.classify(),
                expected,
                "{} at scale {scale}: {report:?}",
                kind.label()
            );
        }
    }
}

#[test]
fn runtime_header_tracks_wall_time() {
    let (run, log) = trace(WorkloadKind::Amrex, 0.25);
    assert!(log.header.runtime_secs > 0.0);
    // Darshan sees the last application op; writeback drain may extend the
    // engine's wall beyond it, never the reverse.
    assert!(log.header.runtime_secs <= run.wall_secs + 1e-9);
    assert!(log.header.runtime_secs > run.wall_secs * 0.5);
}

#[test]
fn shared_file_detection_matches_workload_structure() {
    // IOR: one shared file. MDWorkbench: none.
    let (_, ior_log) = trace(WorkloadKind::Ior16M, 0.1);
    let (header, tables) = to_tables(&ior_log);
    let mut backend = SimLlm::new(ModelProfile::gpt_4o(), 1);
    let report = agents::AnalysisAgent::new(&mut backend).initial_report(&header, &tables);
    assert_eq!(report.shared_file_count, 1);
    assert_eq!(report.file_count, 1);

    let (_, mdw_log) = trace(WorkloadKind::MdWorkbench8K, 0.1);
    let (header, tables) = to_tables(&mdw_log);
    let mut backend = SimLlm::new(ModelProfile::gpt_4o(), 2);
    let report = agents::AnalysisAgent::new(&mut backend).initial_report(&header, &tables);
    assert_eq!(report.shared_file_count, 0);
    assert!(report.file_count > 100);
}
