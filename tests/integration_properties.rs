//! Property-based cross-crate tests: arbitrary valid configurations must
//! never break the simulator, and core invariants must hold across the
//! whole tunable space.

use pfs::params::{ParamRegistry, TuningConfig, TUNABLE_NAMES};
use pfs::{ClusterSpec, PfsSimulator};
use proptest::prelude::*;
use stellar::baselines::candidate_values;
use workloads::WorkloadKind;

/// Strategy: a configuration assembled from per-parameter candidate grids,
/// then clamped into validity (mirrors what any sane tuner would submit).
fn arb_config() -> impl Strategy<Value = TuningConfig> {
    let picks: Vec<BoxedStrategy<i64>> = TUNABLE_NAMES
        .iter()
        .map(|name| {
            let cands = candidate_values(name, 5);
            if cands.is_empty() {
                Just(0i64).boxed()
            } else {
                proptest::sample::select(cands).boxed()
            }
        })
        .collect();
    picks.prop_map(|values| {
        let mut cfg = TuningConfig::lustre_default();
        for (name, v) in TUNABLE_NAMES.iter().zip(values) {
            let _ = cfg.set(name, v);
        }
        cfg.clamped(&ParamRegistry::standard(), &ClusterSpec::paper_cluster())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any clamped configuration validates and runs to completion with
    /// positive wall time and conserved byte counts.
    #[test]
    fn simulator_total_under_arbitrary_configs(cfg in arb_config(), seed in 0u64..1000) {
        let topo = ClusterSpec::paper_cluster();
        prop_assert!(cfg.validate(&ParamRegistry::standard(), &topo).is_ok());
        let sim = PfsSimulator::new(topo);
        let w = WorkloadKind::Macsio16M.spec().scaled(0.1);
        let streams = w.generate(sim.topology(), seed);
        let declared: u64 = streams.iter().map(|s| s.bytes_written()).sum();
        let r = sim.run(streams, &cfg, seed);
        prop_assert!(r.wall_secs > 0.0);
        prop_assert!(r.wall_secs.is_finite());
        prop_assert_eq!(r.bytes_written, declared);
    }

    /// Determinism across the config space: same inputs, bit-equal outputs.
    #[test]
    fn simulator_deterministic_under_arbitrary_configs(cfg in arb_config()) {
        let sim = PfsSimulator::new(ClusterSpec::paper_cluster());
        let w = WorkloadKind::Ior16M.spec().scaled(0.03);
        let a = sim.run(w.generate(sim.topology(), 3), &cfg, 3);
        let b = sim.run(w.generate(sim.topology(), 3), &cfg, 3);
        prop_assert_eq!(a.wall_secs.to_bits(), b.wall_secs.to_bits());
        prop_assert_eq!(a.bulk_rpcs, b.bulk_rpcs);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Rule sets survive JSON round trips for arbitrary guidance content.
    #[test]
    fn rules_roundtrip(v in 1i64..100_000) {
        use agents::{ContextTag, Guidance, Rule, RuleSet};
        let mut rs = RuleSet::new();
        rs.merge(vec![
            Rule::new("osc.max_dirty_mb", Guidance::RaiseToAtLeast(v),
                      &[ContextTag::RandomSmallWrites, ContextTag::SharedFile]),
            Rule::new("stripe_count", Guidance::SetToAllOsts,
                      &[ContextTag::LargeSequentialWrites]),
        ]);
        let parsed = RuleSet::from_json(&rs.to_json()).unwrap();
        prop_assert_eq!(parsed, rs);
    }

    /// The sharded store is a drop-in for the flat set end to end: merge
    /// through both, flatten the store through the façade, and the JSON
    /// the paper's schema produces is byte-identical.
    #[test]
    fn sharded_store_facade_agrees_with_flat_json(v in 1i64..100_000, n in 1usize..6) {
        use agents::{ContextTag, Guidance, Rule, RuleSet, ShardedRuleStore};
        let all = ContextTag::all();
        let batch: Vec<Rule> = (0..n)
            .map(|i| Rule::new(
                if i % 2 == 0 { "osc.max_dirty_mb" } else { "stripe_size" },
                Guidance::RaiseToAtLeast(v + i as i64),
                &[all[i % all.len()], all[(i + 3) % all.len()]],
            ))
            .collect();
        let mut flat = RuleSet::new();
        flat.merge(batch.clone());
        let mut store = ShardedRuleStore::new();
        store.merge(batch);
        prop_assert_eq!(store.to_rule_set().to_json(), flat.to_json());
        prop_assert_eq!(store.snapshot().to_rule_set(), flat);
    }
}
