//! Campaign-layer integration: deterministic parallel execution and
//! cross-layer consistency with single sessions.

use agents::RuleSet;
use stellar::{Campaign, RuleMode, StellarBuilder};
use workloads::WorkloadKind;

const KINDS: [WorkloadKind; 2] = [WorkloadKind::Ior16M, WorkloadKind::MdWorkbench8K];

/// The same workload/seed grid run serially and in parallel yields
/// identical `best_wall`/`best_config` per cell — in warm mode, where
/// cross-cell rule sharing makes ordering bugs visible.
#[test]
fn campaign_parallel_equals_serial() {
    let engine = StellarBuilder::new().build();
    let campaign = Campaign::new(&engine)
        .kinds(&KINDS, 0.08)
        .seeds([11, 12])
        .rule_mode(RuleMode::Warm)
        .threads(4);
    let parallel = campaign.run();
    let serial = campaign.run_serial();

    assert_eq!(parallel.cells.len(), 4);
    assert_eq!(parallel.cells.len(), serial.cells.len());
    for (p, s) in parallel.cells.iter().zip(&serial.cells) {
        assert_eq!(p.workload, s.workload);
        assert_eq!(p.seed, s.seed);
        assert_eq!(p.cell_seed, s.cell_seed);
        assert_eq!(
            p.run.best_wall.to_bits(),
            s.run.best_wall.to_bits(),
            "{} @ seed {}: parallel and serial best_wall diverged",
            p.workload,
            p.seed
        );
        assert_eq!(
            p.run.best_config, s.run.best_config,
            "{} @ seed {}: parallel and serial best_config diverged",
            p.workload, p.seed
        );
        assert_eq!(p.run.attempts.len(), s.run.attempts.len());
    }
    assert_eq!(parallel.rules, serial.rules, "accumulated rules diverged");
}

/// A cold campaign cell reproduces the stand-alone session for the same
/// derived seed and starting rules — the layers compose, they don't drift.
/// Campaign cell seeds are fully derived, so the equivalent stand-alone
/// session uses `SeedPolicy::Fixed` (the default `PerWorkload` policy
/// would hash the workload name into the seed a second time).
#[test]
fn campaign_cell_matches_standalone_session() {
    let engine = StellarBuilder::new().build();
    let report = Campaign::new(&engine)
        .kinds(&[WorkloadKind::Ior16M], 0.08)
        .seeds([21])
        .run();
    let cell = &report.cells[0];

    let fixed_engine = StellarBuilder::new()
        .seed_policy(stellar::SeedPolicy::Fixed)
        .build();
    let w = WorkloadKind::Ior16M.spec().scaled(0.08);
    let standalone = fixed_engine
        .session(w.as_ref(), RuleSet::new(), cell.cell_seed)
        .drain();
    assert_eq!(cell.run.best_wall.to_bits(), standalone.best_wall.to_bits());
    assert_eq!(cell.run.best_config, standalone.best_config);
    assert_eq!(cell.run.transcript, standalone.transcript);
}
