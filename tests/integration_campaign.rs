//! Campaign-layer integration: deterministic parallel execution and
//! cross-layer consistency with single sessions.

use agents::RuleSet;
use stellar::{sched, Campaign, CampaignReport, RuleMode, Schedule, StellarBuilder};
use workloads::WorkloadKind;

const KINDS: [WorkloadKind; 2] = [WorkloadKind::Ior16M, WorkloadKind::MdWorkbench8K];

/// The same workload/seed grid run serially and in parallel yields
/// identical `best_wall`/`best_config` per cell — in warm mode, where
/// cross-cell rule sharing makes ordering bugs visible.
#[test]
fn campaign_parallel_equals_serial() {
    let engine = StellarBuilder::new().build();
    let campaign = Campaign::new(&engine)
        .kinds(&KINDS, 0.08)
        .seeds([11, 12])
        .rule_mode(RuleMode::Warm)
        .threads(4);
    let parallel = campaign.run();
    let serial = campaign.run_serial();

    assert_eq!(parallel.cells.len(), 4);
    assert_eq!(parallel.cells.len(), serial.cells.len());
    for (cp, cs) in parallel.cells.iter().zip(&serial.cells) {
        assert_eq!(cp.workload, cs.workload);
        assert_eq!(cp.seed, cs.seed);
        assert_eq!(cp.cell_seed, cs.cell_seed);
        let p = cp.run().expect("perfect backend: every cell finishes");
        let s = cs.run().expect("perfect backend: every cell finishes");
        assert_eq!(
            p.best_wall.to_bits(),
            s.best_wall.to_bits(),
            "{} @ seed {}: parallel and serial best_wall diverged",
            cp.workload,
            cp.seed
        );
        assert_eq!(
            p.best_config, s.best_config,
            "{} @ seed {}: parallel and serial best_config diverged",
            cp.workload, cp.seed
        );
        assert_eq!(p.attempts.len(), s.attempts.len());
    }
    assert_eq!(parallel.rules, serial.rules, "accumulated rules diverged");
}

fn assert_reports_identical(tag: &str, a: &CampaignReport, b: &CampaignReport) {
    assert_eq!(a.cells.len(), b.cells.len(), "{tag}: cell count");
    for (cx, cy) in a.cells.iter().zip(&b.cells) {
        assert_eq!(cx.workload, cy.workload, "{tag}");
        assert_eq!(cx.seed, cy.seed, "{tag}");
        assert_eq!(cx.cell_seed, cy.cell_seed, "{tag}");
        let x = cx.run().expect("perfect backend: every cell finishes");
        let y = cy.run().expect("perfect backend: every cell finishes");
        assert_eq!(
            x.best_wall.to_bits(),
            y.best_wall.to_bits(),
            "{tag}: {} @ seed {} best_wall diverged",
            cx.workload,
            cx.seed
        );
        assert_eq!(x.best_config, y.best_config, "{tag}");
        assert_eq!(x.transcript, y.transcript, "{tag}");
    }
    assert_eq!(a.rules, b.rules, "{tag}: accumulated rules diverged");
}

/// The property the cost-model scheduler rests on: *any* execution-order
/// permutation of a round — the planner's LPT/adaptive orders, reversed
/// grid order, or random permutations derived from seeds — produces a
/// report bit-identical to the serial grid-order run, in warm mode where
/// cross-round rule flow would expose any ordering leak.
#[test]
fn schedule_permutations_preserve_reports() {
    let engine = StellarBuilder::new().attempt_budget(3).build();
    let grid = [
        WorkloadKind::Ior64K,
        WorkloadKind::Ior16M,
        WorkloadKind::MdWorkbench2K,
    ];
    let campaign = |order: Option<Vec<usize>>, schedule: Schedule| {
        let mut c = Campaign::new(&engine)
            .kinds(&grid, 0.05)
            .seeds([31, 32])
            .rule_mode(RuleMode::Warm)
            .threads(3)
            .schedule(schedule);
        if let Some(o) = order {
            c = c.order_override(o);
        }
        c
    };
    let baseline = campaign(None, Schedule::Fifo).run_serial();

    for schedule in [Schedule::Fifo, Schedule::Lpt, Schedule::Adaptive] {
        let report = campaign(None, schedule).run();
        assert_reports_identical(schedule.label(), &report, &baseline);
    }
    let reversed: Vec<usize> = (0..grid.len()).rev().collect();
    let mut orders = vec![("reversed", reversed)];
    for perm_seed in [7u64, 8, 9] {
        orders.push((
            "random",
            sched::permutation_from_seed(grid.len(), perm_seed),
        ));
    }
    for (tag, order) in orders {
        let report = campaign(Some(order.clone()), Schedule::Fifo).run();
        assert_reports_identical(&format!("{tag} {order:?}"), &report, &baseline);
    }
}

/// A cold campaign cell reproduces the stand-alone session for the same
/// derived seed and starting rules — the layers compose, they don't drift.
/// Campaign cell seeds are fully derived, so the equivalent stand-alone
/// session uses `SeedPolicy::Fixed` (the default `PerWorkload` policy
/// would hash the workload name into the seed a second time).
#[test]
fn campaign_cell_matches_standalone_session() {
    let engine = StellarBuilder::new().build();
    let report = Campaign::new(&engine)
        .kinds(&[WorkloadKind::Ior16M], 0.08)
        .seeds([21])
        .run();
    let cell = &report.cells[0];

    let fixed_engine = StellarBuilder::new()
        .seed_policy(stellar::SeedPolicy::Fixed)
        .build();
    let w = WorkloadKind::Ior16M.spec().scaled(0.08);
    let standalone = fixed_engine
        .session(w.as_ref(), RuleSet::new(), cell.cell_seed)
        .drain();
    let run = cell.run().expect("perfect backend: the cell finishes");
    assert_eq!(run.best_wall.to_bits(), standalone.best_wall.to_bits());
    assert_eq!(run.best_config, standalone.best_config);
    assert_eq!(run.transcript, standalone.transcript);
}
