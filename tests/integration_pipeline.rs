//! Cross-crate integration: the full STELLAR pipeline from manual to rules.

use agents::RuleSet;
use stellar::Stellar;
use workloads::WorkloadKind;

#[test]
fn end_to_end_pipeline_produces_consistent_artifacts() {
    let engine = Stellar::standard();

    // Offline artifacts.
    assert_eq!(engine.params().len(), 13);
    let report = engine.extraction_report();
    assert_eq!(
        report.writable,
        report.selected
            + report.dropped_binary.len()
            + report.dropped_low_impact.len()
            + report.dropped_insufficient.len()
    );

    // Online: one tuning run.
    let w = WorkloadKind::Ior16M.spec().scaled(0.08);
    let mut rules = RuleSet::new();
    let run = engine.tune(w.as_ref(), &mut rules, 11);

    // Attempt accounting is internally consistent.
    assert!(run.attempts.len() <= 5);
    for (i, a) in run.attempts.iter().enumerate() {
        assert_eq!(a.iteration, i + 1);
        assert!((a.speedup - run.default_wall / a.wall_secs).abs() < 1e-9);
    }
    let min_wall = run
        .attempts
        .iter()
        .map(|a| a.wall_secs)
        .fold(run.default_wall, f64::min);
    assert!((run.best_wall - min_wall).abs() < 1e-12);

    // Rules round-trip through the paper's JSON schema.
    let json = rules.to_json();
    let parsed = RuleSet::from_json(&json).expect("round trip");
    assert_eq!(parsed, rules);
    for r in &rules.rules {
        assert!(r.guidance().is_some(), "unparseable rule: {r:?}");
        assert!(!r.tags().is_empty(), "context-free rule: {r:?}");
        assert!(
            !r.tuning_context.contains("IOR"),
            "application name leaked into rule context"
        );
    }
}

#[test]
fn tuning_runs_are_reproducible() {
    let engine = Stellar::standard();
    let w = WorkloadKind::Macsio16M.spec().scaled(0.2);
    let mut r1 = RuleSet::new();
    let a = engine.tune(w.as_ref(), &mut r1, 99);
    let mut r2 = RuleSet::new();
    let b = engine.tune(w.as_ref(), &mut r2, 99);
    assert_eq!(a.attempts.len(), b.attempts.len());
    for (x, y) in a.attempts.iter().zip(&b.attempts) {
        assert_eq!(x.config, y.config);
        assert_eq!(x.wall_secs.to_bits(), y.wall_secs.to_bits());
    }
    assert_eq!(r1, r2);
}

#[test]
fn best_config_is_valid_against_registry() {
    let engine = Stellar::standard();
    let w = WorkloadKind::MdWorkbench2K.spec().scaled(0.1);
    let mut rules = RuleSet::new();
    let run = engine.tune(w.as_ref(), &mut rules, 5);
    run.best_config
        .validate(
            &pfs::params::ParamRegistry::standard(),
            engine.sim().topology(),
        )
        .expect("agent-proposed configs must respect documented ranges");
}
