//! Scenario-layer conformance: deterministic fault & contention scenarios
//! end to end.
//!
//! The scenario layer adds two run regimes to the simulator — seeded OST
//! fault plans ([`pfs::FaultPlan`], applied in simulated event-queue time)
//! and contention composites ([`workloads::Contention`], interleaving
//! several jobs' streams over shared OSTs) — and threads them through the
//! engine, the rule store and the canonical run-record schema. This suite
//! pins the contract:
//!
//! * a faulted + contended campaign's canonical JSONL is byte-identical
//!   across serial, multi-threaded and latency-injected executions (the
//!   in-process mirror of CI's faulted determinism cell);
//! * `Contention::cost_hint` passes the same exactness test as the suite
//!   workloads, so the PR 3 scheduler stays exact on composite cells;
//! * fault schedules replay bit-identically, degrade wall time without
//!   changing trace shape, and mid-run recovery lands a run strictly
//!   between the pristine and forever-degraded walls;
//! * rules learned under a scenario never match a pristine-topology
//!   session, and vice versa — warm reuse is scenario-sharded.

use agents::{ContextTag, RuleSet};
use llmsim::LatencyProfile;
use pfs::topology::ClusterSpec;
use pfs::{FaultEvent, FaultKind, FaultPlan, PfsSimulator, TuningConfig};
use proptest::prelude::*;
use stellar::{
    Campaign, CampaignReport, JsonlEmitter, ObsEvent, RuleMode, RunRecord, Stellar, StellarBuilder,
};
use workloads::{Contention, CostHint, Workload, WorkloadKind};

const SCALE: f64 = 0.05;
const SEEDS: [u64; 1] = [61];
const FAULT_SEED: u64 = 7;

/// A faulted engine, optionally with injected backend latency.
fn faulted_engine(latency: Option<LatencyProfile>) -> Stellar {
    let topo = stellar::default_topology();
    let mut b = StellarBuilder::new()
        .attempt_budget(3)
        .faults(FaultPlan::seeded(topo.ost_count(), FAULT_SEED));
    if let Some(p) = latency {
        b = b.backend_latency(p);
    }
    b.build()
}

/// One composite (contended) cell plus one plain cell.
fn scenario_cells() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Contention::new(vec![
            WorkloadKind::Ior64K.spec_at(SCALE),
            WorkloadKind::MdWorkbench2K.spec_at(SCALE),
        ])),
        WorkloadKind::Ior64K.spec_at(SCALE),
    ]
}

fn scenario_campaign(e: &Stellar) -> Campaign<'_> {
    let mut c = Campaign::new(e);
    for w in scenario_cells() {
        c = c.workload(w);
    }
    c.seeds(SEEDS).rule_mode(RuleMode::Warm)
}

fn record_campaign(e: &Stellar, threads: usize, serial: bool) -> (CampaignReport, RunRecord) {
    let mut emitter = JsonlEmitter::new(Vec::new());
    let c = scenario_campaign(e)
        .threads(threads)
        .observe(Box::new(&mut emitter));
    let report = if serial { c.run_serial() } else { c.run() };
    drop(c);
    let bytes = emitter.into_inner();
    let record = RunRecord::parse(std::str::from_utf8(&bytes).expect("utf-8")).expect("parses");
    (report, record)
}

/// The headline acceptance criterion: the canonical stream of a faulted,
/// contended campaign is byte-identical whether it runs serially, across
/// 4 worker threads, or with cells suspending on injected backend latency
/// — fault schedules live in simulated time, so execution shape cannot
/// perturb them.
#[test]
fn faulted_contended_canonical_stream_is_mode_invariant() {
    let instant = faulted_engine(None);
    let (_, serial) = record_campaign(&instant, 1, true);
    let (_, parallel) = record_campaign(&instant, 4, false);
    let latent_engine = faulted_engine(Some(LatencyProfile::fixed(3)));
    let (_, latent) = record_campaign(&latent_engine, 2, false);

    let canon = serial.canonical_jsonl();
    assert!(!canon.is_empty());
    assert_eq!(canon, parallel.canonical_jsonl(), "serial vs 4-thread");
    assert_eq!(canon, latent.canonical_jsonl(), "serial vs latency");
    // The scenario metadata is canonical: the record itself says the grid
    // ran faulted, with a composite cell.
    assert!(canon.contains("\"faults\":"), "{canon}");
    assert!(canon.contains("IOR_64K+MDWorkbench_2K"), "{canon}");
    // And the full records still differ (telemetry is run-specific).
    assert_ne!(serial.to_jsonl(), latent.to_jsonl(), "full records differ");
}

/// A faulted grid must not record identically to a pristine grid of the
/// same shape: faults are canon, not telemetry.
#[test]
fn faulted_and_pristine_records_differ_canonically() {
    let (_, faulted) = record_campaign(&faulted_engine(None), 1, true);
    let pristine = StellarBuilder::new().attempt_budget(3).build();
    let (_, clean) = record_campaign(&pristine, 1, true);
    assert_ne!(faulted.canonical_jsonl(), clean.canonical_jsonl());
    let faults_of = |r: &RunRecord| {
        r.events().find_map(|e| match e {
            ObsEvent::CampaignStart { faults, .. } => Some(faults.clone()),
            _ => None,
        })
    };
    assert!(faults_of(&faulted).expect("campaign start").is_some());
    assert_eq!(faults_of(&clean).expect("campaign start"), None);
}

/// `Contention::cost_hint` passes the suite workloads' exactness test:
/// exact op counts and byte estimates within 5% of the generated streams,
/// for composites over every pairing used in the scenario grids.
#[test]
fn contention_cost_hints_are_exact_against_generated_streams() {
    let topo = ClusterSpec::tiny();
    let pairs = [
        (WorkloadKind::Ior64K, WorkloadKind::MdWorkbench2K),
        (WorkloadKind::Ior16M, WorkloadKind::Macsio16M),
        (WorkloadKind::MdWorkbench8K, WorkloadKind::Ior64K),
    ];
    for (a, b) in pairs {
        let w = Contention::new(vec![a.spec_at(SCALE), b.spec_at(SCALE)]);
        let hint = w.cost_hint(&topo);
        let exact = CostHint::from_streams(&w.generate(&topo, 1));
        assert_eq!(hint.data_ops, exact.data_ops, "{}", w.name());
        assert_eq!(hint.meta_ops, exact.meta_ops, "{}", w.name());
        let err = (hint.bytes as f64 - exact.bytes as f64).abs() / exact.bytes as f64;
        assert!(err < 0.05, "{}: bytes off by {:.1}%", w.name(), err * 100.0);
    }
    // Three-job composites stay exact too (hints are additive).
    let w = Contention::new(vec![
        WorkloadKind::Ior64K.spec_at(SCALE),
        WorkloadKind::Ior16M.spec_at(SCALE),
        WorkloadKind::MdWorkbench2K.spec_at(SCALE),
    ]);
    let hint = w.cost_hint(&topo);
    let exact = CostHint::from_streams(&w.generate(&topo, 1));
    assert_eq!(hint.data_ops, exact.data_ops);
    assert_eq!(hint.meta_ops, exact.meta_ops);
}

/// Fault replay: the same plan produces bit-identical runs, an empty plan
/// is exactly pristine, and mid-run recovery forces re-characterization —
/// the recovered wall lands strictly between pristine and forever-degraded.
#[test]
fn fault_schedules_replay_and_recovery_recharacterizes() {
    let topo = ClusterSpec::tiny();
    let sim = PfsSimulator::new(topo.clone());
    let w = WorkloadKind::Ior16M.spec_at(SCALE);
    let cfg = TuningConfig::lustre_default();
    let streams = || w.generate(&topo, 3);

    let pristine = sim.run(streams(), &cfg, 3).wall_secs;
    let degrade_all = |until: Option<u64>| {
        let mut events: Vec<FaultEvent> = (0..topo.ost_count())
            .map(|ost| FaultEvent {
                at_nanos: 0,
                ost,
                kind: FaultKind::Degrade { factor: 16.0 },
            })
            .collect();
        if let Some(at) = until {
            events.extend((0..topo.ost_count()).map(|ost| FaultEvent {
                at_nanos: at,
                ost,
                kind: FaultKind::Recover,
            }));
        }
        FaultPlan::new(events)
    };

    let forever = degrade_all(None);
    let run = |plan: &FaultPlan| {
        let mut sink = pfs::trace::NullSink;
        sim.run_traced_faulted(streams(), &cfg, 3, Some(plan), &mut sink)
            .wall_secs
    };
    let degraded = run(&forever);
    let d2 = run(&forever);
    assert_eq!(degraded.to_bits(), d2.to_bits(), "faulted replay is exact");
    assert!(degraded > pristine * 2.0, "{degraded} vs {pristine}");

    // Recover at half the pristine wall: the tail runs at full speed, so
    // the wall must land strictly between the two extremes.
    let recovery_at = (pristine * 0.5 * 1e9) as u64;
    let recovered = run(&degrade_all(Some(recovery_at)));
    assert!(
        pristine < recovered && recovered < degraded,
        "pristine {pristine} < recovered {recovered} < degraded {degraded}"
    );
}

/// Contention interleaving invariants: the composite is deterministic per
/// seed, every rank sees the same number of barriers (phases stay aligned
/// across jobs of different lengths), and the composite runs strictly
/// slower than its heaviest component alone — the contention actually
/// contends for the shared OSTs.
#[test]
fn contention_interleaves_deterministically_and_contends() {
    let topo = ClusterSpec::tiny();
    let w = Contention::new(vec![
        WorkloadKind::Ior64K.spec_at(SCALE),
        WorkloadKind::MdWorkbench2K.spec_at(SCALE),
    ]);
    let a = w.generate(&topo, 5);
    let b = w.generate(&topo, 5);
    // RankStream carries no PartialEq; its serde form is canonical.
    assert_eq!(
        serde_json::to_string(&a).expect("serializes"),
        serde_json::to_string(&b).expect("serializes"),
        "composite generation is deterministic"
    );

    let barriers = |s: &pfs::RankStream| {
        s.ops
            .iter()
            .filter(|op| matches!(op, pfs::IoOp::Barrier))
            .count()
    };
    let first = barriers(&a[0]);
    assert!(
        a.iter().all(|s| barriers(s) == first),
        "uniform barrier count across ranks"
    );

    let sim = PfsSimulator::new(topo.clone());
    let cfg = TuningConfig::lustre_default();
    let composite_wall = sim.run(w.generate(&topo, 5), &cfg, 5).wall_secs;
    let solo_wall = |k: WorkloadKind| {
        let solo = k.spec_at(SCALE);
        sim.run(solo.generate(&topo, 5), &cfg, 5).wall_secs
    };
    let heaviest = solo_wall(WorkloadKind::Ior64K).max(solo_wall(WorkloadKind::MdWorkbench2K));
    assert!(
        composite_wall > heaviest,
        "composite {composite_wall} must exceed heaviest solo {heaviest}"
    );
}

/// The warm-vs-cold satellite: rules learned under a faulted, contended
/// session carry both scenario tags, never match a pristine probe, and a
/// pristine session handed those rules behaves bit-identically to one
/// with no rules at all — while the scenario session itself can reuse
/// them.
#[test]
fn scenario_rules_never_cross_into_pristine_sessions() {
    let faulted = faulted_engine(None);
    let composite = Contention::new(vec![
        WorkloadKind::Ior64K.spec_at(SCALE),
        WorkloadKind::MdWorkbench2K.spec_at(SCALE),
    ]);
    let mut learned = RuleSet::new();
    let run = faulted.tune(&composite, &mut learned, 61);
    assert!(
        !run.new_rules.is_empty(),
        "the faulted composite session must learn rules"
    );
    for r in &run.new_rules {
        let tags = r.tags();
        assert!(tags.contains(&ContextTag::DegradedTopology), "{tags:?}");
        assert!(tags.contains(&ContextTag::NoisyNeighbor), "{tags:?}");
    }

    // A pristine single-job session given the scenario rules is
    // bit-identical to a cold one: the rules cannot match its probe.
    let pristine = StellarBuilder::new().attempt_budget(3).build();
    let w = WorkloadKind::Ior64K.spec_at(SCALE);
    let mut none = RuleSet::new();
    let cold = pristine.tune(w.as_ref(), &mut none, 9);
    let mut warm_rules = learned.clone();
    let warm = pristine.tune(w.as_ref(), &mut warm_rules, 9);
    assert_eq!(
        cold, warm,
        "scenario rules must be invisible to a pristine session"
    );

    // The same engine running the same scenario *can* see them: the
    // matching probe (report tags + scenario tags) scores them > 0.
    let probe_tags: Vec<ContextTag> = {
        let mut t = run.new_rules[0].tags();
        t.sort_by_key(|x| format!("{x:?}"));
        t
    };
    assert!(
        run.new_rules
            .iter()
            .all(|r| r.match_score(&probe_tags) > 0.0),
        "scenario rules must match their own regime's probe"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Seeded fault plans are pure functions of (ost_count, seed): the
    /// event schedule replays identically, serializes losslessly, and a
    /// reconstructed plan evaluates to the same factor at any instant —
    /// the property that makes fault schedules portable across processes.
    #[test]
    fn seeded_fault_plans_are_reproducible(seed in 0u64..1_000, osts in 1u32..12) {
        let a = FaultPlan::seeded(osts, seed);
        let b = FaultPlan::seeded(osts, seed);
        prop_assert_eq!(&a, &b);
        let json = serde_json::to_string(&a).expect("serializes");
        let back: FaultPlan = serde_json::from_str(&json).expect("parses");
        prop_assert_eq!(&back, &a);
        for ost in 0..osts {
            for t in [0u64, 1, 1_000_000, u64::MAX / 2] {
                let at = simcore::SimTime(t);
                prop_assert_eq!(back.factor(ost, at).to_bits(), a.factor(ost, at).to_bits());
            }
        }
    }

    /// Composite cost hints are additive over their components for any
    /// subset of the suite, keeping scheduler estimates exact by
    /// construction.
    #[test]
    fn contention_hints_are_component_sums(picks in proptest::collection::vec(0usize..8, 2..4)) {
        let kinds = [
            WorkloadKind::Ior64K, WorkloadKind::Ior16M,
            WorkloadKind::MdWorkbench2K, WorkloadKind::MdWorkbench8K,
            WorkloadKind::Io500, WorkloadKind::Amrex,
            WorkloadKind::Macsio512K, WorkloadKind::Macsio16M,
        ];
        let topo = ClusterSpec::tiny();
        let jobs: Vec<_> = picks.iter().map(|&i| kinds[i].spec_at(SCALE)).collect();
        let mut want = CostHint::default();
        for j in &jobs {
            let h = j.cost_hint(&topo);
            want.data_ops += h.data_ops;
            want.meta_ops += h.meta_ops;
            want.bytes += h.bytes;
        }
        let got = Contention::new(jobs).cost_hint(&topo);
        prop_assert_eq!(got, want);
    }
}
