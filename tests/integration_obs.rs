//! The observability layer end to end: JSONL run records must round-trip
//! losslessly, observation must never change what a run computes, and the
//! canonical half of a campaign record must be byte-identical across
//! serial, parallel and latency-injected executions of the same seeded
//! grid — the in-process mirror of CI's `determinism` job (which shells
//! the same comparison through `jq`).

use llmsim::LatencyProfile;
use proptest::prelude::*;
use stellar::{
    Campaign, CampaignReport, JsonlEmitter, ObsEvent, ProgressRenderer, RuleMode, RunRecord,
    Stellar, StellarBuilder, TuningRun,
};
use workloads::WorkloadKind;

const GRID: [WorkloadKind; 2] = [WorkloadKind::Ior64K, WorkloadKind::MdWorkbench2K];
const SCALE: f64 = 0.05;
const SEEDS: [u64; 2] = [61, 62];

fn engine(latency: Option<LatencyProfile>) -> Stellar {
    let mut b = StellarBuilder::new().attempt_budget(3);
    if let Some(p) = latency {
        b = b.backend_latency(p);
    }
    b.build()
}

fn campaign(e: &Stellar) -> Campaign<'_> {
    Campaign::new(e)
        .kinds(&GRID, SCALE)
        .seeds(SEEDS)
        .rule_mode(RuleMode::Warm)
}

/// Run the grid with a recording emitter attached; return the report and
/// the parsed record.
fn record_campaign(e: &Stellar, threads: usize, serial: bool) -> (CampaignReport, RunRecord) {
    let mut emitter = JsonlEmitter::new(Vec::new());
    let c = campaign(e).threads(threads).observe(Box::new(&mut emitter));
    let report = if serial { c.run_serial() } else { c.run() };
    drop(c); // release the emitter borrow held by the observer box
    let bytes = emitter.into_inner();
    let record = RunRecord::parse(std::str::from_utf8(&bytes).expect("utf-8")).expect("parses");
    (report, record)
}

/// Run one session with a recording emitter; return the run + record.
fn record_session(e: &Stellar, seed: u64) -> (TuningRun, RunRecord) {
    let w = WorkloadKind::Ior16M.spec().scaled(0.05);
    let mut emitter = JsonlEmitter::new(Vec::new());
    let run = {
        let mut session = e.session(w.as_ref(), agents::RuleSet::new(), seed);
        session.observe(Box::new(&mut emitter));
        session.drain()
    };
    let bytes = emitter.into_inner();
    let record = RunRecord::parse(std::str::from_utf8(&bytes).expect("utf-8")).expect("parses");
    (run, record)
}

/// The acceptance criterion: the canonical JSONL of the same seeded grid
/// is byte-identical whether the campaign runs serially, across worker
/// threads, or with suspended cells under injected backend latency —
/// while the full records differ (telemetry is real and run-specific).
#[test]
fn canonical_stream_is_identical_across_serial_parallel_latency() {
    let instant = engine(None);
    let (_, serial) = record_campaign(&instant, 1, true);
    let (_, parallel) = record_campaign(&instant, 4, false);
    let latent_engine = engine(Some(LatencyProfile::fixed(3)));
    let (_, latent) = record_campaign(&latent_engine, 2, false);

    let canon = serial.canonical_jsonl();
    assert!(!canon.is_empty());
    assert_eq!(canon, parallel.canonical_jsonl(), "serial vs parallel");
    assert_eq!(canon, latent.canonical_jsonl(), "serial vs latency");

    // The sidecar is where the runs differ: the latency record carries
    // suspension telemetry the instant runs cannot have.
    assert!(
        latent
            .notes()
            .any(|n| matches!(n, stellar::SchedNote::CellSuspended { .. })),
        "latency run records suspensions"
    );
    assert_ne!(serial.to_jsonl(), latent.to_jsonl(), "full records differ");
}

/// Attaching observers must never change what a campaign computes: the
/// report with an emitter + renderer attached is bit-identical to the
/// observer-free report.
#[test]
fn observation_is_inert() {
    let e = engine(None);
    let bare = campaign(&e).threads(2).run();
    let mut emitter = JsonlEmitter::new(std::io::sink());
    let observed = campaign(&e)
        .threads(2)
        .observe(Box::new(&mut emitter))
        .observe(Box::new(ProgressRenderer::new(std::io::sink(), false)))
        .run();
    assert_eq!(bare.cells.len(), observed.cells.len());
    for (a, b) in bare.cells.iter().zip(&observed.cells) {
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.cell_seed, b.cell_seed);
        assert_eq!(
            a.run(),
            b.run(),
            "{} @ seed {} diverged",
            a.workload,
            a.seed
        );
    }
    assert_eq!(bare.rules, observed.rules);
}

/// `stellar-replay`'s summary comes from the record alone and reproduces
/// the live report's table byte for byte.
#[test]
fn replay_summary_reproduces_the_live_render() {
    let e = engine(None);
    let (report, record) = record_campaign(&e, 2, false);
    let summary = record.summary();
    assert!(
        summary.starts_with(&report.render()),
        "summary must reproduce render():\n--- render\n{}\n--- summary\n{summary}",
        report.render()
    );
}

/// The canonical session stream carries the whole run: every attempt, the
/// end reason, and usage deltas that sum back to the run's meters.
#[test]
fn session_record_reconstructs_the_run() {
    let e = engine(None);
    let (run, record) = record_session(&e, 9);
    let attempts: Vec<_> = record
        .events()
        .filter_map(|ev| match ev {
            ObsEvent::Attempt { record } => Some(record),
            _ => None,
        })
        .collect();
    assert_eq!(attempts.len(), run.attempts.len());
    for (a, b) in attempts.iter().zip(&run.attempts) {
        assert_eq!(**a, *b);
    }
    let transcript: Vec<_> = record
        .events()
        .filter_map(|ev| match ev {
            ObsEvent::Transcript { line } => Some(line.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(transcript, run.transcript);
    let reason = record
        .events()
        .find_map(|ev| match ev {
            ObsEvent::SessionEnd { reason } => Some(reason.clone()),
            _ => None,
        })
        .expect("record has SessionEnd");
    assert_eq!(reason, run.end_reason);
    // Usage deltas sum to the final meters.
    let (mut calls_t, mut in_t, mut out_t) = (0u64, 0u64, 0u64);
    for ev in record.events() {
        if let ObsEvent::Usage { tuning, .. } = ev {
            calls_t += tuning.calls;
            in_t += tuning.input_tokens;
            out_t += tuning.output_tokens;
        }
    }
    assert_eq!(calls_t, run.tuning_usage.calls);
    assert_eq!(in_t, run.tuning_usage.input_tokens);
    assert_eq!(out_t, run.tuning_usage.output_tokens);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Lossless serialization: for any seed and latency profile, the
    /// emitted record parses back to the same typed value, and re-emitting
    /// the parsed record reproduces the same bytes (`parse ∘ emit` is the
    /// identity on records).
    #[test]
    fn record_roundtrips_bit_exactly(seed in 0u64..1_000, ticks in 0u32..3) {
        let latency = (ticks > 0).then(|| LatencyProfile::fixed(ticks));
        let e = engine(latency);
        let (_, record) = record_session(&e, seed);
        let jsonl = record.to_jsonl();
        let reparsed = RunRecord::parse(&jsonl).expect("re-parses");
        prop_assert_eq!(&reparsed, &record);
        prop_assert_eq!(reparsed.to_jsonl(), jsonl);
    }

    /// The session-level determinism contract: the canonical stream of a
    /// latency-suspended session equals the instant session's, byte for
    /// byte — waits exist only in the sidecar.
    #[test]
    fn session_canonical_stream_is_latency_invariant(seed in 0u64..1_000, ticks in 1u32..4) {
        let (_, instant) = record_session(&engine(None), seed);
        let (_, latent) = record_session(&engine(Some(LatencyProfile::fixed(ticks))), seed);
        prop_assert!(latent.notes().count() > 0, "latency must record waits");
        prop_assert_eq!(instant.canonical_jsonl(), latent.canonical_jsonl());
    }
}
