//! Non-blocking backend seam, end to end: suspended sessions multiplexed
//! by campaign workers must overlap backend calls on a single thread, and
//! no seeded latency profile may ever change what a campaign computes —
//! cells, rules, transcripts, usage meters, all bit-identical to the
//! instant-backend path.

use llmsim::LatencyProfile;
use proptest::prelude::*;
use stellar::{Campaign, CampaignReport, RuleMode, Stellar, StellarBuilder};
use workloads::WorkloadKind;

const GRID: [WorkloadKind; 3] = [
    WorkloadKind::Ior64K,
    WorkloadKind::Ior16M,
    WorkloadKind::MdWorkbench2K,
];
const SCALE: f64 = 0.05;
const SEEDS: [u64; 2] = [51, 52];

fn engine(latency: Option<LatencyProfile>) -> Stellar {
    let mut b = StellarBuilder::new().attempt_budget(3);
    if let Some(p) = latency {
        b = b.backend_latency(p);
    }
    b.build()
}

fn campaign(e: &Stellar) -> Campaign<'_> {
    Campaign::new(e)
        .kinds(&GRID, SCALE)
        .seeds(SEEDS)
        .rule_mode(RuleMode::Warm)
        .threads(2)
}

/// Everything semantic in two reports, compared bit for bit — including
/// the usage meters, which would drift if suspension replayed or skipped
/// a single backend charge.
fn assert_reports_identical(tag: &str, a: &CampaignReport, b: &CampaignReport) {
    assert_eq!(a.cells.len(), b.cells.len(), "{tag}: cell count");
    for (cx, cy) in a.cells.iter().zip(&b.cells) {
        assert_eq!(cx.workload, cy.workload, "{tag}");
        assert_eq!(cx.seed, cy.seed, "{tag}");
        assert_eq!(cx.cell_seed, cy.cell_seed, "{tag}");
        let x = cx.run().expect("perfect backend: every cell finishes");
        let y = cy.run().expect("perfect backend: every cell finishes");
        assert_eq!(
            x.best_wall.to_bits(),
            y.best_wall.to_bits(),
            "{tag}: {} @ seed {} best_wall diverged",
            cx.workload,
            cx.seed
        );
        assert_eq!(x.best_config, y.best_config, "{tag}");
        assert_eq!(x.attempts.len(), y.attempts.len(), "{tag}");
        assert_eq!(x.end_reason, y.end_reason, "{tag}");
        assert_eq!(x.transcript, y.transcript, "{tag}");
        assert_eq!(x.new_rules, y.new_rules, "{tag}");
        assert_eq!(x.tuning_usage, y.tuning_usage, "{tag}: tuning usage");
        assert_eq!(x.analysis_usage, y.analysis_usage, "{tag}: analysis usage");
    }
    assert_eq!(a.rules, b.rules, "{tag}: accumulated rules diverged");
}

/// The instant-backend serial report every latency variant must equal.
fn baseline() -> &'static CampaignReport {
    static BASELINE: std::sync::OnceLock<CampaignReport> = std::sync::OnceLock::new();
    BASELINE.get_or_init(|| {
        let e = engine(None);
        // Bind the campaign so it drops before `e`: since campaigns can
        // carry 'e-bounded observer boxes, a tail-expression temporary
        // would outlive the block's locals and trip dropck.
        let c = campaign(&e);
        c.run_serial()
    })
}

/// Acceptance criterion for the seam: on a SINGLE worker thread, injected
/// latency suspends cells and the worker claims ahead, so at least two
/// cells' backend calls are in flight concurrently — while the report
/// stays bit-identical to the instant serial baseline.
#[test]
fn single_worker_overlaps_backend_calls() {
    let e = engine(Some(LatencyProfile::fixed(4)));
    let report = campaign(&e).threads(1).run();
    let stats = &report.sched_stats;
    assert_eq!(stats.workers, 1, "one worker thread by construction");
    assert!(
        stats.max_in_flight() >= 2,
        "a single worker must overlap suspended cells, peak {}",
        stats.max_in_flight()
    );
    for round in &stats.rounds {
        assert!(
            round.max_in_flight >= 2,
            "every 3-cell round overlaps under 4-tick latency, got {}",
            round.max_in_flight
        );
    }
    assert_reports_identical("1-worker overlap", &report, baseline());
}

/// Without latency the claim loop degenerates to the historical
/// one-cell-per-worker behaviour: no call ever suspends, so none ever
/// overlap.
#[test]
fn instant_backend_never_suspends() {
    let e = engine(None);
    let report = campaign(&e).run();
    assert_eq!(report.sched_stats.max_in_flight(), 0);
    assert_reports_identical("instant parallel", &report, baseline());
}

/// Serial campaigns poll suspended cells to completion one at a time:
/// same report, exactly one call in flight at a time.
#[test]
fn serial_run_with_latency_matches_instant() {
    let e = engine(Some(LatencyProfile::uniform(0, 3)));
    let report = campaign(&e).run_serial();
    assert_eq!(report.sched_stats.max_in_flight(), 1);
    assert_reports_identical("serial latency", &report, baseline());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The property the whole seam rests on: for ANY seeded latency
    /// profile, the multiplexed non-blocking campaign produces a report
    /// bit-identical to the sync path — warm mode, so any ordering or
    /// state leak between suspended cells would surface in the rules.
    #[test]
    fn any_latency_profile_preserves_reports(
        min in 0u32..3,
        span in 0u32..4,
        threads in 1usize..4,
    ) {
        let profile = LatencyProfile::uniform(min, min + span);
        let e = engine(Some(profile));
        let report = campaign(&e).threads(threads).run();
        assert_reports_identical(
            &format!("latency {} over {threads} thread(s)", profile.label()),
            &report,
            baseline(),
        );
    }
}
