//! Reflect & Summarize (§4.3.2, §4.4): distill a finished tuning run into
//! generalized rules.
//!
//! The agent compares the best configuration against the default, keeps the
//! parameters that contributed to improving attempts, and renders each as a
//! generalized [`Rule`] — no literal application names, values abstracted
//! where a structural recommendation exists ("all available OSTs", "match
//! the transfer size", "at least N").

use crate::report::IoReport;
use crate::rules::{ContextTag, Guidance, Rule};
use crate::tuning::Attempt;
use llmsim::LlmBackend;
use pfs::params::{TuningConfig, TUNABLE_NAMES};

/// Generate rules from a completed run. Returns an empty vector when the
/// run found no improvement worth learning from.
///
/// `extra_tags` are appended to the report-derived context — the session
/// layer passes the scenario tags ([`ContextTag::is_scenario`]) of the run
/// (degraded topology, noisy neighbor), so rules learned under faults or
/// contention carry their regime in the context and shard separately.
pub fn reflect(
    backend: &mut dyn LlmBackend,
    report: &IoReport,
    history: &[Attempt],
    baseline_wall: f64,
    extra_tags: &[ContextTag],
) -> Vec<Rule> {
    let Some(best) = history
        .iter()
        .min_by(|a, b| a.wall_secs.total_cmp(&b.wall_secs))
    else {
        return Vec::new();
    };
    // Only meaningful improvements become knowledge.
    if best.wall_secs >= baseline_wall * 0.97 {
        backend.charge(
            "Reflect on the tuning run and summarize reusable rules.",
            "No configuration meaningfully outperformed the default; no rules \
             recorded.",
        );
        return Vec::new();
    }
    let default = TuningConfig::lustre_default();
    let mut tags = ContextTag::tags_for(report);
    for t in extra_tags {
        if !tags.contains(t) {
            tags.push(*t);
        }
    }
    let mut rules = Vec::new();
    for name in TUNABLE_NAMES {
        let best_v = best.config.get(name).expect("known");
        let def_v = default.get(name).expect("known");
        if best_v == def_v {
            continue;
        }
        let guidance = generalize(name, best_v, report);
        rules.push(Rule::new(name, guidance, &tags));
    }
    let rendered: String = rules
        .iter()
        .map(|r| format!("{} :: {}\n", r.parameter, r.rule_description))
        .collect();
    backend.charge(
        &format!(
            "Reflect on the tuning run (best {:.3}s vs default {:.3}s over {} \
             attempts) and summarize reusable rules as JSON with Parameter, \
             Rule Description and Tuning Context keys. Exclude the application \
             name; generalize recommendations.",
            best.wall_secs,
            baseline_wall,
            history.len()
        ),
        &rendered,
    );
    rules
}

/// Abstract a concrete best value into transferable guidance.
fn generalize(name: &str, value: i64, report: &IoReport) -> Guidance {
    match name {
        "stripe_count" => {
            if value <= 0 || value >= 4 {
                Guidance::SetToAllOsts
            } else if value == 1 {
                Guidance::SetToOne
            } else {
                Guidance::SetTo(value)
            }
        }
        "stripe_size" => {
            // If the best stripe tracks the transfer size, record the
            // structural relation, not the number (the paper's Fig. 4
            // example: "informed by the file size / transfer size").
            let avg = report.avg_write_size;
            if avg > 0.0 && (value as f64) >= avg * 0.5 && (value as f64) <= avg * 4.0 {
                Guidance::MatchTransferSize
            } else {
                Guidance::SetTo(value)
            }
        }
        _ if value == 0 => Guidance::Disable,
        _ => Guidance::RaiseToAtLeast(value),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsim::{ModelProfile, SimLlm};

    fn seq_report() -> IoReport {
        IoReport {
            nprocs: 50,
            avg_write_size: 16e6,
            seq_write_fraction: 0.95,
            consec_write_fraction: 0.95,
            shared_file_count: 1,
            file_count: 1,
            avg_file_bytes: 19e9,
            max_file_bytes: 19 << 30,
            bytes_written: 19 << 30,
            bytes_read: 19 << 30,
            seq_read_fraction: 0.9,
            dominant_module: "MPI-IO".into(),
            ..Default::default()
        }
    }

    fn improved_history() -> Vec<Attempt> {
        let mut best = TuningConfig::lustre_default();
        best.stripe_count = -1;
        best.stripe_size = 16 << 20;
        best.osc_max_rpcs_in_flight = 64;
        best.llite_max_read_ahead_mb = 512;
        vec![
            Attempt {
                config: best,
                wall_secs: 8.0,
            },
            Attempt {
                config: TuningConfig::lustre_default(),
                wall_secs: 35.0,
            },
        ]
    }

    #[test]
    fn rules_generated_for_changed_params_only() {
        let mut b = SimLlm::new(ModelProfile::claude_37_sonnet(), 1);
        let rules = reflect(&mut b, &seq_report(), &improved_history(), 37.0, &[]);
        let params: Vec<&str> = rules.iter().map(|r| r.parameter.as_str()).collect();
        assert!(params.contains(&"stripe_count"));
        assert!(params.contains(&"stripe_size"));
        assert!(params.contains(&"osc.max_rpcs_in_flight"));
        assert!(!params.contains(&"llite.statahead_max"), "unchanged param");
    }

    #[test]
    fn stripe_rules_are_generalized() {
        let mut b = SimLlm::new(ModelProfile::claude_37_sonnet(), 1);
        let rules = reflect(&mut b, &seq_report(), &improved_history(), 37.0, &[]);
        let sc = rules
            .iter()
            .find(|r| r.parameter == "stripe_count")
            .unwrap();
        assert_eq!(sc.guidance(), Some(Guidance::SetToAllOsts));
        let ss = rules.iter().find(|r| r.parameter == "stripe_size").unwrap();
        assert_eq!(ss.guidance(), Some(Guidance::MatchTransferSize));
        // Context carries workload characteristics, not app names.
        assert!(sc.tuning_context.contains("large sequential writes"));
    }

    #[test]
    fn no_rules_without_improvement() {
        let mut b = SimLlm::new(ModelProfile::claude_37_sonnet(), 1);
        let history = vec![Attempt {
            config: TuningConfig::lustre_default(),
            wall_secs: 37.0,
        }];
        let rules = reflect(&mut b, &seq_report(), &history, 37.0, &[]);
        assert!(rules.is_empty());
    }

    #[test]
    fn empty_history_no_rules() {
        let mut b = SimLlm::new(ModelProfile::claude_37_sonnet(), 1);
        assert!(reflect(&mut b, &seq_report(), &[], 10.0, &[]).is_empty());
    }

    #[test]
    fn scenario_tags_land_in_rule_contexts() {
        let mut b = SimLlm::new(ModelProfile::claude_37_sonnet(), 1);
        let rules = reflect(
            &mut b,
            &seq_report(),
            &improved_history(),
            37.0,
            &[ContextTag::DegradedTopology],
        );
        assert!(!rules.is_empty());
        for r in &rules {
            assert!(
                r.tags().contains(&ContextTag::DegradedTopology),
                "scenario tag missing from {:?}",
                r.tuning_context
            );
        }
        // And the resulting rules no longer match a pristine probe.
        let pristine = ContextTag::tags_for(&seq_report());
        assert!(rules.iter().all(|r| r.match_score(&pristine) == 0.0));
    }

    #[test]
    fn reflection_charges_tokens() {
        use llmsim::LlmBackend as _;
        let mut b = SimLlm::new(ModelProfile::claude_37_sonnet(), 1);
        reflect(&mut b, &seq_report(), &improved_history(), 37.0, &[]);
        assert_eq!(b.usage().calls, 1);
    }
}
