//! The Tuning Agent (§4.3.2): the primary controller of the iterative
//! tuning loop.
//!
//! The agent holds the extracted parameter set, the hardware description,
//! the I/O report and any matching rules, and emits one [`ToolCall`] per
//! turn: request analysis (`Analysis?`), run a configuration
//! (`Configuration Runner`), or stop (`End Tuning?`). Its policy is the
//! expert playbook the paper describes humans using — classify the workload,
//! make a directed first move, escalate on success, revert and redirect on
//! regression, stop at diminishing returns — modulated by three quality
//! gates:
//!
//! * **parameter understanding** — each move consults the agent's fact for
//!   that parameter; a hallucinated definition misdirects the move (the
//!   `No Descriptions` ablation);
//! * **workload understanding** — without the Analysis Agent's report the
//!   agent assumes a generic streaming workload and "attempts to increase
//!   readahead and RPC size-related parameters" regardless (the
//!   `No Analysis` ablation);
//! * **model discipline** — the backend's profile perturbs value choices.

use crate::analysis::{AnalysisQuestion, Answer};
use crate::report::{IoReport, WorkloadClass};
use crate::rules::{ContextTag, Guidance, Rule};
use llmsim::{FactQuality, LlmBackend, ParamFact};
use pfs::params::{Bound, TuningConfig};
use pfs::topology::ClusterSpec;
use ragx::ExtractedParam;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Behavioural switches (full system vs ablations).
#[derive(Debug, Clone)]
pub struct TuningOptions {
    /// Maximum configurations to try (the paper caps at 5).
    pub max_attempts: usize,
    /// Whether the Analysis Agent exists (`No Analysis` ablation = false).
    pub use_analysis: bool,
    /// Whether RAG descriptions are available (`No Descriptions` = false;
    /// ranges are kept either way, as in the paper's ablation).
    pub use_descriptions: bool,
    /// Whether the global rule set is consulted.
    pub use_rules: bool,
    /// Maximum follow-up questions to the Analysis Agent.
    pub max_follow_ups: usize,
}

impl Default for TuningOptions {
    fn default() -> Self {
        TuningOptions {
            max_attempts: 5,
            use_analysis: true,
            use_descriptions: true,
            use_rules: true,
            max_follow_ups: 2,
        }
    }
}

/// One environment interaction chosen by the agent.
#[derive(Debug, Clone)]
pub enum ToolCall {
    /// Ask the Analysis Agent a follow-up question.
    Analyze(AnalysisQuestion),
    /// Run the application under a new configuration.
    RunConfig {
        /// Candidate configuration.
        config: TuningConfig,
        /// Per-parameter reasoning, in application order.
        rationale: Vec<(String, String)>,
    },
    /// Conclude tuning.
    EndTuning {
        /// Justification (required by the system prompt, §4.3.2).
        reason: String,
    },
}

/// One completed configuration trial.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Attempt {
    /// Configuration that ran.
    pub config: TuningConfig,
    /// Measured wall time, seconds.
    pub wall_secs: f64,
}

/// The Tuning Agent.
///
/// The agent holds no backend reference: every entry point that consults
/// the model ([`TuningAgent::new`], [`TuningAgent::decide`]) takes the
/// [`LlmBackend`] as an argument. That keeps the agent an ownable state
/// machine, which is what lets `stellar`'s `TuningSession` expose the
/// tuning loop step by step without self-referential borrows.
pub struct TuningAgent {
    options: TuningOptions,
    topo: ClusterSpec,
    params: Vec<ExtractedParam>,
    facts: BTreeMap<String, ParamFact>,
    report: Option<IoReport>,
    answers: Vec<Answer>,
    rules: Vec<Rule>,
    baseline_wall: f64,
    history: Vec<Attempt>,
    asked: Vec<AnalysisQuestion>,
    escalation: u32,
    alternates_tried: u32,
    transcript: Vec<String>,
}

impl TuningAgent {
    /// Create the agent. The backend is consulted once per parameter for
    /// fact recall (`options.use_descriptions` decides whether facts come
    /// from RAG descriptions — truth — or parametric memory — corrupted).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        backend: &mut dyn LlmBackend,
        options: TuningOptions,
        topo: ClusterSpec,
        params: Vec<ExtractedParam>,
        truths: &BTreeMap<String, ParamFact>,
        report: Option<IoReport>,
        rules: Vec<Rule>,
        baseline_wall: f64,
    ) -> Self {
        let mut facts = BTreeMap::new();
        for p in &params {
            if let Some(truth) = truths.get(&p.name) {
                let fact = backend.param_fact(truth, options.use_descriptions);
                facts.insert(p.name.clone(), fact);
            }
        }
        let report = if options.use_analysis { report } else { None };
        TuningAgent {
            options,
            topo,
            params,
            facts,
            report,
            answers: Vec::new(),
            rules,
            baseline_wall,
            history: Vec::new(),
            asked: Vec::new(),
            escalation: 0,
            alternates_tried: 0,
            transcript: Vec::new(),
        }
    }

    /// Completed attempts so far.
    pub fn history(&self) -> &[Attempt] {
        &self.history
    }

    /// The narrated decision log (feeds the Fig. 10 case study).
    pub fn transcript(&self) -> &[String] {
        &self.transcript
    }

    /// Record the outcome of a RunConfig tool call.
    pub fn record_result(&mut self, config: TuningConfig, wall_secs: f64) {
        self.transcript.push(format!(
            "[result] attempt {}: {:.3}s (x{:.2} vs default {:.3}s)",
            self.history.len() + 1,
            wall_secs,
            self.baseline_wall / wall_secs.max(1e-9),
            self.baseline_wall
        ));
        self.history.push(Attempt { config, wall_secs });
    }

    /// Record an Analysis Agent answer.
    pub fn accept_answer(&mut self, answer: Answer) {
        self.transcript
            .push(format!("[analysis] {:?}: {}", answer.question, answer.text));
        self.answers.push(answer);
    }

    /// Best attempt so far (by wall time).
    pub fn best(&self) -> Option<&Attempt> {
        self.history
            .iter()
            .min_by(|a, b| a.wall_secs.total_cmp(&b.wall_secs))
    }

    fn classify(&self) -> WorkloadClass {
        match &self.report {
            Some(r) => r.classify(),
            // No Analysis: the agent assumes a generic large-transfer
            // streaming workload (§5.4's observed failure mode).
            None => WorkloadClass::LargeSequentialShared,
        }
    }

    fn workload_tags(&self) -> Vec<ContextTag> {
        match &self.report {
            Some(r) => ContextTag::tags_for(r),
            None => vec![ContextTag::LargeSequentialWrites, ContextTag::SharedFile],
        }
    }

    fn next_question(&self) -> Option<AnalysisQuestion> {
        if !self.options.use_analysis || self.report.is_none() {
            return None;
        }
        if self.asked.len() >= self.options.max_follow_ups || !self.history.is_empty() {
            return None;
        }
        let wanted: &[AnalysisQuestion] = match self.classify() {
            WorkloadClass::MetadataSmallFiles => &[
                AnalysisQuestion::FileSizeDistribution,
                AnalysisQuestion::MetaToDataRatio,
            ],
            WorkloadClass::MixedMultiPhase => &[
                AnalysisQuestion::AccessSizeProfile,
                AnalysisQuestion::SharedFileAccess,
            ],
            WorkloadClass::RandomSmallShared => &[AnalysisQuestion::Sequentiality],
            WorkloadClass::LargeSequentialShared => &[AnalysisQuestion::Sequentiality],
            WorkloadClass::SmallObjectDumps => &[AnalysisQuestion::AccessSizeProfile],
        };
        wanted
            .iter()
            .copied()
            .find(|q| !self.asked.iter().any(|a| a == q))
    }

    /// Main decision entry: what to do next.
    pub fn decide(&mut self, backend: &mut dyn LlmBackend) -> ToolCall {
        // Minor loop: clarify before the first configuration.
        if let Some(q) = self.next_question() {
            self.asked.push(q);
            backend.charge(
                &self.context_prompt("Decide next action"),
                &format!("Tool: Analysis? — {}", q.prompt()),
            );
            self.transcript
                .push(format!("[tool] Analysis? -> {}", q.prompt()));
            return ToolCall::Analyze(q);
        }

        if self.history.len() >= self.options.max_attempts {
            return self.end(backend, "Configuration budget exhausted.");
        }

        // First configuration.
        if self.history.is_empty() {
            let (config, rationale) = self.propose(backend, 0);
            return self.emit_run(backend, config, rationale);
        }

        // Feedback-driven continuation.
        let best_wall = self.best().expect("non-empty").wall_secs;
        let last = self.history.last().expect("non-empty");
        let last_is_best = (last.wall_secs - best_wall).abs() < 1e-9;
        let improved_vs_default = best_wall < self.baseline_wall * 0.97;
        let gain_small = if self.history.len() >= 2 {
            let prev_best = self.history[..self.history.len() - 1]
                .iter()
                .map(|a| a.wall_secs)
                .fold(f64::INFINITY, f64::min)
                .min(self.baseline_wall);
            best_wall > prev_best * 0.97
        } else {
            false
        };

        let min_attempts = if self.rules.is_empty() { 3 } else { 2 };
        if improved_vs_default && gain_small && self.history.len() >= min_attempts {
            return self.end(
                backend,
                "Performance has improved well beyond the default configuration \
                 and the last change produced no further meaningful gain; \
                 additional tuning is unlikely to elicit further improvement.",
            );
        }

        if last_is_best {
            // Positive result: explore more aggressively in the same direction.
            self.escalation += 1;
            let level = self.escalation;
            let (config, rationale) = self.propose(backend, level);
            if self.config_already_tried(&config) {
                return self.end(
                    backend,
                    "Further escalation reproduces an already-tested configuration; \
                     diminishing returns reached.",
                );
            }
            return self.emit_run(backend, config, rationale);
        }

        // Regression: revert to the best configuration and try an alternate
        // dimension not yet exercised.
        self.alternates_tried += 1;
        if self.alternates_tried > 2 {
            return self.end(
                backend,
                "Alternate directions also failed to improve on the best \
                 configuration found; concluding to avoid wasted runs.",
            );
        }
        let base = self.best().expect("non-empty").config.clone();
        let (config, rationale) = self.propose_alternate(backend, base, self.alternates_tried);
        if self.config_already_tried(&config) {
            return self.end(backend, "No untried alternate configurations remain.");
        }
        self.emit_run(backend, config, rationale)
    }

    fn config_already_tried(&self, config: &TuningConfig) -> bool {
        self.history.iter().any(|a| &a.config == config)
    }

    fn end(&mut self, backend: &mut dyn LlmBackend, reason: &str) -> ToolCall {
        backend.charge(
            &self.context_prompt("Decide next action"),
            &format!("Tool: End Tuning? — {reason}"),
        );
        self.transcript
            .push(format!("[tool] End Tuning? -> {reason}"));
        ToolCall::EndTuning {
            reason: reason.to_string(),
        }
    }

    fn emit_run(
        &mut self,
        backend: &mut dyn LlmBackend,
        config: TuningConfig,
        rationale: Vec<(String, String)>,
    ) -> ToolCall {
        let rendered: String = rationale
            .iter()
            .map(|(p, r)| format!("- {p}: {r}\n"))
            .collect();
        backend.charge(
            &self.context_prompt("Decide next action"),
            &format!("Tool: Configuration Runner —\n{rendered}"),
        );
        self.transcript.push(format!(
            "[tool] Configuration Runner (attempt {}):\n{rendered}",
            self.history.len() + 1
        ));
        ToolCall::RunConfig { config, rationale }
    }

    /// The agent's context window (for token accounting realism).
    fn context_prompt(&self, task: &str) -> String {
        let params: String = self
            .params
            .iter()
            .map(|p| {
                let fact = self.facts.get(&p.name);
                format!(
                    "{}: {} [range {:?}..{:?}, default {}]\n",
                    p.name,
                    fact.map(|f| f.definition.as_str()).unwrap_or(""),
                    p.min,
                    p.max,
                    p.default
                )
            })
            .collect();
        let history: String = self
            .history
            .iter()
            .enumerate()
            .map(|(i, a)| {
                format!(
                    "attempt {}: {:.3}s\n{}\n",
                    i + 1,
                    a.wall_secs,
                    a.config.render()
                )
            })
            .collect();
        let rules: String = self
            .rules
            .iter()
            .map(|r| {
                format!(
                    "RULE {} :: {} :: {}\n",
                    r.parameter, r.rule_description, r.tuning_context
                )
            })
            .collect();
        let answers: String = self
            .answers
            .iter()
            .map(|a| format!("{}\n", a.text))
            .collect();
        format!(
            "SYSTEM: You are STELLAR's Tuning Agent for a parallel file system.\n\
             HARDWARE: {}\n\
             TUNABLE PARAMETERS:\n{params}\n\
             GLOBAL RULE SET:\n{rules}\n\
             I/O REPORT:\n{}\n\
             FOLLOW-UP ANSWERS:\n{answers}\n\
             HISTORY (default: {:.3}s):\n{history}\n\
             TASK: {task}",
            self.topo.describe(),
            self.report
                .as_ref()
                .map(|r| r.render())
                .unwrap_or_else(|| "(no analysis available)".to_string()),
            self.baseline_wall,
        )
    }

    // ------------------------------------------------------------------
    // Expert policy.
    // ------------------------------------------------------------------

    /// Round a byte size to the nearest power of two within bounds.
    fn pow2_bytes(v: f64, lo: u64, hi: u64) -> u64 {
        let mut p = lo;
        while p < hi && (p as f64) < v {
            p <<= 1;
        }
        p.clamp(lo, hi)
    }

    /// Apply one parameter move, filtered through the agent's understanding.
    #[allow(clippy::too_many_arguments)]
    fn apply_move(
        &mut self,
        backend: &mut dyn LlmBackend,
        config: &mut TuningConfig,
        rationale: &mut Vec<(String, String)>,
        name: &str,
        intended: i64,
        reason: &str,
        attempt: usize,
    ) {
        let fact = self.facts.get(name).cloned();
        let mut value = intended;
        let mut note = reason.to_string();
        if let Some(f) = &fact {
            match f.def_quality {
                FactQuality::Wrong => {
                    if matches!(name, "stripe_count" | "stripe_size") {
                        // Famous parameter, confidently misunderstood: the
                        // move is misdirected (the paper's stripe example).
                        value = self.misdirected_value(backend, name, intended, f);
                        note = format!(
                            "(based on a flawed understanding) {}",
                            f.definition.chars().take(90).collect::<String>()
                        );
                    } else {
                        // Niche parameter the agent cannot define: it leaves
                        // it untouched rather than guess — losing exactly
                        // the moves the workload needed.
                        rationale.push((
                            name.to_string(),
                            "cannot establish what this parameter does from                              available knowledge; leaving at default"
                                .to_string(),
                        ));
                        return;
                    }
                }
                FactQuality::Imprecise => {
                    // Loose recall: the direction survives but the magnitude
                    // is a guess, independent of model discipline.
                    let mut rng_like =
                        backend.decision_jitter(&format!("{name}:imprecise:{attempt}"));
                    // Widen to a coarse guess in [1/4, 1/2] of the intent.
                    rng_like = rng_like.clamp(0.8, 1.25);
                    value = ((intended as f64) * 0.35 * rng_like).round() as i64;
                    value = value.max(1);
                    note = format!("{reason} (details recalled loosely)");
                }
                FactQuality::Correct => {
                    if backend.deviates(&format!("{name}:dev:{attempt}")) {
                        let jitter = backend.decision_jitter(&format!("{name}:jit:{attempt}"));
                        value = ((intended as f64) * jitter).round() as i64;
                    }
                }
            }
            // Respect the range the agent believes in (correct when RAG
            // supplied it; §5.4 notes tuning mostly fails without ranges) —
            // unless the documented bound is *dependent*, in which case the
            // static snapshot is stale and the dynamic evaluation below is
            // authoritative (e.g. mdc.max_mod_rpcs_in_flight's cap moves
            // when the agent raises mdc.max_rpcs_in_flight).
            let has_dependent_bound = self
                .params
                .iter()
                .find(|p| p.name == name)
                .map(|p| matches!(p.min, Bound::Expr(_)) || matches!(p.max, Bound::Expr(_)))
                .unwrap_or(false);
            if name != "stripe_count" && !has_dependent_bound {
                value = value.clamp(f.min.min(f.max), f.max.max(f.min));
            }
        }
        // Respect the extracted (possibly dependent) bounds.
        value = self.clamp_extracted(config, name, value);
        if config.set(name, value).is_ok() {
            rationale.push((name.to_string(), format!("{note} -> {value}")));
        }
    }

    /// What a hallucinated definition does to a move (the §5.4 example:
    /// stripe count misread as spreading a directory's files across OSTs).
    fn misdirected_value(
        &mut self,
        backend: &mut dyn LlmBackend,
        name: &str,
        intended: i64,
        fact: &ParamFact,
    ) -> i64 {
        match name {
            "stripe_count" => -1,
            _ => {
                let jitter = backend.decision_jitter(&format!("{name}:wrongdef"));
                let v = (fact.max as f64 * 0.5 * jitter) as i64;
                v.max(1).min(intended.max(fact.max))
            }
        }
    }

    fn clamp_extracted(&self, config: &TuningConfig, name: &str, value: i64) -> i64 {
        let Some(p) = self.params.iter().find(|p| p.name == name) else {
            return value;
        };
        let env = config.env(&self.topo);
        let lo = match &p.min {
            Bound::Const(v) => *v,
            Bound::Expr(e) => pfs::params::Expr::parse(e)
                .ok()
                .and_then(|x| x.eval(&env).ok())
                .map(|v| v.floor() as i64)
                .unwrap_or(i64::MIN),
        };
        let hi = match &p.max {
            Bound::Const(v) => *v,
            Bound::Expr(e) => pfs::params::Expr::parse(e)
                .ok()
                .and_then(|x| x.eval(&env).ok())
                .map(|v| v.floor() as i64)
                .unwrap_or(i64::MAX),
        };
        value.clamp(lo.min(hi), hi.max(lo))
    }

    /// The class playbook at a given escalation level.
    fn propose(
        &mut self,
        backend: &mut dyn LlmBackend,
        level: u32,
    ) -> (TuningConfig, Vec<(String, String)>) {
        let mut config = TuningConfig::lustre_default();
        let mut rationale = Vec::new();
        let class = self.classify();
        let attempt = self.history.len();
        let avg_write = self
            .report
            .as_ref()
            .map(|r| r.avg_write_size)
            .unwrap_or(4.0 * 1024.0 * 1024.0);
        let has_reads = self.report.as_ref().map(|r| r.has_reads()).unwrap_or(true);
        let l = level as i64;

        type Move = (&'static str, i64, String);
        let mut moves: Vec<Move> = Vec::new();
        match class {
            WorkloadClass::LargeSequentialShared => {
                let ss = Self::pow2_bytes(avg_write, 1 << 20, 64 << 20);
                moves.push((
                    "stripe_count",
                    -1,
                    "shared file written by all ranks: stripe across every OST \
                     to aggregate server bandwidth"
                        .into(),
                ));
                moves.push((
                    "stripe_size",
                    (ss << l.min(1)) as i64,
                    format!(
                        "align the stripe to the dominant transfer size \
                         (~{:.0} KiB)",
                        avg_write / 1024.0
                    ),
                ));
                moves.push((
                    "osc.max_pages_per_rpc",
                    1024 << l.min(2),
                    "large streaming transfers amortise per-RPC overhead with \
                     bigger bulk RPCs"
                        .into(),
                ));
                moves.push((
                    "osc.max_rpcs_in_flight",
                    32 << l.min(2),
                    "deepen the data pipeline per OST".into(),
                ));
                moves.push((
                    "osc.max_dirty_mb",
                    256 << l.min(2),
                    "more write-behind headroom keeps the pipeline fed".into(),
                ));
                if has_reads {
                    moves.push((
                        "llite.max_read_ahead_mb",
                        512 << l.min(1),
                        "many concurrent sequential readers need a larger \
                         client-wide readahead budget"
                            .into(),
                    ));
                    moves.push((
                        "llite.max_read_ahead_per_file_mb",
                        256 << l.min(1),
                        "deep per-file windows for streaming reads".into(),
                    ));
                }
            }
            WorkloadClass::RandomSmallShared => {
                moves.push((
                    "stripe_count",
                    -1,
                    "small random I/O to one shared file: spread the object \
                     across all OSTs to multiply IOPS"
                        .into(),
                ));
                moves.push((
                    "osc.max_dirty_mb",
                    512 << l.min(1),
                    "deep dirty buffering lets the writeback layer coalesce \
                     random writes into large sequential RPCs"
                        .into(),
                ));
                moves.push((
                    "osc.max_rpcs_in_flight",
                    64 << l.min(1),
                    "random access is latency-bound: keep many RPCs in flight".into(),
                ));
                moves.push((
                    "osc.max_pages_per_rpc",
                    1024 << l.min(2),
                    "allow coalesced writeback to emit large RPCs".into(),
                ));
                if avg_write <= 16384.0 {
                    moves.push((
                        "osc.short_io_bytes",
                        16384,
                        "requests fit the inline path; skip bulk handshakes".into(),
                    ));
                }
            }
            WorkloadClass::MetadataSmallFiles => {
                moves.push((
                    "stripe_count",
                    1,
                    "small files: one object per file avoids per-OST glimpse \
                     and destroy overhead"
                        .into(),
                ));
                moves.push((
                    "llite.statahead_max",
                    if l == 0 { 4096 } else { 8192 },
                    "directory scans stat entries in creation order; raise the \
                     statahead budget above the directory size so prefetch \
                     covers whole scans"
                        .into(),
                ));
                moves.push((
                    "mdc.max_rpcs_in_flight",
                    64 << l.min(1),
                    "many ranks per client issue metadata ops concurrently".into(),
                ));
                moves.push((
                    "mdc.max_mod_rpcs_in_flight",
                    (64 << l.min(1)) - 1,
                    "parallel create/unlink bursts need a deeper modifying \
                     window"
                        .into(),
                ));
                moves.push((
                    "llite.max_read_ahead_whole_mb",
                    8 << l.min(2),
                    "files are tiny: fetch them whole on first read".into(),
                ));
                moves.push((
                    "osc.short_io_bytes",
                    16384,
                    "file payloads fit inline RPCs".into(),
                ));
            }
            WorkloadClass::MixedMultiPhase => {
                let ss = Self::pow2_bytes(avg_write.max(2e6), 1 << 20, 16 << 20);
                moves.push((
                    "stripe_count",
                    -1,
                    "the bandwidth phases dominate wall time; stripe wide and \
                     accept small-file overhead in the metadata phases"
                        .into(),
                ));
                moves.push((
                    "stripe_size",
                    ss as i64,
                    "align to the large-phase transfer size".into(),
                ));
                moves.push((
                    "osc.max_rpcs_in_flight",
                    64 << l.min(1),
                    "deep pipelines serve both the streaming and the random \
                     phase"
                        .into(),
                ));
                moves.push((
                    "osc.max_dirty_mb",
                    512 << l.min(1),
                    "buffer the random-write phase for coalescing".into(),
                ));
                moves.push((
                    "osc.max_pages_per_rpc",
                    1024 << l.min(2),
                    "bigger bulk RPCs for the streaming phase".into(),
                ));
                moves.push((
                    "llite.max_read_ahead_mb",
                    512,
                    "the read phases stream sequentially".into(),
                ));
                moves.push((
                    "llite.max_read_ahead_per_file_mb",
                    256,
                    "deep per-file windows".into(),
                ));
                moves.push((
                    "llite.statahead_max",
                    8192,
                    "metadata phases scan directories".into(),
                ));
                moves.push((
                    "mdc.max_rpcs_in_flight",
                    64,
                    "metadata phases are concurrent".into(),
                ));
                moves.push((
                    "mdc.max_mod_rpcs_in_flight",
                    63,
                    "create/unlink storms in the metadata phases".into(),
                ));
            }
            WorkloadClass::SmallObjectDumps => {
                moves.push((
                    "osc.max_pages_per_rpc",
                    1024 << l.min(2),
                    "aggregate medium objects into large writeback RPCs".into(),
                ));
                moves.push((
                    "osc.max_dirty_mb",
                    256 << l.min(2),
                    "absorb each dump burst in the write cache".into(),
                ));
                moves.push((
                    "osc.max_rpcs_in_flight",
                    32 << l.min(2),
                    "keep the drain pipeline deep during fsync".into(),
                ));
                moves.push((
                    "stripe_count",
                    1,
                    "group files are already balanced across OSTs; extra \
                     stripes add object overhead"
                        .into(),
                ));
            }
        }

        // Rule-set priming: matched rules override the playbook for their
        // parameter (this is what makes the first guess with rules so strong
        // in Figs. 6-7).
        let tags = self.workload_tags();
        let matched: Vec<Rule> = if self.options.use_rules {
            self.rules
                .iter()
                .filter(|r| r.match_score(&tags) >= 0.6)
                .cloned()
                .collect()
        } else {
            Vec::new()
        };
        for (name, intended, reason) in moves {
            let rule = matched.iter().find(|r| r.parameter == name);
            match rule.and_then(|r| r.guidance()) {
                Some(g) => {
                    let value = self.guidance_value(g, name, avg_write, intended);
                    let mut cfg_value = value;
                    cfg_value = self.clamp_extracted(&config, name, cfg_value);
                    if config.set(name, cfg_value).is_ok() {
                        rationale.push((
                            name.to_string(),
                            format!(
                                "applying accumulated rule: {} -> {cfg_value}",
                                rule.expect("matched").rule_description
                            ),
                        ));
                    }
                }
                None => {
                    self.apply_move(
                        backend,
                        &mut config,
                        &mut rationale,
                        name,
                        intended,
                        &reason,
                        attempt,
                    );
                }
            }
        }
        // Rules may cover parameters outside the playbook.
        for r in &matched {
            if rationale.iter().any(|(p, _)| p == &r.parameter) {
                continue;
            }
            if let Some(g) = r.guidance() {
                let value = self.guidance_value(g, &r.parameter, avg_write, 0);
                let value = self.clamp_extracted(&config, &r.parameter, value);
                if config.set(&r.parameter, value).is_ok() {
                    rationale.push((
                        r.parameter.clone(),
                        format!(
                            "applying accumulated rule: {} -> {value}",
                            r.rule_description
                        ),
                    ));
                }
            }
        }
        (config, rationale)
    }

    fn guidance_value(&self, g: Guidance, name: &str, avg_write: f64, fallback: i64) -> i64 {
        match g {
            Guidance::SetToAllOsts => -1,
            Guidance::SetToOne => 1,
            Guidance::MatchTransferSize => {
                Self::pow2_bytes(avg_write.max(1e6), 1 << 20, 64 << 20) as i64
            }
            Guidance::RaiseToAtLeast(v) => v.max(fallback),
            Guidance::SetTo(v) => v,
            Guidance::Disable => 0,
        }
        .max(match name {
            "stripe_count" => -1,
            _ => 0,
        })
    }

    /// Alternate direction after a regression: revert to the best config and
    /// vary one untried secondary dimension.
    fn propose_alternate(
        &mut self,
        backend: &mut dyn LlmBackend,
        base: TuningConfig,
        alternate: u32,
    ) -> (TuningConfig, Vec<(String, String)>) {
        let mut config = base;
        let mut rationale = Vec::new();
        let class = self.classify();
        let attempt = self.history.len();
        let (name, value, reason): (&str, i64, &str) = match (class, alternate) {
            (WorkloadClass::MetadataSmallFiles, 1) => (
                "llite.max_cached_mb",
                131072,
                "keep the whole working set cached between rounds",
            ),
            (WorkloadClass::MetadataSmallFiles, _) => {
                ("llite.statahead_max", 8192, "push statahead to its maximum")
            }
            (WorkloadClass::RandomSmallShared, 1) => (
                "llite.max_read_ahead_mb",
                0,
                "random reads cannot benefit from readahead; stop wasting \
                 budget on it",
            ),
            (WorkloadClass::RandomSmallShared, _) => (
                "osc.max_dirty_mb",
                1024,
                "push buffering further for coalescing",
            ),
            (_, 1) => (
                "osc.max_rpcs_in_flight",
                128,
                "try an even deeper pipeline as an alternate direction",
            ),
            (_, _) => (
                "osc.max_dirty_mb",
                1024,
                "try deeper write-behind as an alternate direction",
            ),
        };
        self.apply_move(
            backend,
            &mut config,
            &mut rationale,
            name,
            value,
            reason,
            attempt,
        );
        rationale.push((
            "(strategy)".into(),
            "previous change regressed; reverted to the best configuration \
             and varying one dimension"
                .into(),
        ));
        (config, rationale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsim::{ModelProfile, SimLlm};
    use pfs::params::ParamRegistry;
    use ragx::RagExtractor;

    fn setup() -> (Vec<ExtractedParam>, BTreeMap<String, ParamFact>) {
        let ex = RagExtractor::standard();
        let mut backend = SimLlm::new(ModelProfile::gpt_4o(), 1);
        let (params, _) = ex.extract(&mut backend);
        let mut truths = BTreeMap::new();
        for p in &params {
            let t = ragx::truth::truth_fact(&ParamRegistry::standard(), &p.name).unwrap();
            truths.insert(p.name.clone(), t);
        }
        (params, truths)
    }

    fn seq_report() -> IoReport {
        IoReport {
            nprocs: 50,
            avg_write_size: 16e6,
            seq_write_fraction: 0.95,
            consec_write_fraction: 0.95,
            shared_file_count: 1,
            file_count: 1,
            bytes_written: 19 << 30,
            bytes_read: 19 << 30,
            avg_file_bytes: 19e9,
            max_file_bytes: 19 << 30,
            seq_read_fraction: 0.95,
            dominant_module: "MPI-IO".into(),
            ..Default::default()
        }
    }

    fn md_report() -> IoReport {
        IoReport {
            nprocs: 50,
            avg_write_size: 8192.0,
            meta_ratio: 0.7,
            meta_ops: 7000,
            data_ops: 3000,
            avg_file_bytes: 8192.0,
            file_count: 20000,
            stats_per_file: 1.0,
            dominant_module: "POSIX".into(),
            ..Default::default()
        }
    }

    fn agent_for(
        backend: &mut SimLlm,
        report: Option<IoReport>,
        options: TuningOptions,
        rules: Vec<Rule>,
    ) -> TuningAgent {
        let (params, truths) = setup();
        TuningAgent::new(
            backend,
            options,
            ClusterSpec::paper_cluster(),
            params,
            &truths,
            report,
            rules,
            100.0,
        )
    }

    #[test]
    fn first_move_for_large_sequential_stripes_wide() {
        let mut b = SimLlm::new(ModelProfile::claude_37_sonnet(), 1);
        let mut agent = agent_for(&mut b, Some(seq_report()), TuningOptions::default(), vec![]);
        // Skip the follow-up question.
        let mut call = agent.decide(&mut b);
        if let ToolCall::Analyze(q) = call {
            agent.accept_answer(Answer {
                question: q,
                text: "sequential".into(),
                value: 0.95,
            });
            call = agent.decide(&mut b);
        }
        let ToolCall::RunConfig { config, rationale } = call else {
            panic!("expected RunConfig");
        };
        assert_eq!(config.stripe_count, -1);
        assert!(config.osc_max_rpcs_in_flight >= 32);
        assert!(config.osc_max_pages_per_rpc >= 1024);
        assert!(!rationale.is_empty());
    }

    #[test]
    fn first_move_for_metadata_keeps_stripe_one_and_raises_statahead() {
        let mut b = SimLlm::new(ModelProfile::claude_37_sonnet(), 1);
        let mut agent = agent_for(&mut b, Some(md_report()), TuningOptions::default(), vec![]);
        let mut call = agent.decide(&mut b);
        while let ToolCall::Analyze(q) = call {
            agent.accept_answer(Answer {
                question: q,
                text: "mostly small files".into(),
                value: 0.99,
            });
            call = agent.decide(&mut b);
        }
        let ToolCall::RunConfig { config, .. } = call else {
            panic!("expected RunConfig");
        };
        assert_eq!(config.stripe_count, 1);
        assert!(config.llite_statahead_max >= 4096);
        assert!(config.mdc_max_rpcs_in_flight >= 32);
        assert!(config.mdc_max_mod_rpcs_in_flight < config.mdc_max_rpcs_in_flight);
    }

    #[test]
    fn no_analysis_ablation_misreads_metadata_workload() {
        // Without the Analysis Agent the report is withheld and the agent
        // raises readahead/RPC parameters — the paper's observed failure.
        let mut b = SimLlm::new(ModelProfile::claude_37_sonnet(), 1);
        let options = TuningOptions {
            use_analysis: false,
            ..Default::default()
        };
        let mut agent = agent_for(&mut b, Some(md_report()), options, vec![]);
        let ToolCall::RunConfig { config, .. } = agent.decide(&mut b) else {
            panic!("expected RunConfig");
        };
        // Misguided for metadata: wide striping + readahead focus.
        assert_eq!(config.stripe_count, -1);
        assert!(config.llite_max_read_ahead_mb >= 512);
        assert_eq!(config.llite_statahead_max, 32, "statahead untouched");
    }

    #[test]
    fn no_descriptions_ablation_misdirects_stripe_count() {
        // Hallucinated stripe_count definition ("distribute the files more
        // evenly across all OSTs") flips the metadata move to -1.
        let mut b = SimLlm::new(ModelProfile::llama_31_70b(), 3);
        let options = TuningOptions {
            use_descriptions: false,
            max_follow_ups: 0,
            ..Default::default()
        };
        let mut agent = agent_for(&mut b, Some(md_report()), options, vec![]);
        let ToolCall::RunConfig { config, rationale } = agent.decide(&mut b) else {
            panic!("expected RunConfig");
        };
        // llama's parametric memory hallucinates the stripe_count definition
        // (deterministic given the profile seed); the move is misdirected.
        let stripe_rationale = rationale
            .iter()
            .find(|(p, _)| p == "stripe_count")
            .map(|(_, r)| r.clone());
        if config.stripe_count == -1 {
            assert!(
                stripe_rationale.unwrap_or_default().contains("flawed"),
                "misdirection must be visible in the rationale"
            );
        }
    }

    #[test]
    fn escalates_on_improvement_and_stops_on_diminishing_returns() {
        let mut b = SimLlm::new(ModelProfile::claude_37_sonnet(), 1);
        let options = TuningOptions {
            max_follow_ups: 0,
            ..Default::default()
        };
        let mut agent = agent_for(&mut b, Some(seq_report()), options, vec![]);
        // Attempt 1 improves strongly.
        let ToolCall::RunConfig { config, .. } = agent.decide(&mut b) else {
            panic!()
        };
        agent.record_result(config, 25.0);
        // Attempt 2: escalation.
        let ToolCall::RunConfig { config: c2, .. } = agent.decide(&mut b) else {
            panic!("expected escalation run")
        };
        agent.record_result(c2, 24.5); // tiny gain
                                       // Attempt 3 or end: with ≥3 attempts and small gain it may end; give
                                       // it one more cycle if it runs.
        match agent.decide(&mut b) {
            ToolCall::EndTuning { reason } => {
                assert!(reason.contains("further"), "{reason}");
            }
            ToolCall::RunConfig { config: c3, .. } => {
                agent.record_result(c3, 24.4);
                let ToolCall::EndTuning { .. } = agent.decide(&mut b) else {
                    panic!("must end at diminishing returns");
                };
            }
            ToolCall::Analyze(_) => panic!("no analysis after first attempt"),
        }
    }

    #[test]
    fn reverts_and_tries_alternate_on_regression() {
        let mut b = SimLlm::new(ModelProfile::claude_37_sonnet(), 1);
        let options = TuningOptions {
            max_follow_ups: 0,
            ..Default::default()
        };
        let mut agent = agent_for(&mut b, Some(md_report()), options, vec![]);
        let ToolCall::RunConfig { config, .. } = agent.decide(&mut b) else {
            panic!()
        };
        agent.record_result(config.clone(), 60.0); // improved
        let ToolCall::RunConfig { config: c2, .. } = agent.decide(&mut b) else {
            panic!()
        };
        agent.record_result(c2, 80.0); // regression
        let call = agent.decide(&mut b);
        let ToolCall::RunConfig {
            config: c3,
            rationale,
        } = call
        else {
            panic!("expected alternate attempt");
        };
        // Alternate keeps the best attempt's core settings.
        assert_eq!(c3.stripe_count, config.stripe_count);
        assert!(rationale.iter().any(|(p, _)| p == "(strategy)"));
    }

    #[test]
    fn rules_prime_the_first_configuration() {
        let rules = vec![
            Rule::new(
                "stripe_count",
                Guidance::SetToAllOsts,
                &[ContextTag::LargeSequentialWrites, ContextTag::SharedFile],
            ),
            Rule::new(
                "osc.max_rpcs_in_flight",
                Guidance::RaiseToAtLeast(64),
                &[ContextTag::LargeSequentialWrites, ContextTag::SharedFile],
            ),
        ];
        let mut b = SimLlm::new(ModelProfile::claude_37_sonnet(), 1);
        let options = TuningOptions {
            max_follow_ups: 0,
            ..Default::default()
        };
        let mut agent = agent_for(&mut b, Some(seq_report()), options, rules);
        let ToolCall::RunConfig { config, rationale } = agent.decide(&mut b) else {
            panic!()
        };
        assert_eq!(config.stripe_count, -1);
        assert!(config.osc_max_rpcs_in_flight >= 64);
        assert!(rationale
            .iter()
            .any(|(_, r)| r.contains("accumulated rule")));
    }

    #[test]
    fn budget_exhaustion_forces_end() {
        let mut b = SimLlm::new(ModelProfile::claude_37_sonnet(), 1);
        let options = TuningOptions {
            max_attempts: 2,
            max_follow_ups: 0,
            ..Default::default()
        };
        let mut agent = agent_for(&mut b, Some(seq_report()), options, vec![]);
        for wall in [50.0, 40.0] {
            let ToolCall::RunConfig { config, .. } = agent.decide(&mut b) else {
                panic!()
            };
            agent.record_result(config, wall);
        }
        let ToolCall::EndTuning { reason } = agent.decide(&mut b) else {
            panic!("expected end at budget");
        };
        assert!(reason.contains("budget"), "{reason}");
    }

    #[test]
    fn metadata_class_asks_the_case_study_questions() {
        // Fig. 10: file size detail and metadata/data ratio follow-ups.
        let mut b = SimLlm::new(ModelProfile::claude_37_sonnet(), 1);
        let mut agent = agent_for(&mut b, Some(md_report()), TuningOptions::default(), vec![]);
        let ToolCall::Analyze(q1) = agent.decide(&mut b) else {
            panic!("expected first follow-up");
        };
        assert_eq!(q1, AnalysisQuestion::FileSizeDistribution);
        agent.accept_answer(Answer {
            question: q1,
            text: "99% small".into(),
            value: 0.99,
        });
        let ToolCall::Analyze(q2) = agent.decide(&mut b) else {
            panic!("expected second follow-up");
        };
        assert_eq!(q2, AnalysisQuestion::MetaToDataRatio);
    }

    #[test]
    fn dependent_bound_respected_in_proposals() {
        let mut b = SimLlm::new(ModelProfile::claude_37_sonnet(), 1);
        let options = TuningOptions {
            max_follow_ups: 0,
            ..Default::default()
        };
        let mut agent = agent_for(&mut b, Some(seq_report()), options, vec![]);
        let ToolCall::RunConfig { config, .. } = agent.decide(&mut b) else {
            panic!()
        };
        assert!(
            config.llite_max_read_ahead_per_file_mb * 2 <= config.llite_max_read_ahead_mb,
            "{} vs {}",
            config.llite_max_read_ahead_per_file_mb,
            config.llite_max_read_ahead_mb
        );
        assert!(config.mdc_max_mod_rpcs_in_flight < config.mdc_max_rpcs_in_flight);
    }
}
