//! # agents — STELLAR's online agentic core (§4.3–§4.4)
//!
//! Two cooperating agents drive the trial-and-error loop:
//!
//! * the [`analysis::AnalysisAgent`] consumes the Darshan dataframes and
//!   produces an [`report::IoReport`]; it also answers the Tuning Agent's
//!   follow-up questions (the "minor loop");
//! * the [`tuning::TuningAgent`] holds the extracted parameters, the
//!   hardware description, the I/O report and the global rule set, and emits
//!   [`tuning::ToolCall`]s — request more analysis, run a candidate
//!   configuration (with per-parameter rationale), or end tuning.
//!
//! Knowledge fidelity is the load-bearing mechanism: every parameter move
//! consults the agent's *fact* about that parameter. With RAG descriptions
//! the facts are grounded truth; without them the backend's corrupted
//! parametric memory leaks in and moves get misdirected — exactly the
//! failure mode of Fig. 8's `No Descriptions` ablation (stripe count
//! reinterpreted as "distributing a directory's files across OSTs").
//!
//! [`rules`] implements the JSON rule-set format of §4.4.1 and the merge /
//! conflict-resolution protocol of §4.4.2; [`reflect`] distills finished
//! runs into new rules. [`store`] scales the accumulated knowledge: a
//! [`ShardedRuleStore`] shards rules by context-tag signature behind
//! copy-on-write [`Arc`](std::sync::Arc) shards, so concurrent campaign
//! rounds read O(1) [`RuleSnapshot`]s instead of cloning the whole set.
//!
//! # Example
//!
//! Learned rules accumulate in a sharded store; readers take snapshots:
//!
//! ```
//! use agents::{ContextTag, Guidance, Rule, ShardedRuleStore};
//!
//! let mut store = ShardedRuleStore::new();
//! store.merge(vec![Rule::new(
//!     "stripe_count",
//!     Guidance::SetToAllOsts,
//!     &[ContextTag::LargeSequentialWrites, ContextTag::SharedFile],
//! )]);
//!
//! // O(1) view; later merges won't change what this reader sees.
//! let snapshot = store.snapshot();
//! let hits = snapshot.matching(&[
//!     ContextTag::LargeSequentialWrites,
//!     ContextTag::SharedFile,
//! ]);
//! assert_eq!(hits.len(), 1);
//! assert_eq!(hits[0].parameter, "stripe_count");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analysis;
pub mod reflect;
pub mod report;
pub mod rules;
pub mod store;
pub mod tuning;

pub use analysis::{AnalysisAgent, AnalysisQuestion, Answer};
pub use report::{IoReport, WorkloadClass};
pub use rules::{ContextTag, Guidance, Rule, RuleSet};
pub use store::{RuleSnapshot, ShardCensusEntry, ShardSignature, ShardedRuleStore};
pub use tuning::{Attempt, ToolCall, TuningAgent, TuningOptions};
