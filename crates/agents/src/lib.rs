//! # agents — STELLAR's online agentic core (§4.3–§4.4)
//!
//! Two cooperating agents drive the trial-and-error loop:
//!
//! * the [`analysis::AnalysisAgent`] consumes the Darshan dataframes and
//!   produces an [`report::IoReport`]; it also answers the Tuning Agent's
//!   follow-up questions (the "minor loop");
//! * the [`tuning::TuningAgent`] holds the extracted parameters, the
//!   hardware description, the I/O report and the global rule set, and emits
//!   [`tuning::ToolCall`]s — request more analysis, run a candidate
//!   configuration (with per-parameter rationale), or end tuning.
//!
//! Knowledge fidelity is the load-bearing mechanism: every parameter move
//! consults the agent's *fact* about that parameter. With RAG descriptions
//! the facts are grounded truth; without them the backend's corrupted
//! parametric memory leaks in and moves get misdirected — exactly the
//! failure mode of Fig. 8's `No Descriptions` ablation (stripe count
//! reinterpreted as "distributing a directory's files across OSTs").
//!
//! [`rules`] implements the JSON rule-set format of §4.4.1 and the merge /
//! conflict-resolution protocol of §4.4.2; [`reflect`] distills finished
//! runs into new rules.

pub mod analysis;
pub mod reflect;
pub mod report;
pub mod rules;
pub mod tuning;

pub use analysis::{AnalysisAgent, AnalysisQuestion, Answer};
pub use report::{IoReport, WorkloadClass};
pub use rules::{ContextTag, Guidance, Rule, RuleSet};
pub use tuning::{Attempt, ToolCall, TuningAgent, TuningOptions};
