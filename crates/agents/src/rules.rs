//! Tuning rules and the global Rule Set (§4.4).
//!
//! Rules follow the paper's JSON schema exactly — a list of objects with
//! `Parameter`, `Rule Description` and `Tuning Context` keys. Descriptions
//! are *generalized* ("informed by the file size", "the number of available
//! OSTs") rather than literal values, and contexts describe workload
//! characteristics, never application names. To apply rules mechanically,
//! descriptions are written in a controlled grammar that
//! [`Rule::guidance`] parses back; contexts carry recognisable
//! [`ContextTag`] phrases that [`RuleSet::matching`] scores against a new
//! workload's report.

use crate::report::{IoReport, WorkloadClass};
use serde::{Deserialize, Serialize};

/// Workload-characteristic tags used inside tuning contexts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ContextTag {
    /// Large, mostly sequential writes.
    LargeSequentialWrites,
    /// Small, mostly random writes.
    RandomSmallWrites,
    /// A file written concurrently by many ranks.
    SharedFile,
    /// One file per process.
    FilePerProcess,
    /// Very many small files.
    ManySmallFiles,
    /// Metadata operations dominate.
    MetadataIntensive,
    /// Distinct phases with different patterns.
    MixedPhases,
    /// Substantial sequential read phase.
    SequentialReads,
    /// Medium-size object appends / bursty dumps.
    BurstyObjectDumps,
    /// Cluster running with faulted, degraded, or recovering OSTs
    /// (scenario tag — see [`ContextTag::is_scenario`]).
    DegradedTopology,
    /// Co-scheduled jobs contending for the same servers (scenario tag).
    NoisyNeighbor,
}

impl ContextTag {
    /// The phrase used in rendered contexts (and recognised when parsing).
    pub fn phrase(self) -> &'static str {
        match self {
            ContextTag::LargeSequentialWrites => "large sequential writes",
            ContextTag::RandomSmallWrites => "small random writes",
            ContextTag::SharedFile => "a file shared across many processes",
            ContextTag::FilePerProcess => "file-per-process access",
            ContextTag::ManySmallFiles => "very many small files",
            ContextTag::MetadataIntensive => "metadata-intensive operation mix",
            ContextTag::MixedPhases => "multiple phases with distinct I/O patterns",
            ContextTag::SequentialReads => "a substantial sequential read phase",
            ContextTag::BurstyObjectDumps => "bursty medium-size object dumps",
            ContextTag::DegradedTopology => "a degraded cluster with faulted or recovering OSTs",
            ContextTag::NoisyNeighbor => "noisy-neighbor contention from co-scheduled jobs",
        }
    }

    /// All tags (for parsing). Scenario tags come last so the bitmask
    /// positions of the original workload-shape tags never move.
    pub fn all() -> [ContextTag; 11] {
        [
            ContextTag::LargeSequentialWrites,
            ContextTag::RandomSmallWrites,
            ContextTag::SharedFile,
            ContextTag::FilePerProcess,
            ContextTag::ManySmallFiles,
            ContextTag::MetadataIntensive,
            ContextTag::MixedPhases,
            ContextTag::SequentialReads,
            ContextTag::BurstyObjectDumps,
            ContextTag::DegradedTopology,
            ContextTag::NoisyNeighbor,
        ]
    }

    /// Whether this tag describes the *scenario* a rule was learned under
    /// (faults, contention) rather than the workload's own I/O shape.
    ///
    /// Scenario tags gate matching exactly: a rule matches a probe only if
    /// the two agree on every scenario tag. Advice learned on a degraded or
    /// contended cluster must not leak into pristine sessions, and vice
    /// versa — the two regimes shard and federate separately.
    pub fn is_scenario(self) -> bool {
        matches!(
            self,
            ContextTag::DegradedTopology | ContextTag::NoisyNeighbor
        )
    }

    /// Bitmask over all scenario tags.
    pub fn scenario_mask() -> u16 {
        Self::all()
            .into_iter()
            .filter(|t| t.is_scenario())
            .fold(0, |m, t| m | t.bit())
    }

    /// Short machine-readable label for scenario tags (used in the obs
    /// canonical schema); `None` for workload-shape tags.
    pub fn scenario_label(self) -> Option<&'static str> {
        match self {
            ContextTag::DegradedTopology => Some("degraded-topology"),
            ContextTag::NoisyNeighbor => Some("noisy-neighbor"),
            _ => None,
        }
    }

    /// This tag's bit in a context-tag mask (bit positions follow
    /// [`ContextTag::all`] order).
    pub fn bit(self) -> u16 {
        let idx = Self::all()
            .iter()
            .position(|t| *t == self)
            .expect("every tag appears in all()");
        1 << idx
    }

    /// Bitmask over a set of tags (duplicates collapse).
    pub fn mask_of(tags: &[ContextTag]) -> u16 {
        tags.iter().fold(0, |m, t| m | t.bit())
    }

    /// Tags describing a report.
    pub fn tags_for(report: &IoReport) -> Vec<ContextTag> {
        let mut tags = Vec::new();
        match report.classify() {
            WorkloadClass::LargeSequentialShared => {
                tags.push(ContextTag::LargeSequentialWrites);
                tags.push(ContextTag::SharedFile);
            }
            WorkloadClass::RandomSmallShared => {
                tags.push(ContextTag::RandomSmallWrites);
                tags.push(ContextTag::SharedFile);
            }
            WorkloadClass::MetadataSmallFiles => {
                tags.push(ContextTag::ManySmallFiles);
                tags.push(ContextTag::MetadataIntensive);
            }
            WorkloadClass::MixedMultiPhase => {
                tags.push(ContextTag::MixedPhases);
                tags.push(ContextTag::MetadataIntensive);
                tags.push(ContextTag::LargeSequentialWrites);
            }
            WorkloadClass::SmallObjectDumps => {
                tags.push(ContextTag::BurstyObjectDumps);
                tags.push(ContextTag::FilePerProcess);
            }
        }
        if report.has_reads() && report.seq_read_fraction > 0.6 {
            tags.push(ContextTag::SequentialReads);
        }
        tags
    }
}

/// Machine-applicable guidance parsed from a rule description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Guidance {
    /// Stripe across all available OSTs.
    SetToAllOsts,
    /// Keep/set to one.
    SetToOne,
    /// Match the application's dominant transfer size.
    MatchTransferSize,
    /// Set to at least this value.
    RaiseToAtLeast(i64),
    /// Set to exactly this value.
    SetTo(i64),
    /// Disable (set to zero).
    Disable,
}

impl Guidance {
    /// Render in the controlled grammar used by rule descriptions.
    pub fn render(self, parameter: &str) -> String {
        match self {
            Guidance::SetToAllOsts => format!(
                "Set {parameter} to stripe across all available OSTs (-1) so \
                 aggregate server bandwidth serves the shared data."
            ),
            Guidance::SetToOne => format!(
                "Keep {parameter} at 1; additional stripes only add per-OST \
                 object overhead for this access pattern."
            ),
            Guidance::MatchTransferSize => format!(
                "Choose {parameter} informed by the application's dominant \
                 transfer size rather than a fixed value; align it to the \
                 transfer size or a small multiple of it."
            ),
            Guidance::RaiseToAtLeast(v) => {
                format!("Raise {parameter} to at least {v} for this workload shape.")
            }
            Guidance::SetTo(v) => format!("Set {parameter} to {v}."),
            Guidance::Disable => format!(
                "Disable {parameter} (set it to 0); it only wastes resources \
                 under this pattern."
            ),
        }
    }

    /// Parse back from a rendered description.
    pub fn parse(description: &str) -> Option<Guidance> {
        if description.contains("all available OSTs") {
            Some(Guidance::SetToAllOsts)
        } else if description.contains("at 1;") {
            Some(Guidance::SetToOne)
        } else if description.contains("dominant transfer size") {
            Some(Guidance::MatchTransferSize)
        } else if let Some(rest) = description.split("to at least ").nth(1) {
            let num: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            num.parse().ok().map(Guidance::RaiseToAtLeast)
        } else if description.contains("Disable") {
            Some(Guidance::Disable)
        } else if let Some(rest) = description.split(" to ").nth(1) {
            let num: String = rest
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '-')
                .collect();
            num.parse().ok().map(Guidance::SetTo)
        } else {
            None
        }
    }

    /// Whether two guidances point in opposite directions (the hard-conflict
    /// case of §4.4.2 that removes both rules).
    pub fn conflicts_with(self, other: Guidance) -> bool {
        use Guidance::*;
        matches!(
            (self, other),
            (SetToAllOsts, SetToOne)
                | (SetToOne, SetToAllOsts)
                | (Disable, RaiseToAtLeast(_))
                | (RaiseToAtLeast(_), Disable)
        )
    }
}

/// One tuning rule, serialised with the paper's JSON keys.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// Parameter name.
    #[serde(rename = "Parameter")]
    pub parameter: String,
    /// Generalized recommendation (controlled grammar).
    #[serde(rename = "Rule Description")]
    pub rule_description: String,
    /// I/O behaviour context in which the rule was learned.
    #[serde(rename = "Tuning Context")]
    pub tuning_context: String,
}

impl Rule {
    /// Build a rule from structured pieces.
    pub fn new(parameter: &str, guidance: Guidance, tags: &[ContextTag]) -> Self {
        let ctx = tags
            .iter()
            .map(|t| t.phrase())
            .collect::<Vec<_>>()
            .join("; ");
        Rule {
            parameter: parameter.to_string(),
            rule_description: guidance.render(parameter),
            tuning_context: format!("Workload exhibits {ctx}."),
        }
    }

    /// Parse the guidance back from the description.
    pub fn guidance(&self) -> Option<Guidance> {
        Guidance::parse(&self.rule_description)
    }

    /// Parse the context tags back from the context text.
    pub fn tags(&self) -> Vec<ContextTag> {
        ContextTag::all()
            .into_iter()
            .filter(|t| self.tuning_context.contains(t.phrase()))
            .collect()
    }

    /// Context-match score against a workload's tags: |intersection| /
    /// |rule tags|.
    ///
    /// Scenario tags ([`ContextTag::is_scenario`]) gate the score: if the
    /// rule and the probe disagree on *any* scenario tag — either side has
    /// one the other lacks — the score is 0.0 regardless of shape overlap.
    pub fn match_score(&self, workload_tags: &[ContextTag]) -> f64 {
        let mine = self.tags();
        if mine.is_empty() {
            return 0.0;
        }
        let disagree = (ContextTag::mask_of(&mine) ^ ContextTag::mask_of(workload_tags))
            & ContextTag::scenario_mask();
        if disagree != 0 {
            return 0.0;
        }
        let hit = mine.iter().filter(|t| workload_tags.contains(t)).count();
        hit as f64 / mine.len() as f64
    }
}

/// The global Rule Set.
///
/// ```
/// use agents::{ContextTag, Guidance, Rule, RuleSet};
///
/// let mut rules = RuleSet::new();
/// rules.merge(vec![Rule::new(
///     "stripe_count",
///     Guidance::SetToAllOsts,
///     &[ContextTag::LargeSequentialWrites, ContextTag::SharedFile],
/// )]);
/// // Serialises with the paper's JSON keys and round-trips.
/// let json = rules.to_json();
/// assert!(json.contains("\"Rule Description\""));
/// assert_eq!(RuleSet::from_json(&json).unwrap(), rules);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RuleSet {
    /// Rules, in accumulation order.
    pub rules: Vec<Rule>,
}

impl RuleSet {
    /// Empty rule set (first STELLAR run on a system).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Serialize in the paper's JSON structure.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.rules).expect("rules serialise")
    }

    /// Parse from the JSON structure.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        Ok(RuleSet {
            rules: serde_json::from_str(json)?,
        })
    }

    /// Rules matching a workload's tags with score >= 0.6, best first.
    pub fn matching(&self, workload_tags: &[ContextTag]) -> Vec<&Rule> {
        let mut scored: Vec<(f64, &Rule)> = self
            .rules
            .iter()
            .map(|r| (r.match_score(workload_tags), r))
            .filter(|(s, _)| *s >= 0.6)
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        scored.into_iter().map(|(_, r)| r).collect()
    }

    /// Merge newly learned rules (§4.4.2): direct contradictions on the same
    /// (parameter, context) remove both; near-duplicates collapse; slight
    /// variations are kept as alternatives.
    pub fn merge(&mut self, new_rules: Vec<Rule>) {
        for new in new_rules {
            let new_tags = new.tags();
            let new_guidance = new.guidance();
            let mut drop_new = false;
            let mut remove_existing: Vec<usize> = Vec::new();
            for (i, old) in self.rules.iter().enumerate() {
                if old.parameter != new.parameter {
                    continue;
                }
                let same_context = {
                    let old_tags = old.tags();
                    !old_tags.is_empty()
                        && old_tags.len() == new_tags.len()
                        && old_tags.iter().all(|t| new_tags.contains(t))
                };
                if !same_context {
                    continue;
                }
                match (old.guidance(), new_guidance) {
                    (Some(a), Some(b)) if a == b => {
                        drop_new = true; // exact duplicate
                    }
                    (Some(a), Some(b)) if a.conflicts_with(b) => {
                        // Hard conflict: cannot determine which is correct —
                        // remove both (the paper's rule).
                        remove_existing.push(i);
                        drop_new = true;
                    }
                    // Slight variation: keep both as alternatives.
                    _ => {}
                }
            }
            for i in remove_existing.into_iter().rev() {
                self.rules.remove(i);
            }
            if !drop_new {
                self.rules.push(new);
            }
        }
    }

    /// Drop an alternative that produced a negative outcome when tried
    /// (§4.4.2's outcome-based pruning).
    pub fn prune_negative(&mut self, parameter: &str, guidance: Guidance, tags: &[ContextTag]) {
        self.rules.retain(|r| {
            !(r.parameter == parameter
                && r.guidance() == Some(guidance)
                && r.match_score(tags) >= 0.99)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_tags() -> Vec<ContextTag> {
        vec![ContextTag::LargeSequentialWrites, ContextTag::SharedFile]
    }

    fn md_tags() -> Vec<ContextTag> {
        vec![ContextTag::ManySmallFiles, ContextTag::MetadataIntensive]
    }

    #[test]
    fn guidance_roundtrips_through_description() {
        for g in [
            Guidance::SetToAllOsts,
            Guidance::SetToOne,
            Guidance::MatchTransferSize,
            Guidance::RaiseToAtLeast(64),
            Guidance::SetTo(512),
            Guidance::Disable,
        ] {
            let text = g.render("osc.max_rpcs_in_flight");
            assert_eq!(Guidance::parse(&text), Some(g), "{text}");
        }
    }

    #[test]
    fn rule_tags_roundtrip() {
        let r = Rule::new("stripe_count", Guidance::SetToAllOsts, &seq_tags());
        assert_eq!(r.tags(), seq_tags());
        assert!(!r.tuning_context.contains("IOR"), "no app names in rules");
    }

    #[test]
    fn match_score_partial_overlap() {
        let r = Rule::new("stripe_count", Guidance::SetToAllOsts, &seq_tags());
        assert_eq!(r.match_score(&seq_tags()), 1.0);
        assert_eq!(r.match_score(&[ContextTag::LargeSequentialWrites]), 0.5);
        assert_eq!(r.match_score(&md_tags()), 0.0);
    }

    #[test]
    fn scenario_tags_gate_matching_exactly() {
        // A rule learned under faults must not match a pristine probe...
        let faulted = Rule::new(
            "stripe_count",
            Guidance::SetToAllOsts,
            &[
                ContextTag::LargeSequentialWrites,
                ContextTag::SharedFile,
                ContextTag::DegradedTopology,
            ],
        );
        assert_eq!(faulted.match_score(&seq_tags()), 0.0);
        // ...and a pristine rule must not match a faulted probe.
        let pristine = Rule::new("stripe_count", Guidance::SetToAllOsts, &seq_tags());
        let mut faulted_probe = seq_tags();
        faulted_probe.push(ContextTag::DegradedTopology);
        assert_eq!(pristine.match_score(&faulted_probe), 0.0);
        // Agreeing scenario subsets score normally.
        assert_eq!(faulted.match_score(&faulted_probe), 1.0);
        assert_eq!(pristine.match_score(&seq_tags()), 1.0);
        // Distinct scenarios never cross-match either.
        let mut noisy_probe = seq_tags();
        noisy_probe.push(ContextTag::NoisyNeighbor);
        assert_eq!(faulted.match_score(&noisy_probe), 0.0);
    }

    #[test]
    fn scenario_helpers_classify_tags() {
        assert!(ContextTag::DegradedTopology.is_scenario());
        assert!(ContextTag::NoisyNeighbor.is_scenario());
        assert!(!ContextTag::SharedFile.is_scenario());
        assert_eq!(
            ContextTag::scenario_mask(),
            ContextTag::DegradedTopology.bit() | ContextTag::NoisyNeighbor.bit()
        );
        assert_eq!(
            ContextTag::DegradedTopology.scenario_label(),
            Some("degraded-topology")
        );
        assert_eq!(
            ContextTag::NoisyNeighbor.scenario_label(),
            Some("noisy-neighbor")
        );
        assert_eq!(ContextTag::SharedFile.scenario_label(), None);
    }

    #[test]
    fn scenario_phrases_are_not_substrings_of_each_other() {
        // tags() parses by substring containment; no phrase may contain
        // another or parsing would invent tags.
        let all = ContextTag::all();
        for a in all {
            for b in all {
                if a != b {
                    assert!(!a.phrase().contains(b.phrase()), "{:?} contains {:?}", a, b);
                }
            }
        }
    }

    #[test]
    fn json_uses_paper_keys() {
        let mut rs = RuleSet::new();
        rs.merge(vec![Rule::new(
            "stripe_size",
            Guidance::MatchTransferSize,
            &seq_tags(),
        )]);
        let json = rs.to_json();
        assert!(json.contains("\"Parameter\""));
        assert!(json.contains("\"Rule Description\""));
        assert!(json.contains("\"Tuning Context\""));
        let back = RuleSet::from_json(&json).unwrap();
        assert_eq!(back, rs);
    }

    #[test]
    fn merge_dedups_exact_duplicates() {
        let mut rs = RuleSet::new();
        let r = Rule::new("stripe_count", Guidance::SetToAllOsts, &seq_tags());
        rs.merge(vec![r.clone()]);
        rs.merge(vec![r]);
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn merge_removes_direct_contradictions() {
        let mut rs = RuleSet::new();
        rs.merge(vec![Rule::new(
            "stripe_count",
            Guidance::SetToAllOsts,
            &seq_tags(),
        )]);
        rs.merge(vec![Rule::new(
            "stripe_count",
            Guidance::SetToOne,
            &seq_tags(),
        )]);
        // Opposite guidance, same parameter + context: both removed.
        assert!(rs.is_empty(), "{rs:?}");
    }

    #[test]
    fn merge_keeps_alternatives() {
        let mut rs = RuleSet::new();
        rs.merge(vec![Rule::new(
            "osc.max_rpcs_in_flight",
            Guidance::RaiseToAtLeast(32),
            &seq_tags(),
        )]);
        rs.merge(vec![Rule::new(
            "osc.max_rpcs_in_flight",
            Guidance::RaiseToAtLeast(64),
            &seq_tags(),
        )]);
        assert_eq!(
            rs.len(),
            2,
            "slightly different guidance kept as alternatives"
        );
    }

    #[test]
    fn merge_keeps_same_param_different_context() {
        let mut rs = RuleSet::new();
        rs.merge(vec![Rule::new(
            "stripe_count",
            Guidance::SetToAllOsts,
            &seq_tags(),
        )]);
        rs.merge(vec![Rule::new(
            "stripe_count",
            Guidance::SetToOne,
            &md_tags(),
        )]);
        assert_eq!(rs.len(), 2, "different contexts never conflict");
    }

    #[test]
    fn prune_negative_drops_alternative() {
        let mut rs = RuleSet::new();
        rs.merge(vec![
            Rule::new(
                "osc.max_dirty_mb",
                Guidance::RaiseToAtLeast(256),
                &seq_tags(),
            ),
            Rule::new(
                "osc.max_dirty_mb",
                Guidance::RaiseToAtLeast(1024),
                &seq_tags(),
            ),
        ]);
        assert_eq!(rs.len(), 2);
        rs.prune_negative(
            "osc.max_dirty_mb",
            Guidance::RaiseToAtLeast(1024),
            &seq_tags(),
        );
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rules[0].guidance(), Some(Guidance::RaiseToAtLeast(256)));
    }

    #[test]
    fn matching_orders_by_score() {
        let mut rs = RuleSet::new();
        rs.merge(vec![
            Rule::new("a", Guidance::SetTo(1), &[ContextTag::SharedFile]),
            Rule::new("b", Guidance::SetTo(2), &seq_tags()),
            Rule::new("c", Guidance::SetTo(3), &md_tags()),
        ]);
        let hits = rs.matching(&seq_tags());
        assert_eq!(hits.len(), 2);
        // b (score 1.0 on both tags) and a (score 1.0 on its single tag).
        assert!(hits.iter().any(|r| r.parameter == "a"));
        assert!(hits.iter().any(|r| r.parameter == "b"));
        assert!(!hits.iter().any(|r| r.parameter == "c"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_tags() -> impl Strategy<Value = Vec<ContextTag>> {
        proptest::sample::subsequence(ContextTag::all().to_vec(), 1..4)
    }

    fn arb_guidance() -> impl Strategy<Value = Guidance> {
        prop_oneof![
            Just(Guidance::SetToAllOsts),
            Just(Guidance::SetToOne),
            Just(Guidance::MatchTransferSize),
            (1i64..100_000).prop_map(Guidance::RaiseToAtLeast),
            (1i64..100_000).prop_map(Guidance::SetTo),
            Just(Guidance::Disable),
        ]
    }

    proptest! {
        /// Every machine-generated rule parses back to its own guidance and
        /// tags, and survives the paper's JSON schema round trip.
        #[test]
        fn rules_are_self_describing(g in arb_guidance(), tags in arb_tags()) {
            let r = Rule::new("osc.max_dirty_mb", g, &tags);
            prop_assert_eq!(r.guidance(), Some(g));
            prop_assert_eq!(r.tags(), tags.clone());
            let json = serde_json::to_string(&r).unwrap();
            let back: Rule = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(back, r);
        }

        /// Merging is idempotent: merging the same batch twice never grows
        /// the set beyond the first merge.
        #[test]
        fn merge_idempotent(gs in proptest::collection::vec((arb_guidance(), arb_tags()), 1..8)) {
            let rules: Vec<Rule> = gs
                .iter()
                .map(|(g, tags)| Rule::new("stripe_count", *g, tags))
                .collect();
            let mut a = RuleSet::new();
            a.merge(rules.clone());
            let after_first = a.len();
            a.merge(rules);
            // Contradictions can shrink the set further, never grow it.
            prop_assert!(a.len() <= after_first);
        }

        /// match_score is always within [0, 1].
        #[test]
        fn match_score_bounded(g in arb_guidance(), tags in arb_tags(), probe in arb_tags()) {
            let r = Rule::new("x", g, &tags);
            let s = r.match_score(&probe);
            prop_assert!((0.0..=1.0).contains(&s));
        }

        /// Scenario disagreement always zeroes the score; agreement leaves
        /// the score identical to the pure shape-overlap score.
        #[test]
        fn scenario_gating_is_exact(g in arb_guidance(), tags in arb_tags(), probe in arb_tags()) {
            let r = Rule::new("x", g, &tags);
            let s = r.match_score(&probe);
            let scen = ContextTag::scenario_mask();
            let disagree =
                (ContextTag::mask_of(&tags) ^ ContextTag::mask_of(&probe)) & scen != 0;
            if disagree {
                prop_assert_eq!(s, 0.0);
            } else {
                let hit = tags.iter().filter(|t| probe.contains(t)).count();
                prop_assert_eq!(s, hit as f64 / tags.len() as f64);
            }
        }
    }
}
