//! The Analysis Agent (§4.3.1): a code-executing agent operating on the
//! Darshan dataframes.
//!
//! In the paper this is an OpenInterpreter-driven LLM writing pandas code;
//! here the "generated code" is a fixed library of table programs the agent
//! executes over [`darshan::Table`]s — the same queries an LLM writes for
//! this task (group-bys, sums, ratios, size histograms). The agent has two
//! entry points matching its two roles: [`AnalysisAgent::initial_report`]
//! and [`AnalysisAgent::answer`] for the Tuning Agent's follow-ups.

use crate::report::IoReport;
use darshan::counters::{Counter, FCounter, COUNTERS};
use darshan::Table;
use llmsim::LlmBackend;
use serde::{Deserialize, Serialize};

/// Follow-up questions the Tuning Agent may pose (the "minor loop").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnalysisQuestion {
    /// Distribution of file sizes (small-file dominance).
    FileSizeDistribution,
    /// Ratio of metadata operations to data operations.
    MetaToDataRatio,
    /// How many files are accessed by multiple ranks.
    SharedFileAccess,
    /// Histogram of access sizes.
    AccessSizeProfile,
    /// Are accesses sequential or random?
    Sequentiality,
    /// Per-rank imbalance on shared files.
    RankImbalance,
}

impl AnalysisQuestion {
    /// The prompt text the Tuning Agent sends.
    pub fn prompt(&self) -> &'static str {
        match self {
            AnalysisQuestion::FileSizeDistribution => {
                "Provide more detailed file size information: how large are \
                 the files the application touches, and what fraction are \
                 small?"
            }
            AnalysisQuestion::MetaToDataRatio => {
                "What is the ratio of metadata operations to data operations?"
            }
            AnalysisQuestion::SharedFileAccess => {
                "Are files shared between ranks or private per process?"
            }
            AnalysisQuestion::AccessSizeProfile => {
                "Summarize the distribution of read and write request sizes."
            }
            AnalysisQuestion::Sequentiality => {
                "Are the accesses sequential or random within files?"
            }
            AnalysisQuestion::RankImbalance => "Is I/O time balanced across ranks on shared files?",
        }
    }
}

/// A follow-up answer: prose plus the headline number.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Answer {
    /// The question answered.
    pub question: AnalysisQuestion,
    /// Prose summary (goes into the Tuning Agent's context).
    pub text: String,
    /// Headline value (ratio/fraction/bytes, question-dependent).
    pub value: f64,
}

/// The Analysis Agent.
pub struct AnalysisAgent<'b> {
    backend: &'b mut dyn LlmBackend,
}

/// Maximum dataframe rows rendered into the agent's context. The paper's
/// Analysis Agent works over the full dataframes (via generated code), which
/// is why it dominates input-token volume (§5.7: ~400k tokens per run); the
/// digest reproduces that cost structure while keeping prompts bounded.
const DIGEST_ROW_CAP: usize = 1500;

/// Render the session context the agent carries: header, column glossary,
/// and a row digest of every dataframe. Stable across calls so the prompt
/// cache resolves it after the first turn.
pub fn tables_digest(tables: &[Table]) -> String {
    let mut s = String::with_capacity(1 << 16);
    s.push_str("COLUMN DESCRIPTIONS:\n");
    for (k, v) in darshan::column_descriptions() {
        s.push_str(&format!("{k}: {v}\n"));
    }
    for t in tables {
        s.push_str(&format!("\nDATAFRAME {} ({} rows):\n", t.name, t.len()));
        s.push_str(&t.columns.join(","));
        s.push('\n');
        for row in t.rows.iter().take(DIGEST_ROW_CAP) {
            let line: Vec<String> = row.iter().map(|v| format!("{v:.0}")).collect();
            s.push_str(&line.join(","));
            s.push('\n');
        }
        if t.len() > DIGEST_ROW_CAP {
            s.push_str(&format!(
                "... ({} rows truncated)\n",
                t.len() - DIGEST_ROW_CAP
            ));
        }
    }
    s
}

impl<'b> AnalysisAgent<'b> {
    /// Create an agent over an LLM backend (GPT-4o in the paper).
    pub fn new(backend: &'b mut dyn LlmBackend) -> Self {
        AnalysisAgent { backend }
    }

    /// Produce the initial I/O report from the log header and tables.
    pub fn initial_report(&mut self, header: &str, tables: &[Table]) -> IoReport {
        let report = build_report(header, tables);
        // Header and task come *after* the digest so follow-up calls share
        // the long digest prefix (prompt-cache friendly, as in §5.7).
        let prompt = format!(
            "You are the Analysis Agent operating on loaded pandas dataframes.\n{}\n\
             DARSHAN HEADER:\n{header}\n\
             Task: summarize the application's I/O behavior, identify the files \
             accessed, and highlight anything useful for tuning the parallel \
             file system parameters.",
            tables_digest(tables)
        );
        let response = report.render();
        self.backend.charge(&prompt, &response);
        report
    }

    /// Answer a follow-up question from the Tuning Agent. The session keeps
    /// the dataframe digest in context (prefix-cached after the first call).
    pub fn answer(&mut self, q: AnalysisQuestion, tables: &[Table]) -> Answer {
        let ans = compute_answer(q, tables);
        let prompt = format!(
            "You are the Analysis Agent operating on loaded pandas dataframes.\n{}\n\
             Follow-up question: {}",
            tables_digest(tables),
            q.prompt()
        );
        self.backend.charge(&prompt, &ans.text);
        ans
    }
}

fn sum_all(tables: &[Table], col: &str) -> f64 {
    tables.iter().map(|t| t.sum(col)).sum()
}

/// Build the I/O report with plain table programs.
pub fn build_report(header: &str, tables: &[Table]) -> IoReport {
    let mut r = IoReport::default();
    // Header lines: "# exe: X", "# nprocs: N", "# run time: T s", "# files: F"
    for line in header.lines() {
        if let Some(v) = line.strip_prefix("# nprocs: ") {
            r.nprocs = v.trim().parse().unwrap_or(0);
        } else if let Some(v) = line.strip_prefix("# run time: ") {
            r.runtime_secs = v.trim_end_matches(" s").trim().parse().unwrap_or(0.0);
        }
    }

    r.bytes_written = sum_all(tables, Counter::BytesWritten.name()) as u64;
    r.bytes_read = sum_all(tables, Counter::BytesRead.name()) as u64;
    let writes = sum_all(tables, Counter::Writes.name());
    let reads = sum_all(tables, Counter::Reads.name());
    r.data_ops = (writes + reads) as u64;
    let opens = sum_all(tables, Counter::Opens.name());
    let stats = sum_all(tables, Counter::Stats.name());
    let unlinks = sum_all(tables, Counter::Unlinks.name());
    let fsyncs = sum_all(tables, Counter::Fsyncs.name());
    r.meta_ops = (opens + stats + unlinks + fsyncs) as u64;
    r.unlinks = unlinks as u64;
    r.meta_ratio = if r.meta_ops + r.data_ops > 0 {
        r.meta_ops as f64 / (r.meta_ops + r.data_ops) as f64
    } else {
        0.0
    };
    r.avg_write_size = if writes > 0.0 {
        r.bytes_written as f64 / writes
    } else {
        0.0
    };
    r.avg_read_size = if reads > 0.0 {
        r.bytes_read as f64 / reads
    } else {
        0.0
    };

    // Dominant module by bytes moved.
    r.dominant_module = tables
        .iter()
        .max_by(|a, b| {
            let ab = a.sum(Counter::BytesWritten.name()) + a.sum(Counter::BytesRead.name());
            let bb = b.sum(Counter::BytesWritten.name()) + b.sum(Counter::BytesRead.name());
            ab.total_cmp(&bb)
        })
        .map(|t| t.name.clone())
        .unwrap_or_default();

    // Per-file statistics via group-by on FILE_ID.
    let mut file_sizes: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
    let mut file_ranks: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for t in tables {
        let (Some(fi), Some(ri), Some(mwi), Some(mri)) = (
            t.col("FILE_ID"),
            t.col("RANK"),
            t.col(Counter::MaxByteWritten.name()),
            t.col(Counter::MaxByteRead.name()),
        ) else {
            continue;
        };
        for row in &t.rows {
            let f = row[fi] as u64;
            let sz = row[mwi].max(row[mri]);
            let e = file_sizes.entry(f).or_default();
            *e = e.max(sz);
            *file_ranks.entry(f).or_default() += 1;
            let _ = ri;
        }
    }
    r.file_count = file_sizes.len() as u64;
    r.shared_file_count = file_ranks.values().filter(|&&n| n > 1).count() as u64;
    r.avg_file_bytes = if r.file_count > 0 {
        file_sizes.values().sum::<f64>() / r.file_count as f64
    } else {
        0.0
    };
    r.max_file_bytes = file_sizes.values().fold(0.0f64, |a, &b| a.max(b)) as u64;
    r.files_per_rank = if r.nprocs > 0 {
        r.file_count as f64 / r.nprocs as f64
    } else {
        0.0
    };
    r.stats_per_file = if r.file_count > 0 {
        stats / r.file_count as f64
    } else {
        0.0
    };

    // A record's first write/read has no predecessor and can never count as
    // sequential; exclude those from the denominator.
    let seq_writes = sum_all(tables, Counter::SeqWrites.name());
    let seq_reads = sum_all(tables, Counter::SeqReads.name());
    let mut writing_records = 0.0;
    let mut reading_records = 0.0;
    for t in tables {
        let (Some(wi), Some(ri)) = (t.col(Counter::Writes.name()), t.col(Counter::Reads.name()))
        else {
            continue;
        };
        for row in &t.rows {
            if row[wi] > 0.0 {
                writing_records += 1.0;
            }
            if row[ri] > 0.0 {
                reading_records += 1.0;
            }
        }
    }
    r.seq_write_fraction = if writes - writing_records > 0.0 {
        (seq_writes / (writes - writing_records)).min(1.0)
    } else {
        1.0
    };
    r.seq_read_fraction = if reads - reading_records > 0.0 {
        (seq_reads / (reads - reading_records)).min(1.0)
    } else {
        1.0
    };
    let consec_writes = sum_all(tables, Counter::ConsecWrites.name());
    let consec_reads = sum_all(tables, Counter::ConsecReads.name());
    r.consec_write_fraction = if writes - writing_records > 0.0 {
        (consec_writes / (writes - writing_records)).min(1.0)
    } else {
        1.0
    };
    r.consec_read_fraction = if reads - reading_records > 0.0 {
        (consec_reads / (reads - reading_records)).min(1.0)
    } else {
        1.0
    };
    let switches = sum_all(tables, Counter::RwSwitches.name());
    r.rw_switches_per_file = if r.file_count > 0 {
        switches / r.file_count as f64
    } else {
        0.0
    };
    r.meta_time_secs = sum_all(tables, FCounter::MetaTime.name());
    r.data_time_secs =
        sum_all(tables, FCounter::ReadTime.name()) + sum_all(tables, FCounter::WriteTime.name());

    // Mean shared-file variance of per-rank time.
    let var_col = FCounter::VarianceRankTime.name();
    let mut vsum = 0.0;
    let mut vcount = 0u64;
    for t in tables {
        if let Some(vals) = t.column(var_col) {
            for v in vals {
                if v > 0.0 {
                    vsum += v;
                    vcount += 1;
                }
            }
        }
    }
    r.rank_time_variance = if vcount > 0 {
        vsum / vcount as f64
    } else {
        0.0
    };
    r
}

fn compute_answer(q: AnalysisQuestion, tables: &[Table]) -> Answer {
    match q {
        AnalysisQuestion::FileSizeDistribution => {
            let r = build_report("", tables);
            let small_cut = 1 << 20;
            // Count files below 1 MiB via MAX_BYTE columns per record.
            let mut small = 0u64;
            let mut total = 0u64;
            let mut seen = std::collections::BTreeSet::new();
            for t in tables {
                let (Some(fi), Some(mwi)) =
                    (t.col("FILE_ID"), t.col(Counter::MaxByteWritten.name()))
                else {
                    continue;
                };
                for row in &t.rows {
                    let f = row[fi] as u64;
                    if seen.insert(f) {
                        total += 1;
                        if (row[mwi] as u64) < small_cut {
                            small += 1;
                        }
                    }
                }
            }
            let frac = if total > 0 {
                small as f64 / total as f64
            } else {
                0.0
            };
            Answer {
                question: q,
                text: format!(
                    "{total} distinct files; {small} ({:.0}%) are smaller than 1 MiB. \
                     Mean file size {:.1} KiB, largest {:.1} MiB.",
                    frac * 100.0,
                    r.avg_file_bytes / 1024.0,
                    r.max_file_bytes as f64 / (1 << 20) as f64
                ),
                value: frac,
            }
        }
        AnalysisQuestion::MetaToDataRatio => {
            let r = build_report("", tables);
            Answer {
                question: q,
                text: format!(
                    "{} metadata operations against {} data operations: \
                     metadata ratio {:.2}. Metadata time {:.2}s vs data time {:.2}s.",
                    r.meta_ops, r.data_ops, r.meta_ratio, r.meta_time_secs, r.data_time_secs
                ),
                value: r.meta_ratio,
            }
        }
        AnalysisQuestion::SharedFileAccess => {
            let r = build_report("", tables);
            let frac = if r.file_count > 0 {
                r.shared_file_count as f64 / r.file_count as f64
            } else {
                0.0
            };
            Answer {
                question: q,
                text: format!(
                    "{} of {} files are accessed by multiple ranks ({:.0}%).",
                    r.shared_file_count,
                    r.file_count,
                    frac * 100.0
                ),
                value: frac,
            }
        }
        AnalysisQuestion::AccessSizeProfile => {
            // Modal write bucket across the size histogram columns.
            let mut best = ("", 0.0f64);
            for c in COUNTERS {
                let n = c.name();
                if n.starts_with("SIZE_WRITE") {
                    let s = sum_all(tables, n);
                    if s > best.1 {
                        best = (n, s);
                    }
                }
            }
            let r = build_report("", tables);
            Answer {
                question: q,
                text: format!(
                    "Write sizes concentrate in bucket {} ({} requests); \
                     mean write {:.1} KiB, mean read {:.1} KiB.",
                    best.0,
                    best.1 as u64,
                    r.avg_write_size / 1024.0,
                    r.avg_read_size / 1024.0
                ),
                value: r.avg_write_size,
            }
        }
        AnalysisQuestion::Sequentiality => {
            let r = build_report("", tables);
            Answer {
                question: q,
                text: format!(
                    "{:.0}% of writes and {:.0}% of reads are sequential within \
                     their file.",
                    r.seq_write_fraction * 100.0,
                    r.seq_read_fraction * 100.0
                ),
                value: r.seq_write_fraction,
            }
        }
        AnalysisQuestion::RankImbalance => {
            let r = build_report("", tables);
            Answer {
                question: q,
                text: format!(
                    "Mean variance of per-rank I/O time on shared files: {:.4}.",
                    r.rank_time_variance
                ),
                value: r.rank_time_variance,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsim::{ModelProfile, SimLlm};
    use pfs::{ClusterSpec, PfsSimulator, TuningConfig};
    use workloads::WorkloadKind;

    fn tables_for(kind: WorkloadKind) -> (String, Vec<Table>) {
        let sim = PfsSimulator::new(ClusterSpec::paper_cluster());
        let spec = kind.spec().scaled(0.1);
        let mut collector = darshan::Collector::new(kind.label(), 50);
        sim.run_traced(
            spec.generate(sim.topology(), 1),
            &TuningConfig::lustre_default(),
            1,
            &mut collector,
        );
        darshan::tables::to_tables(&collector.finish())
    }

    #[test]
    fn ior_16m_report_classifies_large_sequential() {
        let (header, tables) = tables_for(WorkloadKind::Ior16M);
        let mut backend = SimLlm::new(ModelProfile::gpt_4o(), 1);
        let mut agent = AnalysisAgent::new(&mut backend);
        let r = agent.initial_report(&header, &tables);
        assert_eq!(r.nprocs, 50);
        assert!(r.avg_write_size > 8e6, "{}", r.avg_write_size);
        assert!(r.seq_write_fraction > 0.9);
        assert_eq!(r.shared_file_count, 1);
        assert_eq!(
            r.classify(),
            crate::report::WorkloadClass::LargeSequentialShared
        );
    }

    #[test]
    fn ior_64k_report_classifies_random_small() {
        let (header, tables) = tables_for(WorkloadKind::Ior64K);
        let mut backend = SimLlm::new(ModelProfile::gpt_4o(), 1);
        let mut agent = AnalysisAgent::new(&mut backend);
        let r = agent.initial_report(&header, &tables);
        assert!(r.avg_write_size < 100_000.0);
        assert!(r.consec_write_fraction < 0.2, "{}", r.consec_write_fraction);
        assert_eq!(
            r.classify(),
            crate::report::WorkloadClass::RandomSmallShared
        );
    }

    #[test]
    fn mdworkbench_report_classifies_metadata() {
        let (header, tables) = tables_for(WorkloadKind::MdWorkbench8K);
        let mut backend = SimLlm::new(ModelProfile::gpt_4o(), 1);
        let mut agent = AnalysisAgent::new(&mut backend);
        let r = agent.initial_report(&header, &tables);
        assert!(r.meta_ratio > 0.5, "{}", r.meta_ratio);
        assert!(r.avg_file_bytes < 100_000.0);
        assert_eq!(
            r.classify(),
            crate::report::WorkloadClass::MetadataSmallFiles
        );
    }

    #[test]
    fn io500_report_classifies_mixed() {
        let (header, tables) = tables_for(WorkloadKind::Io500);
        let mut backend = SimLlm::new(ModelProfile::gpt_4o(), 1);
        let mut agent = AnalysisAgent::new(&mut backend);
        let r = agent.initial_report(&header, &tables);
        assert_eq!(r.classify(), crate::report::WorkloadClass::MixedMultiPhase);
    }

    #[test]
    fn follow_up_answers_are_consistent() {
        let (_, tables) = tables_for(WorkloadKind::MdWorkbench8K);
        let mut backend = SimLlm::new(ModelProfile::gpt_4o(), 1);
        let mut agent = AnalysisAgent::new(&mut backend);
        let a = agent.answer(AnalysisQuestion::FileSizeDistribution, &tables);
        assert!(a.value > 0.9, "small-file fraction {}", a.value);
        let b = agent.answer(AnalysisQuestion::MetaToDataRatio, &tables);
        assert!(b.value > 0.5);
        assert!(b.text.contains("metadata ratio"));
    }

    #[test]
    fn agent_charges_tokens() {
        use llmsim::LlmBackend as _;
        let (header, tables) = tables_for(WorkloadKind::Ior16M);
        let mut backend = SimLlm::new(ModelProfile::gpt_4o(), 1);
        {
            let mut agent = AnalysisAgent::new(&mut backend);
            agent.initial_report(&header, &tables);
            agent.answer(AnalysisQuestion::Sequentiality, &tables);
        }
        assert_eq!(backend.usage().calls, 2);
        assert!(backend.usage().input_tokens > 50);
    }
}
