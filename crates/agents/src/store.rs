//! Sharded, copy-on-write storage for the global rule set.
//!
//! The flat [`RuleSet`] is the paper's serialization format and stays the
//! compatibility façade, but cloning it wholesale for every warm campaign
//! round is O(total rules) — the roadmap's blocker to "millions of
//! accumulated rules" scale. [`ShardedRuleStore`] replaces those clones:
//!
//! * **Sharding.** Rules are partitioned by [`ShardSignature`] — the
//!   rule's exact context-tag bitmask crossed with a topology bucket
//!   (⌊log₂ OST count⌋ of the cluster the rule was learned on). This is
//!   safe because the §4.4.2 merge protocol only ever lets two rules
//!   interact when their tag sets are *equal* (`same_context` demands set
//!   equality), and equal tag sets means equal signature: a per-shard
//!   merge is provably identical to the flat merge.
//! * **Copy-on-write snapshots.** The shard map lives behind an [`Arc`];
//!   [`ShardedRuleStore::snapshot`] hands out an O(1) [`RuleSnapshot`]
//!   that shares every shard. A later [`ShardedRuleStore::merge`] clones
//!   only the touched shards (`Arc::make_mut`), never the whole set —
//!   readers keep an immutable view of the state they started from.
//! * **Shard-pruned matching.** A rule's context-match score depends only
//!   on its tag set, which is uniform across a shard — so
//!   [`RuleSnapshot::matching`] scores whole shards from their signature
//!   and skips every shard below the 0.6 threshold without touching a
//!   single rule.
//!
//! Accumulation order is preserved via per-rule sequence numbers, so
//! [`ShardedRuleStore::to_rule_set`] round-trips bit-identically through
//! the façade and snapshot matching returns rules in the exact order the
//! flat [`RuleSet::matching`] would. Stores from different clusters
//! federate with [`ShardedRuleStore::merge_from`], which keeps each
//! store's topology bucket so cross-cluster knowledge never collides.
//!
//! ```
//! use agents::{ContextTag, Guidance, Rule, RuleSet, ShardedRuleStore};
//!
//! let mut store = ShardedRuleStore::new();
//! store.merge(vec![
//!     Rule::new("stripe_count", Guidance::SetToAllOsts,
//!               &[ContextTag::LargeSequentialWrites, ContextTag::SharedFile]),
//!     Rule::new("llite.statahead_max", Guidance::RaiseToAtLeast(128),
//!               &[ContextTag::ManySmallFiles, ContextTag::MetadataIntensive]),
//! ]);
//! assert_eq!(store.shard_count(), 2);
//!
//! // O(1): shares every shard instead of cloning rules.
//! let snapshot = store.snapshot();
//!
//! // Later merges copy only the shards they touch; the snapshot is fixed.
//! store.merge(vec![Rule::new("stripe_size", Guidance::MatchTransferSize,
//!                            &[ContextTag::LargeSequentialWrites, ContextTag::SharedFile])]);
//! assert_eq!(snapshot.len(), 2);
//! assert_eq!(store.len(), 3);
//!
//! // The flat RuleSet façade round-trips in accumulation order.
//! let flat: RuleSet = store.to_rule_set();
//! assert_eq!(ShardedRuleStore::from_rule_set(&flat).to_rule_set(), flat);
//! ```

use crate::rules::{ContextTag, Guidance, Rule, RuleSet};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The shard key: a rule's exact context-tag bitmask crossed with the
/// topology bucket it was learned under.
///
/// Two rules can only interact during [`ShardedRuleStore::merge`] when
/// their tag sets are equal, so keying shards by the exact mask loses
/// nothing; the topology bucket keeps knowledge learned on differently
/// sized clusters from being merged as if interchangeable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardSignature {
    /// Topology bucket: ⌊log₂(OST count)⌋ of the learning cluster
    /// (0 when unknown — e.g. rule sets loaded from JSON).
    pub topo_bucket: u8,
    /// Bitmask of the rule's context tags, bits in [`ContextTag::all`]
    /// order.
    pub tag_mask: u16,
}

impl ShardSignature {
    /// Signature for a tag set under a topology bucket.
    pub fn of_tags(topo_bucket: u8, tags: &[ContextTag]) -> Self {
        ShardSignature {
            topo_bucket,
            tag_mask: ContextTag::mask_of(tags),
        }
    }

    /// Signature of a rule (tags parsed back from its context text).
    pub fn of_rule(topo_bucket: u8, rule: &Rule) -> Self {
        Self::of_tags(topo_bucket, &rule.tags())
    }

    /// The tag set this signature encodes, in [`ContextTag::all`] order.
    pub fn tags(self) -> Vec<ContextTag> {
        ContextTag::all()
            .into_iter()
            .filter(|t| self.tag_mask & t.bit() != 0)
            .collect()
    }

    /// The context-match score every rule in this shard has against a
    /// workload tag mask: |intersection| / |shard tags|. Identical to
    /// [`Rule::match_score`] because a shard's rules all carry exactly
    /// this signature's tag set — including the scenario gate: shards
    /// whose scenario tags ([`ContextTag::is_scenario`]) disagree with
    /// the probe's score 0.0 outright, so fault- or contention-learned
    /// shards never leak into pristine matching (and vice versa).
    pub fn score_against(self, workload_mask: u16) -> f64 {
        let mine = self.tag_mask.count_ones();
        if mine == 0 {
            return 0.0;
        }
        if (self.tag_mask ^ workload_mask) & ContextTag::scenario_mask() != 0 {
            return 0.0;
        }
        f64::from((self.tag_mask & workload_mask).count_ones()) / f64::from(mine)
    }

    /// Stable 64-bit hash of the signature (FNV-1a over bucket and mask),
    /// for callers that key external storage by shard.
    pub fn hash64(self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in [
            self.topo_bucket,
            (self.tag_mask & 0xff) as u8,
            (self.tag_mask >> 8) as u8,
        ] {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Human-readable label: the tag phrases (or "untagged").
    pub fn label(self) -> String {
        let tags = self.tags();
        if tags.is_empty() {
            return "untagged".to_string();
        }
        tags.iter()
            .map(|t| t.phrase())
            .collect::<Vec<_>>()
            .join("; ")
    }
}

/// A rule plus its global accumulation sequence number (the position it
/// would occupy in the equivalent flat [`RuleSet`]).
#[derive(Debug, Clone, PartialEq)]
struct SeqRule {
    seq: u64,
    rule: Rule,
}

type ShardMap = BTreeMap<ShardSignature, Arc<Vec<SeqRule>>>;

/// One row of [`ShardedRuleStore::census`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardCensusEntry {
    /// The shard's key.
    pub signature: ShardSignature,
    /// Rules currently in the shard.
    pub rules: usize,
}

/// The sharded, copy-on-write global rule store. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct ShardedRuleStore {
    topo_bucket: u8,
    shards: Arc<ShardMap>,
    next_seq: u64,
    len: usize,
}

/// Stores are equal when they hold the same rules in the same per-shard
/// accumulation order (sequence numbers themselves are an implementation
/// detail and do not participate).
impl PartialEq for ShardedRuleStore {
    fn eq(&self, other: &Self) -> bool {
        self.topo_bucket == other.topo_bucket
            && self.len == other.len
            && self.shards.len() == other.shards.len()
            && self.shards.iter().zip(other.shards.iter()).all(
                |((sig_a, shard_a), (sig_b, shard_b))| {
                    sig_a == sig_b
                        && shard_a.len() == shard_b.len()
                        && shard_a
                            .iter()
                            .zip(shard_b.iter())
                            .all(|(a, b)| a.rule == b.rule)
                },
            )
    }
}

impl ShardedRuleStore {
    /// Empty store with topology bucket 0 (first STELLAR run).
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty store whose merged rules are attributed to the topology
    /// bucket ⌊log₂ `ost_count`⌋.
    pub fn for_topology(ost_count: u32) -> Self {
        ShardedRuleStore {
            topo_bucket: if ost_count == 0 {
                0
            } else {
                ost_count.ilog2() as u8
            },
            ..Self::default()
        }
    }

    /// Partition a flat rule set into shards **without** re-running merge
    /// semantics, preserving accumulation order exactly — the inverse of
    /// [`ShardedRuleStore::to_rule_set`].
    pub fn from_rule_set(rules: &RuleSet) -> Self {
        Self::new().with_rules(rules)
    }

    /// Absorb a flat rule set verbatim (order-preserving, no merging),
    /// attributing every rule to this store's topology bucket.
    pub fn with_rules(mut self, rules: &RuleSet) -> Self {
        self.insert_unmerged(rules.rules.iter().cloned());
        self
    }

    /// Append rules verbatim (no merge semantics), consuming them —
    /// shared by the borrowing façade paths and the owned
    /// `From<RuleSet>` conversion, which must not clone a second time.
    fn insert_unmerged(&mut self, rules: impl IntoIterator<Item = Rule>) {
        let shards = Arc::make_mut(&mut self.shards);
        for rule in rules {
            let sig = ShardSignature::of_rule(self.topo_bucket, &rule);
            Arc::make_mut(shards.entry(sig).or_default()).push(SeqRule {
                seq: self.next_seq,
                rule,
            });
            self.next_seq += 1;
            self.len += 1;
        }
    }

    /// Total rules across all shards.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store holds no rules.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of non-empty shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The topology bucket merged rules are attributed to.
    pub fn topo_bucket(&self) -> u8 {
        self.topo_bucket
    }

    /// An O(1) immutable view of the current state: shares every shard,
    /// clones no rules, and is unaffected by later merges.
    pub fn snapshot(&self) -> RuleSnapshot {
        RuleSnapshot {
            shards: Arc::clone(&self.shards),
            len: self.len,
        }
    }

    /// Merge newly learned rules under the §4.4.2 protocol, restricted to
    /// each rule's own shard (equivalent to [`RuleSet::merge`] — see the
    /// module docs). Only touched shards are copied; outstanding
    /// [`RuleSnapshot`]s keep the pre-merge state.
    pub fn merge(&mut self, new_rules: Vec<Rule>) {
        if new_rules.is_empty() {
            return;
        }
        let topo_bucket = self.topo_bucket;
        let shards = Arc::make_mut(&mut self.shards);
        for new in new_rules {
            let sig = ShardSignature::of_rule(topo_bucket, &new);
            merge_rule_into(shards, sig, new, &mut self.next_seq, &mut self.len);
        }
    }

    /// Federate another store into this one, **keeping the other store's
    /// shard signatures**: rules learned on a differently sized cluster
    /// retain their own topology bucket and therefore never dedup or
    /// conflict with this store's — the separation the bucket exists for.
    /// Rules arriving under an already-present signature go through the
    /// normal §4.4.2 merge within that shard. Deterministic: shards in
    /// key order, rules in accumulation order.
    pub fn merge_from(&mut self, other: &ShardedRuleStore) {
        let shards = Arc::make_mut(&mut self.shards);
        for (sig, shard) in other.shards.iter() {
            for r in shard.iter() {
                merge_rule_into(
                    shards,
                    *sig,
                    r.rule.clone(),
                    &mut self.next_seq,
                    &mut self.len,
                );
            }
        }
    }

    /// Outcome-based pruning ([`RuleSet::prune_negative`]), copying only
    /// the shards that actually contain a match.
    pub fn prune_negative(&mut self, parameter: &str, guidance: Guidance, tags: &[ContextTag]) {
        let hits = |r: &SeqRule| {
            r.rule.parameter == parameter
                && r.rule.guidance() == Some(guidance)
                && r.rule.match_score(tags) >= 0.99
        };
        let shards = Arc::make_mut(&mut self.shards);
        let mut emptied = Vec::new();
        for (sig, shard) in shards.iter_mut() {
            if !shard.iter().any(hits) {
                continue; // leave untouched shards shared with snapshots
            }
            let shard = Arc::make_mut(shard);
            let before = shard.len();
            shard.retain(|r| !hits(r));
            self.len -= before - shard.len();
            if shard.is_empty() {
                emptied.push(*sig);
            }
        }
        for sig in emptied {
            shards.remove(&sig);
        }
    }

    /// Rules matching a workload's tags with score ≥ 0.6, best first — the
    /// same rules, in the same order, as [`RuleSet::matching`] on the
    /// flattened set. Shards whose signature scores below the threshold
    /// are skipped wholesale.
    pub fn matching(&self, workload_tags: &[ContextTag]) -> Vec<&Rule> {
        matching_in(&self.shards, workload_tags)
    }

    /// Per-shard occupancy, in shard-key order (for introspection — the
    /// CLI's `campaign --rule-shards`).
    pub fn census(&self) -> Vec<ShardCensusEntry> {
        self.shards
            .iter()
            .map(|(sig, shard)| ShardCensusEntry {
                signature: *sig,
                rules: shard.len(),
            })
            .collect()
    }

    /// Flatten back into the paper's [`RuleSet`] façade, in exact
    /// accumulation order (bit-identical round trip with
    /// [`ShardedRuleStore::from_rule_set`]).
    pub fn to_rule_set(&self) -> RuleSet {
        to_rule_set_in(&self.shards)
    }
}

/// One §4.4.2 merge step into the shard keyed by `sig` — the body shared
/// by [`ShardedRuleStore::merge`] (own-bucket signatures) and
/// [`ShardedRuleStore::merge_from`] (foreign-bucket signatures).
fn merge_rule_into(
    shards: &mut ShardMap,
    sig: ShardSignature,
    new: Rule,
    next_seq: &mut u64,
    len: &mut usize,
) {
    // Untagged rules land in the mask-0 shard and — like the flat merge,
    // whose `same_context` rejects empty tag sets — never dedup or
    // conflict: append directly.
    if sig.tag_mask == 0 {
        Arc::make_mut(shards.entry(sig).or_default()).push(SeqRule {
            seq: *next_seq,
            rule: new,
        });
        *next_seq += 1;
        *len += 1;
        return;
    }
    let new_guidance = new.guidance();
    let shard = Arc::make_mut(shards.entry(sig).or_default());
    let mut drop_new = false;
    let mut remove_existing: Vec<usize> = Vec::new();
    for (i, old) in shard.iter().enumerate() {
        if old.rule.parameter != new.parameter {
            continue;
        }
        // Shard membership implies equal, non-empty tag sets, so the
        // flat merge's `same_context` holds by construction.
        match (old.rule.guidance(), new_guidance) {
            (Some(a), Some(b)) if a == b => {
                drop_new = true; // exact duplicate
            }
            (Some(a), Some(b)) if a.conflicts_with(b) => {
                // Hard conflict: remove both (the paper's rule).
                remove_existing.push(i);
                drop_new = true;
            }
            // Slight variation: keep both as alternatives.
            _ => {}
        }
    }
    for i in remove_existing.into_iter().rev() {
        shard.remove(i);
        *len -= 1;
    }
    if !drop_new {
        shard.push(SeqRule {
            seq: *next_seq,
            rule: new,
        });
        *next_seq += 1;
        *len += 1;
    }
    if shard.is_empty() {
        shards.remove(&sig);
    }
}

fn matching_in<'s>(shards: &'s ShardMap, workload_tags: &[ContextTag]) -> Vec<&'s Rule> {
    let workload_mask = ContextTag::mask_of(workload_tags);
    let mut scored: Vec<(f64, u64, &Rule)> = Vec::new();
    for (sig, shard) in shards.iter() {
        let score = sig.score_against(workload_mask);
        if score < 0.6 {
            continue;
        }
        scored.extend(shard.iter().map(|r| (score, r.seq, &r.rule)));
    }
    // Score descending, accumulation order among ties — matching the flat
    // RuleSet's stable sort.
    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    scored.into_iter().map(|(_, _, r)| r).collect()
}

fn to_rule_set_in(shards: &ShardMap) -> RuleSet {
    let mut seq: Vec<(u64, &Rule)> = shards
        .values()
        .flat_map(|shard| shard.iter().map(|r| (r.seq, &r.rule)))
        .collect();
    seq.sort_by_key(|(s, _)| *s);
    RuleSet {
        rules: seq.into_iter().map(|(_, r)| r.clone()).collect(),
    }
}

/// An immutable O(1) view of a [`ShardedRuleStore`] at a point in time.
///
/// Snapshots share the store's shards; taking one never clones a rule,
/// and merges performed on the store afterwards are invisible to it.
/// Sessions hold a snapshot for the duration of a tuning run.
#[derive(Debug, Clone, Default)]
pub struct RuleSnapshot {
    shards: Arc<ShardMap>,
    len: usize,
}

impl RuleSnapshot {
    /// A snapshot of nothing (no rules; the cold-start state).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Total rules visible in this snapshot.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the snapshot holds no rules.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of shards visible in this snapshot.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Rules matching a workload's tags with score ≥ 0.6, best first —
    /// same contract as [`ShardedRuleStore::matching`].
    pub fn matching(&self, workload_tags: &[ContextTag]) -> Vec<&Rule> {
        matching_in(&self.shards, workload_tags)
    }

    /// Flatten into the [`RuleSet`] façade, in accumulation order.
    pub fn to_rule_set(&self) -> RuleSet {
        to_rule_set_in(&self.shards)
    }
}

impl From<&ShardedRuleStore> for RuleSnapshot {
    fn from(store: &ShardedRuleStore) -> Self {
        store.snapshot()
    }
}

impl From<RuleSet> for RuleSnapshot {
    fn from(rules: RuleSet) -> Self {
        // Owned path: partition without a second per-rule clone.
        let mut store = ShardedRuleStore::new();
        store.insert_unmerged(rules.rules);
        store.snapshot()
    }
}

impl From<&RuleSet> for RuleSnapshot {
    fn from(rules: &RuleSet) -> Self {
        ShardedRuleStore::from_rule_set(rules).snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_tags() -> Vec<ContextTag> {
        vec![ContextTag::LargeSequentialWrites, ContextTag::SharedFile]
    }

    fn md_tags() -> Vec<ContextTag> {
        vec![ContextTag::ManySmallFiles, ContextTag::MetadataIntensive]
    }

    fn sample_rules() -> Vec<Rule> {
        vec![
            Rule::new("stripe_count", Guidance::SetToAllOsts, &seq_tags()),
            Rule::new("stripe_size", Guidance::MatchTransferSize, &seq_tags()),
            Rule::new(
                "llite.statahead_max",
                Guidance::RaiseToAtLeast(128),
                &md_tags(),
            ),
        ]
    }

    #[test]
    fn shards_by_tag_signature() {
        let mut store = ShardedRuleStore::new();
        store.merge(sample_rules());
        assert_eq!(store.len(), 3);
        assert_eq!(store.shard_count(), 2, "two distinct tag signatures");
        let census = store.census();
        assert_eq!(census.iter().map(|e| e.rules).sum::<usize>(), 3);
        assert!(census.iter().all(|e| e.signature.topo_bucket == 0));
    }

    #[test]
    fn topology_bucket_separates_clusters() {
        let sig_small = ShardSignature::of_tags(2, &seq_tags());
        let sig_large = ShardSignature::of_tags(6, &seq_tags());
        assert_ne!(sig_small, sig_large);
        assert_eq!(sig_small.tag_mask, sig_large.tag_mask);
        assert_ne!(sig_small.hash64(), sig_large.hash64());
        assert_eq!(ShardedRuleStore::for_topology(5).topo_bucket(), 2);
        assert_eq!(ShardedRuleStore::for_topology(64).topo_bucket(), 6);
        assert_eq!(ShardedRuleStore::for_topology(0).topo_bucket(), 0);
    }

    #[test]
    fn merge_from_federates_across_topology_buckets() {
        let mut small = ShardedRuleStore::for_topology(5); // bucket 2
        small.merge(vec![Rule::new(
            "stripe_count",
            Guidance::SetToAllOsts,
            &seq_tags(),
        )]);
        let mut large = ShardedRuleStore::for_topology(64); // bucket 6
        large.merge(vec![Rule::new(
            "stripe_count",
            Guidance::SetToOne,
            &seq_tags(),
        )]);

        // Opposite guidance on the same tags would be a hard conflict in
        // one bucket — across buckets both survive, in separate shards.
        let mut fleet = ShardedRuleStore::new();
        fleet.merge_from(&small);
        fleet.merge_from(&large);
        assert_eq!(fleet.len(), 2);
        assert_eq!(fleet.shard_count(), 2);
        let buckets: Vec<u8> = fleet
            .census()
            .iter()
            .map(|e| e.signature.topo_bucket)
            .collect();
        assert_eq!(buckets, vec![2, 6]);

        // Same-bucket federation still applies §4.4.2: an exact
        // duplicate collapses.
        fleet.merge_from(&small);
        assert_eq!(fleet.len(), 2, "duplicate from the same bucket dropped");
    }

    #[test]
    fn signature_label_and_tags_roundtrip() {
        let sig = ShardSignature::of_tags(0, &seq_tags());
        assert_eq!(sig.tags(), seq_tags());
        assert!(sig.label().contains("large sequential writes"));
        assert_eq!(ShardSignature::of_tags(0, &[]).label(), "untagged");
    }

    #[test]
    fn snapshot_is_isolated_from_later_merges() {
        let mut store = ShardedRuleStore::new();
        store.merge(sample_rules());
        let snap = store.snapshot();
        assert_eq!(snap.len(), 3);

        // Merge into an existing shard and a new one.
        store.merge(vec![
            Rule::new(
                "osc.max_dirty_mb",
                Guidance::RaiseToAtLeast(1024),
                &seq_tags(),
            ),
            Rule::new(
                "osc.max_pages_per_rpc",
                Guidance::SetTo(1024),
                &[ContextTag::SequentialReads],
            ),
        ]);
        assert_eq!(store.len(), 5);
        assert_eq!(snap.len(), 3, "snapshot unaffected");
        assert_eq!(snap.to_rule_set().len(), 3);
        // And a contradiction that removes rules from the store.
        store.merge(vec![Rule::new(
            "stripe_count",
            Guidance::SetToOne,
            &seq_tags(),
        )]);
        assert_eq!(store.len(), 4);
        assert_eq!(snap.to_rule_set().rules[0].parameter, "stripe_count");
    }

    #[test]
    fn merge_matches_flat_ruleset_semantics() {
        // Same scenario as the RuleSet unit tests: duplicate, conflict,
        // alternative, cross-context.
        let batches = vec![
            vec![Rule::new(
                "stripe_count",
                Guidance::SetToAllOsts,
                &seq_tags(),
            )],
            vec![Rule::new(
                "stripe_count",
                Guidance::SetToAllOsts,
                &seq_tags(),
            )], // dup
            vec![Rule::new("stripe_count", Guidance::SetToOne, &md_tags())], // other ctx
            vec![Rule::new(
                "osc.max_rpcs_in_flight",
                Guidance::RaiseToAtLeast(32),
                &seq_tags(),
            )],
            vec![Rule::new(
                "osc.max_rpcs_in_flight",
                Guidance::RaiseToAtLeast(64),
                &seq_tags(),
            )],
            vec![Rule::new("stripe_count", Guidance::SetToOne, &seq_tags())], // conflict
        ];
        let mut flat = RuleSet::new();
        let mut store = ShardedRuleStore::new();
        for batch in batches {
            flat.merge(batch.clone());
            store.merge(batch);
        }
        assert_eq!(store.to_rule_set(), flat);
        assert_eq!(store.len(), flat.len());
    }

    #[test]
    fn matching_agrees_with_flat_ruleset_order() {
        let mut flat = RuleSet::new();
        let mut store = ShardedRuleStore::new();
        let batch = vec![
            Rule::new("a", Guidance::SetTo(1), &[ContextTag::SharedFile]),
            Rule::new("b", Guidance::SetTo(2), &seq_tags()),
            Rule::new("c", Guidance::SetTo(3), &md_tags()),
            Rule::new(
                "d",
                Guidance::SetTo(4),
                &[ContextTag::LargeSequentialWrites],
            ),
        ];
        flat.merge(batch.clone());
        store.merge(batch);
        let flat_hits: Vec<&Rule> = flat.matching(&seq_tags());
        let store_hits = store.matching(&seq_tags());
        let snap = store.snapshot();
        let snap_hits = snap.matching(&seq_tags());
        assert_eq!(flat_hits, store_hits);
        assert_eq!(flat_hits, snap_hits);
    }

    #[test]
    fn prune_negative_matches_flat() {
        let rules = vec![
            Rule::new(
                "osc.max_dirty_mb",
                Guidance::RaiseToAtLeast(256),
                &seq_tags(),
            ),
            Rule::new(
                "osc.max_dirty_mb",
                Guidance::RaiseToAtLeast(1024),
                &seq_tags(),
            ),
            Rule::new(
                "llite.statahead_max",
                Guidance::RaiseToAtLeast(128),
                &md_tags(),
            ),
        ];
        let mut flat = RuleSet::new();
        flat.merge(rules.clone());
        let mut store = ShardedRuleStore::new();
        store.merge(rules);
        let snap = store.snapshot();
        flat.prune_negative(
            "osc.max_dirty_mb",
            Guidance::RaiseToAtLeast(1024),
            &seq_tags(),
        );
        store.prune_negative(
            "osc.max_dirty_mb",
            Guidance::RaiseToAtLeast(1024),
            &seq_tags(),
        );
        assert_eq!(store.to_rule_set(), flat);
        assert_eq!(store.len(), 2);
        assert_eq!(snap.len(), 3, "snapshot keeps the pruned rule");
    }

    #[test]
    fn facade_roundtrip_preserves_duplicates_and_order() {
        // from_rule_set must NOT re-merge: a JSON-loaded set may contain
        // exact duplicates and they must survive the round trip.
        let r = Rule::new("stripe_count", Guidance::SetToAllOsts, &seq_tags());
        let flat = RuleSet {
            rules: vec![
                r.clone(),
                Rule::new(
                    "llite.statahead_max",
                    Guidance::RaiseToAtLeast(64),
                    &md_tags(),
                ),
                r,
            ],
        };
        let store = ShardedRuleStore::from_rule_set(&flat);
        assert_eq!(store.len(), 3);
        assert_eq!(store.to_rule_set(), flat);
        let snap: RuleSnapshot = (&flat).into();
        assert_eq!(snap.to_rule_set(), flat);
    }

    #[test]
    fn scenario_shards_never_cross_match() {
        // Same shape tags, learned under three regimes: pristine, faulted,
        // contended. Each probe must see only its own regime's rules.
        let mut store = ShardedRuleStore::new();
        let mut faulted_tags = seq_tags();
        faulted_tags.push(ContextTag::DegradedTopology);
        let mut noisy_tags = seq_tags();
        noisy_tags.push(ContextTag::NoisyNeighbor);
        store.merge(vec![
            Rule::new("pristine_param", Guidance::SetToAllOsts, &seq_tags()),
            Rule::new("faulted_param", Guidance::SetToOne, &faulted_tags),
            Rule::new("noisy_param", Guidance::SetTo(4), &noisy_tags),
        ]);
        assert_eq!(store.shard_count(), 3, "one shard per scenario regime");

        let names = |hits: Vec<&Rule>| hits.iter().map(|r| r.parameter.clone()).collect::<Vec<_>>();
        assert_eq!(names(store.matching(&seq_tags())), vec!["pristine_param"]);
        assert_eq!(names(store.matching(&faulted_tags)), vec!["faulted_param"]);
        assert_eq!(names(store.matching(&noisy_tags)), vec!["noisy_param"]);
        // Snapshots see the same gating.
        let snap = store.snapshot();
        assert_eq!(names(snap.matching(&faulted_tags)), vec!["faulted_param"]);
    }

    #[test]
    fn empty_snapshot_matches_nothing() {
        let snap = RuleSnapshot::empty();
        assert!(snap.is_empty());
        assert_eq!(snap.shard_count(), 0);
        assert!(snap.matching(&seq_tags()).is_empty());
        assert!(snap.to_rule_set().is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_tags() -> impl Strategy<Value = Vec<ContextTag>> {
        proptest::sample::subsequence(ContextTag::all().to_vec(), 1..4)
    }

    fn arb_guidance() -> impl Strategy<Value = Guidance> {
        prop_oneof![
            Just(Guidance::SetToAllOsts),
            Just(Guidance::SetToOne),
            Just(Guidance::MatchTransferSize),
            (1i64..1000).prop_map(Guidance::RaiseToAtLeast),
            (1i64..1000).prop_map(Guidance::SetTo),
            Just(Guidance::Disable),
        ]
    }

    fn arb_rules() -> impl Strategy<Value = Vec<Rule>> {
        proptest::collection::vec(
            (
                proptest::sample::select(vec!["stripe_count", "stripe_size", "osc.max_dirty_mb"]),
                arb_guidance(),
                arb_tags(),
            ),
            1..16,
        )
        .prop_map(|specs| {
            specs
                .into_iter()
                .map(|(p, g, tags)| Rule::new(p, g, &tags))
                .collect()
        })
    }

    proptest! {
        /// Sharded merge is equivalent to the flat §4.4.2 merge: same
        /// rules, same accumulation order, for any batch sequence.
        #[test]
        fn sharded_merge_equals_flat_merge(a in arb_rules(), b in arb_rules()) {
            let mut flat = RuleSet::new();
            let mut store = ShardedRuleStore::new();
            flat.merge(a.clone());
            flat.merge(b.clone());
            store.merge(a);
            store.merge(b);
            prop_assert_eq!(store.to_rule_set(), flat);
            prop_assert_eq!(store.len(), flat.len());
        }

        /// Merging is order-independent across shards: any permutation of
        /// a batch that preserves the relative order of same-signature
        /// rules produces the same store (rules in different shards never
        /// interact).
        #[test]
        fn merge_order_independent_across_shards(rules in arb_rules()) {
            let mut in_batch_order = ShardedRuleStore::new();
            in_batch_order.merge(rules.clone());

            // Stable-sort by signature: per-shard order preserved, cross-
            // shard order fully rearranged.
            let mut by_shard = rules.clone();
            by_shard.sort_by_key(|r| ShardSignature::of_rule(0, r));
            let mut in_shard_order = ShardedRuleStore::new();
            in_shard_order.merge(by_shard);
            prop_assert_eq!(&in_batch_order, &in_shard_order);

            // Splitting one batch into two merges changes nothing either.
            let mid = rules.len() / 2;
            let mut split = ShardedRuleStore::new();
            split.merge(rules[..mid].to_vec());
            split.merge(rules[mid..].to_vec());
            prop_assert_eq!(&in_batch_order, &split);
        }

        /// Any rule set — including unmerged duplicates — round-trips
        /// bit-identically through the sharded store and back through the
        /// RuleSet façade, and snapshots agree with the store.
        #[test]
        fn facade_roundtrip_is_bit_identical(rules in arb_rules()) {
            let flat = RuleSet { rules };
            let store = ShardedRuleStore::from_rule_set(&flat);
            prop_assert_eq!(store.to_rule_set(), flat.clone());
            prop_assert_eq!(store.snapshot().to_rule_set(), flat.clone());
            let json_back = RuleSet::from_json(&store.to_rule_set().to_json()).unwrap();
            prop_assert_eq!(json_back, flat);
        }

        /// Snapshot matching returns exactly what flat matching returns,
        /// in the same order, for arbitrary stores and probe tags.
        #[test]
        fn snapshot_matching_equals_flat(rules in arb_rules(), probe in arb_tags()) {
            let mut store = ShardedRuleStore::new();
            store.merge(rules);
            let flat = store.to_rule_set();
            let flat_hits: Vec<Rule> = flat.matching(&probe).into_iter().cloned().collect();
            let snap_hits: Vec<Rule> = store.snapshot().matching(&probe).into_iter().cloned().collect();
            prop_assert_eq!(flat_hits, snap_hits);
        }
    }
}
