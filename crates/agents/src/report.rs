//! The I/O Report: what the Analysis Agent distills from Darshan tables.

use serde::{Deserialize, Serialize};

/// Application-level I/O characterization (the "I/O Report" of Fig. 1).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IoReport {
    /// MPI processes in the job.
    pub nprocs: u32,
    /// Wall time of the traced run, seconds.
    pub runtime_secs: f64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Distinct files accessed.
    pub file_count: u64,
    /// Files accessed by more than one rank.
    pub shared_file_count: u64,
    /// Module moving the most data ("POSIX", "MPI-IO").
    pub dominant_module: String,
    /// Mean write request size, bytes.
    pub avg_write_size: f64,
    /// Mean read request size, bytes.
    pub avg_read_size: f64,
    /// Fraction of writes at or beyond the previous write's end offset.
    pub seq_write_fraction: f64,
    /// Fraction of reads at or beyond the previous read's end offset.
    pub seq_read_fraction: f64,
    /// Fraction of writes exactly continuing the previous write (CONSEC).
    pub consec_write_fraction: f64,
    /// Fraction of reads exactly continuing the previous read (CONSEC).
    pub consec_read_fraction: f64,
    /// Data operations (reads + writes).
    pub data_ops: u64,
    /// Metadata operations (opens + stats + unlinks + fsyncs).
    pub meta_ops: u64,
    /// meta_ops / (meta_ops + data_ops).
    pub meta_ratio: f64,
    /// Stat calls per file.
    pub stats_per_file: f64,
    /// Unlink calls observed.
    pub unlinks: u64,
    /// Largest file size touched (max byte written/read), bytes.
    pub max_file_bytes: u64,
    /// Mean file size, bytes.
    pub avg_file_bytes: f64,
    /// Files per rank.
    pub files_per_rank: f64,
    /// Mean variance of per-rank I/O time on shared files.
    pub rank_time_variance: f64,
    /// Read/write alternations per file (mean).
    pub rw_switches_per_file: f64,
    /// Cumulative seconds in metadata calls across records.
    pub meta_time_secs: f64,
    /// Cumulative seconds in data calls across records.
    pub data_time_secs: f64,
}

/// Coarse workload classification the Tuning Agent reasons over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// Large, mostly sequential transfers to shared files.
    LargeSequentialShared,
    /// Small, mostly random transfers to a shared file.
    RandomSmallShared,
    /// Many small files, metadata-dominated.
    MetadataSmallFiles,
    /// Multiple distinct phases (large sequential + small random + metadata).
    MixedMultiPhase,
    /// Medium-size object appends (bursty dump patterns).
    SmallObjectDumps,
}

impl IoReport {
    /// Classify the workload (the judgement the Tuning Agent's first
    /// configuration hangs on).
    pub fn classify(&self) -> WorkloadClass {
        let metadata_heavy =
            self.meta_ratio > 0.55 || (self.meta_ratio > 0.4 && self.avg_file_bytes < 1_000_000.0);
        if metadata_heavy && self.avg_file_bytes < 4.0 * 1024.0 * 1024.0 {
            return WorkloadClass::MetadataSmallFiles;
        }
        let has_large_seq = self.avg_write_size >= 1_000_000.0 && self.consec_write_fraction > 0.6;
        let has_small_data = self.avg_write_size < 256.0 * 1024.0;
        if self.meta_ratio > 0.2 && self.file_count > self.nprocs as u64 {
            return WorkloadClass::MixedMultiPhase;
        }
        if has_large_seq && self.avg_write_size >= 2.0 * 1024.0 * 1024.0 {
            return WorkloadClass::LargeSequentialShared;
        }
        if has_small_data && self.consec_write_fraction < 0.5 && self.shared_file_count > 0 {
            return WorkloadClass::RandomSmallShared;
        }
        if self.avg_write_size >= 128.0 * 1024.0 && self.avg_write_size < 2.0 * 1024.0 * 1024.0 {
            return WorkloadClass::SmallObjectDumps;
        }
        // Fallbacks by dominant signal.
        if has_small_data {
            WorkloadClass::RandomSmallShared
        } else {
            WorkloadClass::LargeSequentialShared
        }
    }

    /// Whether a meaningful read phase exists.
    pub fn has_reads(&self) -> bool {
        self.bytes_read > self.bytes_written / 10
    }

    /// Render the report as the text block the Tuning Agent receives.
    pub fn render(&self) -> String {
        format!(
            "I/O REPORT\n\
             processes: {}  runtime: {:.2}s  dominant module: {}\n\
             data: {:.1} MiB written / {:.1} MiB read across {} files \
             ({} shared between ranks, {:.1} files/rank)\n\
             request sizes: write avg {:.1} KiB, read avg {:.1} KiB\n\
             sequentiality: {:.0}% of writes sequential, {:.0}% of reads sequential\n\
             metadata: {} metadata ops vs {} data ops (ratio {:.2}); \
             {:.2} stats/file; {} unlinks; meta time {:.2}s vs data time {:.2}s\n\
             files: avg size {:.1} KiB, largest {:.1} MiB\n\
             balance: mean per-rank time variance on shared files {:.4}\n\
             classification: {:?}",
            self.nprocs,
            self.runtime_secs,
            self.dominant_module,
            self.bytes_written as f64 / (1 << 20) as f64,
            self.bytes_read as f64 / (1 << 20) as f64,
            self.file_count,
            self.shared_file_count,
            self.files_per_rank,
            self.avg_write_size / 1024.0,
            self.avg_read_size / 1024.0,
            self.seq_write_fraction * 100.0,
            self.seq_read_fraction * 100.0,
            self.meta_ops,
            self.data_ops,
            self.meta_ratio,
            self.stats_per_file,
            self.unlinks,
            self.meta_time_secs,
            self.data_time_secs,
            self.avg_file_bytes / 1024.0,
            self.max_file_bytes as f64 / (1 << 20) as f64,
            self.rank_time_variance,
            self.classify(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> IoReport {
        IoReport {
            nprocs: 50,
            dominant_module: "POSIX".into(),
            ..Default::default()
        }
    }

    #[test]
    fn classify_large_sequential() {
        let r = IoReport {
            avg_write_size: 16.0 * 1024.0 * 1024.0,
            seq_write_fraction: 0.95,
            consec_write_fraction: 0.95,
            shared_file_count: 1,
            file_count: 1,
            bytes_written: 19 << 30,
            avg_file_bytes: 19e9,
            max_file_bytes: 19 << 30,
            ..base()
        };
        assert_eq!(r.classify(), WorkloadClass::LargeSequentialShared);
    }

    #[test]
    fn classify_random_small() {
        let r = IoReport {
            avg_write_size: 64.0 * 1024.0,
            seq_write_fraction: 0.5,
            consec_write_fraction: 0.01,
            shared_file_count: 1,
            file_count: 1,
            avg_file_bytes: 6.4e9,
            max_file_bytes: 6 << 30,
            ..base()
        };
        assert_eq!(r.classify(), WorkloadClass::RandomSmallShared);
    }

    #[test]
    fn classify_metadata_small_files() {
        let r = IoReport {
            avg_write_size: 8.0 * 1024.0,
            meta_ratio: 0.75,
            meta_ops: 7200,
            data_ops: 2400,
            avg_file_bytes: 8.0 * 1024.0,
            file_count: 20_000,
            stats_per_file: 1.0,
            ..base()
        };
        assert_eq!(r.classify(), WorkloadClass::MetadataSmallFiles);
    }

    #[test]
    fn classify_mixed() {
        let r = IoReport {
            avg_write_size: 900.0 * 1024.0,
            seq_write_fraction: 0.7,
            consec_write_fraction: 0.7,
            meta_ratio: 0.35,
            file_count: 12_000,
            avg_file_bytes: 5e6,
            max_file_bytes: 64 << 20,
            ..base()
        };
        assert_eq!(r.classify(), WorkloadClass::MixedMultiPhase);
    }

    #[test]
    fn classify_object_dumps() {
        let r = IoReport {
            avg_write_size: 512.0 * 1024.0,
            seq_write_fraction: 0.9,
            consec_write_fraction: 0.9,
            shared_file_count: 5,
            file_count: 15,
            meta_ratio: 0.01,
            avg_file_bytes: 250e6,
            ..base()
        };
        assert_eq!(r.classify(), WorkloadClass::SmallObjectDumps);
    }

    #[test]
    fn render_mentions_key_numbers() {
        let r = IoReport {
            bytes_written: 100 << 20,
            meta_ops: 42,
            ..base()
        };
        let s = r.render();
        assert!(s.contains("I/O REPORT"));
        assert!(s.contains("42 metadata ops"));
        assert!(s.contains("classification"));
    }

    #[test]
    fn has_reads_threshold() {
        let mut r = base();
        r.bytes_written = 1000;
        r.bytes_read = 50;
        assert!(!r.has_reads());
        r.bytes_read = 500;
        assert!(r.has_reads());
    }
}
