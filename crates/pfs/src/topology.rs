//! Cluster hardware description.
//!
//! Defaults mirror the paper's evaluation platform (§5.1.1): ten CloudLab
//! machines — five OSS nodes (one OST each), one combined MGS/MDS, and five
//! client nodes running 50 MPI ranks — joined by a 10 Gbps switch, each with
//! an Intel Xeon Silver 4114 and ~196 GB of memory.

use serde::{Deserialize, Serialize};

/// Storage-device service characteristics of one OST's backing device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiskProfile {
    /// Sequential streaming bandwidth, bytes/second.
    pub seq_bytes_per_sec: f64,
    /// Positioning penalty charged when an object stream is non-sequential.
    pub random_seek_us: f64,
    /// Fixed per-request service overhead (request parsing, block layer).
    pub per_op_us: f64,
}

impl DiskProfile {
    /// A datacenter SATA/NVMe-class device matching mid-range CloudLab nodes.
    pub fn cloudlab_ssd() -> Self {
        DiskProfile {
            seq_bytes_per_sec: 1.15e9,
            random_seek_us: 180.0,
            per_op_us: 25.0,
        }
    }
}

/// The simulated cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of object storage server nodes.
    pub oss_count: u32,
    /// OSTs per OSS node.
    pub osts_per_oss: u32,
    /// Number of client nodes.
    pub client_count: u32,
    /// MPI ranks per client node.
    pub ranks_per_client: u32,
    /// Memory per client node, MB.
    pub client_memory_mb: u64,
    /// NIC bandwidth per node, bytes/second (10 Gbps ≈ 1.25e9 B/s).
    pub nic_bytes_per_sec: f64,
    /// One-way network latency plus RPC processing, microseconds.
    pub rpc_rtt_us: f64,
    /// Extra handshake cost of a bulk (non-inline) RPC, microseconds.
    pub bulk_setup_us: f64,
    /// MDS service thread pool size.
    pub mds_threads: u32,
    /// Mean MDS service time for a getattr, microseconds (other ops scale).
    pub mds_getattr_us: f64,
    /// Client memory copy bandwidth (page-cache insertion), bytes/second.
    pub mem_bytes_per_sec: f64,
    /// OST backing device profile.
    pub disk: DiskProfile,
    /// LDLM extent-lock revocation round trip, microseconds.
    pub lock_revoke_us: f64,
    /// Multiplicative service-time noise (σ of the lognormal), per operation.
    pub op_noise_sigma: f64,
    /// Multiplicative whole-run noise (σ of the lognormal), per replication.
    pub run_noise_sigma: f64,
}

impl ClusterSpec {
    /// The paper's 10-node CloudLab deployment.
    pub fn paper_cluster() -> Self {
        ClusterSpec {
            oss_count: 5,
            osts_per_oss: 1,
            client_count: 5,
            ranks_per_client: 10,
            client_memory_mb: 196_608,
            nic_bytes_per_sec: 1.25e9,
            rpc_rtt_us: 220.0,
            bulk_setup_us: 160.0,
            mds_threads: 64,
            mds_getattr_us: 110.0,
            mem_bytes_per_sec: 8.0e9,
            disk: DiskProfile::cloudlab_ssd(),
            lock_revoke_us: 450.0,
            op_noise_sigma: 0.05,
            run_noise_sigma: 0.03,
        }
    }

    /// A datacenter-scale cluster: `osts` OSTs (one per OSS node) serving
    /// `ranks` MPI ranks packed up to 50 per client node, with the paper
    /// cluster's per-node hardware. This is the topology axis the
    /// `perfsuite --simscale` sweep walks.
    ///
    /// `ranks` is rounded up to a whole number of client nodes, so
    /// [`ClusterSpec::total_ranks`] can exceed the request when `ranks` is
    /// not a multiple of the per-node packing; sweep points use multiples
    /// of 50 to keep the grid exact.
    ///
    /// ```
    /// use pfs::ClusterSpec;
    /// let c = ClusterSpec::scaled(100_000, 1_000);
    /// assert_eq!(c.total_ranks(), 100_000);
    /// assert_eq!(c.ost_count(), 1_000);
    /// assert_eq!(c.client_count, 2_000);
    /// ```
    pub fn scaled(ranks: u32, osts: u32) -> Self {
        let ranks = ranks.max(1);
        let ranks_per_client = ranks.min(50);
        ClusterSpec {
            oss_count: osts.max(1),
            osts_per_oss: 1,
            client_count: ranks.div_ceil(ranks_per_client),
            ranks_per_client,
            ..Self::paper_cluster()
        }
    }

    /// A 2-OSS, 2-client miniature for fast unit tests.
    pub fn tiny() -> Self {
        ClusterSpec {
            oss_count: 2,
            osts_per_oss: 1,
            client_count: 2,
            ranks_per_client: 2,
            ..Self::paper_cluster()
        }
    }

    /// Total number of OSTs.
    pub fn ost_count(&self) -> u32 {
        self.oss_count * self.osts_per_oss
    }

    /// Total number of MPI ranks.
    pub fn total_ranks(&self) -> u32 {
        self.client_count * self.ranks_per_client
    }

    /// Client node hosting `rank`.
    pub fn client_of_rank(&self, rank: u32) -> u32 {
        rank / self.ranks_per_client
    }

    /// OSS node hosting `ost`.
    pub fn oss_of_ost(&self, ost: u32) -> u32 {
        ost / self.osts_per_oss
    }

    /// Human-readable hardware summary (fed to the Tuning Agent's context,
    /// standing in for "details about the hardware and storage system setup").
    pub fn describe(&self) -> String {
        format!(
            "Cluster: {} OSS nodes x {} OST(s) each ({} OSTs total), 1 combined MGS/MDS \
             ({} service threads), {} client nodes x {} MPI ranks ({} ranks total). \
             Each node: {} GB RAM, {:.0} Gbps NIC. OST devices: {:.2} GB/s sequential, \
             {:.0} us positioning penalty. Lustre-like client stack with OSC/MDC RPC \
             windows, write-behind cache, readahead and statahead.",
            self.oss_count,
            self.osts_per_oss,
            self.ost_count(),
            self.mds_threads,
            self.client_count,
            self.ranks_per_client,
            self.total_ranks(),
            self.client_memory_mb / 1024,
            self.nic_bytes_per_sec * 8.0 / 1e9,
            self.disk.seq_bytes_per_sec / 1e9,
            self.disk.random_seek_us,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_matches_section_5_1_1() {
        let c = ClusterSpec::paper_cluster();
        assert_eq!(c.ost_count(), 5);
        assert_eq!(c.total_ranks(), 50);
        assert_eq!(c.client_count, 5);
        // 10 Gbps
        assert!((c.nic_bytes_per_sec - 1.25e9).abs() < 1.0);
        // ~196 GB
        assert_eq!(c.client_memory_mb, 196_608);
    }

    #[test]
    fn rank_to_client_mapping() {
        let c = ClusterSpec::paper_cluster();
        assert_eq!(c.client_of_rank(0), 0);
        assert_eq!(c.client_of_rank(9), 0);
        assert_eq!(c.client_of_rank(10), 1);
        assert_eq!(c.client_of_rank(49), 4);
    }

    #[test]
    fn ost_to_oss_mapping() {
        let mut c = ClusterSpec::paper_cluster();
        c.osts_per_oss = 2;
        assert_eq!(c.oss_of_ost(0), 0);
        assert_eq!(c.oss_of_ost(1), 0);
        assert_eq!(c.oss_of_ost(2), 1);
    }

    #[test]
    fn describe_mentions_key_facts() {
        let s = ClusterSpec::paper_cluster().describe();
        assert!(s.contains("5 OSS"));
        assert!(s.contains("50 ranks"));
        assert!(s.contains("MGS/MDS"));
    }

    #[test]
    fn tiny_is_smaller() {
        let t = ClusterSpec::tiny();
        assert_eq!(t.total_ranks(), 4);
        assert_eq!(t.ost_count(), 2);
    }
}
