//! Deterministic fault scenarios: seeded, event-scheduled OST degradation.
//!
//! A [`FaultPlan`] is a sorted schedule of [`FaultEvent`]s — each one flips
//! a single OST's health state at a fixed point in **simulated** time
//! (`simcore` nanoseconds, never wall-clock). The engine consults
//! [`FaultPlan::factor`] whenever it schedules device work on an OST and
//! multiplies the returned slowdown into the service-time noise, so a
//! degraded OST serves the same operations at a worse rate.
//!
//! Dropout is modelled as a *brown-out* rather than an error: a dropped
//! OST keeps accepting requests at [`DROP_FACTOR`]× service time. This
//! keeps every operation stream — and therefore every Darshan counter,
//! trace record and replayed canonical event — structurally identical to
//! the pristine run, which is what lets faulted campaigns ride the
//! existing byte-identical determinism contract: faults change *wall
//! times*, never the shape of the record.
//!
//! Determinism argument: a plan is plain data (serializable, sorted at
//! construction); [`FaultPlan::seeded`] derives it from a `SimRng` child
//! stream, so equal `(ost_count, seed)` pairs produce equal schedules in
//! any process; and [`FaultPlan::factor`] is a pure function of
//! `(ost, simulated time)`. Nothing reads a host clock or host RNG
//! (detlint rules D001/D003 apply to this module like any other
//! canonical-path code).

use serde::{Deserialize, Serialize};
use simcore::time::SimTime;
use simcore::SimRng;

/// Service-time multiplier modelling a dropped-out OST (brown-out: the
/// device still answers, pathologically slowly, so op streams and traces
/// keep their pristine shape).
pub const DROP_FACTOR: f64 = 64.0;

/// What happens to the OST at the event's instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The OST degrades: device service times multiply by `factor` (> 1).
    Degrade {
        /// Multiplicative service-time slowdown while degraded.
        factor: f64,
    },
    /// The OST drops out (served at [`DROP_FACTOR`]× until recovery).
    Drop,
    /// The OST returns to full health (factor 1.0).
    Recover,
}

impl FaultKind {
    /// The service-time factor this state imposes.
    pub fn factor(self) -> f64 {
        match self {
            FaultKind::Degrade { factor } => factor,
            FaultKind::Drop => DROP_FACTOR,
            FaultKind::Recover => 1.0,
        }
    }
}

/// One scheduled health transition of one OST.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Simulated instant of the transition, nanoseconds since run start.
    pub at_nanos: u64,
    /// The OST whose state changes.
    pub ost: u32,
    /// The new state.
    pub kind: FaultKind,
}

/// A deterministic, event-scheduled fault scenario for one run.
///
/// Events are held sorted by `(at_nanos, ost)`; each OST's health is the
/// piecewise-constant trace of its own events (last event at or before
/// the query instant wins; no event yet means healthy).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Build a plan from explicit events (sorted on construction, so two
    /// plans with the same event *set* compare and serialize equal).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| (e.at_nanos, e.ost));
        FaultPlan { events }
    }

    /// A seeded scenario for a cluster with `ost_count` OSTs.
    ///
    /// One victim OST is always degraded from the start of the run
    /// (2–8× slower), may later drop out entirely, and may recover
    /// mid-run; every other OST independently suffers a mild transient
    /// slowdown with probability 1/4. Equal `(ost_count, seed)` inputs
    /// yield bit-identical plans — property-tested in this module and
    /// exercised cross-process by the CI determinism matrix.
    pub fn seeded(ost_count: u32, seed: u64) -> Self {
        let base = SimRng::new(seed);
        let mut events = Vec::new();
        if ost_count == 0 {
            return FaultPlan::new(events);
        }
        let mut rng = base.derive("pfs::faults::primary", 0);
        let victim = rng.index(ost_count as usize) as u32;
        let factor = rng.uniform(2.0, 8.0);
        events.push(FaultEvent {
            at_nanos: 0,
            ost: victim,
            kind: FaultKind::Degrade { factor },
        });
        let mut last = 0u64;
        if rng.chance(0.4) {
            last += (rng.exponential(0.5) * 1e9) as u64 + 1;
            events.push(FaultEvent {
                at_nanos: last,
                ost: victim,
                kind: FaultKind::Drop,
            });
        }
        if rng.chance(0.6) {
            last += (rng.exponential(1.0) * 1e9) as u64 + 1;
            events.push(FaultEvent {
                at_nanos: last,
                ost: victim,
                kind: FaultKind::Recover,
            });
        }
        for ost in 0..ost_count {
            if ost == victim {
                continue;
            }
            let mut rng = base.derive("pfs::faults::secondary", u64::from(ost));
            if !rng.chance(0.25) {
                continue;
            }
            let at = (rng.exponential(0.25) * 1e9) as u64;
            events.push(FaultEvent {
                at_nanos: at,
                ost,
                kind: FaultKind::Degrade {
                    factor: rng.uniform(1.5, 3.0),
                },
            });
            if rng.chance(0.5) {
                events.push(FaultEvent {
                    at_nanos: at + (rng.exponential(0.5) * 1e9) as u64 + 1,
                    ost,
                    kind: FaultKind::Recover,
                });
            }
        }
        FaultPlan::new(events)
    }

    /// The schedule, sorted by `(at_nanos, ost)`.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan schedules no events at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The service-time factor in force on `ost` at simulated instant
    /// `at` — the last scheduled transition at or before `at`, or 1.0
    /// (healthy) if none has fired yet.
    pub fn factor(&self, ost: u32, at: SimTime) -> f64 {
        let t = at.as_nanos();
        self.events
            .iter()
            .rfind(|e| e.ost == ost && e.at_nanos <= t)
            .map_or(1.0, |e| e.kind.factor())
    }

    /// Whether any event recovers an OST after a degradation — the
    /// mid-run re-characterization scenario.
    pub fn has_recovery(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::Recover))
    }

    /// Short human/observer label, e.g. `3 fault event(s) on 2 OST(s)`.
    pub fn label(&self) -> String {
        let mut osts: Vec<u32> = self.events.iter().map(|e| e.ost).collect();
        osts.sort_unstable();
        osts.dedup();
        format!(
            "{} fault event(s) on {} OST(s)",
            self.events.len(),
            osts.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn degraded_then_recovered() -> FaultPlan {
        FaultPlan::new(vec![
            FaultEvent {
                at_nanos: 2_000,
                ost: 1,
                kind: FaultKind::Recover,
            },
            FaultEvent {
                at_nanos: 0,
                ost: 1,
                kind: FaultKind::Degrade { factor: 4.0 },
            },
            FaultEvent {
                at_nanos: 1_000,
                ost: 1,
                kind: FaultKind::Drop,
            },
        ])
    }

    #[test]
    fn factor_is_piecewise_constant_per_ost() {
        let plan = degraded_then_recovered();
        assert_eq!(plan.factor(1, SimTime::from_nanos(0)), 4.0);
        assert_eq!(plan.factor(1, SimTime::from_nanos(999)), 4.0);
        assert_eq!(plan.factor(1, SimTime::from_nanos(1_000)), DROP_FACTOR);
        assert_eq!(plan.factor(1, SimTime::from_nanos(2_000)), 1.0);
        assert_eq!(plan.factor(1, SimTime::FAR_FUTURE), 1.0);
        // Other OSTs are untouched at every instant.
        assert_eq!(plan.factor(0, SimTime::from_nanos(1_500)), 1.0);
        assert!(plan.has_recovery());
    }

    #[test]
    fn construction_sorts_events() {
        let plan = degraded_then_recovered();
        let times: Vec<u64> = plan.events().iter().map(|e| e.at_nanos).collect();
        assert_eq!(times, vec![0, 1_000, 2_000]);
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
    }

    #[test]
    fn empty_plan_is_always_healthy() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert!(!plan.has_recovery());
        assert_eq!(plan.factor(0, SimTime::from_secs(5)), 1.0);
        assert_eq!(plan.label(), "0 fault event(s) on 0 OST(s)");
    }

    #[test]
    fn seeded_always_faults_from_the_start() {
        for seed in 0..32u64 {
            let plan = FaultPlan::seeded(5, seed);
            assert!(!plan.is_empty(), "seed {seed}");
            let first = plan.events()[0];
            assert_eq!(first.at_nanos, 0, "seed {seed}: victim faults at t=0");
            let f = plan.factor(first.ost, SimTime::ZERO);
            assert!(f >= 1.5, "seed {seed}: factor {f} should slow the OST");
        }
    }

    #[test]
    fn seeded_is_deterministic_and_seed_sensitive() {
        assert_eq!(FaultPlan::seeded(5, 7), FaultPlan::seeded(5, 7));
        // Across 16 seeds at least one plan must differ from seed 7's.
        let reference = FaultPlan::seeded(5, 7);
        assert!((0..16).any(|s| FaultPlan::seeded(5, s) != reference));
    }

    #[test]
    fn seeded_handles_degenerate_clusters() {
        assert!(FaultPlan::seeded(0, 1).is_empty());
        let one = FaultPlan::seeded(1, 1);
        assert!(one.events().iter().all(|e| e.ost == 0));
    }

    #[test]
    fn serde_roundtrip_is_exact() {
        let plan = degraded_then_recovered();
        let json = serde_json::to_string(&plan).expect("serialize");
        let back: FaultPlan = serde_json::from_str(&json).expect("parse");
        assert_eq!(plan, back);
    }

    #[test]
    fn label_counts_distinct_osts() {
        let plan = degraded_then_recovered();
        assert_eq!(plan.label(), "3 fault event(s) on 1 OST(s)");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_event() -> impl Strategy<Value = FaultEvent> {
        (0u64..5_000_000_000, 0u32..8, 0usize..3).prop_map(|(at_nanos, ost, k)| FaultEvent {
            at_nanos,
            ost,
            kind: match k {
                0 => FaultKind::Degrade { factor: 3.0 },
                1 => FaultKind::Drop,
                _ => FaultKind::Recover,
            },
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Satellite: plans round-trip through JSON exactly, and equal
        /// seeds yield identical schedules (the cross-process guarantee —
        /// nothing in the construction path can see process identity).
        #[test]
        fn plans_roundtrip_and_seeds_are_reproducible(
            events in proptest::collection::vec(arb_event(), 0..12),
            ost_count in 1u32..16,
            seed in 0u64..1_000,
        ) {
            let plan = FaultPlan::new(events);
            let json = serde_json::to_string(&plan).expect("serialize");
            let back: FaultPlan = serde_json::from_str(&json).expect("parse");
            prop_assert_eq!(&plan, &back);

            let a = FaultPlan::seeded(ost_count, seed);
            let b = FaultPlan::seeded(ost_count, seed);
            prop_assert_eq!(&a, &b);
            let json_a = serde_json::to_string(&a).expect("serialize");
            let json_b = serde_json::to_string(&b).expect("serialize");
            prop_assert_eq!(json_a, json_b);
            prop_assert!(a.events().iter().all(|e| e.ost < ost_count));
        }

        /// `factor` never returns a speed-up and always starts healthy.
        #[test]
        fn factors_are_slowdowns(
            events in proptest::collection::vec(arb_event(), 0..12),
            ost in 0u32..8,
            at in 0u64..6_000_000_000,
        ) {
            let plan = FaultPlan::new(events);
            let f = plan.factor(ost, SimTime::from_nanos(at));
            prop_assert!(f >= 1.0);
            let earliest = plan
                .events()
                .iter()
                .filter(|e| e.ost == ost)
                .map(|e| e.at_nanos)
                .min();
            if earliest.is_none_or(|t| t > at) {
                prop_assert_eq!(f, 1.0);
            }
        }
    }
}
