//! Run results: what one execution of a workload on the simulator reports.

use crate::model::engine::Diagnostics;
use serde::{Deserialize, Serialize};

/// Outcome of one simulated application run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// End-to-end wall time in seconds (the metric Figure 5 plots).
    pub wall_secs: f64,
    /// Bytes written by the application.
    pub bytes_written: u64,
    /// Bytes read by the application.
    pub bytes_read: u64,
    /// Aggregate application I/O bandwidth (read+write bytes / wall time).
    pub agg_bandwidth: f64,
    /// Cache hit ratio over read chunks.
    pub cache_hit_ratio: f64,
    /// LDLM lock revocations observed.
    pub lock_revocations: u64,
    /// Seconds writers spent stalled on the dirty limit.
    pub dirty_stall_secs: f64,
    /// Metadata operations serviced.
    pub mds_ops: u64,
    /// Bulk RPCs issued.
    pub bulk_rpcs: u64,
    /// Bytes issued as readahead.
    pub readahead_bytes: u64,
    /// Stats served by statahead.
    pub statahead_hits: u64,
    /// Aggregate OST disk busy seconds.
    pub disk_busy_secs: f64,
    /// Sequential transfers across OST disks.
    pub disk_seq_ops: u64,
    /// Random (positioned) transfers across OST disks.
    pub disk_rand_ops: u64,
}

impl RunResult {
    /// Assemble from the engine's outputs.
    pub fn from_parts(wall_secs: f64, diag: &Diagnostics) -> Self {
        let chunks = diag.cache_hit_chunks + diag.cache_miss_chunks;
        RunResult {
            wall_secs,
            bytes_written: diag.bytes_written,
            bytes_read: diag.bytes_read,
            agg_bandwidth: if wall_secs > 0.0 {
                (diag.bytes_written + diag.bytes_read) as f64 / wall_secs
            } else {
                0.0
            },
            cache_hit_ratio: if chunks > 0 {
                diag.cache_hit_chunks as f64 / chunks as f64
            } else {
                0.0
            },
            lock_revocations: diag.lock_revocations,
            dirty_stall_secs: diag.dirty_stall_secs,
            mds_ops: diag.mds_ops,
            bulk_rpcs: diag.bulk_rpcs,
            readahead_bytes: diag.readahead_bytes,
            statahead_hits: diag.statahead_hits,
            disk_busy_secs: diag.disk_busy_secs,
            disk_seq_ops: diag.disk_seq_ops,
            disk_rand_ops: diag.disk_rand_ops,
        }
    }

    /// Speedup of this run relative to a baseline wall time.
    pub fn speedup_vs(&self, baseline_wall_secs: f64) -> f64 {
        if self.wall_secs > 0.0 {
            baseline_wall_secs / self.wall_secs
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_parts_derives_ratios() {
        let diag = Diagnostics {
            bytes_written: 100,
            bytes_read: 300,
            cache_hit_chunks: 3,
            cache_miss_chunks: 1,
            ..Default::default()
        };
        let r = RunResult::from_parts(2.0, &diag);
        assert_eq!(r.agg_bandwidth, 200.0);
        assert_eq!(r.cache_hit_ratio, 0.75);
    }

    #[test]
    fn zero_wall_guard() {
        let diag = Diagnostics::default();
        let r = RunResult::from_parts(0.0, &diag);
        assert_eq!(r.agg_bandwidth, 0.0);
        assert_eq!(r.speedup_vs(10.0), 0.0);
    }

    #[test]
    fn speedup() {
        let diag = Diagnostics::default();
        let r = RunResult::from_parts(2.0, &diag);
        assert_eq!(r.speedup_vs(10.0), 5.0);
    }
}
