//! The simulator facade.

pub mod cache;
pub mod disk;
pub mod engine;
pub mod state;

use crate::faults::FaultPlan;
use crate::ops::RankStream;
use crate::params::TuningConfig;
use crate::result::RunResult;
use crate::topology::ClusterSpec;
use crate::trace::{NullSink, TraceSink};
use engine::Engine;

/// A configured parallel-file-system simulator.
///
/// Each [`PfsSimulator::run`] call is one fresh "Tuning Run" step in the
/// paper's protocol: the file system starts empty, client caches cold, all
/// queued state drained (§5.1's hygiene steps are implicit in constructing a
/// fresh engine per run).
///
/// ```
/// use pfs::{ClusterSpec, PfsSimulator, TuningConfig};
/// use pfs::ops::{DirId, FileId, IoOp, Module, RankStream};
///
/// let sim = PfsSimulator::new(ClusterSpec::tiny());
/// let mut stream = RankStream::new(0, Module::Posix);
/// stream.push(IoOp::Create { file: FileId(1), dir: DirId(0) });
/// stream.push(IoOp::Write { file: FileId(1), offset: 0, len: 1 << 20 });
/// stream.push(IoOp::Close { file: FileId(1) });
///
/// let result = sim.run(vec![stream], &TuningConfig::lustre_default(), 42);
/// assert_eq!(result.bytes_written, 1 << 20);
/// assert!(result.wall_secs > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct PfsSimulator {
    topo: ClusterSpec,
}

impl PfsSimulator {
    /// Create a simulator for the given cluster.
    pub fn new(topo: ClusterSpec) -> Self {
        PfsSimulator { topo }
    }

    /// The paper's 10-node cluster.
    pub fn paper() -> Self {
        Self::new(ClusterSpec::paper_cluster())
    }

    /// Cluster description.
    pub fn topology(&self) -> &ClusterSpec {
        &self.topo
    }

    /// Execute `streams` under `cfg`, seeded with `seed`, sending the trace
    /// to `sink`. Returns wall time and diagnostics.
    pub fn run_traced(
        &self,
        streams: Vec<RankStream>,
        cfg: &TuningConfig,
        seed: u64,
        sink: &mut dyn TraceSink,
    ) -> RunResult {
        self.run_traced_faulted(streams, cfg, seed, None, sink)
    }

    /// Like [`PfsSimulator::run_traced`], but executes under an optional
    /// [`FaultPlan`]: OST service times are scaled by the plan's
    /// piecewise-constant degradation factors, evaluated in simulated time.
    /// Faults change wall times only — the trace's record sequence and shape
    /// stay identical to a pristine run of the same streams.
    pub fn run_traced_faulted(
        &self,
        streams: Vec<RankStream>,
        cfg: &TuningConfig,
        seed: u64,
        faults: Option<&FaultPlan>,
        sink: &mut dyn TraceSink,
    ) -> RunResult {
        let engine = Engine::with_faults(&self.topo, cfg, seed, sink, faults);
        let (wall, diag) = engine.run(streams);
        RunResult::from_parts(wall.as_secs_f64(), &diag)
    }

    /// Execute without tracing.
    pub fn run(&self, streams: Vec<RankStream>, cfg: &TuningConfig, seed: u64) -> RunResult {
        let mut sink = NullSink;
        self.run_traced(streams, cfg, seed, &mut sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{DirId, FileId, IoOp, Module, RankStream};

    fn topo() -> ClusterSpec {
        ClusterSpec::tiny()
    }

    fn write_stream(rank: u32, file: u32, blocks: u32, block: u64) -> RankStream {
        let mut s = RankStream::new(rank, Module::Posix);
        s.push(IoOp::Create {
            file: FileId(file),
            dir: DirId(0),
        });
        for b in 0..blocks {
            s.push(IoOp::Write {
                file: FileId(file),
                offset: b as u64 * block,
                len: block,
            });
        }
        s.push(IoOp::Close { file: FileId(file) });
        s.push(IoOp::Barrier);
        s
    }

    #[test]
    fn single_rank_write_completes() {
        let sim = PfsSimulator::new(topo());
        let cfg = TuningConfig::lustre_default();
        let r = sim.run(vec![write_stream(0, 0, 4, 1 << 20)], &cfg, 1);
        assert!(r.wall_secs > 0.0);
        assert_eq!(r.bytes_written, 4 << 20);
        assert!(r.bulk_rpcs >= 4);
    }

    #[test]
    fn determinism_same_seed() {
        let sim = PfsSimulator::new(topo());
        let cfg = TuningConfig::lustre_default();
        let mk = || {
            vec![
                write_stream(0, 0, 8, 1 << 20),
                write_stream(1, 1, 8, 1 << 20),
                write_stream(2, 2, 8, 1 << 20),
                write_stream(3, 3, 8, 1 << 20),
            ]
        };
        let a = sim.run(mk(), &cfg, 7);
        let b = sim.run(mk(), &cfg, 7);
        assert_eq!(a.wall_secs.to_bits(), b.wall_secs.to_bits());
        let c = sim.run(mk(), &cfg, 8);
        assert_ne!(a.wall_secs.to_bits(), c.wall_secs.to_bits());
    }

    #[test]
    fn striping_speeds_up_shared_file_writes() {
        // One shared file written by all ranks: stripe_count = all OSTs must
        // beat stripe_count = 1 (the headline IOR_16M mechanism).
        let sim = PfsSimulator::new(topo());
        let mk = || {
            (0..4)
                .map(|rank| {
                    let mut s = RankStream::new(rank, Module::MpiIo);
                    if rank == 0 {
                        s.push(IoOp::Create {
                            file: FileId(0),
                            dir: DirId(0),
                        });
                    } else {
                        s.push(IoOp::Open { file: FileId(0) });
                    }
                    s.push(IoOp::Barrier);
                    let block = 32u64 << 20;
                    for b in 0..4u64 {
                        s.push(IoOp::Write {
                            file: FileId(0),
                            offset: (rank as u64 * 4 + b) * block,
                            len: block,
                        });
                    }
                    s.push(IoOp::Close { file: FileId(0) });
                    s.push(IoOp::Barrier);
                    s
                })
                .collect::<Vec<_>>()
        };
        let narrow = {
            let mut c = TuningConfig::lustre_default();
            c.stripe_count = 1;
            c
        };
        let wide = {
            let mut c = TuningConfig::lustre_default();
            c.stripe_count = -1;
            c
        };
        let t_narrow = sim.run(mk(), &narrow, 3).wall_secs;
        let t_wide = sim.run(mk(), &wide, 3).wall_secs;
        assert!(
            t_wide < t_narrow * 0.8,
            "wide {t_wide} !< narrow {t_narrow} * 0.8"
        );
    }

    #[test]
    fn readahead_speeds_up_sequential_reads() {
        let sim = PfsSimulator::new(topo());
        let mk = || {
            // Rank 0 writes, barrier, rank 1 reads sequentially (cold cache
            // on rank 1's client node — tiny() puts ranks 0,1 on client 0;
            // use ranks 0 and 2 for distinct clients).
            let block = 1u64 << 20;
            let blocks = 64u64;
            let mut w = RankStream::new(0, Module::Posix);
            w.push(IoOp::Create {
                file: FileId(0),
                dir: DirId(0),
            });
            for b in 0..blocks {
                w.push(IoOp::Write {
                    file: FileId(0),
                    offset: b * block,
                    len: block,
                });
            }
            w.push(IoOp::Close { file: FileId(0) });
            w.push(IoOp::Barrier);
            let mut r = RankStream::new(2, Module::Posix);
            r.push(IoOp::Barrier);
            r.push(IoOp::Open { file: FileId(0) });
            for b in 0..blocks {
                r.push(IoOp::Read {
                    file: FileId(0),
                    offset: b * block,
                    len: block,
                });
            }
            r.push(IoOp::Close { file: FileId(0) });
            vec![w, r]
        };
        let with_ra = TuningConfig::lustre_default();
        let mut no_ra = TuningConfig::lustre_default();
        no_ra.llite_max_read_ahead_mb = 0;
        let t_ra = sim.run(mk(), &with_ra, 5).wall_secs;
        let t_none = sim.run(mk(), &no_ra, 5).wall_secs;
        assert!(t_ra < t_none, "ra {t_ra} !< none {t_none}");
    }

    #[test]
    fn statahead_speeds_up_stat_scans() {
        let sim = PfsSimulator::new(topo());
        let mk = || {
            let n = 200u32;
            let mut s = RankStream::new(0, Module::Posix);
            s.push(IoOp::Mkdir { dir: DirId(1) });
            for i in 0..n {
                s.push(IoOp::Create {
                    file: FileId(i),
                    dir: DirId(1),
                });
                s.push(IoOp::Close { file: FileId(i) });
            }
            for i in 0..n {
                s.push(IoOp::Stat { file: FileId(i) });
            }
            vec![s]
        };
        let with_sa = TuningConfig::lustre_default();
        let mut no_sa = TuningConfig::lustre_default();
        no_sa.llite_statahead_max = 0;
        let t_sa = sim.run(mk(), &with_sa, 9);
        let t_none = sim.run(mk(), &no_sa, 9);
        assert!(t_sa.statahead_hits > 0);
        assert_eq!(t_none.statahead_hits, 0);
        assert!(
            t_sa.wall_secs < t_none.wall_secs,
            "sa {} !< none {}",
            t_sa.wall_secs,
            t_none.wall_secs
        );
    }

    #[test]
    fn metadata_windows_help_many_ranks() {
        // 2 ranks per client hammering creates: deeper mod window helps when
        // ranks outnumber the window... with 2 ranks/client the default of 7
        // suffices, so instead verify a *shrunk* window hurts.
        let sim = PfsSimulator::new(topo());
        let mk = || {
            (0..4u32)
                .map(|rank| {
                    let mut s = RankStream::new(rank, Module::Posix);
                    s.push(IoOp::Mkdir {
                        dir: DirId(rank + 1),
                    });
                    for i in 0..150u32 {
                        let f = FileId(rank * 1000 + i);
                        s.push(IoOp::Create {
                            file: f,
                            dir: DirId(rank + 1),
                        });
                        s.push(IoOp::Close { file: f });
                    }
                    s
                })
                .collect::<Vec<_>>()
        };
        let deep = TuningConfig::lustre_default();
        let mut shallow = TuningConfig::lustre_default();
        shallow.mdc_max_rpcs_in_flight = 2;
        shallow.mdc_max_mod_rpcs_in_flight = 1;
        let t_deep = sim.run(mk(), &deep, 11).wall_secs;
        let t_shallow = sim.run(mk(), &shallow, 11).wall_secs;
        assert!(t_deep < t_shallow, "deep {t_deep} !< shallow {t_shallow}");
    }

    #[test]
    fn lock_conflicts_recorded_on_shared_random_writes() {
        let sim = PfsSimulator::new(topo());
        let mk = || {
            // Ranks on different clients interleave writes over the same
            // regions.
            (0..4u32)
                .map(|rank| {
                    let mut s = RankStream::new(rank, Module::Posix);
                    if rank == 0 {
                        s.push(IoOp::Create {
                            file: FileId(0),
                            dir: DirId(0),
                        });
                    }
                    s.push(IoOp::Barrier);
                    for i in 0..32u64 {
                        s.push(IoOp::Write {
                            file: FileId(0),
                            offset: ((i * 4 + rank as u64) * 97) % 64 * (1 << 20),
                            len: 64 * 1024,
                        });
                    }
                    s.push(IoOp::Barrier);
                    s
                })
                .collect::<Vec<_>>()
        };
        let r = sim.run(mk(), &TuningConfig::lustre_default(), 13);
        assert!(r.lock_revocations > 0, "expected cross-client revocations");
    }

    #[test]
    fn trace_sink_receives_records() {
        use crate::trace::VecSink;
        let sim = PfsSimulator::new(topo());
        let cfg = TuningConfig::lustre_default();
        let mut sink = VecSink::default();
        sim.run_traced(vec![write_stream(0, 0, 2, 1 << 20)], &cfg, 1, &mut sink);
        // create + 2 writes + close (barrier emits nothing)
        assert!(sink.records.len() >= 4);
        assert!(sink
            .records
            .iter()
            .any(|r| matches!(r.class, crate::trace::OpClass::Write)));
    }

    #[test]
    fn faults_slow_runs_without_changing_trace_shape() {
        use crate::faults::{FaultEvent, FaultKind, FaultPlan};
        use crate::trace::VecSink;
        let sim = PfsSimulator::new(topo());
        let cfg = TuningConfig::lustre_default();
        let mk = || vec![write_stream(0, 0, 16, 4 << 20)];
        let plan = FaultPlan::new(
            (0..topo().ost_count())
                .map(|ost| FaultEvent {
                    at_nanos: 0,
                    ost,
                    kind: FaultKind::Degrade { factor: 8.0 },
                })
                .collect(),
        );

        let mut pristine_sink = VecSink::default();
        let pristine = sim.run_traced(mk(), &cfg, 23, &mut pristine_sink);
        let mut faulted_sink = VecSink::default();
        let faulted = sim.run_traced_faulted(mk(), &cfg, 23, Some(&plan), &mut faulted_sink);

        assert!(
            faulted.wall_secs > pristine.wall_secs,
            "faulted {} !> pristine {}",
            faulted.wall_secs,
            pristine.wall_secs
        );
        // Same op sequence, same classes and byte counts — only times move.
        assert_eq!(pristine_sink.records.len(), faulted_sink.records.len());
        for (p, f) in pristine_sink.records.iter().zip(&faulted_sink.records) {
            assert_eq!(p.rank, f.rank);
            assert_eq!(p.class, f.class);
            assert_eq!(p.bytes, f.bytes);
        }
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        use crate::faults::FaultPlan;
        let sim = PfsSimulator::new(topo());
        let cfg = TuningConfig::lustre_default();
        let mk = || {
            vec![
                write_stream(0, 0, 8, 1 << 20),
                write_stream(1, 1, 8, 1 << 20),
            ]
        };
        let plan = FaultPlan::seeded(topo().ost_count(), 99);
        let mut sink_a = crate::trace::NullSink;
        let a = sim.run_traced_faulted(mk(), &cfg, 31, Some(&plan), &mut sink_a);
        let mut sink_b = crate::trace::NullSink;
        let b = sim.run_traced_faulted(mk(), &cfg, 31, Some(&plan), &mut sink_b);
        assert_eq!(a.wall_secs.to_bits(), b.wall_secs.to_bits());
        // Empty plan is bit-identical to the pristine path.
        let empty = FaultPlan::default();
        let c = sim.run_traced_faulted(mk(), &cfg, 31, Some(&empty), &mut crate::trace::NullSink);
        let d = sim.run(mk(), &cfg, 31);
        assert_eq!(c.wall_secs.to_bits(), d.wall_secs.to_bits());
    }

    #[test]
    fn recovery_lands_between_pristine_and_degraded() {
        use crate::faults::{FaultEvent, FaultKind, FaultPlan};
        let sim = PfsSimulator::new(topo());
        let cfg = TuningConfig::lustre_default();
        let mk = || vec![write_stream(0, 0, 32, 4 << 20)];
        let pristine = sim.run(mk(), &cfg, 41).wall_secs;
        let degrade_all = |kind_at: &[(u64, FaultKind)]| {
            FaultPlan::new(
                (0..topo().ost_count())
                    .flat_map(|ost| {
                        kind_at.iter().map(move |&(at_nanos, kind)| FaultEvent {
                            at_nanos,
                            ost,
                            kind,
                        })
                    })
                    .collect(),
            )
        };
        let forever = degrade_all(&[(0, FaultKind::Degrade { factor: 16.0 })]);
        let degraded = sim
            .run_traced_faulted(mk(), &cfg, 41, Some(&forever), &mut crate::trace::NullSink)
            .wall_secs;
        // Recover at half the pristine wall: the tail runs at full speed.
        let mid = (pristine * 0.5 * 1e9) as u64;
        let healing = degrade_all(&[
            (0, FaultKind::Degrade { factor: 16.0 }),
            (mid, FaultKind::Recover),
        ]);
        let recovered = sim
            .run_traced_faulted(mk(), &cfg, 41, Some(&healing), &mut crate::trace::NullSink)
            .wall_secs;
        assert!(
            pristine < recovered && recovered < degraded,
            "expected pristine {pristine} < recovered {recovered} < degraded {degraded}"
        );
    }

    #[test]
    fn dirty_limit_causes_stalls_when_tiny() {
        let sim = PfsSimulator::new(topo());
        let mk = || vec![write_stream(0, 0, 64, 4 << 20)];
        let mut tiny_dirty = TuningConfig::lustre_default();
        tiny_dirty.osc_max_dirty_mb = 1;
        let r = sim.run(mk(), &tiny_dirty, 17);
        assert!(r.dirty_stall_secs > 0.0);
        let big = TuningConfig::lustre_default();
        let r2 = sim.run(mk(), &big, 17);
        assert!(r2.dirty_stall_secs <= r.dirty_stall_secs);
    }
}

#[cfg(test)]
mod proptests;
