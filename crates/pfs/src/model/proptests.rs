//! Property-based tests of the simulator engine: conservation, monotonicity
//! and robustness invariants that must hold for any workload shape.

#![cfg(test)]

use crate::faults::FaultPlan;
use crate::model::engine::Engine;
use crate::ops::{DirId, FileId, IoOp, Module, RankStream};
use crate::params::TuningConfig;
use crate::topology::ClusterSpec;
use crate::trace::VecSink;
use crate::PfsSimulator;
use proptest::prelude::*;

/// Strategy: a small random workload over a tiny cluster — mixed data and
/// metadata ops with well-formed create/write/read/close/unlink ordering.
fn arb_streams() -> impl Strategy<Value = Vec<RankStream>> {
    let per_rank = proptest::collection::vec((0u8..5, 0u64..8, 1u64..512), 1..20);
    proptest::collection::vec(per_rank, 4..5).prop_map(|ranks| {
        ranks
            .into_iter()
            .enumerate()
            .map(|(rank, ops)| {
                let rank = rank as u32;
                let file = FileId(rank + 1);
                let mut s = RankStream::new(rank, Module::Posix);
                s.push(IoOp::Create {
                    file,
                    dir: DirId(0),
                });
                for (kind, slot, len_kb) in ops {
                    let offset = slot * (1 << 20);
                    let len = len_kb * 1024;
                    match kind {
                        0 | 1 => s.push(IoOp::Write { file, offset, len }),
                        2 => s.push(IoOp::Read { file, offset, len }),
                        3 => s.push(IoOp::Stat { file }),
                        _ => s.push(IoOp::Fsync { file }),
                    }
                }
                s.push(IoOp::Close { file });
                s
            })
            .collect()
    })
}

/// Run `streams` twice through otherwise-identical engines — one with the
/// default lazy/sparse state, one with every per-OST and per-(client, OST)
/// slot prematerialized the way the old dense layout constructed them — and
/// assert every observable output is bit-identical: the full trace record
/// sequence (canonical JSONL and Darshan counters are pure functions of it),
/// the wall clock's f64 bits, and every diagnostics counter.
fn assert_lazy_equals_dense(
    topo: &ClusterSpec,
    streams: Vec<RankStream>,
    cfg: &TuningConfig,
    seed: u64,
    plan: Option<&FaultPlan>,
) {
    let mut lazy_sink = VecSink::default();
    let lazy_engine = Engine::with_faults(topo, cfg, seed, &mut lazy_sink, plan);
    let (lazy_wall, lazy_diag) = lazy_engine.run(streams.clone());

    let mut dense_sink = VecSink::default();
    let mut dense_engine = Engine::with_faults(topo, cfg, seed, &mut dense_sink, plan);
    dense_engine.prematerialize_dense();
    let (dense_wall, dense_diag) = dense_engine.run(streams);

    prop_assert_eq!(
        lazy_wall.as_secs_f64().to_bits(),
        dense_wall.as_secs_f64().to_bits()
    );
    prop_assert_eq!(lazy_diag.bytes_written, dense_diag.bytes_written);
    prop_assert_eq!(lazy_diag.bytes_read, dense_diag.bytes_read);
    prop_assert_eq!(lazy_diag.cache_hit_chunks, dense_diag.cache_hit_chunks);
    prop_assert_eq!(lazy_diag.cache_miss_chunks, dense_diag.cache_miss_chunks);
    prop_assert_eq!(lazy_diag.lock_revocations, dense_diag.lock_revocations);
    prop_assert_eq!(
        lazy_diag.dirty_stall_secs.to_bits(),
        dense_diag.dirty_stall_secs.to_bits()
    );
    prop_assert_eq!(lazy_diag.mds_ops, dense_diag.mds_ops);
    prop_assert_eq!(lazy_diag.bulk_rpcs, dense_diag.bulk_rpcs);
    prop_assert_eq!(lazy_diag.readahead_bytes, dense_diag.readahead_bytes);
    prop_assert_eq!(lazy_diag.statahead_hits, dense_diag.statahead_hits);
    prop_assert_eq!(
        lazy_diag.disk_busy_secs.to_bits(),
        dense_diag.disk_busy_secs.to_bits()
    );
    prop_assert_eq!(lazy_diag.disk_seq_ops, dense_diag.disk_seq_ops);
    prop_assert_eq!(lazy_diag.disk_rand_ops, dense_diag.disk_rand_ops);

    prop_assert_eq!(lazy_sink.records.len(), dense_sink.records.len());
    for (l, d) in lazy_sink.records.iter().zip(&dense_sink.records) {
        prop_assert_eq!(l.rank, d.rank);
        prop_assert_eq!(l.file, d.file);
        prop_assert_eq!(l.module, d.module);
        prop_assert_eq!(l.class, d.class);
        prop_assert_eq!(l.offset, d.offset);
        prop_assert_eq!(l.bytes, d.bytes);
        prop_assert_eq!(l.start, d.start);
        prop_assert_eq!(l.end, d.end);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any well-formed workload completes with finite, positive wall time
    /// and exact byte conservation.
    #[test]
    fn engine_conserves_bytes(streams in arb_streams(), seed in 0u64..500) {
        let declared_w: u64 = streams.iter().map(|s| s.bytes_written()).sum();
        let declared_r: u64 = streams.iter().map(|s| s.bytes_read()).sum();
        let sim = PfsSimulator::new(ClusterSpec::tiny());
        let r = sim.run(streams, &TuningConfig::lustre_default(), seed);
        prop_assert!(r.wall_secs.is_finite());
        prop_assert!(r.wall_secs > 0.0);
        prop_assert_eq!(r.bytes_written, declared_w);
        prop_assert_eq!(r.bytes_read, declared_r);
    }

    /// Bit-exact determinism for arbitrary workloads.
    #[test]
    fn engine_deterministic(streams in arb_streams()) {
        let sim = PfsSimulator::new(ClusterSpec::tiny());
        let cfg = TuningConfig::lustre_default();
        let a = sim.run(streams.clone(), &cfg, 7);
        let b = sim.run(streams, &cfg, 7);
        prop_assert_eq!(a.wall_secs.to_bits(), b.wall_secs.to_bits());
        prop_assert_eq!(a.bulk_rpcs, b.bulk_rpcs);
        prop_assert_eq!(a.mds_ops, b.mds_ops);
        prop_assert_eq!(a.lock_revocations, b.lock_revocations);
    }

    /// Adding pure compute never meaningfully reduces wall time. (Noise is
    /// disabled and a small slack allowed: inserting compute shifts event
    /// interleaving at shared FIFO resources, which can locally reorder
    /// service by a few microseconds.)
    #[test]
    fn compute_is_monotone(streams in arb_streams(), extra_ms in 1u64..500) {
        let mut topo = ClusterSpec::tiny();
        topo.op_noise_sigma = 0.0;
        topo.run_noise_sigma = 0.0;
        let sim = PfsSimulator::new(topo);
        let cfg = TuningConfig::lustre_default();
        let base = sim.run(streams.clone(), &cfg, 3).wall_secs;
        let mut heavier = streams;
        heavier[0].ops.insert(
            1,
            IoOp::Compute {
                nanos: extra_ms * 1_000_000,
            },
        );
        let slower = sim.run(heavier, &cfg, 3).wall_secs;
        prop_assert!(slower >= base * 0.98 - 1e-6, "{slower} < {base}");
    }

    /// Sparse/lazy engine state is bit-identical to dense prematerialized
    /// state: traces, wall bits and every diagnostics counter, across
    /// random workloads × seeds × topologies × fault plans.
    #[test]
    fn lazy_state_equals_dense_state(
        streams in arb_streams(),
        seed in 0u64..200,
        wide in 0u8..2,
        fault_sel in 0u64..200,
    ) {
        // `tiny` packs ranks onto few clients; `scaled` spreads them over a
        // wider OST grid where most (client, OST) pairs stay untouched.
        let topo = if wide == 1 {
            ClusterSpec::scaled(100, 7)
        } else {
            ClusterSpec::tiny()
        };
        // Odd selectors run faulted (seeded plan), even ones pristine.
        let plan = (fault_sel % 2 == 1).then(|| FaultPlan::seeded(topo.ost_count(), fault_sel / 2));
        let cfg = TuningConfig::lustre_default();
        assert_lazy_equals_dense(&topo, streams, &cfg, seed, plan.as_ref());
    }

    /// Same equivalence through the barrier path: every rank hits a barrier,
    /// so the release schedules the whole cohort at one instant and the
    /// batched event drain (`EventQueue::pop_run_into`) processes a full
    /// same-timestamp run — the exact shape that regressed tie-order would
    /// corrupt.
    #[test]
    fn lazy_state_equals_dense_state_with_barriers(
        streams in arb_streams(),
        seed in 0u64..200,
    ) {
        let mut streams = streams;
        for s in &mut streams {
            // After the leading Create (index 0): everyone synchronizes.
            s.ops.insert(1, IoOp::Barrier);
            s.push(IoOp::Barrier);
        }
        let topo = ClusterSpec::tiny();
        let cfg = TuningConfig::lustre_default();
        assert_lazy_equals_dense(&topo, streams, &cfg, seed, None);
    }

    /// Disabling every cache/pipeline aid never *helps*: the deliberately
    /// hobbled configuration is at least as slow as the default.
    #[test]
    fn hobbled_config_never_faster(streams in arb_streams()) {
        let sim = PfsSimulator::new(ClusterSpec::tiny());
        let default = TuningConfig::lustre_default();
        let mut hobbled = TuningConfig::lustre_default();
        hobbled.osc_max_rpcs_in_flight = 1;
        hobbled.osc_max_pages_per_rpc = 32;
        hobbled.osc_max_dirty_mb = 1;
        hobbled.llite_max_read_ahead_mb = 0;
        hobbled.llite_max_read_ahead_per_file_mb = 0;
        hobbled.llite_statahead_max = 0;
        hobbled.osc_short_io_bytes = 0;
        hobbled.mdc_max_rpcs_in_flight = 1;
        hobbled.mdc_max_mod_rpcs_in_flight = 1;
        let fast = sim.run(streams.clone(), &default, 9).wall_secs;
        let slow = sim.run(streams, &hobbled, 9).wall_secs;
        // Allow a sliver of slack: noise draws differ per config only via
        // op-order, which both runs share; slack covers rounding.
        prop_assert!(slow >= fast * 0.98, "hobbled {slow} < default {fast}");
    }
}
