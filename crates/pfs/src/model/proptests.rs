//! Property-based tests of the simulator engine: conservation, monotonicity
//! and robustness invariants that must hold for any workload shape.

#![cfg(test)]

use crate::ops::{DirId, FileId, IoOp, Module, RankStream};
use crate::params::TuningConfig;
use crate::topology::ClusterSpec;
use crate::PfsSimulator;
use proptest::prelude::*;

/// Strategy: a small random workload over a tiny cluster — mixed data and
/// metadata ops with well-formed create/write/read/close/unlink ordering.
fn arb_streams() -> impl Strategy<Value = Vec<RankStream>> {
    let per_rank = proptest::collection::vec((0u8..5, 0u64..8, 1u64..512), 1..20);
    proptest::collection::vec(per_rank, 4..5).prop_map(|ranks| {
        ranks
            .into_iter()
            .enumerate()
            .map(|(rank, ops)| {
                let rank = rank as u32;
                let file = FileId(rank + 1);
                let mut s = RankStream::new(rank, Module::Posix);
                s.push(IoOp::Create {
                    file,
                    dir: DirId(0),
                });
                for (kind, slot, len_kb) in ops {
                    let offset = slot * (1 << 20);
                    let len = len_kb * 1024;
                    match kind {
                        0 | 1 => s.push(IoOp::Write { file, offset, len }),
                        2 => s.push(IoOp::Read { file, offset, len }),
                        3 => s.push(IoOp::Stat { file }),
                        _ => s.push(IoOp::Fsync { file }),
                    }
                }
                s.push(IoOp::Close { file });
                s
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any well-formed workload completes with finite, positive wall time
    /// and exact byte conservation.
    #[test]
    fn engine_conserves_bytes(streams in arb_streams(), seed in 0u64..500) {
        let declared_w: u64 = streams.iter().map(|s| s.bytes_written()).sum();
        let declared_r: u64 = streams.iter().map(|s| s.bytes_read()).sum();
        let sim = PfsSimulator::new(ClusterSpec::tiny());
        let r = sim.run(streams, &TuningConfig::lustre_default(), seed);
        prop_assert!(r.wall_secs.is_finite());
        prop_assert!(r.wall_secs > 0.0);
        prop_assert_eq!(r.bytes_written, declared_w);
        prop_assert_eq!(r.bytes_read, declared_r);
    }

    /// Bit-exact determinism for arbitrary workloads.
    #[test]
    fn engine_deterministic(streams in arb_streams()) {
        let sim = PfsSimulator::new(ClusterSpec::tiny());
        let cfg = TuningConfig::lustre_default();
        let a = sim.run(streams.clone(), &cfg, 7);
        let b = sim.run(streams, &cfg, 7);
        prop_assert_eq!(a.wall_secs.to_bits(), b.wall_secs.to_bits());
        prop_assert_eq!(a.bulk_rpcs, b.bulk_rpcs);
        prop_assert_eq!(a.mds_ops, b.mds_ops);
        prop_assert_eq!(a.lock_revocations, b.lock_revocations);
    }

    /// Adding pure compute never meaningfully reduces wall time. (Noise is
    /// disabled and a small slack allowed: inserting compute shifts event
    /// interleaving at shared FIFO resources, which can locally reorder
    /// service by a few microseconds.)
    #[test]
    fn compute_is_monotone(streams in arb_streams(), extra_ms in 1u64..500) {
        let mut topo = ClusterSpec::tiny();
        topo.op_noise_sigma = 0.0;
        topo.run_noise_sigma = 0.0;
        let sim = PfsSimulator::new(topo);
        let cfg = TuningConfig::lustre_default();
        let base = sim.run(streams.clone(), &cfg, 3).wall_secs;
        let mut heavier = streams;
        heavier[0].ops.insert(
            1,
            IoOp::Compute {
                nanos: extra_ms * 1_000_000,
            },
        );
        let slower = sim.run(heavier, &cfg, 3).wall_secs;
        prop_assert!(slower >= base * 0.98 - 1e-6, "{slower} < {base}");
    }

    /// Disabling every cache/pipeline aid never *helps*: the deliberately
    /// hobbled configuration is at least as slow as the default.
    #[test]
    fn hobbled_config_never_faster(streams in arb_streams()) {
        let sim = PfsSimulator::new(ClusterSpec::tiny());
        let default = TuningConfig::lustre_default();
        let mut hobbled = TuningConfig::lustre_default();
        hobbled.osc_max_rpcs_in_flight = 1;
        hobbled.osc_max_pages_per_rpc = 32;
        hobbled.osc_max_dirty_mb = 1;
        hobbled.llite_max_read_ahead_mb = 0;
        hobbled.llite_max_read_ahead_per_file_mb = 0;
        hobbled.llite_statahead_max = 0;
        hobbled.osc_short_io_bytes = 0;
        hobbled.mdc_max_rpcs_in_flight = 1;
        hobbled.mdc_max_mod_rpcs_in_flight = 1;
        let fast = sim.run(streams.clone(), &default, 9).wall_secs;
        let slow = sim.run(streams, &hobbled, 9).wall_secs;
        // Allow a sliver of slack: noise draws differ per config only via
        // op-order, which both runs share; slack covers rounding.
        prop_assert!(slow >= fast * 0.98, "hobbled {slow} < default {fast}");
    }
}
