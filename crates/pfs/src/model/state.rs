//! Mutable per-entity state of a simulation run: OSC/MDC pipelines, file and
//! directory metadata, readahead and statahead machines, extent locks.

use crate::ops::DirId;
use crate::stripe::Layout;
use simcore::hash::FxBuildHasher;
use simcore::resources::Window;
use simcore::time::{Duration, SimTime};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};

/// Per (client, OST) object-storage-client state.
#[derive(Debug)]
pub struct OscState {
    /// Bulk RPC concurrency window (`osc.max_rpcs_in_flight`).
    pub window: Window,
    /// Dirty bytes currently buffered against this OSC.
    pub dirty_bytes: u64,
    /// Pending writeback completions `(end, bytes)`.
    pub wb_pending: BinaryHeap<Reverse<(SimTime, u64)>>,
    /// Cumulative time writers stalled on the dirty limit.
    pub dirty_stall: Duration,
}

impl OscState {
    /// Create with the given RPC window capacity.
    pub fn new(max_rpcs: usize) -> Self {
        OscState {
            window: Window::new(max_rpcs.max(1)),
            dirty_bytes: 0,
            wb_pending: BinaryHeap::new(),
            dirty_stall: Duration::ZERO,
        }
    }

    /// Retire writebacks that completed at or before `now`.
    pub fn advance(&mut self, now: SimTime) {
        while let Some(&Reverse((end, bytes))) = self.wb_pending.peek() {
            if end <= now {
                self.wb_pending.pop();
                self.dirty_bytes = self.dirty_bytes.saturating_sub(bytes);
            } else {
                break;
            }
        }
    }

    /// Earliest instant at which `need` bytes of headroom exist under `cap`,
    /// starting from `now`. Returns `None` if draining everything still
    /// cannot make room (need > cap with no pending data to retire).
    pub fn drain_until_room(&mut self, now: SimTime, need: u64, cap: u64) -> Option<SimTime> {
        self.advance(now);
        let mut t = now;
        while self.dirty_bytes + need > cap {
            match self.wb_pending.pop() {
                Some(Reverse((end, bytes))) => {
                    self.dirty_bytes = self.dirty_bytes.saturating_sub(bytes);
                    t = t.max(end);
                }
                None => {
                    // Nothing left to drain; admit anyway (single op larger
                    // than the cap must still make progress).
                    return if need > cap { Some(t) } else { None };
                }
            }
        }
        Some(t)
    }
}

/// Per-client metadata-client state.
#[derive(Debug)]
pub struct MdcState {
    /// Non-modifying metadata RPC window (`mdc.max_rpcs_in_flight`).
    pub rpc_window: Window,
    /// Modifying metadata RPC window (`mdc.max_mod_rpcs_in_flight`).
    pub mod_window: Window,
}

impl MdcState {
    /// Create with the given window capacities.
    pub fn new(max_rpcs: usize, max_mod_rpcs: usize) -> Self {
        MdcState {
            rpc_window: Window::new(max_rpcs.max(1)),
            mod_window: Window::new(max_mod_rpcs.max(1)),
        }
    }
}

/// Dirty extents of one (client, file, object) stream awaiting writeback.
///
/// Ranges are kept coalesced: Lustre's writeback sorts and merges adjacent
/// dirty pages, so random small writes that eventually fill a region flush
/// as large sequential RPCs — the mechanism that makes `osc.max_dirty_mb`
/// and `osc.max_pages_per_rpc` powerful for random-write workloads.
#[derive(Debug, Clone, Default)]
pub struct DirtyRanges {
    /// start -> len, non-overlapping, non-adjacent (always coalesced).
    ranges: BTreeMap<u64, u64>,
    /// OST holding the object.
    pub ost: u32,
}

impl DirtyRanges {
    /// Create an empty set for an object on `ost`.
    pub fn new(ost: u32) -> Self {
        DirtyRanges {
            ranges: BTreeMap::new(),
            ost,
        }
    }

    /// Insert `[start, start+len)`, merging with any adjacent or overlapping
    /// ranges. Returns the merged run containing the insertion.
    pub fn insert(&mut self, start: u64, len: u64) -> (u64, u64) {
        if len == 0 {
            return (start, 0);
        }
        let mut new_start = start;
        let mut new_end = start + len;
        // Merge with a predecessor that touches or overlaps.
        if let Some((&ps, &pl)) = self.ranges.range(..=start).next_back() {
            if ps + pl >= new_start {
                new_start = ps;
                new_end = new_end.max(ps + pl);
                self.ranges.remove(&ps);
            }
        }
        // Merge with successors that touch or overlap.
        while let Some((&ns, &nl)) = self.ranges.range(new_start..).next() {
            if ns <= new_end {
                new_end = new_end.max(ns + nl);
                self.ranges.remove(&ns);
            } else {
                break;
            }
        }
        self.ranges.insert(new_start, new_end - new_start);
        (new_start, new_end - new_start)
    }

    /// Remove and return the run starting at `start` (must exist).
    pub fn take(&mut self, start: u64) -> Option<(u64, u64)> {
        self.ranges.remove(&start).map(|len| (start, len))
    }

    /// Iterate `(start, len)` over runs in offset order.
    pub fn iter_runs(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.ranges.iter().map(|(&s, &l)| (s, l))
    }

    /// Remove and return all runs, in offset order.
    pub fn drain_all(&mut self) -> Vec<(u64, u64)> {
        let out: Vec<(u64, u64)> = self.ranges.iter().map(|(&s, &l)| (s, l)).collect();
        self.ranges.clear();
        out
    }

    /// Like [`drain_all`](Self::drain_all), but appending into a
    /// caller-provided buffer (offset order) so flush paths on the engine's
    /// hot loop can reuse one allocation across ops.
    pub fn drain_all_into(&mut self, out: &mut Vec<(u64, u64)>) {
        out.extend(self.ranges.iter().map(|(&s, &l)| (s, l)));
        self.ranges.clear();
    }

    /// Total dirty bytes tracked.
    pub fn total(&self) -> u64 {
        self.ranges.values().sum()
    }

    /// Whether no dirty data remains.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }
}

/// Per (client, file) readahead state machine.
#[derive(Debug, Clone, Default)]
pub struct RaState {
    /// Next expected sequential offset.
    pub expect: u64,
    /// Current window size in bytes (0 = not streaming).
    pub window: u64,
    /// Whether whole-file readahead already fired.
    pub whole_done: bool,
}

/// Per (client, directory) statahead state machine.
///
/// Mirrors Lustre's behaviour: the statahead thread starts after a short
/// sequential run and prefetches up to `statahead_max` entries *per scan*;
/// once the budget is consumed, subsequent stats fall back to synchronous
/// RPCs until a new scan re-activates it. This is why the default of 32 is
/// inadequate for 400-entry directories and why the paper's Tuning Agent
/// raises it (Fig. 10).
#[derive(Debug, Clone, Default)]
pub struct SaState {
    /// Next expected entry index (creation order).
    pub expect_index: u32,
    /// Length of the current sequential stat run.
    pub run: u32,
    /// Whether the statahead thread is active for this directory.
    pub active: bool,
    /// Entries already prefetched in this activation (budget consumed).
    pub consumed: u32,
}

/// File metadata within a run.
#[derive(Debug, Clone)]
pub struct FileState {
    /// Stripe layout fixed at creation.
    pub layout: Layout,
    /// Current size in bytes (high-water mark of writes).
    pub size: u64,
    /// Parent directory.
    pub dir: DirId,
    /// Creation-order index within the parent directory.
    pub create_index: u32,
    /// Latest writeback completion across all clients (fsync/unlink waits).
    pub last_wb_end: SimTime,
    /// Whether the file currently exists.
    pub exists: bool,
}

/// Directory metadata within a run.
#[derive(Debug, Clone, Default)]
pub struct DirState {
    /// Number of entries created so far.
    pub entries: u32,
}

/// Extent-lock table for one file: maps lock-region index to holding client.
///
/// Regions are fixed-size slices of *file* offset space (an approximation of
/// per-object extent locks that keeps cross-client write conflicts visible).
#[derive(Debug, Default)]
pub struct LockTable {
    // determinism audit (D002): point lookups per lock region, visited in
    // ascending region order by `acquire` — never iterated as a map
    holders: HashMap<u64, u32, FxBuildHasher>,
    conflicts: u64,
}

/// Lock region granularity (16 MiB of file offset space).
pub const LOCK_REGION_BYTES: u64 = 16 << 20;

impl LockTable {
    /// Acquire regions covering `[offset, offset+len)` for `client`.
    /// Returns the number of revocations (regions held by another client).
    pub fn acquire(&mut self, client: u32, offset: u64, len: u64) -> u32 {
        if len == 0 {
            return 0;
        }
        let first = offset / LOCK_REGION_BYTES;
        let last = (offset + len - 1) / LOCK_REGION_BYTES;
        let mut revocations = 0;
        for region in first..=last {
            match self.holders.get_mut(&region) {
                Some(holder) if *holder != client => {
                    *holder = client;
                    revocations += 1;
                    self.conflicts += 1;
                }
                Some(_) => {}
                None => {
                    self.holders.insert(region, client);
                }
            }
        }
        revocations
    }

    /// Total conflicts observed on this file.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn osc_advance_retires_completed() {
        let mut o = OscState::new(8);
        o.dirty_bytes = 300;
        o.wb_pending.push(Reverse((SimTime::from_secs(1), 100)));
        o.wb_pending.push(Reverse((SimTime::from_secs(3), 200)));
        o.advance(SimTime::from_secs(2));
        assert_eq!(o.dirty_bytes, 200);
        o.advance(SimTime::from_secs(3));
        assert_eq!(o.dirty_bytes, 0);
    }

    #[test]
    fn drain_until_room_waits_for_completions() {
        let mut o = OscState::new(8);
        o.dirty_bytes = 100;
        o.wb_pending.push(Reverse((SimTime::from_secs(5), 60)));
        // cap 120, need 50: must retire the 60-byte writeback at t=5.
        let t = o.drain_until_room(SimTime::from_secs(1), 50, 120).unwrap();
        assert_eq!(t, SimTime::from_secs(5));
        assert_eq!(o.dirty_bytes, 40);
    }

    #[test]
    fn drain_until_room_immediate_when_fits() {
        let mut o = OscState::new(8);
        o.dirty_bytes = 10;
        let t = o.drain_until_room(SimTime::from_secs(1), 5, 100).unwrap();
        assert_eq!(t, SimTime::from_secs(1));
    }

    #[test]
    fn drain_oversized_single_op_proceeds() {
        let mut o = OscState::new(8);
        // need > cap with nothing pending: must not deadlock.
        let t = o.drain_until_room(SimTime::from_secs(2), 500, 100).unwrap();
        assert_eq!(t, SimTime::from_secs(2));
    }

    #[test]
    fn lock_table_conflict_counting() {
        let mut l = LockTable::default();
        assert_eq!(l.acquire(0, 0, 1000), 0); // fresh grant
        assert_eq!(l.acquire(0, 0, 1000), 0); // same client, no conflict
        assert_eq!(l.acquire(1, 0, 1000), 1); // stolen
        assert_eq!(l.acquire(0, 0, 1000), 1); // stolen back
        assert_eq!(l.conflicts(), 2);
    }

    #[test]
    fn lock_spanning_regions() {
        let mut l = LockTable::default();
        // Extent spanning two regions: two grants, then two revocations.
        let len = LOCK_REGION_BYTES + 10;
        assert_eq!(l.acquire(0, 0, len), 0);
        assert_eq!(l.acquire(1, 0, len), 2);
        assert_eq!(l.acquire(2, 0, 0), 0); // empty extent
    }

    #[test]
    fn ra_state_default_not_streaming() {
        let ra = RaState::default();
        assert_eq!(ra.window, 0);
        assert!(!ra.whole_done);
    }

    #[test]
    fn dirty_ranges_coalesce_adjacent() {
        let mut d = DirtyRanges::new(0);
        d.insert(0, 100);
        let (s, l) = d.insert(100, 50); // adjacent: merges
        assert_eq!((s, l), (0, 150));
        assert_eq!(d.total(), 150);
        assert_eq!(d.drain_all(), vec![(0, 150)]);
    }

    #[test]
    fn dirty_ranges_random_fill_becomes_one_run() {
        // Random permutation of 16 chunks coalesces to one 16-chunk run.
        let mut d = DirtyRanges::new(0);
        let order = [5u64, 12, 0, 7, 3, 15, 9, 1, 14, 6, 11, 2, 8, 13, 4, 10];
        for &i in &order {
            d.insert(i * 64, 64);
        }
        assert_eq!(d.drain_all(), vec![(0, 16 * 64)]);
    }

    #[test]
    fn dirty_ranges_disjoint_stay_separate() {
        let mut d = DirtyRanges::new(0);
        d.insert(0, 10);
        d.insert(100, 10);
        assert_eq!(d.total(), 20);
        let all = d.drain_all();
        assert_eq!(all, vec![(0, 10), (100, 10)]);
        assert!(d.is_empty());
    }

    #[test]
    fn dirty_ranges_overlap_merges() {
        let mut d = DirtyRanges::new(0);
        d.insert(0, 100);
        d.insert(50, 100); // overlaps
        assert_eq!(d.total(), 150);
        d.insert(200, 10);
        d.insert(140, 70); // bridges [0,150) and [200,210)
        assert_eq!(d.drain_all(), vec![(0, 210)]);
    }

    #[test]
    fn dirty_ranges_drain_into_appends_in_offset_order() {
        let mut d = DirtyRanges::new(0);
        d.insert(100, 10);
        d.insert(0, 10);
        let mut buf = vec![(7u64, 7u64)]; // pre-existing contents survive
        d.drain_all_into(&mut buf);
        assert_eq!(buf, vec![(7, 7), (0, 10), (100, 10)]);
        assert!(d.is_empty());
    }

    #[test]
    fn dirty_ranges_take() {
        let mut d = DirtyRanges::new(0);
        d.insert(10, 5);
        assert_eq!(d.take(10), Some((10, 5)));
        assert_eq!(d.take(10), None);
    }

    #[test]
    fn dirty_ranges_zero_len_noop() {
        let mut d = DirtyRanges::new(0);
        d.insert(5, 0);
        assert!(d.is_empty());
    }
}
