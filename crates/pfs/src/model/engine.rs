//! The simulation engine: executes per-rank operation streams against the
//! cluster's shared resources.
//!
//! Each rank is a sequential program; the engine interleaves ranks through a
//! deterministic event queue (one event per operation), so shared resources —
//! NICs, OST disks, the MDS pool, OSC/MDC windows, extent locks — see
//! arrivals in global time order. Barriers park ranks until all arrive.
//!
//! The engine is built to scale to datacenter-sized topologies (100k ranks ×
//! 1k OSTs) without changing a single canonical byte relative to a dense
//! small-grid run: per-OST and per-(client, OST) state is materialized
//! lazily on first touch, rank cursors are structure-of-arrays, hot maps use
//! a fixed-key deterministic hasher ([`simcore::hash`]), and same-timestamp
//! events drain in batches ([`EventQueue::pop_run_into`]). See
//! `ARCHITECTURE.md` § "Simulation performance model" for the cost
//! accounting and the argument why none of this is observable.

use crate::faults::FaultPlan;
use crate::model::cache::{chunks_covering, PageCache, CHUNK_BYTES};
use crate::model::disk::DiskCalendar;
use crate::model::state::{
    DirState, DirtyRanges, FileState, LockTable, MdcState, OscState, RaState, SaState,
};
use crate::ops::{DirId, FileId, IoOp, Module, RankStream};
use crate::params::TuningConfig;
use crate::stripe::{Layout, ObjectExtent, PlacementCache};
use crate::topology::ClusterSpec;
use crate::trace::{OpClass, OpRecord, TraceSink};
use simcore::hash::FxBuildHasher;
use simcore::resources::{BandwidthChannel, MultiServer};
use simcore::time::{Duration, SimTime};
use simcore::{EventQueue, SimRng};
use std::collections::HashMap;

/// Aggregate diagnostics of one run (beyond what Darshan exposes).
#[derive(Debug, Clone, Default)]
pub struct Diagnostics {
    /// Total bytes written by the application.
    pub bytes_written: u64,
    /// Total bytes read by the application.
    pub bytes_read: u64,
    /// Reads served from client page cache.
    pub cache_hit_chunks: u64,
    /// Reads that missed and hit the wire.
    pub cache_miss_chunks: u64,
    /// LDLM revocations observed.
    pub lock_revocations: u64,
    /// Cumulative writer stalls on `osc.max_dirty_mb`.
    pub dirty_stall_secs: f64,
    /// Metadata operations serviced by the MDS.
    pub mds_ops: u64,
    /// Bulk RPCs issued (read + write + readahead).
    pub bulk_rpcs: u64,
    /// Readahead RPC bytes issued.
    pub readahead_bytes: u64,
    /// Stats served by the statahead fast path.
    pub statahead_hits: u64,
    /// Aggregate OST disk busy seconds.
    pub disk_busy_secs: f64,
    /// Sequential transfers observed across OST disks.
    pub disk_seq_ops: u64,
    /// Random (positioned) transfers observed across OST disks.
    pub disk_rand_ops: u64,
}

enum Event {
    RankReady(usize),
}

/// Fixed per-message NIC overhead shared by client and OSS channels.
fn nic_overhead() -> Duration {
    Duration::from_micros(20)
}

/// The engine for one run. Construct with [`Engine::new`], call
/// [`Engine::run`] once.
pub struct Engine<'s> {
    topo: ClusterSpec,
    cfg: TuningConfig,
    run_noise: f64,
    faults: Option<FaultPlan>,
    rng: SimRng,

    client_nics: Vec<BandwidthChannel>,
    // Server-side resources are materialized lazily on first touch: a
    // 1k-OST topology running a workload that only strides a few OSTs per
    // client never pays construction (or memory) for the rest. `None` slots
    // are observationally identical to a freshly-constructed, never-used
    // resource, so laziness cannot change any canonical output.
    oss_nics: Vec<Option<BandwidthChannel>>,
    disks: Vec<Option<DiskCalendar>>,
    mds: MultiServer,

    // Sparse per-(client, OST) OSC state. The dense layout was
    // client_count × ost_count entries (2M OscStates at the 100k-rank
    // point), nearly all of them never touched; every access is a point
    // lookup keyed by (client, ost), so a deterministic-hash map
    // materializing entries on first touch is order-safe.
    oscs: HashMap<(u32, u32), OscState, FxBuildHasher>,
    mdcs: Vec<MdcState>,    // per client
    caches: Vec<PageCache>, // per client

    // determinism audit (D002): every map below is accessed by point
    // lookups keyed from deterministic op streams; the only iterations are
    // `agg` flushes (keys collected and sorted before RPC issue — hash
    // order is laundered) and the annotated max-reduction over `files`.
    agg: HashMap<(u32, FileId, u32), DirtyRanges, FxBuildHasher>, // (client, file, obj_index)
    ra: HashMap<(u32, FileId), RaState, FxBuildHasher>,
    ra_ready: HashMap<(u32, FileId, u64), SimTime, FxBuildHasher>, // chunk -> ready time
    ra_inflight: Vec<std::collections::BinaryHeap<std::cmp::Reverse<(SimTime, u64)>>>, // per client (end, bytes)
    ra_inflight_bytes: Vec<u64>,
    sa: HashMap<(u32, DirId), SaState, FxBuildHasher>,
    locks: HashMap<FileId, LockTable, FxBuildHasher>,
    files: HashMap<FileId, FileState, FxBuildHasher>,
    dirs: HashMap<DirId, DirState, FxBuildHasher>,

    next_start_ost: u32,
    // Per-op allocation avoidance: memoized stripe→OST tables plus reusable
    // buffers (taken/restored around each use, like `scratch_extents`).
    // `scratch_runs`/`scratch_starts` serve flush_object and do_read's miss
    // accumulation; `scratch_objs`/`scratch_file_objs` serve the flush key
    // collections. Holders never overlap: flush_object never re-enters
    // itself, and do_read never flushes.
    placements: PlacementCache,
    scratch_extents: Vec<ObjectExtent>,
    scratch_runs: Vec<(u64, u64)>,
    scratch_starts: Vec<u64>,
    scratch_objs: Vec<u32>,
    scratch_file_objs: Vec<(FileId, u32)>,
    diag: Diagnostics,
    sink: &'s mut dyn TraceSink,
}

impl<'s> Engine<'s> {
    /// Build an engine for `topo` under `cfg`, seeded with `seed`.
    pub fn new(
        topo: &ClusterSpec,
        cfg: &TuningConfig,
        seed: u64,
        sink: &'s mut dyn TraceSink,
    ) -> Self {
        Self::with_faults(topo, cfg, seed, sink, None)
    }

    /// Like [`Engine::new`], but with an optional [`FaultPlan`] whose
    /// degradation factors multiply OST disk service times in simulated
    /// (event-queue) time. `None` is a pristine cluster.
    pub fn with_faults(
        topo: &ClusterSpec,
        cfg: &TuningConfig,
        seed: u64,
        sink: &'s mut dyn TraceSink,
        faults: Option<&FaultPlan>,
    ) -> Self {
        let mut rng = SimRng::new(seed);
        let run_noise = rng.lognormal_factor(topo.run_noise_sigma);
        let client_nics = (0..topo.client_count)
            .map(|_| BandwidthChannel::new(topo.nic_bytes_per_sec, nic_overhead()))
            .collect();
        // Lazy server-side state: every slot starts empty and is built on
        // first touch (see `disk_at`/`oss_nic_at`/`osc_mut`). None of the
        // constructors draw from the RNG, so laziness cannot shift the
        // deterministic draw order either.
        let oss_nics = (0..topo.oss_count).map(|_| None).collect();
        let disks = (0..topo.ost_count()).map(|_| None).collect();
        let mds = MultiServer::new(topo.mds_threads as usize);
        let mdcs = (0..topo.client_count)
            .map(|_| {
                MdcState::new(
                    cfg.mdc_max_rpcs_in_flight as usize,
                    cfg.mdc_max_mod_rpcs_in_flight as usize,
                )
            })
            .collect();
        let caches = (0..topo.client_count)
            .map(|_| PageCache::new(cfg.llite_max_cached_mb as u64 * (1 << 20)))
            .collect();
        let ra_inflight = (0..topo.client_count)
            .map(|_| std::collections::BinaryHeap::new())
            .collect();
        Engine {
            topo: topo.clone(),
            cfg: cfg.clone(),
            run_noise,
            faults: faults.filter(|p| !p.is_empty()).cloned(),
            rng,
            client_nics,
            oss_nics,
            disks,
            mds,
            oscs: HashMap::default(),
            mdcs,
            caches,
            agg: HashMap::default(),
            ra: HashMap::default(),
            ra_ready: HashMap::default(),
            ra_inflight,
            ra_inflight_bytes: vec![0; topo.client_count as usize],
            sa: HashMap::default(),
            locks: HashMap::default(),
            files: HashMap::default(),
            dirs: HashMap::default(),
            next_start_ost: 0,
            placements: PlacementCache::new(topo.ost_count()),
            scratch_extents: Vec::new(),
            scratch_runs: Vec::new(),
            scratch_starts: Vec::new(),
            scratch_objs: Vec::new(),
            scratch_file_objs: Vec::new(),
            diag: Diagnostics::default(),
            sink,
        }
    }

    /// The (client, ost) OSC, materialized on first touch. A fresh
    /// `OscState` is indistinguishable from a dense-constructed one that was
    /// never used, so lazy materialization is invisible to the simulation.
    fn osc_mut(&mut self, client: u32, ost: u32) -> &mut OscState {
        let depth = self.cfg.osc_max_rpcs_in_flight as usize;
        self.oscs
            .entry((client, ost))
            .or_insert_with(|| OscState::new(depth))
    }

    /// The disk calendar of `ost`, materialized on first touch. An
    /// associated function (not `&mut self`) so call sites can borrow
    /// `self.rng` / `self.diag` alongside the returned calendar.
    fn disk_at<'a>(
        disks: &'a mut [Option<DiskCalendar>],
        topo: &ClusterSpec,
        ost: u32,
    ) -> &'a mut DiskCalendar {
        disks[ost as usize].get_or_insert_with(|| DiskCalendar::new(topo.disk.clone()))
    }

    /// The OSS ingress NIC of `oss`, materialized on first touch.
    fn oss_nic_at<'a>(
        nics: &'a mut [Option<BandwidthChannel>],
        topo: &ClusterSpec,
        oss: usize,
    ) -> &'a mut BandwidthChannel {
        nics[oss]
            .get_or_insert_with(|| BandwidthChannel::new(topo.nic_bytes_per_sec, nic_overhead()))
    }

    /// Materialize every lazy slot eagerly, exactly as the engine's former
    /// dense layout did at construction. Test-only hook: the equivalence
    /// suite runs a prematerialized engine against a lazy one and asserts
    /// bit-identical traces, wall clocks and diagnostics.
    #[cfg(test)]
    pub(crate) fn prematerialize_dense(&mut self) {
        for ost in 0..self.topo.ost_count() {
            Self::disk_at(&mut self.disks, &self.topo, ost);
        }
        for oss in 0..self.topo.oss_count as usize {
            Self::oss_nic_at(&mut self.oss_nics, &self.topo, oss);
        }
        for client in 0..self.topo.client_count {
            for ost in 0..self.topo.ost_count() {
                self.osc_mut(client, ost);
            }
        }
    }

    /// Service-time multiplier of `ost` at simulated instant `at` under the
    /// run's fault plan (1.0 when pristine). Piecewise-constant in event-queue
    /// time, so the factor is a pure function of the deterministic schedule.
    fn fault_factor(&self, ost: u32, at: SimTime) -> f64 {
        match &self.faults {
            Some(plan) => plan.factor(ost, at),
            None => 1.0,
        }
    }

    fn half_rtt(&self) -> Duration {
        Duration::from_secs_f64(self.topo.rpc_rtt_us * 0.5e-6)
    }

    fn bulk_setup(&self) -> Duration {
        Duration::from_secs_f64(self.topo.bulk_setup_us * 1e-6)
    }

    fn memcpy(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64(bytes as f64 / self.topo.mem_bytes_per_sec)
    }

    fn mds_service(&mut self, factor: f64) -> Duration {
        let jitter = self.rng.lognormal_factor(self.topo.op_noise_sigma);
        Duration::from_secs_f64(self.topo.mds_getattr_us * 1e-6 * factor * self.run_noise * jitter)
    }

    /// One synchronous metadata RPC through the MDS: window admission, wire
    /// round trip, service. Returns completion time.
    fn mds_rpc(&mut self, client: u32, now: SimTime, modifying: bool, svc_factor: f64) -> SimTime {
        let mdc = &mut self.mdcs[client as usize];
        let admit = if modifying {
            mdc.mod_window.admit(now)
        } else {
            mdc.rpc_window.admit(now)
        };
        let svc = self.mds_service(svc_factor);
        let arrive = admit + self.half_rtt();
        let grant = self.mds.schedule(arrive, svc);
        let end = grant.end + self.half_rtt();
        let mdc = &mut self.mdcs[client as usize];
        if modifying {
            mdc.mod_window.complete(end);
        } else {
            mdc.rpc_window.complete(end);
        }
        self.diag.mds_ops += 1;
        end
    }

    /// Background (asynchronous) MDS load that does not block the rank.
    fn mds_background(&mut self, now: SimTime, svc_factor: f64) {
        let svc = self.mds_service(svc_factor);
        let _ = self.mds.schedule(now + self.half_rtt(), svc);
        self.diag.mds_ops += 1;
    }

    /// One bulk data RPC: OSC window -> client NIC -> OSS NIC -> disk -> reply.
    /// Returns completion time at the client.
    #[allow(clippy::too_many_arguments)] // mirrors the RPC descriptor fields
    fn bulk_rpc(
        &mut self,
        client: u32,
        file: FileId,
        obj_index: u32,
        ost: u32,
        obj_offset: u64,
        bytes: u64,
        now: SimTime,
        is_write: bool,
        short_io: bool,
    ) -> SimTime {
        let _ = is_write; // reads traverse the request first, then data flows
                          // back; the calendar composition is symmetric, so
                          // both directions share one pipeline.
        let admit = self.osc_mut(client, ost).window.admit(now);
        let setup = if short_io {
            Duration::ZERO
        } else {
            self.bulk_setup()
        };
        let t0 = admit + setup + self.half_rtt();
        let g_cnic = self.client_nics[client as usize].schedule(t0, bytes);
        let oss = self.topo.oss_of_ost(ost) as usize;
        let g_onic =
            Self::oss_nic_at(&mut self.oss_nics, &self.topo, oss).schedule(g_cnic.end, bytes);
        let noise = self.run_noise * self.fault_factor(ost, g_onic.end);
        let g_disk = Self::disk_at(&mut self.disks, &self.topo, ost).transfer(
            g_onic.end,
            file,
            obj_index,
            obj_offset,
            bytes,
            noise,
            &mut self.rng,
        );
        let end = g_disk.end + self.half_rtt();
        self.osc_mut(client, ost).window.complete(end);
        self.diag.bulk_rpcs += 1;
        end
    }

    /// Acquire extent locks, returning added latency from revocations.
    fn lock_acquire(&mut self, client: u32, file: FileId, offset: u64, len: u64) -> Duration {
        let table = self.locks.entry(file).or_default();
        let revocations = table.acquire(client, offset, len);
        if revocations > 0 {
            self.diag.lock_revocations += revocations as u64;
            Duration::from_secs_f64(self.topo.lock_revoke_us * 1e-6 * revocations as f64)
        } else {
            Duration::ZERO
        }
    }

    /// Issue writeback RPCs for a contiguous run of an object stream,
    /// asynchronously w.r.t. the rank. Updates dirty completion tracking and
    /// the file's writeback horizon.
    #[allow(clippy::too_many_arguments)] // mirrors the RPC descriptor fields
    fn writeback_run(
        &mut self,
        client: u32,
        file: FileId,
        obj_index: u32,
        ost: u32,
        obj_offset: u64,
        len: u64,
        now: SimTime,
    ) {
        let rpc_bytes = self.cfg.rpc_bytes().max(4096);
        let mut off = obj_offset;
        let mut remaining = len;
        while remaining > 0 {
            let take = remaining.min(rpc_bytes);
            let end = self.bulk_rpc(client, file, obj_index, ost, off, take, now, true, false);
            self.osc_mut(client, ost)
                .wb_pending
                .push(std::cmp::Reverse((end, take)));
            if let Some(f) = self.files.get_mut(&file) {
                f.last_wb_end = f.last_wb_end.max(end);
            }
            off += take;
            remaining -= take;
        }
    }

    /// Flush every complete RPC-sized prefix of runs in one object stream;
    /// `force` flushes partial tails too.
    fn flush_object(
        &mut self,
        client: u32,
        file: FileId,
        obj_index: u32,
        now: SimTime,
        force: bool,
    ) {
        let key = (client, file, obj_index);
        let Some(ranges) = self.agg.get_mut(&key) else {
            return;
        };
        let ost = ranges.ost;
        let rpc_bytes = self.cfg.rpc_bytes().max(4096);
        let mut to_issue = std::mem::take(&mut self.scratch_runs);
        if force {
            ranges.drain_all_into(&mut to_issue);
        } else {
            // Pull only runs long enough to fill at least one RPC; keep the
            // sub-RPC remainder buffered for further aggregation.
            let mut full = std::mem::take(&mut self.scratch_starts);
            full.extend(
                ranges
                    .iter_runs()
                    .filter(|&(_, l)| l >= rpc_bytes)
                    .map(|(s, _)| s),
            );
            for s in full.drain(..) {
                if let Some((start, len)) = ranges.take(s) {
                    let keep = len % rpc_bytes;
                    let issue = len - keep;
                    if keep > 0 {
                        ranges.insert(start + issue, keep);
                    }
                    if issue > 0 {
                        to_issue.push((start, issue));
                    }
                }
            }
            self.scratch_starts = full;
        }
        if self.agg.get(&key).map(|r| r.is_empty()).unwrap_or(false) {
            self.agg.remove(&key);
        }
        for (s, l) in to_issue.drain(..) {
            self.writeback_run(client, file, obj_index, ost, s, l, now);
        }
        self.scratch_runs = to_issue;
    }

    /// Flush all buffered dirty data of (client, file).
    fn flush_file(&mut self, client: u32, file: FileId, now: SimTime) {
        let mut keys = std::mem::take(&mut self.scratch_objs);
        keys.extend(
            self.agg
                .keys()
                .filter(|(c, f, _)| *c == client && *f == file)
                .map(|(_, _, o)| *o),
        );
        // HashMap iteration order is nondeterministic; RPC issue order is
        // observable through resource calendars, so sort.
        keys.sort_unstable();
        for obj in keys.drain(..) {
            self.flush_object(client, file, obj, now, true);
        }
        self.scratch_objs = keys;
    }

    /// Flush every buffered run of `client` whose object lives on `ost`.
    fn flush_osc(&mut self, client: u32, ost: u32, now: SimTime) {
        let mut keys = std::mem::take(&mut self.scratch_file_objs);
        keys.extend(
            self.agg
                .iter()
                .filter(|((c, _, _), r)| *c == client && r.ost == ost)
                .map(|((_, f, o), _)| (*f, *o)),
        );
        keys.sort_unstable();
        for (f, o) in keys.drain(..) {
            self.flush_object(client, f, o, now, true);
        }
        self.scratch_file_objs = keys;
    }

    fn layout_of(&mut self, file: FileId) -> Layout {
        match self.files.get(&file) {
            Some(f) => f.layout,
            None => {
                // Implicitly created file (workload wrote without Create):
                // allocate a layout now.
                let layout = self.fresh_layout();
                self.files.insert(
                    file,
                    FileState {
                        layout,
                        size: 0,
                        dir: DirId(0),
                        create_index: 0,
                        last_wb_end: SimTime::ZERO,
                        exists: true,
                    },
                );
                layout
            }
        }
    }

    fn fresh_layout(&mut self) -> Layout {
        let sc = self.cfg.effective_stripe_count(&self.topo);
        let layout = Layout::new(
            self.cfg.stripe_size,
            sc,
            self.next_start_ost,
            self.topo.ost_count(),
        );
        self.next_start_ost = (self.next_start_ost + 1) % self.topo.ost_count();
        layout
    }

    // ------------------------------------------------------------------
    // Operation handlers. Each returns the rank's completion time.
    // ------------------------------------------------------------------

    fn do_write(
        &mut self,
        rank: u32,
        file: FileId,
        offset: u64,
        len: u64,
        now: SimTime,
    ) -> SimTime {
        let client = self.topo.client_of_rank(rank);
        self.diag.bytes_written += len;
        let layout = self.layout_of(file);
        if let Some(f) = self.files.get_mut(&file) {
            f.size = f.size.max(offset + len);
        }

        let mut t = now + self.lock_acquire(client, file, offset, len);
        let osts = self.placements.osts(&layout);
        let mut extents = std::mem::take(&mut self.scratch_extents);
        layout.map_into(
            offset,
            len,
            self.topo.ost_count(),
            Some(&osts),
            &mut extents,
        );

        // Short I/O fast path: synchronous inline RPC, no bulk setup.
        if len <= self.cfg.osc_short_io_bytes as u64 && len > 0 {
            let mut end = t;
            for e in &extents {
                let done = self.bulk_rpc(
                    client,
                    file,
                    e.obj_index,
                    e.ost,
                    e.obj_offset,
                    e.len,
                    t,
                    true,
                    true,
                );
                end = end.max(done);
            }
            self.scratch_extents = extents;
            if let Some(f) = self.files.get_mut(&file) {
                f.last_wb_end = f.last_wb_end.max(end);
            }
            // Written data is in the client cache too.
            for chunk in chunks_covering(offset, len) {
                self.caches[client as usize].insert(file, chunk);
            }
            return end;
        }

        // Buffered path: copy into cache, aggregate, flush full RPCs.
        t += self.memcpy(len);
        for chunk in chunks_covering(offset, len) {
            self.caches[client as usize].insert(file, chunk);
        }

        let dirty_cap = self.cfg.osc_max_dirty_mb as u64 * (1 << 20);
        let rpc_bytes = self.cfg.rpc_bytes().max(4096);
        for e in &extents {
            // Dirty-limit backpressure.
            let over_cap = {
                let osc = self.osc_mut(client, e.ost);
                osc.advance(t);
                osc.dirty_bytes + e.len > dirty_cap
            };
            if over_cap {
                // Push out buffered runs on this OSC, then wait for drain.
                self.flush_osc(client, e.ost, t);
                let before = t;
                if let Some(ready) = self
                    .osc_mut(client, e.ost)
                    .drain_until_room(t, e.len, dirty_cap)
                {
                    let stall = ready.saturating_since(before);
                    let osc = self.osc_mut(client, e.ost);
                    osc.dirty_stall = osc.dirty_stall.saturating_add(stall);
                    self.diag.dirty_stall_secs += stall.as_secs_f64();
                    t = ready;
                }
            }
            self.osc_mut(client, e.ost).dirty_bytes += e.len;

            // Coalescing aggregation: insert the extent into the object's
            // dirty-range set; once the containing run fills an RPC, flush
            // its full-RPC prefix.
            let key = (client, file, e.obj_index);
            let ranges = self
                .agg
                .entry(key)
                .or_insert_with(|| DirtyRanges::new(e.ost));
            let (_, run_len) = ranges.insert(e.obj_offset, e.len);
            if run_len >= rpc_bytes {
                self.flush_object(client, file, e.obj_index, t, false);
            }
        }
        self.scratch_extents = extents;
        t
    }

    fn do_read(&mut self, rank: u32, file: FileId, offset: u64, len: u64, now: SimTime) -> SimTime {
        let client = self.topo.client_of_rank(rank);
        self.diag.bytes_read += len;
        let layout = self.layout_of(file);
        let file_size = self.files.get(&file).map(|f| f.size).unwrap_or(0);

        let t = now + self.lock_acquire(client, file, offset, len);

        // Classify chunks: cached / readahead-inflight / miss. The run
        // accumulator reuses the flush scratch buffer ((offset, len) in
        // bytes): reads never flush, so the two holders cannot overlap.
        let mut miss_runs = std::mem::take(&mut self.scratch_runs);
        let mut wait_until = t;
        let mut run_start: Option<u64> = None;
        let mut last_chunk_end = 0u64;
        for chunk in chunks_covering(offset, len) {
            let cached = self.caches[client as usize].probe(file, chunk);
            let ra_key = (client, file, chunk);
            let ra_hit = if cached {
                None
            } else {
                self.ra_ready.get(&ra_key).copied()
            };
            if cached {
                self.diag.cache_hit_chunks += 1;
            } else if let Some(ready) = ra_hit {
                // Covered by a readahead RPC: wait for it if still in flight.
                wait_until = wait_until.max(ready);
                self.diag.cache_hit_chunks += 1;
                self.ra_ready.remove(&ra_key);
                self.caches[client as usize].insert(file, chunk);
            } else {
                self.diag.cache_miss_chunks += 1;
            }
            let is_miss = !cached && ra_hit.is_none();
            let chunk_start = chunk * CHUNK_BYTES;
            if is_miss {
                if run_start.is_none() {
                    run_start = Some(chunk_start);
                }
                last_chunk_end = chunk_start + CHUNK_BYTES;
            } else if let Some(s) = run_start.take() {
                miss_runs.push((s, last_chunk_end - s));
            }
        }
        if let Some(s) = run_start.take() {
            miss_runs.push((s, last_chunk_end - s));
        }

        // Issue synchronous RPCs for misses.
        let rpc_bytes = self.cfg.rpc_bytes().max(CHUNK_BYTES);
        let short = len <= self.cfg.osc_short_io_bytes as u64;
        let mut end = wait_until;
        let osts = self.placements.osts(&layout);
        let mut extents = std::mem::take(&mut self.scratch_extents);
        for (roff, rlen) in &miss_runs {
            let mut cur = *roff;
            let stop = roff + rlen;
            while cur < stop {
                let take = (stop - cur).min(rpc_bytes);
                layout.map_into(cur, take, self.topo.ost_count(), Some(&osts), &mut extents);
                for e in &extents {
                    let done = self.bulk_rpc(
                        client,
                        file,
                        e.obj_index,
                        e.ost,
                        e.obj_offset,
                        e.len,
                        t,
                        false,
                        short,
                    );
                    end = end.max(done);
                }
                cur += take;
            }
            for chunk in chunks_covering(*roff, *rlen) {
                self.caches[client as usize].insert(file, chunk);
            }
        }
        self.scratch_extents = extents;
        miss_runs.clear();
        self.scratch_runs = miss_runs;
        // Memory copy to the application buffer.
        end = end.max(t) + self.memcpy(len);

        // Readahead state machine (after satisfying the current read).
        self.update_readahead(client, file, offset, len, file_size, layout, end);
        end
    }

    #[allow(clippy::too_many_arguments)] // readahead consults the whole op context
    fn update_readahead(
        &mut self,
        client: u32,
        file: FileId,
        offset: u64,
        len: u64,
        file_size: u64,
        layout: Layout,
        now: SimTime,
    ) {
        let ra_budget = self.cfg.llite_max_read_ahead_mb as u64 * (1 << 20);
        if ra_budget == 0 {
            return;
        }
        // Retire completed readahead from the budget.
        {
            let heap = &mut self.ra_inflight[client as usize];
            while let Some(&std::cmp::Reverse((ready, bytes))) = heap.peek() {
                if ready <= now {
                    heap.pop();
                    self.ra_inflight_bytes[client as usize] =
                        self.ra_inflight_bytes[client as usize].saturating_sub(bytes);
                } else {
                    break;
                }
            }
        }

        let whole_cap = self.cfg.llite_max_read_ahead_whole_mb as u64 * (1 << 20);
        let per_file_cap: u64 = self.cfg.llite_max_read_ahead_per_file_mb as u64 * (1 << 20);
        let state = self.ra.entry((client, file)).or_default();

        // Whole-file readahead for small files on first access.
        let start: u64;
        let mut window: u64;
        if !state.whole_done && file_size > 0 && file_size <= whole_cap {
            state.whole_done = true;
            start = 0;
            window = file_size;
            state.expect = file_size;
        } else if offset == state.expect || (state.expect == 0 && offset == 0) {
            // Sequential: grow the window.
            let grown = if state.window == 0 {
                1 << 20
            } else {
                state.window * 2
            };
            window = grown.min(per_file_cap);
            start = offset + len;
            state.expect = offset + len;
            state.window = window;
        } else {
            // Random: reset.
            state.expect = offset + len;
            state.window = 0;
            return;
        }
        if window == 0 || file_size == 0 {
            return;
        }
        // Clamp to EOF and the client-wide budget.
        if start >= file_size {
            return;
        }
        window = window.min(file_size - start);
        let budget_left = ra_budget.saturating_sub(self.ra_inflight_bytes[client as usize]);
        window = window.min(budget_left);
        if window == 0 {
            return;
        }

        // Issue asynchronous readahead RPCs for not-yet-resident chunks.
        let rpc_bytes = self.cfg.rpc_bytes().max(CHUNK_BYTES);
        let osts = self.placements.osts(&layout);
        let mut extents = std::mem::take(&mut self.scratch_extents);
        let mut cur = start;
        let stop = start + window;
        while cur < stop {
            let take = (stop - cur).min(rpc_bytes);
            // Skip fully resident pieces cheaply at chunk granularity.
            let all_resident = chunks_covering(cur, take).all(|c| {
                self.caches[client as usize].contains(file, c)
                    || self.ra_ready.contains_key(&(client, file, c))
            });
            if !all_resident {
                let mut piece_end = now;
                layout.map_into(cur, take, self.topo.ost_count(), Some(&osts), &mut extents);
                for e in &extents {
                    let done = self.bulk_rpc(
                        client,
                        file,
                        e.obj_index,
                        e.ost,
                        e.obj_offset,
                        e.len,
                        now,
                        false,
                        false,
                    );
                    piece_end = piece_end.max(done);
                }
                for chunk in chunks_covering(cur, take) {
                    self.ra_ready.insert((client, file, chunk), piece_end);
                }
                self.ra_inflight[client as usize].push(std::cmp::Reverse((piece_end, take)));
                self.ra_inflight_bytes[client as usize] += take;
                self.diag.readahead_bytes += take;
            }
            cur += take;
        }
        self.scratch_extents = extents;
    }

    fn do_stat(&mut self, rank: u32, file: FileId, now: SimTime) -> SimTime {
        let client = self.topo.client_of_rank(rank);
        let (dir, create_index, layout) = match self.files.get(&file) {
            Some(f) => (f.dir, f.create_index, f.layout),
            None => (DirId(0), 0, self.fresh_layout()),
        };

        // Statahead detection: sequential stats over a directory's entries.
        // The thread prefetches at most `statahead_max` entries per scan;
        // once the budget is consumed, stats fall back to synchronous RPCs.
        let sa_max = self.cfg.llite_statahead_max;
        let sa = self.sa.entry((client, dir)).or_default();
        let sequential = create_index == sa.expect_index;
        if sequential {
            sa.run += 1;
        } else {
            // New scan: reset the run and the prefetch budget.
            sa.run = 1;
            sa.active = false;
            sa.consumed = 0;
        }
        sa.expect_index = create_index + 1;
        if sa.run >= 2 && sa_max > 0 && !sa.active && sa.consumed == 0 {
            sa.active = true;
        }
        if sa.active && sa.consumed >= sa_max {
            sa.active = false; // budget exhausted for this scan
        }
        if sa.active {
            sa.consumed += 1;
        }
        let active = sa.active;

        if active {
            // Attributes (and glimpse) prefetched by the statahead thread:
            // the rank pays only local cost plus the pipelining residual;
            // the MDS and OSTs still pay the service cost in the background.
            self.diag.statahead_hits += 1;
            let depth = sa_max.max(1) as f64;
            self.mds_background(now, 2.0);
            for obj in 0..layout.stripe_count {
                let ost = layout.ost_of(obj, self.topo.ost_count());
                let noise = self.run_noise * self.fault_factor(ost, now);
                let _ = Self::disk_at(&mut self.disks, &self.topo, ost).small_op(now, noise);
            }
            let residual_us = 2.0 * (self.topo.mds_getattr_us + self.topo.rpc_rtt_us) / depth + 6.0;
            return now + Duration::from_secs_f64(residual_us * 1e-6);
        }

        // Synchronous stat: path lookup + getattr at the MDS, then a size
        // glimpse RPC per stripe object (uncached attributes require the
        // full chain, which is what makes cold stat scans expensive and
        // wide-striped small files doubly so).
        let lookup_done = self.mds_rpc(client, now, false, 1.0);
        let mds_done = self.mds_rpc(client, lookup_done, false, 1.0);
        let glimpse_arrival = mds_done + self.half_rtt();
        let half = self.half_rtt();
        let mut end = mds_done;
        for obj in 0..layout.stripe_count {
            let ost = layout.ost_of(obj, self.topo.ost_count());
            let noise = self.run_noise * self.fault_factor(ost, glimpse_arrival);
            let g =
                Self::disk_at(&mut self.disks, &self.topo, ost).small_op(glimpse_arrival, noise);
            end = end.max(g.end + half + half);
        }
        end
    }

    fn do_op(&mut self, rank: u32, op: &IoOp, now: SimTime) -> (SimTime, Option<OpRecord>) {
        let client = self.topo.client_of_rank(rank);
        let module = Module::Posix; // overwritten by caller with stream module
        match *op {
            IoOp::Mkdir { dir } => {
                self.dirs.entry(dir).or_default();
                let end = self.mds_rpc(client, now, true, 1.4);
                (
                    end,
                    Some(OpRecord {
                        rank,
                        file: None,
                        module,
                        class: OpClass::DirOp,
                        offset: 0,
                        bytes: 0,
                        start: now,
                        end,
                    }),
                )
            }
            IoOp::Create { file, dir } => {
                let layout = self.fresh_layout();
                let d = self.dirs.entry(dir).or_default();
                let create_index = d.entries;
                d.entries += 1;
                self.files.insert(
                    file,
                    FileState {
                        layout,
                        size: 0,
                        dir,
                        create_index,
                        last_wb_end: SimTime::ZERO,
                        exists: true,
                    },
                );
                // Wider layouts carry more object-allocation bookkeeping.
                let factor = 2.0 + 0.15 * (layout.stripe_count.saturating_sub(1)) as f64;
                let end = self.mds_rpc(client, now, true, factor);
                (
                    end,
                    Some(OpRecord {
                        rank,
                        file: Some(file),
                        module,
                        class: OpClass::Open,
                        offset: 0,
                        bytes: 0,
                        start: now,
                        end,
                    }),
                )
            }
            IoOp::Open { file } => {
                self.layout_of(file);
                let end = self.mds_rpc(client, now, false, 1.2);
                (
                    end,
                    Some(OpRecord {
                        rank,
                        file: Some(file),
                        module,
                        class: OpClass::Open,
                        offset: 0,
                        bytes: 0,
                        start: now,
                        end,
                    }),
                )
            }
            IoOp::Close { file } => {
                self.flush_file(client, file, now);
                let end = now + Duration::from_micros(3);
                (
                    end,
                    Some(OpRecord {
                        rank,
                        file: Some(file),
                        module,
                        class: OpClass::Close,
                        offset: 0,
                        bytes: 0,
                        start: now,
                        end,
                    }),
                )
            }
            IoOp::Write { file, offset, len } => {
                let end = self.do_write(rank, file, offset, len, now);
                (
                    end,
                    Some(OpRecord {
                        rank,
                        file: Some(file),
                        module,
                        class: OpClass::Write,
                        offset,
                        bytes: len,
                        start: now,
                        end,
                    }),
                )
            }
            IoOp::Read { file, offset, len } => {
                let end = self.do_read(rank, file, offset, len, now);
                (
                    end,
                    Some(OpRecord {
                        rank,
                        file: Some(file),
                        module,
                        class: OpClass::Read,
                        offset,
                        bytes: len,
                        start: now,
                        end,
                    }),
                )
            }
            IoOp::Stat { file } => {
                let end = self.do_stat(rank, file, now);
                (
                    end,
                    Some(OpRecord {
                        rank,
                        file: Some(file),
                        module,
                        class: OpClass::Stat,
                        offset: 0,
                        bytes: 0,
                        start: now,
                        end,
                    }),
                )
            }
            IoOp::Unlink { file } => {
                self.flush_file(client, file, now);
                let wb_done = self
                    .files
                    .get(&file)
                    .map(|f| f.last_wb_end)
                    .unwrap_or(SimTime::ZERO);
                let t = now.max(wb_done);
                let (layout, _exists) = match self.files.get_mut(&file) {
                    Some(f) => {
                        f.exists = false;
                        (f.layout, true)
                    }
                    None => (self.fresh_layout(), false),
                };
                let end = self.mds_rpc(client, t, true, 1.8);
                // Object destroys proceed asynchronously on each OST.
                for obj in 0..layout.stripe_count {
                    let ost = layout.ost_of(obj, self.topo.ost_count());
                    let noise = self.run_noise * self.fault_factor(ost, end);
                    let disk = Self::disk_at(&mut self.disks, &self.topo, ost);
                    let _ = disk.small_op(end, noise);
                    disk.forget(file, obj);
                }
                self.caches[client as usize].invalidate_file(file);
                (
                    end,
                    Some(OpRecord {
                        rank,
                        file: Some(file),
                        module,
                        class: OpClass::Unlink,
                        offset: 0,
                        bytes: 0,
                        start: now,
                        end,
                    }),
                )
            }
            IoOp::Fsync { file } => {
                self.flush_file(client, file, now);
                let wb = self
                    .files
                    .get(&file)
                    .map(|f| f.last_wb_end)
                    .unwrap_or(SimTime::ZERO);
                let end = now.max(wb) + Duration::from_micros(5);
                (
                    end,
                    Some(OpRecord {
                        rank,
                        file: Some(file),
                        module,
                        class: OpClass::Sync,
                        offset: 0,
                        bytes: 0,
                        start: now,
                        end,
                    }),
                )
            }
            IoOp::Readdir { dir } => {
                let entries = self.dirs.get(&dir).map(|d| d.entries).unwrap_or(0);
                let factor = 1.0 + entries as f64 / 64.0 * 0.2;
                let end = self.mds_rpc(client, now, false, factor);
                // Readdir primes statahead expectations from entry 0.
                let sa = self.sa.entry((client, dir)).or_default();
                sa.expect_index = 0;
                sa.run = 0;
                (
                    end,
                    Some(OpRecord {
                        rank,
                        file: None,
                        module,
                        class: OpClass::DirOp,
                        offset: 0,
                        bytes: 0,
                        start: now,
                        end,
                    }),
                )
            }
            IoOp::Compute { nanos } => (now + Duration::from_nanos(nanos), None),
            IoOp::Barrier => unreachable!("barriers handled by the run loop"),
        }
    }

    /// Execute all streams to completion; returns (wall time, diagnostics).
    pub fn run(mut self, streams: Vec<RankStream>) -> (Duration, Diagnostics) {
        assert!(!streams.is_empty(), "at least one rank required");
        let barrier_counts: Vec<usize> = streams.iter().map(|s| s.barrier_count()).collect();
        assert!(
            barrier_counts.windows(2).all(|w| w[0] == w[1]),
            "all ranks must have the same number of barriers"
        );

        let n = streams.len();
        // Structure-of-arrays cursors: the loop touches `pcs`/`done` on
        // every event but a stream only to fetch one op, so the hot
        // bookkeeping stays dense in cache instead of strided across
        // RankStream-sized records.
        let mut pcs: Vec<usize> = vec![0; n];
        let mut done: Vec<bool> = vec![false; n];
        // Maintained count of unfinished ranks. The old code recounted
        // `!done` on every barrier arrival — O(n) per arrival, O(n²) per
        // barrier, the dominant cost at 100k ranks. Pure bookkeeping: the
        // count it replaces is exactly `done.iter().filter(|d| !**d).count()`.
        let mut live = n;

        // One in-flight event per rank, so pre-sizing to the rank count
        // makes the run loop's push/pop cycle allocation-free.
        let mut queue: EventQueue<Event> = EventQueue::with_capacity(n + 1);
        for i in 0..n {
            queue.push(SimTime::ZERO, Event::RankReady(i));
        }
        let mut waiting_at_barrier: Vec<usize> = Vec::new();
        let mut barrier_time = SimTime::ZERO;
        let mut finish = SimTime::ZERO;

        // Drain all events sharing the earliest timestamp in one pass.
        // `pop_run_into` preserves FIFO order within the instant and events
        // pushed during the batch land in later drains (see its docs), so
        // this processes the exact sequence the one-event `pop` loop did
        // while amortizing heap rebalancing across the batch.
        let mut batch: Vec<Event> = Vec::with_capacity(n);
        while let Some(now) = queue.pop_run_into(&mut batch) {
            for event in batch.drain(..) {
                let Event::RankReady(i) = event;
                if done[i] {
                    continue;
                }
                if pcs[i] >= streams[i].ops.len() {
                    done[i] = true;
                    live -= 1;
                    finish = finish.max(now);
                    continue;
                }
                let op = streams[i].ops[pcs[i]];
                pcs[i] += 1;
                let rank = streams[i].rank;
                let module = streams[i].module;

                if matches!(op, IoOp::Barrier) {
                    waiting_at_barrier.push(i);
                    barrier_time = barrier_time.max(now);
                    if waiting_at_barrier.len() == live {
                        let resume = barrier_time + Duration::from_micros(60);
                        // Release in rank order so same-instant create/open
                        // races after a barrier resolve the way MPI programs
                        // expect (creator ranks are the lowest in their
                        // group).
                        waiting_at_barrier.sort_unstable();
                        for j in waiting_at_barrier.drain(..) {
                            queue.push(resume, Event::RankReady(j));
                        }
                        barrier_time = SimTime::ZERO;
                    }
                    continue;
                }

                let (end, rec) = self.do_op(rank, &op, now);
                if let Some(mut r) = rec {
                    r.module = module;
                    self.sink.record(&r);
                }
                queue.push(end.max(now), Event::RankReady(i));
            }
        }

        // Drain all outstanding writeback so the run accounts for data
        // actually reaching stable storage (IOR-style close semantics).
        let mut drain = finish;
        // detlint::allow(D002): max-reduction over values — commutative and
        // associative, so visitation order cannot reach the result
        for f in self.files.values() {
            drain = drain.max(f.last_wb_end);
        }
        // Never-materialized disks would contribute exactly 0.0 busy seconds
        // and 0 ops; `x + 0.0 == x` bitwise for these non-negative sums, so
        // skipping the `None` slots (in the same index order) is
        // bit-identical to the dense accounting.
        for d in self.disks.iter().flatten() {
            self.diag.disk_busy_secs += d.busy_time().as_secs_f64();
            self.diag.disk_seq_ops += d.seq_ops();
            self.diag.disk_rand_ops += d.rand_ops();
        }
        (drain - SimTime::ZERO, self.diag)
    }
}
