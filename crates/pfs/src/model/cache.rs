//! Client page cache: an LRU-approximating cache over fixed-size chunks with
//! a byte budget.
//!
//! Models `llite.max_cached_mb`. Data is tracked at [`CHUNK_BYTES`]
//! granularity — fine enough that an 8 KiB file is one chunk and a 128 MiB
//! IOR block is 2048 chunks, coarse enough to keep the simulator fast.
//! Eviction uses the second-chance (clock) algorithm so every operation is
//! amortised O(1) even under heavy cache pressure.

use crate::ops::FileId;
use simcore::hash::FxBuildHasher;
use std::collections::{HashMap, VecDeque};

/// Cache tracking granularity (64 KiB).
pub const CHUNK_BYTES: u64 = 64 * 1024;

/// Chunk index within a file for a byte offset.
pub fn chunk_of(offset: u64) -> u64 {
    offset / CHUNK_BYTES
}

/// Chunk range covering `[offset, offset+len)`; empty input maps to an empty
/// range.
pub fn chunks_covering(offset: u64, len: u64) -> std::ops::Range<u64> {
    if len == 0 {
        return 0..0;
    }
    chunk_of(offset)..(chunk_of(offset + len - 1) + 1)
}

/// Second-chance page cache with a byte budget.
#[derive(Debug)]
pub struct PageCache {
    budget_bytes: u64,
    used_bytes: u64,
    // chunk -> referenced bit
    entries: HashMap<(FileId, u64), bool, FxBuildHasher>,
    clock: VecDeque<(FileId, u64)>,
    hits: u64,
    misses: u64,
}

impl PageCache {
    /// Create a cache with the given budget in bytes.
    pub fn new(budget_bytes: u64) -> Self {
        PageCache {
            budget_bytes,
            used_bytes: 0,
            entries: HashMap::default(),
            clock: VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Whether `chunk` of `file` is resident; updates the referenced bit and
    /// hit/miss counters.
    pub fn probe(&mut self, file: FileId, chunk: u64) -> bool {
        match self.entries.get_mut(&(file, chunk)) {
            Some(referenced) => {
                *referenced = true;
                self.hits += 1;
                true
            }
            None => {
                self.misses += 1;
                false
            }
        }
    }

    /// Whether `chunk` is resident, without touching recency or counters.
    pub fn contains(&self, file: FileId, chunk: u64) -> bool {
        self.entries.contains_key(&(file, chunk))
    }

    /// Insert a chunk, evicting cold chunks if over budget.
    pub fn insert(&mut self, file: FileId, chunk: u64) {
        let key = (file, chunk);
        match self.entries.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                *e.get_mut() = true;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(false);
                self.clock.push_back(key);
                self.used_bytes += CHUNK_BYTES;
                self.evict_to_budget();
            }
        }
    }

    /// Drop all chunks of `file` (unlink / remount hygiene). Clock entries
    /// are cleaned lazily during eviction.
    pub fn invalidate_file(&mut self, file: FileId) {
        let before = self.entries.len();
        // detlint::allow(D002): removal by key predicate — the surviving set
        // is independent of visitation order and no order escapes here
        self.entries.retain(|(f, _), _| *f != file);
        let removed = before - self.entries.len();
        self.used_bytes = self.used_bytes.saturating_sub(removed as u64 * CHUNK_BYTES);
    }

    /// Drop everything (echoes the paper's "clear all client-side caches").
    pub fn clear(&mut self) {
        self.entries.clear();
        self.clock.clear();
        self.used_bytes = 0;
    }

    fn evict_to_budget(&mut self) {
        while self.used_bytes > self.budget_bytes {
            match self.clock.pop_front() {
                Some(key) => match self.entries.get_mut(&key) {
                    Some(referenced) if *referenced => {
                        // Second chance: clear the bit and recycle.
                        *referenced = false;
                        self.clock.push_back(key);
                    }
                    Some(_) => {
                        self.entries.remove(&key);
                        self.used_bytes -= CHUNK_BYTES;
                    }
                    // Stale clock entry from invalidate_file: skip.
                    None => {}
                },
                None => {
                    // Clock exhausted (everything invalidated): resync.
                    self.used_bytes = self.entries.len() as u64 * CHUNK_BYTES;
                    if self.clock.is_empty() && !self.entries.is_empty() {
                        // Rebuild the clock in sorted chunk order: hash order
                        // here would make future eviction — and therefore
                        // hit/miss patterns and simulated timings — depend on
                        // the process's hash seed.
                        let mut keys: Vec<(FileId, u64)> = self.entries.keys().copied().collect();
                        keys.sort_unstable();
                        self.clock.extend(keys);
                    }
                    if self.entries.is_empty() {
                        break;
                    }
                }
            }
        }
    }

    /// Bytes currently resident.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Probe hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Probe misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_mapping() {
        assert_eq!(chunk_of(0), 0);
        assert_eq!(chunk_of(CHUNK_BYTES - 1), 0);
        assert_eq!(chunk_of(CHUNK_BYTES), 1);
        assert_eq!(chunks_covering(0, 1), 0..1);
        assert_eq!(chunks_covering(0, CHUNK_BYTES), 0..1);
        assert_eq!(chunks_covering(0, CHUNK_BYTES + 1), 0..2);
        assert_eq!(chunks_covering(CHUNK_BYTES, CHUNK_BYTES), 1..2);
        assert_eq!(chunks_covering(10, 0), 0..0);
    }

    #[test]
    fn hit_after_insert() {
        let mut c = PageCache::new(10 * CHUNK_BYTES);
        let f = FileId(1);
        assert!(!c.probe(f, 0));
        c.insert(f, 0);
        assert!(c.probe(f, 0));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn second_chance_protects_referenced() {
        let mut c = PageCache::new(2 * CHUNK_BYTES);
        let f = FileId(1);
        c.insert(f, 0);
        c.insert(f, 1);
        // Touch 0 so 1 becomes the victim.
        assert!(c.probe(f, 0));
        c.insert(f, 2); // evicts 1
        assert!(c.contains(f, 0));
        assert!(!c.contains(f, 1));
        assert!(c.contains(f, 2));
        assert_eq!(c.used_bytes(), 2 * CHUNK_BYTES);
    }

    #[test]
    fn reinsert_does_not_double_count() {
        let mut c = PageCache::new(10 * CHUNK_BYTES);
        let f = FileId(1);
        c.insert(f, 0);
        c.insert(f, 0);
        assert_eq!(c.used_bytes(), CHUNK_BYTES);
    }

    #[test]
    fn invalidate_file_frees_bytes() {
        let mut c = PageCache::new(10 * CHUNK_BYTES);
        c.insert(FileId(1), 0);
        c.insert(FileId(1), 1);
        c.insert(FileId(2), 0);
        c.invalidate_file(FileId(1));
        assert_eq!(c.used_bytes(), CHUNK_BYTES);
        assert!(!c.contains(FileId(1), 0));
        assert!(c.contains(FileId(2), 0));
    }

    #[test]
    fn eviction_skips_stale_clock_entries() {
        let mut c = PageCache::new(2 * CHUNK_BYTES);
        c.insert(FileId(1), 0);
        c.insert(FileId(1), 1);
        c.invalidate_file(FileId(1));
        // Clock still holds stale keys; inserting past budget must not panic
        // and must keep accounting consistent.
        c.insert(FileId(2), 0);
        c.insert(FileId(2), 1);
        c.insert(FileId(2), 2);
        assert_eq!(c.used_bytes(), 2 * CHUNK_BYTES);
    }

    #[test]
    fn clear_empties() {
        let mut c = PageCache::new(10 * CHUNK_BYTES);
        c.insert(FileId(1), 0);
        c.clear();
        assert_eq!(c.used_bytes(), 0);
        assert!(!c.contains(FileId(1), 0));
    }

    #[test]
    fn zero_budget_keeps_nothing() {
        let mut c = PageCache::new(0);
        c.insert(FileId(1), 0);
        assert!(!c.contains(FileId(1), 0));
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn heavy_pressure_stays_bounded() {
        // Sanity check for the amortised O(1) claim: a million inserts into a
        // tiny cache must finish quickly and keep size at the budget.
        let mut c = PageCache::new(16 * CHUNK_BYTES);
        for i in 0..1_000_000u64 {
            c.insert(FileId((i % 7) as u32), i);
        }
        assert_eq!(c.used_bytes(), 16 * CHUNK_BYTES);
    }
}
