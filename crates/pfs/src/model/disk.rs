//! OST backing-device model: a FIFO disk with sequential/random asymmetry.
//!
//! Each OST object maintains a "next expected offset"; a request that
//! continues an object's stream is sequential (no positioning penalty), any
//! other request pays [`crate::topology::DiskProfile::random_seek_us`]. This
//! is the mechanism that makes random-small and sequential-large workloads
//! respond differently to the same tunables.

use crate::ops::FileId;
use crate::topology::DiskProfile;
use simcore::hash::FxBuildHasher;
use simcore::resources::{FifoServer, Grant};
use simcore::time::{Duration, SimTime};
use simcore::SimRng;
use std::collections::HashMap;

/// One OST's device calendar.
#[derive(Debug)]
pub struct DiskCalendar {
    server: FifoServer,
    profile: DiskProfile,
    // (file, object index) -> next expected object offset for sequential I/O
    // determinism audit (D002): point lookups/inserts/removes only — never
    // iterated, so hash order cannot reach the simulation
    streams: HashMap<(FileId, u32), u64, FxBuildHasher>,
    seq_ops: u64,
    rand_ops: u64,
    bytes: u64,
}

impl DiskCalendar {
    /// Create an idle disk with the given device profile.
    pub fn new(profile: DiskProfile) -> Self {
        DiskCalendar {
            server: FifoServer::new(),
            profile,
            streams: HashMap::default(),
            seq_ops: 0,
            rand_ops: 0,
            bytes: 0,
        }
    }

    /// Schedule a data transfer of `bytes` at object offset `obj_offset` of
    /// `(file, obj_index)`, arriving at `arrival`. `noise` is a multiplicative
    /// service-time factor (run and op noise combined).
    #[allow(clippy::too_many_arguments)] // the transfer descriptor is wide by nature
    pub fn transfer(
        &mut self,
        arrival: SimTime,
        file: FileId,
        obj_index: u32,
        obj_offset: u64,
        bytes: u64,
        noise: f64,
        rng: &mut SimRng,
    ) -> Grant {
        let key = (file, obj_index);
        let expected = self.streams.get(&key).copied();
        let sequential = expected == Some(obj_offset);
        if sequential {
            self.seq_ops += 1;
        } else {
            self.rand_ops += 1;
        }
        self.streams.insert(key, obj_offset + bytes);
        self.bytes += bytes;

        let seek_us = if sequential {
            0.0
        } else {
            self.profile.random_seek_us
        };
        let base_us =
            self.profile.per_op_us + seek_us + bytes as f64 / self.profile.seq_bytes_per_sec * 1e6;
        // `noise` folds the per-run factor and the op-level sigma is drawn
        // here so disk jitter stays local to the device.
        let jitter = rng.lognormal_factor(0.02);
        let service = Duration::from_secs_f64(base_us * 1e-6 * noise * jitter);
        self.server.schedule(arrival, service)
    }

    /// Schedule a small fixed-cost housekeeping operation (object create or
    /// destroy, glimpse service) on the device.
    pub fn small_op(&mut self, arrival: SimTime, noise: f64) -> Grant {
        let service = Duration::from_secs_f64(self.profile.per_op_us * 1e-6 * noise);
        self.server.schedule(arrival, service)
    }

    /// Forget an object's stream state (unlink).
    pub fn forget(&mut self, file: FileId, obj_index: u32) {
        self.streams.remove(&(file, obj_index));
    }

    /// Sequential transfers observed.
    pub fn seq_ops(&self) -> u64 {
        self.seq_ops
    }

    /// Random (positioned) transfers observed.
    pub fn rand_ops(&self) -> u64 {
        self.rand_ops
    }

    /// Bytes transferred.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Cumulative busy time (utilisation reporting).
    pub fn busy_time(&self) -> Duration {
        self.server.busy_time()
    }

    /// Earliest instant a new transfer would begin service.
    pub fn free_at(&self) -> SimTime {
        self.server.free_at()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::DiskProfile;

    fn disk() -> DiskCalendar {
        DiskCalendar::new(DiskProfile {
            seq_bytes_per_sec: 1e9,
            random_seek_us: 100.0,
            per_op_us: 10.0,
        })
    }

    fn rng() -> SimRng {
        SimRng::new(1)
    }

    #[test]
    fn first_access_is_random_then_sequential() {
        let mut d = disk();
        let mut r = rng();
        let f = FileId(0);
        d.transfer(SimTime::ZERO, f, 0, 0, 1 << 20, 1.0, &mut r);
        assert_eq!(d.rand_ops(), 1);
        d.transfer(d.free_at(), f, 0, 1 << 20, 1 << 20, 1.0, &mut r);
        assert_eq!(d.seq_ops(), 1);
        // Jumping backwards is random again.
        d.transfer(d.free_at(), f, 0, 0, 4096, 1.0, &mut r);
        assert_eq!(d.rand_ops(), 2);
    }

    #[test]
    fn sequential_is_faster_than_random() {
        let mut d = disk();
        let mut r = SimRng::new(2);
        let f = FileId(0);
        // Noise 0 sigma -> lognormal_factor(0)=1, deterministic comparison.
        let g0 = d.transfer(SimTime::ZERO, f, 0, 0, 4096, 1.0, &mut r);
        let random_cost = (g0.end - g0.start).as_nanos();
        let g1 = d.transfer(g0.end, f, 0, 4096, 4096, 1.0, &mut r);
        let seq_cost = (g1.end - g1.start).as_nanos();
        assert!(
            seq_cost < random_cost,
            "seq {seq_cost} !< rand {random_cost}"
        );
    }

    #[test]
    fn streams_are_per_object() {
        let mut d = disk();
        let mut r = rng();
        let f = FileId(0);
        d.transfer(SimTime::ZERO, f, 0, 0, 4096, 1.0, &mut r);
        // Different object index: its own stream, counts as random.
        d.transfer(d.free_at(), f, 1, 4096, 4096, 1.0, &mut r);
        assert_eq!(d.rand_ops(), 2);
    }

    #[test]
    fn forget_resets_stream() {
        let mut d = disk();
        let mut r = rng();
        let f = FileId(0);
        d.transfer(SimTime::ZERO, f, 0, 0, 4096, 1.0, &mut r);
        d.forget(f, 0);
        d.transfer(d.free_at(), f, 0, 4096, 4096, 1.0, &mut r);
        assert_eq!(d.rand_ops(), 2);
        assert_eq!(d.seq_ops(), 0);
    }

    #[test]
    fn small_op_is_cheap() {
        let mut d = disk();
        let g = d.small_op(SimTime::ZERO, 1.0);
        assert_eq!((g.end - g.start).as_nanos(), 10_000); // per_op_us
    }

    #[test]
    fn byte_accounting() {
        let mut d = disk();
        let mut r = rng();
        d.transfer(SimTime::ZERO, FileId(0), 0, 0, 100, 1.0, &mut r);
        d.transfer(d.free_at(), FileId(0), 0, 100, 200, 1.0, &mut r);
        assert_eq!(d.bytes(), 300);
    }
}
