//! Trace emission hook — the seam between the simulator and the Darshan-like
//! instrumentation.
//!
//! The simulator calls [`TraceSink::record`] once per completed application
//! operation with timing and size facts; the `darshan` crate aggregates these
//! into per-(rank, file, module) counter records exactly as Darshan's runtime
//! library would.

use crate::ops::{FileId, Module};
use simcore::time::SimTime;

/// Completed-operation classification for counter accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// open/create.
    Open,
    /// stat/getattr.
    Stat,
    /// close.
    Close,
    /// unlink.
    Unlink,
    /// mkdir/readdir.
    DirOp,
    /// fsync.
    Sync,
}

/// One completed application operation, as seen by the tracer.
#[derive(Debug, Clone, Copy)]
pub struct OpRecord {
    /// Issuing MPI rank.
    pub rank: u32,
    /// Target file (directories are reported as synthetic files by Darshan;
    /// we use `None` for pure directory ops).
    pub file: Option<FileId>,
    /// I/O interface module.
    pub module: Module,
    /// Operation class.
    pub class: OpClass,
    /// File offset (data ops only).
    pub offset: u64,
    /// Bytes moved (data ops only).
    pub bytes: u64,
    /// Operation start time.
    pub start: SimTime,
    /// Operation end time.
    pub end: SimTime,
}

/// Receiver of operation records.
pub trait TraceSink {
    /// Called once per completed operation, in per-rank program order.
    fn record(&mut self, rec: &OpRecord);
}

/// A sink that discards everything (for untraced runs).
#[derive(Debug, Default, Clone)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _rec: &OpRecord) {}
}

/// A sink that keeps every record (for tests and fine-grained analysis).
#[derive(Debug, Default)]
pub struct VecSink {
    /// All records in completion order.
    pub records: Vec<OpRecord>,
}

impl TraceSink for VecSink {
    fn record(&mut self, rec: &OpRecord) {
        self.records.push(*rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sink_collects() {
        let mut sink = VecSink::default();
        let rec = OpRecord {
            rank: 1,
            file: Some(FileId(2)),
            module: Module::Posix,
            class: OpClass::Write,
            offset: 0,
            bytes: 4096,
            start: SimTime::ZERO,
            end: SimTime::from_micros(10),
        };
        sink.record(&rec);
        sink.record(&rec);
        assert_eq!(sink.records.len(), 2);
        assert_eq!(sink.records[0].bytes, 4096);
    }

    #[test]
    fn null_sink_is_noop() {
        let mut sink = NullSink;
        let rec = OpRecord {
            rank: 0,
            file: None,
            module: Module::Posix,
            class: OpClass::DirOp,
            offset: 0,
            bytes: 0,
            start: SimTime::ZERO,
            end: SimTime::ZERO,
        };
        sink.record(&rec); // must not panic
    }
}
