//! The I/O operation vocabulary shared by workload generators and the
//! simulator engine.
//!
//! A workload is a set of per-rank [`RankStream`]s — ordered operation lists
//! with optional `Barrier` synchronisation points, exactly the abstraction an
//! MPI benchmark like IOR or MDWorkbench reduces to.

use serde::{Deserialize, Serialize};

/// Identifier of a file in the simulated namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileId(pub u32);

/// Identifier of a directory in the simulated namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DirId(pub u32);

/// Which I/O interface issued an operation — Darshan separates counters by
/// module (§2.1.2: POSIX, MPI-IO, STDIO).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Module {
    /// POSIX system calls.
    Posix,
    /// MPI-IO collective/independent I/O.
    MpiIo,
    /// Buffered stdio.
    Stdio,
}

impl Module {
    /// Darshan module name string.
    pub fn name(self) -> &'static str {
        match self {
            Module::Posix => "POSIX",
            Module::MpiIo => "MPI-IO",
            Module::Stdio => "STDIO",
        }
    }
}

/// One operation in a rank's stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IoOp {
    /// Create a directory.
    Mkdir {
        /// Directory to create.
        dir: DirId,
    },
    /// Create (and open) a file inside `dir`. Allocates the file's stripe
    /// layout from the active configuration.
    Create {
        /// File to create.
        file: FileId,
        /// Parent directory.
        dir: DirId,
    },
    /// Open an existing file.
    Open {
        /// File to open.
        file: FileId,
    },
    /// Close a file (kicks off writeback of its aggregation run).
    Close {
        /// File to close.
        file: FileId,
    },
    /// Write `len` bytes at `offset`.
    Write {
        /// Target file.
        file: FileId,
        /// Byte offset.
        offset: u64,
        /// Length in bytes.
        len: u64,
    },
    /// Read `len` bytes at `offset`.
    Read {
        /// Source file.
        file: FileId,
        /// Byte offset.
        offset: u64,
        /// Length in bytes.
        len: u64,
    },
    /// Fetch file attributes (getattr + per-object size glimpse).
    Stat {
        /// Target file.
        file: FileId,
    },
    /// Remove a file (waits for its writeback, destroys its objects).
    Unlink {
        /// Target file.
        file: FileId,
    },
    /// Block until all dirty data of `file` is on stable storage.
    Fsync {
        /// Target file.
        file: FileId,
    },
    /// List a directory (returns entries in creation order; primes statahead).
    Readdir {
        /// Target directory.
        dir: DirId,
    },
    /// Synchronise all ranks (MPI_Barrier).
    Barrier,
    /// Pure computation for `nanos` nanoseconds (no I/O).
    Compute {
        /// Duration in nanoseconds.
        nanos: u64,
    },
}

impl IoOp {
    /// Bytes moved by this operation (0 for metadata/sync ops).
    pub fn bytes(&self) -> u64 {
        match self {
            IoOp::Write { len, .. } | IoOp::Read { len, .. } => *len,
            _ => 0,
        }
    }

    /// Whether this is a metadata operation (hits the MDS).
    pub fn is_metadata(&self) -> bool {
        matches!(
            self,
            IoOp::Mkdir { .. }
                | IoOp::Create { .. }
                | IoOp::Open { .. }
                | IoOp::Stat { .. }
                | IoOp::Unlink { .. }
                | IoOp::Readdir { .. }
        )
    }
}

/// The ordered operation stream of one MPI rank.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RankStream {
    /// MPI rank number.
    pub rank: u32,
    /// I/O interface the operations are issued through.
    pub module: Module,
    /// Operations in program order.
    pub ops: Vec<IoOp>,
}

impl RankStream {
    /// Create an empty stream for `rank`.
    pub fn new(rank: u32, module: Module) -> Self {
        RankStream {
            rank,
            module,
            ops: Vec::new(),
        }
    }

    /// Append an operation.
    pub fn push(&mut self, op: IoOp) {
        self.ops.push(op);
    }

    /// Total bytes written by this stream.
    pub fn bytes_written(&self) -> u64 {
        self.ops
            .iter()
            .filter_map(|op| match op {
                IoOp::Write { len, .. } => Some(*len),
                _ => None,
            })
            .sum()
    }

    /// Total bytes read by this stream.
    pub fn bytes_read(&self) -> u64 {
        self.ops
            .iter()
            .filter_map(|op| match op {
                IoOp::Read { len, .. } => Some(*len),
                _ => None,
            })
            .sum()
    }

    /// Number of barrier operations (must agree across ranks of a workload).
    pub fn barrier_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, IoOp::Barrier))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_bytes() {
        assert_eq!(
            IoOp::Write {
                file: FileId(0),
                offset: 0,
                len: 42
            }
            .bytes(),
            42
        );
        assert_eq!(IoOp::Stat { file: FileId(0) }.bytes(), 0);
        assert_eq!(IoOp::Barrier.bytes(), 0);
    }

    #[test]
    fn metadata_classification() {
        assert!(IoOp::Create {
            file: FileId(0),
            dir: DirId(0)
        }
        .is_metadata());
        assert!(IoOp::Stat { file: FileId(0) }.is_metadata());
        assert!(!IoOp::Write {
            file: FileId(0),
            offset: 0,
            len: 1
        }
        .is_metadata());
        assert!(!IoOp::Barrier.is_metadata());
        assert!(!IoOp::Fsync { file: FileId(0) }.is_metadata());
    }

    #[test]
    fn stream_accounting() {
        let mut s = RankStream::new(3, Module::Posix);
        s.push(IoOp::Write {
            file: FileId(1),
            offset: 0,
            len: 100,
        });
        s.push(IoOp::Barrier);
        s.push(IoOp::Read {
            file: FileId(1),
            offset: 0,
            len: 60,
        });
        s.push(IoOp::Barrier);
        assert_eq!(s.bytes_written(), 100);
        assert_eq!(s.bytes_read(), 60);
        assert_eq!(s.barrier_count(), 2);
        assert_eq!(s.rank, 3);
    }

    #[test]
    fn module_names() {
        assert_eq!(Module::Posix.name(), "POSIX");
        assert_eq!(Module::MpiIo.name(), "MPI-IO");
        assert_eq!(Module::Stdio.name(), "STDIO");
    }
}
