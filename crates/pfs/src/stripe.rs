//! RAID-0 style file striping across OST objects.
//!
//! A file's layout is fixed at creation from the active configuration:
//! `stripe_size` bytes go to object 0, the next `stripe_size` bytes to
//! object 1, and so on round-robin over `stripe_count` objects, each living
//! on a distinct OST starting at `start_ost`.
//!
//! Extent mapping is on the simulation hot path — every read, write and
//! readahead RPC decomposes through a layout. Two allocation-avoidance
//! tools keep it cheap: [`Layout::map_into`] reuses a caller-owned extent
//! buffer instead of allocating a `Vec` per operation, and
//! [`PlacementCache`] memoizes each layout's stripe-object → OST table so
//! per-op placement stops re-deriving the same modular arithmetic.

use serde::{Deserialize, Serialize};
use simcore::hash::FxBuildHasher;
use std::collections::HashMap;
use std::sync::Arc;

/// A file's stripe layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layout {
    /// Bytes per stripe unit.
    pub stripe_size: u64,
    /// Number of objects (1..=ost_count).
    pub stripe_count: u32,
    /// First OST index (files are rotated across OSTs for balance).
    pub start_ost: u32,
}

/// A contiguous piece of a file extent mapped onto one OST object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectExtent {
    /// OST index holding this piece.
    pub ost: u32,
    /// Stripe object index within the file's layout (0..stripe_count).
    pub obj_index: u32,
    /// Byte offset *within the object*.
    pub obj_offset: u64,
    /// Length in bytes.
    pub len: u64,
    /// Original file offset of this piece.
    pub file_offset: u64,
}

impl Layout {
    /// Create a layout; `stripe_count` is clamped to at least 1 and
    /// `stripe_size` to at least 64 KiB (the Lustre minimum).
    pub fn new(stripe_size: u64, stripe_count: u32, start_ost: u32, ost_count: u32) -> Self {
        Layout {
            stripe_size: stripe_size.max(64 * 1024),
            stripe_count: stripe_count.clamp(1, ost_count.max(1)),
            start_ost: start_ost % ost_count.max(1),
        }
    }

    /// OST index of stripe object `obj_index`, given the cluster's OST count.
    pub fn ost_of(&self, obj_index: u32, ost_count: u32) -> u32 {
        (self.start_ost + obj_index) % ost_count.max(1)
    }

    /// Map a file extent `[offset, offset+len)` to object extents, in file
    /// offset order. Zero-length extents map to nothing.
    ///
    /// Allocates a fresh `Vec` per call; hot paths should hold a scratch
    /// buffer and use [`Layout::map_into`] (optionally with a memoized
    /// placement table from [`PlacementCache`]) instead.
    pub fn map(&self, offset: u64, len: u64, ost_count: u32) -> Vec<ObjectExtent> {
        let mut out = Vec::new();
        self.map_into(offset, len, ost_count, None, &mut out);
        out
    }

    /// [`Layout::map`] into a caller-owned buffer (cleared first), so a
    /// per-op scratch `Vec` amortizes to zero allocations.
    ///
    /// `osts`, when given, must be this layout's stripe-object → OST table
    /// (from [`PlacementCache::osts`]); placement then becomes a lookup
    /// instead of re-deriving `(start_ost + obj) % ost_count` per piece.
    pub fn map_into(
        &self,
        offset: u64,
        len: u64,
        ost_count: u32,
        osts: Option<&[u32]>,
        out: &mut Vec<ObjectExtent>,
    ) {
        out.clear();
        if len == 0 {
            return;
        }
        debug_assert!(
            osts.is_none_or(|t| t.len() == self.stripe_count as usize),
            "placement table does not match layout"
        );
        let ss = self.stripe_size;
        let sc = self.stripe_count as u64;
        let mut cur = offset;
        let end = offset + len;
        while cur < end {
            let stripe_index = cur / ss; // global stripe number
            let within = cur % ss;
            let take = (ss - within).min(end - cur);
            let obj_index = (stripe_index % sc) as u32;
            // The object sees stripes stripe_index/sc, each ss bytes.
            let obj_offset = (stripe_index / sc) * ss + within;
            out.push(ObjectExtent {
                ost: match osts {
                    Some(table) => table[obj_index as usize],
                    None => self.ost_of(obj_index, ost_count),
                },
                obj_index,
                obj_offset,
                len: take,
                file_offset: cur,
            });
            cur += take;
        }
    }
}

/// Memoized stripe-object → OST placement tables, keyed by the layout
/// fields that determine placement (`start_ost`, `stripe_count`).
///
/// Layouts recur constantly within a run — every file created under one
/// configuration shares a `stripe_count` and cycles through `ost_count`
/// start offsets — so the engine derives each table once and every
/// subsequent op on any file with the same placement reuses it. Tables are
/// `Arc`ed so callers can hold one across `&mut self` engine calls.
#[derive(Debug, Default)]
pub struct PlacementCache {
    // determinism audit (D002): memo table hit by point lookups only; a
    // hit returns the same Arc'd table a miss would compute
    tables: HashMap<(u32, u32), Arc<[u32]>, FxBuildHasher>,
    ost_count: u32,
}

impl PlacementCache {
    /// Cache for a cluster with `ost_count` OSTs.
    pub fn new(ost_count: u32) -> Self {
        PlacementCache {
            tables: HashMap::default(),
            ost_count,
        }
    }

    /// The stripe-object → OST table for `layout`, derived on first use.
    pub fn osts(&mut self, layout: &Layout) -> Arc<[u32]> {
        let key = (layout.start_ost, layout.stripe_count);
        let ost_count = self.ost_count;
        self.tables
            .entry(key)
            .or_insert_with(|| {
                (0..layout.stripe_count)
                    .map(|obj| layout.ost_of(obj, ost_count))
                    .collect()
            })
            .clone()
    }

    /// Number of distinct placements derived so far.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether no placement has been derived yet.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stripe_maps_identity() {
        let l = Layout::new(1 << 20, 1, 0, 5);
        let ext = l.map(12345, 1000, 5);
        assert_eq!(ext.len(), 1);
        assert_eq!(ext[0].ost, 0);
        assert_eq!(ext[0].obj_offset, 12345);
        assert_eq!(ext[0].len, 1000);
    }

    #[test]
    fn round_robin_across_objects() {
        let l = Layout::new(1 << 20, 4, 0, 5);
        // 4 MiB starting at 0 → one full stripe on each of 4 objects.
        let ext = l.map(0, 4 << 20, 5);
        assert_eq!(ext.len(), 4);
        for (i, e) in ext.iter().enumerate() {
            assert_eq!(e.obj_index, i as u32);
            assert_eq!(e.obj_offset, 0);
            assert_eq!(e.len, 1 << 20);
        }
        // Next 4 MiB wraps to the same objects at object offset 1 MiB.
        let ext2 = l.map(4 << 20, 4 << 20, 5);
        for (i, e) in ext2.iter().enumerate() {
            assert_eq!(e.obj_index, i as u32);
            assert_eq!(e.obj_offset, 1 << 20);
        }
    }

    #[test]
    fn unaligned_extent_splits_at_stripe_boundary() {
        let ss = 64 * 1024;
        let l = Layout::new(ss, 2, 0, 2);
        // [ss-24, ss+76) crosses the first stripe boundary.
        let ext = l.map(ss - 24, 100, 2);
        assert_eq!(ext.len(), 2);
        assert_eq!(ext[0].obj_index, 0);
        assert_eq!(ext[0].obj_offset, ss - 24);
        assert_eq!(ext[0].len, 24);
        assert_eq!(ext[1].obj_index, 1);
        assert_eq!(ext[1].obj_offset, 0);
        assert_eq!(ext[1].len, 76);
    }

    #[test]
    fn start_ost_rotation() {
        let l = Layout::new(1024, 2, 3, 5);
        assert_eq!(l.ost_of(0, 5), 3);
        assert_eq!(l.ost_of(1, 5), 4);
        let l2 = Layout::new(1024, 2, 4, 5);
        assert_eq!(l2.ost_of(1, 5), 0); // wraps
    }

    #[test]
    fn zero_len_maps_to_nothing() {
        let l = Layout::new(1024, 2, 0, 2);
        assert!(l.map(0, 0, 2).is_empty());
    }

    #[test]
    fn mapping_is_exhaustive_and_ordered() {
        let l = Layout::new(64 * 1024, 3, 1, 5);
        let (off, len) = (123_456, 1_000_000);
        let ext = l.map(off, len, 5);
        let total: u64 = ext.iter().map(|e| e.len).sum();
        assert_eq!(total, len);
        let mut cur = off;
        for e in &ext {
            assert_eq!(e.file_offset, cur);
            cur += e.len;
        }
        assert_eq!(cur, off + len);
    }

    #[test]
    fn map_into_reuses_buffer_and_matches_map() {
        let l = Layout::new(64 * 1024, 3, 1, 5);
        let mut cache = PlacementCache::new(5);
        assert!(cache.is_empty());
        let table = cache.osts(&l);
        assert_eq!(&*table, &[1, 2, 3]);
        let mut buf = Vec::new();
        for (off, len) in [(0u64, 1u64), (123_456, 1_000_000), (5, 0)] {
            l.map_into(off, len, 5, Some(&table), &mut buf);
            assert_eq!(buf, l.map(off, len, 5), "({off},{len})");
        }
        // Same placement key → same memoized table, no new derivation.
        let again = cache.osts(&Layout::new(1 << 20, 3, 1, 5));
        assert!(Arc::ptr_eq(&table, &again));
        assert_eq!(cache.len(), 1);
        // Different start_ost is a different placement.
        let rotated = cache.osts(&Layout::new(64 * 1024, 3, 4, 5));
        assert_eq!(&*rotated, &[4, 0, 1]);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn clamps_degenerate_inputs() {
        let l = Layout::new(1, 0, 7, 5);
        assert_eq!(l.stripe_size, 64 * 1024);
        assert_eq!(l.stripe_count, 1);
        assert_eq!(l.start_ost, 2); // 7 % 5
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Mapping covers the extent exactly, in order, with no gaps.
        #[test]
        fn map_partitions_extent(
            ss_exp in 16u32..24, // 64K..8M stripe sizes
            sc in 1u32..6,
            start in 0u32..5,
            off in 0u64..(1 << 30),
            len in 1u64..(16 << 20),
        ) {
            let l = Layout::new(1u64 << ss_exp, sc, start, 5);
            let ext = l.map(off, len, 5);
            let total: u64 = ext.iter().map(|e| e.len).sum();
            prop_assert_eq!(total, len);
            let mut cur = off;
            for e in &ext {
                prop_assert_eq!(e.file_offset, cur);
                prop_assert!(e.len > 0);
                prop_assert!(e.ost < 5);
                prop_assert!(e.obj_index < l.stripe_count);
                // A piece never crosses a stripe boundary within its object.
                prop_assert!(e.obj_offset % l.stripe_size + e.len <= l.stripe_size);
                cur += e.len;
            }
        }

        /// The same (file offset) always maps to the same object.
        #[test]
        fn mapping_is_deterministic_per_offset(
            off in 0u64..(1 << 28),
            sc in 1u32..6,
        ) {
            let l = Layout::new(1 << 20, sc, 0, 5);
            let a = l.map(off, 1, 5);
            let b = l.map(off, 1, 5);
            prop_assert_eq!(a, b);
        }

        /// The memoized-table fast path is extensionally identical to the
        /// allocating modulo path for any layout and extent.
        #[test]
        fn map_into_with_table_equals_map(
            ss_exp in 16u32..24,
            sc in 1u32..6,
            start in 0u32..5,
            off in 0u64..(1 << 30),
            len in 0u64..(16 << 20),
        ) {
            let l = Layout::new(1u64 << ss_exp, sc, start, 5);
            let mut cache = PlacementCache::new(5);
            let table = cache.osts(&l);
            let mut buf = vec![ObjectExtent {
                ost: 99, obj_index: 99, obj_offset: 99, len: 99, file_offset: 99,
            }]; // stale content must be cleared
            l.map_into(off, len, 5, Some(&table), &mut buf);
            prop_assert_eq!(buf, l.map(off, len, 5));
        }
    }
}
