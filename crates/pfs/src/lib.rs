//! # pfs — a Lustre-like parallel file system simulator
//!
//! This crate is the cluster substrate for the STELLAR reproduction. The paper
//! evaluates on a 10-node CloudLab cluster running Lustre 2.15.5 (5 OSS, a
//! combined MGS/MDS, 5 client nodes, 50 MPI ranks, 10 Gbps Ethernet); since no
//! such cluster is available here, this crate implements a discrete-event
//! model of the same system with the same *tunable surface*:
//!
//! * a `/proc`-style **parameter tree** ([`params`]) with writability flags,
//!   defaults, static and *dependent* (expression-valued) ranges — the source
//!   the RAG extraction pipeline enumerates, exactly as STELLAR reads
//!   `/proc/fs/lustre` (§4.2.2);
//! * **striping** ([`stripe`]) mapping file extents onto OST objects;
//! * a **client model** (page cache, dirty write-behind, readahead state
//!   machine, statahead, short-I/O fast path);
//! * **OSC/MDC RPC engines** with `max_rpcs_in_flight`-style windows;
//! * **LDLM extent locks** with revocation round-trips on cross-client
//!   conflicts (the shared-file contention that stripe tuning mitigates);
//! * **OST disks** with sequential/random asymmetry and **MDS** service pools;
//! * a shared-NIC **network** model.
//!
//! The facade is [`model::PfsSimulator`]: feed it per-rank operation streams
//! (from the `workloads` crate) and a [`params::TuningConfig`], get back a
//! [`result::RunResult`] (wall time + utilisations) and a Darshan-compatible
//! trace via the [`trace::TraceSink`] hook.

#![forbid(unsafe_code)]

pub mod faults;
pub mod ops;
pub mod params;
pub mod stripe;
pub mod topology;
pub mod trace;

pub mod model;
pub mod result;

pub use faults::{FaultEvent, FaultKind, FaultPlan};
pub use model::PfsSimulator;
pub use ops::{DirId, FileId, IoOp, Module, RankStream};
pub use params::{ParamRegistry, TuningConfig};
pub use result::RunResult;
pub use topology::ClusterSpec;
