//! The `dependent`/`expression` syntax of §4.2.2.
//!
//! Some parameter bounds depend on other parameters or on hardware facts
//! ("the maximal value of `max_read_ahead_per_file_mb` is half of
//! `max_read_ahead_mb`, whose maximal value is half of the system memory").
//! The RAG extractor emits such bounds as expressions; they are parsed here
//! and evaluated at tuning time against live system values.
//!
//! Grammar (integer/float arithmetic, C-style precedence):
//!
//! ```text
//! expr    := term (('+' | '-') term)*
//! term    := factor (('*' | '/') factor)*
//! factor  := NUMBER | IDENT | func | '(' expr ')'
//! func    := ('min' | 'max') '(' expr ',' expr ')'
//! IDENT   := [a-zA-Z_][a-zA-Z0-9_.]*
//! ```

use std::fmt;

/// Evaluation environment: resolves identifiers (other parameter values,
/// hardware facts like `memory_mb`) to numbers.
pub trait Env {
    /// Current value of `name`, if known.
    fn lookup(&self, name: &str) -> Option<f64>;
}

impl Env for std::collections::BTreeMap<String, f64> {
    fn lookup(&self, name: &str) -> Option<f64> {
        self.get(name).copied()
    }
}

/// Errors from parsing or evaluating an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprError {
    /// Unexpected character or token at byte offset.
    Parse(String),
    /// An identifier the environment could not resolve.
    UnknownIdent(String),
    /// Division by zero during evaluation.
    DivByZero,
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::Parse(m) => write!(f, "expression parse error: {m}"),
            ExprError::UnknownIdent(n) => write!(f, "unknown identifier `{n}`"),
            ExprError::DivByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for ExprError {}

/// A parsed arithmetic expression over parameter/hardware identifiers.
///
/// ```
/// use pfs::params::Expr;
/// use std::collections::BTreeMap;
///
/// let cap = Expr::parse("min(llite.max_read_ahead_mb, memory_mb / 2) / 2").unwrap();
/// let mut env = BTreeMap::new();
/// env.insert("llite.max_read_ahead_mb".to_string(), 64.0);
/// env.insert("memory_mb".to_string(), 196_608.0);
/// assert_eq!(cap.eval(&env).unwrap(), 32.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal number.
    Num(f64),
    /// Identifier resolved via [`Env`].
    Ident(String),
    /// Binary operation.
    Bin(Box<Expr>, BinOp, Box<Expr>),
    /// `min(a, b)` / `max(a, b)`.
    Call(Func, Box<Expr>, Box<Expr>),
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

/// Two-argument builtin functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Func {
    /// Smaller of two values.
    Min,
    /// Larger of two values.
    Max,
}

impl Expr {
    /// Parse `src` into an expression tree.
    pub fn parse(src: &str) -> Result<Expr, ExprError> {
        let mut p = Parser {
            src: src.as_bytes(),
            pos: 0,
        };
        let e = p.expr()?;
        p.skip_ws();
        if p.pos != p.src.len() {
            return Err(ExprError::Parse(format!(
                "trailing input at byte {}: `{}`",
                p.pos,
                &src[p.pos..]
            )));
        }
        Ok(e)
    }

    /// Evaluate against an environment.
    pub fn eval(&self, env: &dyn Env) -> Result<f64, ExprError> {
        match self {
            Expr::Num(v) => Ok(*v),
            Expr::Ident(name) => env
                .lookup(name)
                .ok_or_else(|| ExprError::UnknownIdent(name.clone())),
            Expr::Bin(l, op, r) => {
                let a = l.eval(env)?;
                let b = r.eval(env)?;
                match op {
                    BinOp::Add => Ok(a + b),
                    BinOp::Sub => Ok(a - b),
                    BinOp::Mul => Ok(a * b),
                    BinOp::Div => {
                        if b == 0.0 {
                            Err(ExprError::DivByZero)
                        } else {
                            Ok(a / b)
                        }
                    }
                }
            }
            Expr::Call(f, l, r) => {
                let a = l.eval(env)?;
                let b = r.eval(env)?;
                Ok(match f {
                    Func::Min => a.min(b),
                    Func::Max => a.max(b),
                })
            }
        }
    }

    /// All identifiers referenced by the expression (the dependency set).
    pub fn idents(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_idents(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_idents(&self, out: &mut Vec<String>) {
        match self {
            Expr::Num(_) => {}
            Expr::Ident(n) => out.push(n.clone()),
            Expr::Bin(l, _, r) | Expr::Call(_, l, r) => {
                l.collect_idents(out);
                r.collect_idents(out);
            }
        }
    }
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn expr(&mut self) -> Result<Expr, ExprError> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                Some(b'+') => {
                    self.pos += 1;
                    let rhs = self.term()?;
                    lhs = Expr::Bin(Box::new(lhs), BinOp::Add, Box::new(rhs));
                }
                Some(b'-') => {
                    self.pos += 1;
                    let rhs = self.term()?;
                    lhs = Expr::Bin(Box::new(lhs), BinOp::Sub, Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn term(&mut self) -> Result<Expr, ExprError> {
        let mut lhs = self.factor()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.pos += 1;
                    let rhs = self.factor()?;
                    lhs = Expr::Bin(Box::new(lhs), BinOp::Mul, Box::new(rhs));
                }
                Some(b'/') => {
                    self.pos += 1;
                    let rhs = self.factor()?;
                    lhs = Expr::Bin(Box::new(lhs), BinOp::Div, Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn factor(&mut self) -> Result<Expr, ExprError> {
        match self.peek() {
            None => Err(ExprError::Parse("unexpected end of input".into())),
            Some(b'(') => {
                self.pos += 1;
                let e = self.expr()?;
                if self.peek() != Some(b')') {
                    return Err(ExprError::Parse("expected `)`".into()));
                }
                self.pos += 1;
                Ok(e)
            }
            Some(c) if c.is_ascii_digit() || c == b'.' => self.number(),
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => self.ident_or_call(),
            Some(c) => Err(ExprError::Parse(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
        }
    }

    fn number(&mut self) -> Result<Expr, ExprError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_digit() || self.src[self.pos] == b'.')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Expr::Num)
            .map_err(|e| ExprError::Parse(format!("bad number `{text}`: {e}")))
    }

    fn ident_or_call(&mut self) -> Result<Expr, ExprError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric()
                || self.src[self.pos] == b'_'
                || self.src[self.pos] == b'.')
        {
            self.pos += 1;
        }
        let name = std::str::from_utf8(&self.src[start..self.pos])
            .expect("ascii ident")
            .to_string();
        let func = match name.as_str() {
            "min" => Some(Func::Min),
            "max" => Some(Func::Max),
            _ => None,
        };
        if let Some(f) = func {
            if self.peek() == Some(b'(') {
                self.pos += 1;
                let a = self.expr()?;
                if self.peek() != Some(b',') {
                    return Err(ExprError::Parse(format!("expected `,` in {name}()")));
                }
                self.pos += 1;
                let b = self.expr()?;
                if self.peek() != Some(b')') {
                    return Err(ExprError::Parse(format!("expected `)` closing {name}()")));
                }
                self.pos += 1;
                return Ok(Expr::Call(f, Box::new(a), Box::new(b)));
            }
        }
        Ok(Expr::Ident(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn env(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn literals_and_precedence() {
        let e = Expr::parse("2 + 3 * 4").unwrap();
        assert_eq!(e.eval(&env(&[])).unwrap(), 14.0);
        let e = Expr::parse("(2 + 3) * 4").unwrap();
        assert_eq!(e.eval(&env(&[])).unwrap(), 20.0);
        let e = Expr::parse("10 - 4 - 3").unwrap();
        assert_eq!(e.eval(&env(&[])).unwrap(), 3.0);
    }

    #[test]
    fn identifiers_resolve() {
        let e = Expr::parse("memory_mb / 2").unwrap();
        assert_eq!(e.eval(&env(&[("memory_mb", 196608.0)])).unwrap(), 98304.0);
    }

    #[test]
    fn dotted_identifiers() {
        let e = Expr::parse("llite.max_read_ahead_mb / 2").unwrap();
        assert_eq!(
            e.eval(&env(&[("llite.max_read_ahead_mb", 64.0)])).unwrap(),
            32.0
        );
        assert_eq!(e.idents(), vec!["llite.max_read_ahead_mb".to_string()]);
    }

    #[test]
    fn min_max_functions() {
        let e = Expr::parse("min(max_rpcs_in_flight - 1, 255)").unwrap();
        assert_eq!(e.eval(&env(&[("max_rpcs_in_flight", 8.0)])).unwrap(), 7.0);
        assert_eq!(
            e.eval(&env(&[("max_rpcs_in_flight", 1000.0)])).unwrap(),
            255.0
        );
        let e = Expr::parse("max(1, memory_mb / 4)").unwrap();
        assert_eq!(e.eval(&env(&[("memory_mb", 2.0)])).unwrap(), 1.0);
    }

    #[test]
    fn nested_paper_example() {
        // "maximal value of max_read_ahead_per_file_mb is half of
        //  max_read_ahead_mb, whose maximal value is half of system memory"
        let cap = Expr::parse("min(llite.max_read_ahead_mb, memory_mb / 2) / 2").unwrap();
        let v = cap
            .eval(&env(&[
                ("llite.max_read_ahead_mb", 64.0),
                ("memory_mb", 196608.0),
            ]))
            .unwrap();
        assert_eq!(v, 32.0);
    }

    #[test]
    fn unknown_ident_errors() {
        let e = Expr::parse("nope + 1").unwrap();
        assert_eq!(
            e.eval(&env(&[])),
            Err(ExprError::UnknownIdent("nope".into()))
        );
    }

    #[test]
    fn div_by_zero_errors() {
        let e = Expr::parse("1 / 0").unwrap();
        assert_eq!(e.eval(&env(&[])), Err(ExprError::DivByZero));
    }

    #[test]
    fn parse_errors() {
        assert!(Expr::parse("").is_err());
        assert!(Expr::parse("1 +").is_err());
        assert!(Expr::parse("(1").is_err());
        assert!(Expr::parse("min(1)").is_err());
        assert!(Expr::parse("1 2").is_err());
        assert!(Expr::parse("@").is_err());
    }

    #[test]
    fn idents_dedup_sorted() {
        let e = Expr::parse("a + b * a + min(c, b)").unwrap();
        assert_eq!(e.idents(), vec!["a", "b", "c"]);
    }

    #[test]
    fn min_as_plain_ident_when_not_called() {
        // `min` not followed by `(` is an ordinary identifier.
        let e = Expr::parse("min + 1").unwrap();
        assert_eq!(e.eval(&env(&[("min", 4.0)])).unwrap(), 5.0);
    }
}
