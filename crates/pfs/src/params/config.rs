//! Runtime tuning configuration: the values of the 13 high-impact tunables.
//!
//! [`TuningConfig`] is what the Tuning Agent manipulates (by name, the way
//! `lctl set_param` would) and what the simulator consumes. Validation
//! resolves dependent bounds against the cluster's hardware facts, mirroring
//! how STELLAR evaluates `expression` ranges "based on actual system values
//! during tuning" (§4.2.2).

use super::expr::Env;
use super::registry::ParamRegistry;
use crate::topology::ClusterSpec;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Canonical names of the 13 tunables, in registry order.
pub const TUNABLE_NAMES: [&str; 13] = [
    "stripe_size",
    "stripe_count",
    "osc.max_rpcs_in_flight",
    "osc.max_pages_per_rpc",
    "osc.max_dirty_mb",
    "osc.short_io_bytes",
    "llite.max_cached_mb",
    "llite.max_read_ahead_mb",
    "llite.max_read_ahead_per_file_mb",
    "llite.max_read_ahead_whole_mb",
    "llite.statahead_max",
    "mdc.max_rpcs_in_flight",
    "mdc.max_mod_rpcs_in_flight",
];

/// The tunable surface of the simulated file system.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TuningConfig {
    /// Bytes per stripe before the layout advances to the next OST object.
    pub stripe_size: u64,
    /// Number of OSTs a file is striped over; -1 means all OSTs.
    pub stripe_count: i32,
    /// Max concurrent bulk RPCs per client-OST pair.
    pub osc_max_rpcs_in_flight: u32,
    /// Max 4 KiB pages per bulk RPC.
    pub osc_max_pages_per_rpc: u32,
    /// Max dirty MB buffered per client-OST pair.
    pub osc_max_dirty_mb: u32,
    /// Inline (short) I/O threshold in bytes; 0 disables.
    pub osc_short_io_bytes: u32,
    /// Client page-cache budget in MB.
    pub llite_max_cached_mb: u32,
    /// Client-wide readahead budget in MB; 0 disables readahead.
    pub llite_max_read_ahead_mb: u32,
    /// Per-file readahead window cap in MB.
    pub llite_max_read_ahead_per_file_mb: u32,
    /// Whole-file readahead threshold in MB.
    pub llite_max_read_ahead_whole_mb: u32,
    /// Statahead prefetch depth in entries; 0 disables.
    pub llite_statahead_max: u32,
    /// Max concurrent metadata RPCs per client.
    pub mdc_max_rpcs_in_flight: u32,
    /// Max concurrent modifying metadata RPCs per client.
    pub mdc_max_mod_rpcs_in_flight: u32,
}

impl Default for TuningConfig {
    fn default() -> Self {
        Self::lustre_default()
    }
}

/// Error from name-based access or validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The name is not one of the 13 tunables.
    UnknownParam(String),
    /// Value violates a (possibly dependent) bound.
    OutOfRange {
        /// Parameter name.
        name: String,
        /// Offending value.
        value: i64,
        /// Resolved lower bound.
        min: i64,
        /// Resolved upper bound.
        max: i64,
    },
    /// A dependent bound failed to resolve.
    BadBound(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::UnknownParam(n) => write!(f, "unknown tunable `{n}`"),
            ConfigError::OutOfRange {
                name,
                value,
                min,
                max,
            } => write!(f, "`{name}` = {value} outside [{min}, {max}]"),
            ConfigError::BadBound(m) => write!(f, "bound resolution failed: {m}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl TuningConfig {
    /// Defaults matching the paper's Lustre 2.15 deployment.
    pub fn lustre_default() -> Self {
        TuningConfig {
            stripe_size: 1 << 20,
            stripe_count: 1,
            osc_max_rpcs_in_flight: 8,
            osc_max_pages_per_rpc: 256,
            osc_max_dirty_mb: 32,
            osc_short_io_bytes: 16384,
            llite_max_cached_mb: 65536,
            llite_max_read_ahead_mb: 64,
            llite_max_read_ahead_per_file_mb: 32,
            llite_max_read_ahead_whole_mb: 2,
            llite_statahead_max: 32,
            mdc_max_rpcs_in_flight: 8,
            mdc_max_mod_rpcs_in_flight: 7,
        }
    }

    /// Get a tunable by canonical name.
    pub fn get(&self, name: &str) -> Result<i64, ConfigError> {
        Ok(match name {
            "stripe_size" => self.stripe_size as i64,
            "stripe_count" => self.stripe_count as i64,
            "osc.max_rpcs_in_flight" => self.osc_max_rpcs_in_flight as i64,
            "osc.max_pages_per_rpc" => self.osc_max_pages_per_rpc as i64,
            "osc.max_dirty_mb" => self.osc_max_dirty_mb as i64,
            "osc.short_io_bytes" => self.osc_short_io_bytes as i64,
            "llite.max_cached_mb" => self.llite_max_cached_mb as i64,
            "llite.max_read_ahead_mb" => self.llite_max_read_ahead_mb as i64,
            "llite.max_read_ahead_per_file_mb" => self.llite_max_read_ahead_per_file_mb as i64,
            "llite.max_read_ahead_whole_mb" => self.llite_max_read_ahead_whole_mb as i64,
            "llite.statahead_max" => self.llite_statahead_max as i64,
            "mdc.max_rpcs_in_flight" => self.mdc_max_rpcs_in_flight as i64,
            "mdc.max_mod_rpcs_in_flight" => self.mdc_max_mod_rpcs_in_flight as i64,
            _ => return Err(ConfigError::UnknownParam(name.to_string())),
        })
    }

    /// Set a tunable by canonical name (no range validation; call
    /// [`TuningConfig::validate`] afterwards).
    pub fn set(&mut self, name: &str, value: i64) -> Result<(), ConfigError> {
        match name {
            "stripe_size" => self.stripe_size = value.max(0) as u64,
            "stripe_count" => self.stripe_count = value as i32,
            "osc.max_rpcs_in_flight" => self.osc_max_rpcs_in_flight = value.max(0) as u32,
            "osc.max_pages_per_rpc" => self.osc_max_pages_per_rpc = value.max(0) as u32,
            "osc.max_dirty_mb" => self.osc_max_dirty_mb = value.max(0) as u32,
            "osc.short_io_bytes" => self.osc_short_io_bytes = value.max(0) as u32,
            "llite.max_cached_mb" => self.llite_max_cached_mb = value.max(0) as u32,
            "llite.max_read_ahead_mb" => self.llite_max_read_ahead_mb = value.max(0) as u32,
            "llite.max_read_ahead_per_file_mb" => {
                self.llite_max_read_ahead_per_file_mb = value.max(0) as u32
            }
            "llite.max_read_ahead_whole_mb" => {
                self.llite_max_read_ahead_whole_mb = value.max(0) as u32
            }
            "llite.statahead_max" => self.llite_statahead_max = value.max(0) as u32,
            "mdc.max_rpcs_in_flight" => self.mdc_max_rpcs_in_flight = value.max(0) as u32,
            "mdc.max_mod_rpcs_in_flight" => self.mdc_max_mod_rpcs_in_flight = value.max(0) as u32,
            _ => return Err(ConfigError::UnknownParam(name.to_string())),
        }
        Ok(())
    }

    /// Environment for dependent-bound evaluation: every tunable's current
    /// value plus the cluster's hardware facts.
    pub fn env(&self, topo: &ClusterSpec) -> BTreeMap<String, f64> {
        let mut env = BTreeMap::new();
        for name in TUNABLE_NAMES {
            env.insert(name.to_string(), self.get(name).expect("known name") as f64);
        }
        env.insert("memory_mb".to_string(), topo.client_memory_mb as f64);
        env.insert("ost_count".to_string(), topo.ost_count() as f64);
        env.insert("oss_count".to_string(), topo.oss_count as f64);
        env.insert("client_count".to_string(), topo.client_count as f64);
        env
    }

    /// Validate every tunable against the registry's (possibly dependent)
    /// bounds. Returns all violations, not just the first.
    pub fn validate(
        &self,
        registry: &ParamRegistry,
        topo: &ClusterSpec,
    ) -> Result<(), Vec<ConfigError>> {
        let env = self.env(topo);
        let mut errors = Vec::new();
        for name in TUNABLE_NAMES {
            let def = registry.get(name).expect("tunable in registry");
            let value = self.get(name).expect("known name");
            let min = match def.min.resolve(&env) {
                Ok(v) => v,
                Err(e) => {
                    errors.push(ConfigError::BadBound(format!("{name}: {e}")));
                    continue;
                }
            };
            let max = match def.max.resolve(&env) {
                Ok(v) => v,
                Err(e) => {
                    errors.push(ConfigError::BadBound(format!("{name}: {e}")));
                    continue;
                }
            };
            if value < min || value > max {
                errors.push(ConfigError::OutOfRange {
                    name: name.to_string(),
                    value,
                    min,
                    max,
                });
            }
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    /// Clamp every tunable into its resolved valid range. Dependent bounds
    /// are resolved in canonical order, so clamping is a single pass.
    pub fn clamped(&self, registry: &ParamRegistry, topo: &ClusterSpec) -> TuningConfig {
        let mut out = self.clone();
        for name in TUNABLE_NAMES {
            let env = out.env(topo);
            let def = registry.get(name).expect("tunable in registry");
            let value = out.get(name).expect("known name");
            let min = def.min.resolve(&env).unwrap_or(i64::MIN);
            let max = def.max.resolve(&env).unwrap_or(i64::MAX);
            let clamped = value.clamp(min, max.max(min));
            if clamped != value {
                out.set(name, clamped).expect("known name");
            }
        }
        out
    }

    /// Effective stripe count for a cluster (resolving -1 to "all OSTs").
    pub fn effective_stripe_count(&self, topo: &ClusterSpec) -> u32 {
        if self.stripe_count <= 0 {
            topo.ost_count()
        } else {
            (self.stripe_count as u32).min(topo.ost_count())
        }
    }

    /// Bulk RPC size in bytes implied by `osc.max_pages_per_rpc`.
    pub fn rpc_bytes(&self) -> u64 {
        self.osc_max_pages_per_rpc as u64 * 4096
    }

    /// Render as `name=value` lines (the form shown in tuning transcripts).
    pub fn render(&self) -> String {
        TUNABLE_NAMES
            .iter()
            .map(|n| format!("{n}={}", self.get(n).expect("known name")))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Names of parameters on which `self` and `other` differ.
    pub fn diff(&self, other: &TuningConfig) -> Vec<&'static str> {
        TUNABLE_NAMES
            .iter()
            .filter(|n| self.get(n).expect("known") != other.get(n).expect("known"))
            .copied()
            .collect()
    }
}

/// `Env` adapter so expression evaluation can read a config + topology pair.
pub struct ConfigEnv<'a> {
    map: BTreeMap<String, f64>,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl<'a> ConfigEnv<'a> {
    /// Snapshot the environment of `cfg` on `topo`.
    pub fn new(cfg: &TuningConfig, topo: &ClusterSpec) -> Self {
        ConfigEnv {
            map: cfg.env(topo),
            _marker: std::marker::PhantomData,
        }
    }
}

impl<'a> Env for ConfigEnv<'a> {
    fn lookup(&self, name: &str) -> Option<f64> {
        self.map.get(name).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> ClusterSpec {
        ClusterSpec::paper_cluster()
    }

    #[test]
    fn default_is_valid() {
        let cfg = TuningConfig::lustre_default();
        cfg.validate(&ParamRegistry::standard(), &topo()).unwrap();
    }

    #[test]
    fn get_set_roundtrip_all_names() {
        let mut cfg = TuningConfig::lustre_default();
        for name in TUNABLE_NAMES {
            let v = cfg.get(name).unwrap();
            cfg.set(name, v + 1).unwrap();
            assert_eq!(cfg.get(name).unwrap(), v + 1, "{name}");
        }
    }

    #[test]
    fn unknown_name_rejected() {
        let mut cfg = TuningConfig::lustre_default();
        assert!(matches!(
            cfg.get("bogus"),
            Err(ConfigError::UnknownParam(_))
        ));
        assert!(matches!(
            cfg.set("bogus", 1),
            Err(ConfigError::UnknownParam(_))
        ));
    }

    #[test]
    fn out_of_range_detected() {
        let mut cfg = TuningConfig::lustre_default();
        cfg.osc_max_rpcs_in_flight = 10_000;
        let errs = cfg
            .validate(&ParamRegistry::standard(), &topo())
            .unwrap_err();
        assert!(errs.iter().any(|e| matches!(
            e,
            ConfigError::OutOfRange { name, .. } if name == "osc.max_rpcs_in_flight"
        )));
    }

    #[test]
    fn dependent_bound_enforced() {
        // mod RPCs must stay below mdc.max_rpcs_in_flight.
        let mut cfg = TuningConfig::lustre_default();
        cfg.mdc_max_rpcs_in_flight = 8;
        cfg.mdc_max_mod_rpcs_in_flight = 8; // == max, must be < max
        let errs = cfg
            .validate(&ParamRegistry::standard(), &topo())
            .unwrap_err();
        assert!(errs.iter().any(|e| matches!(
            e,
            ConfigError::OutOfRange { name, .. } if name == "mdc.max_mod_rpcs_in_flight"
        )));
    }

    #[test]
    fn readahead_per_file_dependent_bound() {
        let mut cfg = TuningConfig::lustre_default();
        cfg.llite_max_read_ahead_mb = 64;
        cfg.llite_max_read_ahead_per_file_mb = 33; // > 64/2
        assert!(cfg.validate(&ParamRegistry::standard(), &topo()).is_err());
        cfg.llite_max_read_ahead_per_file_mb = 32;
        assert!(cfg.validate(&ParamRegistry::standard(), &topo()).is_ok());
    }

    #[test]
    fn clamped_fixes_violations() {
        let mut cfg = TuningConfig::lustre_default();
        cfg.osc_max_rpcs_in_flight = 10_000;
        cfg.llite_max_read_ahead_per_file_mb = 500;
        let fixed = cfg.clamped(&ParamRegistry::standard(), &topo());
        fixed.validate(&ParamRegistry::standard(), &topo()).unwrap();
        assert_eq!(fixed.osc_max_rpcs_in_flight, 256);
    }

    #[test]
    fn effective_stripe_count_resolves_minus_one() {
        let mut cfg = TuningConfig::lustre_default();
        cfg.stripe_count = -1;
        assert_eq!(cfg.effective_stripe_count(&topo()), topo().ost_count());
        cfg.stripe_count = 3;
        assert_eq!(cfg.effective_stripe_count(&topo()), 3);
        cfg.stripe_count = 99;
        assert_eq!(cfg.effective_stripe_count(&topo()), topo().ost_count());
    }

    #[test]
    fn rpc_bytes() {
        let cfg = TuningConfig::lustre_default();
        assert_eq!(cfg.rpc_bytes(), 1 << 20);
    }

    #[test]
    fn diff_lists_changed_params() {
        let a = TuningConfig::lustre_default();
        let mut b = a.clone();
        b.stripe_count = 5;
        b.llite_statahead_max = 128;
        let d = a.diff(&b);
        assert_eq!(d, vec!["stripe_count", "llite.statahead_max"]);
        assert!(a.diff(&a).is_empty());
    }

    #[test]
    fn render_contains_all() {
        let s = TuningConfig::lustre_default().render();
        for n in TUNABLE_NAMES {
            assert!(s.contains(n), "{n} missing from render");
        }
    }

    #[test]
    fn env_exposes_hardware_facts() {
        let cfg = TuningConfig::lustre_default();
        let env = cfg.env(&topo());
        assert_eq!(env["ost_count"], topo().ost_count() as f64);
        assert!(env["memory_mb"] > 0.0);
        assert_eq!(env["stripe_count"], 1.0);
    }
}
