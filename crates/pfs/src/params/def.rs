//! Parameter definitions: the schema of the `/proc`-style tunable tree.
//!
//! Each [`ParamDef`] carries both the *interface* facts (path, writability,
//! type, default, bounds — what a sysadmin sees in `/proc/fs/lustre`) and the
//! *ground-truth* metadata (purpose, performance impact, documentation
//! coverage) that the synthetic manual is generated from and that the
//! hallucination experiments (Fig. 2) are scored against.

use serde::{Deserialize, Serialize};

/// Value type of a parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParamKind {
    /// Integer-valued tunable.
    Int,
    /// Boolean (0/1) switch.
    Bool,
}

/// A bound that is either a constant or an expression over other parameters
/// and hardware facts (the paper's `dependent`/`expression` syntax).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Bound {
    /// Fixed numeric bound.
    Const(i64),
    /// Expression evaluated at tuning time (see [`crate::params::expr`]).
    Expr(String),
}

impl Bound {
    /// Resolve against an environment; constants ignore the environment.
    pub fn resolve(&self, env: &dyn super::expr::Env) -> Result<i64, super::expr::ExprError> {
        match self {
            Bound::Const(v) => Ok(*v),
            Bound::Expr(src) => {
                let e = super::expr::Expr::parse(src)?;
                Ok(e.eval(env)?.floor() as i64)
            }
        }
    }
}

/// How strongly a parameter influences I/O performance (ground truth used to
/// score the importance-selection step of the extraction pipeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Impact {
    /// No measurable I/O performance effect.
    None,
    /// Second-order effect (memory footprint, diagnostics).
    Low,
    /// Direct, significant effect on I/O performance.
    High,
}

/// How thoroughly the (synthetic) manual documents a parameter. Parameters
/// with `Sparse`/`Absent` coverage are filtered out by the sufficiency check,
/// mirroring §4.2.2's "insufficient documentation" filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Coverage {
    /// Dedicated manual section with purpose, impact and range.
    Full,
    /// Mentioned in passing; not enough to define purpose and range.
    Sparse,
    /// Not documented at all.
    Absent,
}

/// Why a parameter is (or is not) a tuning target — ground truth for the
/// multi-step filter of §4.2.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TuningClass {
    /// Runtime-tunable, high-impact: the set STELLAR should select.
    Target,
    /// Binary trade-off (e.g. checksums): excluded by design.
    BinaryTradeoff,
    /// Writable but low/no performance impact.
    LowImpact,
    /// Not writable at runtime (mount-time or read-only).
    NotWritable,
    /// Documented too sparsely to pass the sufficiency check.
    Undocumented,
}

/// Full definition of one parameter in the tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParamDef {
    /// Canonical dotted name, e.g. `osc.max_rpcs_in_flight`.
    pub name: &'static str,
    /// `/proc`-style path exposed by the target system.
    pub proc_path: &'static str,
    /// Whether the parameter can be written at runtime.
    pub writable: bool,
    /// Value type.
    pub kind: ParamKind,
    /// Default value.
    pub default: i64,
    /// Lower bound.
    pub min: Bound,
    /// Upper bound.
    pub max: Bound,
    /// Unit string for display ("MB", "pages", "RPCs", "bytes", "").
    pub unit: &'static str,
    /// Ground-truth purpose (one to three sentences; feeds the manual).
    pub purpose: &'static str,
    /// Ground-truth description of how the parameter affects I/O.
    pub io_effect: &'static str,
    /// Ground-truth performance impact class.
    pub impact: Impact,
    /// Manual documentation coverage.
    pub coverage: Coverage,
    /// Ground-truth classification for the extraction filter.
    pub class: TuningClass,
}

impl ParamDef {
    /// Whether this parameter should survive STELLAR's full extraction filter
    /// (writable, documented, non-binary, high impact).
    pub fn is_tuning_target(&self) -> bool {
        self.class == TuningClass::Target
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn bound_const_resolves() {
        let env: BTreeMap<String, f64> = BTreeMap::new();
        assert_eq!(Bound::Const(42).resolve(&env).unwrap(), 42);
    }

    #[test]
    fn bound_expr_resolves() {
        let mut env = BTreeMap::new();
        env.insert("memory_mb".to_string(), 196608.0);
        assert_eq!(
            Bound::Expr("memory_mb / 2".into()).resolve(&env).unwrap(),
            98304
        );
    }

    #[test]
    fn bound_expr_missing_ident_errors() {
        let env: BTreeMap<String, f64> = BTreeMap::new();
        assert!(Bound::Expr("memory_mb / 2".into()).resolve(&env).is_err());
    }

    #[test]
    fn impact_ordering() {
        assert!(Impact::High > Impact::Low);
        assert!(Impact::Low > Impact::None);
    }
}
