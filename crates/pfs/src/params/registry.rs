//! The standard parameter tree of the simulated file system.
//!
//! Mirrors the situation §2.1.1 describes for Lustre 2.15: a large population
//! of parameters of which only a small, high-impact, runtime-tunable subset is
//! worth tuning. The registry is the single source of truth — the synthetic
//! manual, the RAG ground-truth scoring, and the simulator's configuration
//! validation are all derived from it.

use super::def::{Bound, Coverage, Impact, ParamDef, ParamKind, TuningClass};

/// The parameter tree: definitions addressable by canonical name.
#[derive(Debug, Clone)]
pub struct ParamRegistry {
    defs: Vec<ParamDef>,
}

impl ParamRegistry {
    /// Build the standard registry used by every experiment.
    pub fn standard() -> Self {
        ParamRegistry {
            defs: standard_defs(),
        }
    }

    /// All definitions, in canonical order.
    pub fn all(&self) -> &[ParamDef] {
        &self.defs
    }

    /// Look up a definition by canonical name.
    pub fn get(&self, name: &str) -> Option<&ParamDef> {
        self.defs.iter().find(|d| d.name == name)
    }

    /// Writable parameters only (the rough pre-filter of §4.2.2: "a rough
    /// filter selects only writable parameters").
    pub fn writable(&self) -> impl Iterator<Item = &ParamDef> {
        self.defs.iter().filter(|d| d.writable)
    }

    /// The ground-truth tuning targets (what a perfect extraction selects).
    pub fn tuning_targets(&self) -> impl Iterator<Item = &ParamDef> {
        self.defs.iter().filter(|d| d.is_tuning_target())
    }

    /// Number of parameters in the tree.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Whether the registry is empty (never, for the standard tree).
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }
}

fn standard_defs() -> Vec<ParamDef> {
    use Bound::{Const, Expr};
    vec![
        // ------------------------------------------------------------------
        // The 13 high-impact runtime tunables (the paper: "For Lustre,
        // STELLAR chooses a subset of 13 parameters to tune").
        // ------------------------------------------------------------------
        ParamDef {
            name: "stripe_size",
            proc_path: "lod.*.stripesize",
            writable: true,
            kind: ParamKind::Int,
            default: 1 << 20,
            min: Const(64 * 1024),
            max: Const(512 << 20),
            unit: "bytes",
            purpose: "The number of bytes stored on each OST object before the \
                      layout advances to the next object in the stripe pattern.",
            io_effect: "Controls the granularity at which a file's data is \
                        distributed across OSTs. Large sequential transfers \
                        benefit from stripe sizes that are a multiple of the \
                        transfer size; undersized stripes split every request \
                        across servers and inflate RPC counts.",
            impact: Impact::High,
            coverage: Coverage::Full,
            class: TuningClass::Target,
        },
        ParamDef {
            name: "stripe_count",
            proc_path: "lod.*.stripecount",
            writable: true,
            kind: ParamKind::Int,
            default: 1,
            min: Const(-1),
            max: Expr("ost_count".into()),
            unit: "OSTs",
            purpose: "The number of Object Storage Targets (OSTs) across which \
                      a file will be striped. A value of -1 stripes across all \
                      available OSTs.",
            io_effect: "Determines how many OSTs serve a single file's data. \
                        Shared files written by many processes need wide \
                        striping to aggregate server bandwidth; small files \
                        should keep a stripe count of 1 because every \
                        additional object adds per-OST metadata (object \
                        glimpse on stat, object destroy on unlink).",
            impact: Impact::High,
            coverage: Coverage::Full,
            class: TuningClass::Target,
        },
        ParamDef {
            name: "osc.max_rpcs_in_flight",
            proc_path: "osc.*.max_rpcs_in_flight",
            writable: true,
            kind: ParamKind::Int,
            default: 8,
            min: Const(1),
            max: Const(256),
            unit: "RPCs",
            purpose: "The maximum number of concurrent bulk RPCs an object \
                      storage client (OSC) keeps in flight to one OST.",
            io_effect: "Caps the depth of the data pipeline between a client \
                        and each OST. Deep pipelines hide network and disk \
                        latency for small or random I/O; the default of 8 \
                        under-utilises a 10 GbE path when many processes on \
                        one node share the OSC.",
            impact: Impact::High,
            coverage: Coverage::Full,
            class: TuningClass::Target,
        },
        ParamDef {
            name: "osc.max_pages_per_rpc",
            proc_path: "osc.*.max_pages_per_rpc",
            writable: true,
            kind: ParamKind::Int,
            default: 256,
            min: Const(32),
            max: Const(4096),
            unit: "pages",
            purpose: "The maximum number of 4 KiB pages packed into one bulk \
                      read or write RPC.",
            io_effect: "Sets the data transfer unit between client and OST. \
                        Larger RPCs amortise per-RPC overhead for streaming \
                        workloads; they provide no benefit when dirty data is \
                        fragmented, as for random small writes.",
            impact: Impact::High,
            coverage: Coverage::Full,
            class: TuningClass::Target,
        },
        ParamDef {
            name: "osc.max_dirty_mb",
            proc_path: "osc.*.max_dirty_mb",
            writable: true,
            kind: ParamKind::Int,
            default: 32,
            min: Const(1),
            max: Const(2047),
            unit: "MB",
            purpose: "The amount of dirty (written but not yet flushed) page \
                      cache each OSC may accumulate before writers must wait \
                      for writeback.",
            io_effect: "Controls write-behind depth per client-OST pair. \
                        Larger values let applications overlap computation \
                        with writeback and keep the RPC pipeline full; once \
                        the limit is hit, writers stall at memory speed until \
                        the OST drains outstanding data.",
            impact: Impact::High,
            coverage: Coverage::Full,
            class: TuningClass::Target,
        },
        ParamDef {
            name: "osc.short_io_bytes",
            proc_path: "osc.*.short_io_bytes",
            writable: true,
            kind: ParamKind::Int,
            default: 16384,
            min: Const(0),
            max: Const(16384),
            unit: "bytes",
            purpose: "Reads and writes at or below this size are sent inline \
                      in the RPC request/reply instead of via a bulk transfer \
                      setup. Zero disables the short I/O path.",
            io_effect: "Removes the bulk handshake round for tiny transfers, \
                        reducing per-operation latency for workloads dominated \
                        by small files or small records.",
            impact: Impact::High,
            coverage: Coverage::Full,
            class: TuningClass::Target,
        },
        ParamDef {
            name: "llite.max_cached_mb",
            proc_path: "llite.*.max_cached_mb",
            writable: true,
            kind: ParamKind::Int,
            default: 65536,
            min: Const(64),
            max: Expr("memory_mb * 3 / 4".into()),
            unit: "MB",
            purpose: "The maximum amount of page cache the client may devote \
                      to file data.",
            io_effect: "Bounds how much recently read or written data can be \
                        served from client memory. Workloads that re-read \
                        their working set within this budget avoid OST reads \
                        entirely.",
            impact: Impact::High,
            coverage: Coverage::Full,
            class: TuningClass::Target,
        },
        ParamDef {
            name: "llite.max_read_ahead_mb",
            proc_path: "llite.*.max_read_ahead_mb",
            writable: true,
            kind: ParamKind::Int,
            default: 64,
            min: Const(0),
            max: Expr("memory_mb / 2".into()),
            unit: "MB",
            purpose: "The total amount of readahead data the client may keep \
                      in flight across all files. Zero disables readahead.",
            io_effect: "The client-wide prefetch budget. Streaming readers \
                        need enough budget for every active file's readahead \
                        window; when many processes read concurrently the \
                        default budget is exhausted and sequential reads \
                        degrade to synchronous RPCs.",
            impact: Impact::High,
            coverage: Coverage::Full,
            class: TuningClass::Target,
        },
        ParamDef {
            name: "llite.max_read_ahead_per_file_mb",
            proc_path: "llite.*.max_read_ahead_per_file_mb",
            writable: true,
            kind: ParamKind::Int,
            default: 32,
            min: Const(0),
            max: Expr("llite.max_read_ahead_mb / 2".into()),
            unit: "MB",
            purpose: "The maximum readahead window for a single file. Its \
                      maximal value is half of llite.max_read_ahead_mb.",
            io_effect: "Caps how far ahead the sequential-read detector may \
                        prefetch within one file. Larger windows keep deep \
                        pipelines full for fast streaming reads of large \
                        files.",
            impact: Impact::High,
            coverage: Coverage::Full,
            class: TuningClass::Target,
        },
        ParamDef {
            name: "llite.max_read_ahead_whole_mb",
            proc_path: "llite.*.max_read_ahead_whole_mb",
            writable: true,
            kind: ParamKind::Int,
            default: 2,
            min: Const(0),
            max: Const(64),
            unit: "MB",
            purpose: "Files at or below this size are read in their entirety \
                      on first access instead of growing a readahead window.",
            io_effect: "Turns the first read of a small file into a single \
                        full-file fetch, eliminating window ramp-up for \
                        workloads that scan many small files.",
            impact: Impact::High,
            coverage: Coverage::Full,
            class: TuningClass::Target,
        },
        ParamDef {
            name: "llite.statahead_max",
            proc_path: "llite.*.statahead_max",
            writable: true,
            kind: ParamKind::Int,
            default: 32,
            min: Const(0),
            max: Const(8192),
            unit: "entries",
            purpose: "The maximum number of directory entries whose attributes \
                      the statahead thread prefetches ahead of a process that \
                      is stat-ing entries in readdir order. Zero disables \
                      statahead.",
            io_effect: "Hides metadata server round-trips during directory \
                        scans (ls -l, per-file stat loops). Deeper statahead \
                        windows keep attribute prefetch ahead of consumption \
                        in large directories; it also triggers asynchronous \
                        glimpse requests so file sizes are resolved before \
                        the application asks.",
            impact: Impact::High,
            coverage: Coverage::Full,
            class: TuningClass::Target,
        },
        ParamDef {
            name: "mdc.max_rpcs_in_flight",
            proc_path: "mdc.*.max_rpcs_in_flight",
            writable: true,
            kind: ParamKind::Int,
            default: 8,
            min: Const(1),
            max: Const(256),
            unit: "RPCs",
            purpose: "The maximum number of concurrent metadata RPCs the \
                      client keeps in flight to the MDS.",
            io_effect: "Caps metadata parallelism per client node. When many \
                        processes on one node issue getattr/open in parallel, \
                        the default of 8 serialises them; metadata-intensive \
                        workloads gain directly from deeper windows.",
            impact: Impact::High,
            coverage: Coverage::Full,
            class: TuningClass::Target,
        },
        ParamDef {
            name: "mdc.max_mod_rpcs_in_flight",
            proc_path: "mdc.*.max_mod_rpcs_in_flight",
            writable: true,
            kind: ParamKind::Int,
            default: 7,
            min: Const(1),
            max: Expr("min(mdc.max_rpcs_in_flight - 1, 255)".into()),
            unit: "RPCs",
            purpose: "The maximum number of concurrent modifying metadata RPCs \
                      (create, unlink, setattr) in flight to the MDS. Must be \
                      strictly less than mdc.max_rpcs_in_flight.",
            io_effect: "Caps parallel file creation and removal per client \
                        node. File-per-process create storms and cleanup \
                        phases are bounded by this window.",
            impact: Impact::High,
            coverage: Coverage::Full,
            class: TuningClass::Target,
        },
        // ------------------------------------------------------------------
        // Binary trade-off parameters: impactful but excluded by design
        // (§4.2.2: "binary parameters ... typically represent user trade-offs").
        // ------------------------------------------------------------------
        ParamDef {
            name: "osc.checksums",
            proc_path: "osc.*.checksums",
            writable: true,
            kind: ParamKind::Bool,
            default: 1,
            min: Const(0),
            max: Const(1),
            unit: "",
            purpose: "Enables wire checksums on bulk data between client and \
                      OST.",
            io_effect: "Disabling checksums removes per-page checksum \
                        computation and measurably increases throughput, at \
                        the cost of undetected network corruption. The \
                        setting should be chosen from data-integrity \
                        requirements, not for performance.",
            impact: Impact::High,
            coverage: Coverage::Full,
            class: TuningClass::BinaryTradeoff,
        },
        ParamDef {
            name: "llite.checksum_pages",
            proc_path: "llite.*.checksum_pages",
            writable: true,
            kind: ParamKind::Bool,
            default: 0,
            min: Const(0),
            max: Const(1),
            unit: "",
            purpose: "Enables in-memory checksumming of cached pages at the \
                      llite layer.",
            io_effect: "Adds a verification pass over every cached page; \
                        protects against memory corruption at a significant \
                        CPU cost. A data-integrity trade-off, not a tuning \
                        knob.",
            impact: Impact::High,
            coverage: Coverage::Full,
            class: TuningClass::BinaryTradeoff,
        },
        ParamDef {
            name: "llite.xattr_cache",
            proc_path: "llite.*.xattr_cache",
            writable: true,
            kind: ParamKind::Bool,
            default: 1,
            min: Const(0),
            max: Const(1),
            unit: "",
            purpose: "Enables client-side caching of extended attributes.",
            io_effect: "Avoids repeated xattr fetches; disabling it is only \
                        appropriate when external modification of xattrs must \
                        be visible immediately. A semantics trade-off.",
            impact: Impact::Low,
            coverage: Coverage::Full,
            class: TuningClass::BinaryTradeoff,
        },
        ParamDef {
            name: "llite.fast_read",
            proc_path: "llite.*.fast_read",
            writable: true,
            kind: ParamKind::Bool,
            default: 1,
            min: Const(0),
            max: Const(1),
            unit: "",
            purpose: "Allows lockless reads from the client page cache.",
            io_effect: "Skips distributed-lock revalidation on cached reads; \
                        disabling trades performance for strict coherency \
                        with concurrent remote writers.",
            impact: Impact::Low,
            coverage: Coverage::Full,
            class: TuningClass::BinaryTradeoff,
        },
        // ------------------------------------------------------------------
        // Writable but low-impact parameters (§2.1.1's lru_size example).
        // ------------------------------------------------------------------
        ParamDef {
            name: "ldlm.lru_size",
            proc_path: "ldlm.namespaces.*.lru_size",
            writable: true,
            kind: ParamKind::Int,
            default: 0,
            min: Const(0),
            max: Const(1 << 20),
            unit: "locks",
            purpose: "The number of client-side DLM locks kept in the LRU \
                      cached-locks queue; zero selects automatic sizing.",
            io_effect: "Primarily affects client memory usage for cached \
                        locks rather than directly impacting I/O performance.",
            impact: Impact::Low,
            coverage: Coverage::Full,
            class: TuningClass::LowImpact,
        },
        ParamDef {
            name: "ldlm.lru_max_age",
            proc_path: "ldlm.namespaces.*.lru_max_age",
            writable: true,
            kind: ParamKind::Int,
            default: 3900000,
            min: Const(1),
            max: Const(36000000),
            unit: "ms",
            purpose: "The maximum age of an unused client lock before it is \
                      cancelled from the LRU.",
            io_effect: "A lock-cache retention policy; affects memory and \
                        lock-server load, not data-path performance.",
            impact: Impact::Low,
            coverage: Coverage::Full,
            class: TuningClass::LowImpact,
        },
        ParamDef {
            name: "osc.idle_timeout",
            proc_path: "osc.*.idle_timeout",
            writable: true,
            kind: ParamKind::Int,
            default: 20,
            min: Const(0),
            max: Const(3600),
            unit: "seconds",
            purpose: "Seconds of inactivity after which an idle OSC \
                      connection is disconnected.",
            io_effect: "Reduces idle connection resources; reconnect cost is \
                        negligible for active workloads.",
            impact: Impact::Low,
            coverage: Coverage::Full,
            class: TuningClass::LowImpact,
        },
        ParamDef {
            name: "osc.grant_shrink_interval",
            proc_path: "osc.*.grant_shrink_interval",
            writable: true,
            kind: ParamKind::Int,
            default: 1200,
            min: Const(1),
            max: Const(65535),
            unit: "seconds",
            purpose: "The interval at which unused OST space grant is \
                      returned by the client.",
            io_effect: "A space-accounting housekeeping interval with no \
                        direct effect on I/O performance.",
            impact: Impact::None,
            coverage: Coverage::Full,
            class: TuningClass::LowImpact,
        },
        ParamDef {
            name: "ost.nrs_delay_min",
            proc_path: "ost.OSS.ost_io.nrs_delay_min",
            writable: true,
            kind: ParamKind::Int,
            default: 5,
            min: Const(0),
            max: Const(65535),
            unit: "seconds",
            purpose: "The minimum artificial delay the NRS delay policy adds \
                      to serviced requests.",
            io_effect: "Part of a fault-injection policy used to simulate \
                        high server load during testing; relevant to \
                        experiments but not connected to production I/O \
                        performance.",
            impact: Impact::None,
            coverage: Coverage::Full,
            class: TuningClass::LowImpact,
        },
        ParamDef {
            name: "ost.nrs_delay_max",
            proc_path: "ost.OSS.ost_io.nrs_delay_max",
            writable: true,
            kind: ParamKind::Int,
            default: 300,
            min: Const(0),
            max: Const(65535),
            unit: "seconds",
            purpose: "The maximum artificial delay the NRS delay policy adds \
                      to serviced requests.",
            io_effect: "Fault-injection control; see ost.nrs_delay_min.",
            impact: Impact::None,
            coverage: Coverage::Full,
            class: TuningClass::LowImpact,
        },
        ParamDef {
            name: "ost.nrs_delay_pct",
            proc_path: "ost.OSS.ost_io.nrs_delay_pct",
            writable: true,
            kind: ParamKind::Int,
            default: 100,
            min: Const(0),
            max: Const(100),
            unit: "percent",
            purpose: "The percentage of requests the NRS delay policy delays.",
            io_effect: "Fault-injection control; see ost.nrs_delay_min.",
            impact: Impact::None,
            coverage: Coverage::Full,
            class: TuningClass::LowImpact,
        },
        // ------------------------------------------------------------------
        // Writable but sparsely/un-documented (filtered by the sufficiency
        // check: "parameters that are not described in the documentation are
        // likely to be of lesser importance").
        // ------------------------------------------------------------------
        ParamDef {
            name: "mdc.batch_max",
            proc_path: "mdc.*.batch_max",
            writable: true,
            kind: ParamKind::Int,
            default: 0,
            min: Const(0),
            max: Const(1024),
            unit: "",
            purpose: "Batched statahead RPC limit (undocumented internals).",
            io_effect: "",
            impact: Impact::Low,
            coverage: Coverage::Sparse,
            class: TuningClass::Undocumented,
        },
        ParamDef {
            name: "osc.max_extent_pages",
            proc_path: "osc.*.max_extent_pages",
            writable: true,
            kind: ParamKind::Int,
            default: 8192,
            min: Const(1),
            max: Const(32768),
            unit: "pages",
            purpose: "Internal cap on pages per cached extent.",
            io_effect: "",
            impact: Impact::Low,
            coverage: Coverage::Sparse,
            class: TuningClass::Undocumented,
        },
        ParamDef {
            name: "llite.inode_cache",
            proc_path: "llite.*.inode_cache",
            writable: true,
            kind: ParamKind::Bool,
            default: 1,
            min: Const(0),
            max: Const(1),
            unit: "",
            purpose: "Internal inode cache toggle.",
            io_effect: "",
            impact: Impact::Low,
            coverage: Coverage::Absent,
            class: TuningClass::Undocumented,
        },
        ParamDef {
            name: "osc.resend_count",
            proc_path: "osc.*.resend_count",
            writable: true,
            kind: ParamKind::Int,
            default: 10,
            min: Const(0),
            max: Const(50),
            unit: "",
            purpose: "Retries for failed RPCs.",
            io_effect: "",
            impact: Impact::Low,
            coverage: Coverage::Sparse,
            class: TuningClass::Undocumented,
        },
        ParamDef {
            name: "mdc.lazystatfs",
            proc_path: "llite.*.lazystatfs",
            writable: true,
            kind: ParamKind::Bool,
            default: 1,
            min: Const(0),
            max: Const(1),
            unit: "",
            purpose: "Non-blocking statfs behaviour toggle.",
            io_effect: "",
            impact: Impact::Low,
            coverage: Coverage::Sparse,
            class: TuningClass::Undocumented,
        },
        // ------------------------------------------------------------------
        // Not runtime-writable: mount-time settings and read-only telemetry
        // (§2.1.1's mount_point / mount_block_size examples).
        // ------------------------------------------------------------------
        ParamDef {
            name: "mount_point",
            proc_path: "(mount option)",
            writable: false,
            kind: ParamKind::Int,
            default: 0,
            min: Const(0),
            max: Const(0),
            unit: "",
            purpose: "The directory where the file system is mounted; fixed \
                      before the file system is mounted.",
            io_effect: "Not tunable at runtime.",
            impact: Impact::None,
            coverage: Coverage::Full,
            class: TuningClass::NotWritable,
        },
        ParamDef {
            name: "mount_block_size",
            proc_path: "(mkfs option)",
            writable: false,
            kind: ParamKind::Int,
            default: 4096,
            min: Const(512),
            max: Const(65536),
            unit: "bytes",
            purpose: "The backing file system block size chosen at format \
                      time.",
            io_effect: "Fixed at mkfs time; not tunable at runtime.",
            impact: Impact::High,
            coverage: Coverage::Full,
            class: TuningClass::NotWritable,
        },
        ParamDef {
            name: "osc.cur_dirty_bytes",
            proc_path: "osc.*.cur_dirty_bytes",
            writable: false,
            kind: ParamKind::Int,
            default: 0,
            min: Const(0),
            max: Const(i64::MAX),
            unit: "bytes",
            purpose: "Read-only counter of currently dirty bytes on an OSC.",
            io_effect: "Telemetry, not a tunable.",
            impact: Impact::None,
            coverage: Coverage::Full,
            class: TuningClass::NotWritable,
        },
        ParamDef {
            name: "osc.stats",
            proc_path: "osc.*.stats",
            writable: false,
            kind: ParamKind::Int,
            default: 0,
            min: Const(0),
            max: Const(0),
            unit: "",
            purpose: "Read-only RPC statistics.",
            io_effect: "Telemetry, not a tunable.",
            impact: Impact::None,
            coverage: Coverage::Full,
            class: TuningClass::NotWritable,
        },
        ParamDef {
            name: "ost.brw_stats",
            proc_path: "osd-ldiskfs.*.brw_stats",
            writable: false,
            kind: ParamKind::Int,
            default: 0,
            min: Const(0),
            max: Const(0),
            unit: "",
            purpose: "Read-only histogram of bulk read/write sizes on the \
                      OST.",
            io_effect: "Telemetry, not a tunable.",
            impact: Impact::None,
            coverage: Coverage::Full,
            class: TuningClass::NotWritable,
        },
        ParamDef {
            name: "mds.num_threads",
            proc_path: "mds.MDS.mdt.threads_max",
            writable: false,
            kind: ParamKind::Int,
            default: 64,
            min: Const(8),
            max: Const(1024),
            unit: "threads",
            purpose: "Size of the MDS service thread pool, set at service \
                      start.",
            io_effect: "Fixed at service start on this deployment; treated \
                        as not runtime-tunable.",
            impact: Impact::High,
            coverage: Coverage::Full,
            class: TuningClass::NotWritable,
        },
        ParamDef {
            name: "debug",
            proc_path: "debug",
            writable: true,
            kind: ParamKind::Int,
            default: 0,
            min: Const(0),
            max: Const(i64::MAX),
            unit: "mask",
            purpose: "Kernel debug message mask.",
            io_effect: "Heavy debug masks slow everything down; a diagnostic \
                        facility, not a performance tunable.",
            impact: Impact::Low,
            coverage: Coverage::Full,
            class: TuningClass::LowImpact,
        },
        ParamDef {
            name: "panic_on_lbug",
            proc_path: "panic_on_lbug",
            writable: true,
            kind: ParamKind::Bool,
            default: 1,
            min: Const(0),
            max: Const(1),
            unit: "",
            purpose: "Whether an internal consistency failure panics the \
                      node.",
            io_effect: "Crash-handling policy; no I/O performance relevance.",
            impact: Impact::None,
            coverage: Coverage::Full,
            class: TuningClass::LowImpact,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_has_13_targets() {
        let reg = ParamRegistry::standard();
        let targets: Vec<_> = reg.tuning_targets().map(|d| d.name).collect();
        assert_eq!(targets.len(), 13, "targets: {targets:?}");
    }

    #[test]
    fn names_are_unique() {
        let reg = ParamRegistry::standard();
        let mut names: Vec<_> = reg.all().iter().map(|d| d.name).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn lookup_by_name() {
        let reg = ParamRegistry::standard();
        assert!(reg.get("stripe_count").is_some());
        assert!(reg.get("osc.max_rpcs_in_flight").is_some());
        assert!(reg.get("no.such.param").is_none());
    }

    #[test]
    fn writable_filter_excludes_readonly() {
        let reg = ParamRegistry::standard();
        assert!(reg.writable().all(|d| d.writable));
        assert!(reg.writable().count() < reg.len());
        // mount params are excluded by the rough filter
        assert!(!reg.writable().any(|d| d.name == "mount_point"));
    }

    #[test]
    fn targets_are_all_writable_documented_nonbinary() {
        let reg = ParamRegistry::standard();
        for d in reg.tuning_targets() {
            assert!(d.writable, "{}", d.name);
            assert_eq!(d.coverage, Coverage::Full, "{}", d.name);
            assert_ne!(d.kind, ParamKind::Bool, "{}", d.name);
            assert_eq!(d.impact, Impact::High, "{}", d.name);
        }
    }

    #[test]
    fn binary_tradeoffs_present_but_not_targets() {
        let reg = ParamRegistry::standard();
        let cks = reg.get("osc.checksums").unwrap();
        assert_eq!(cks.class, TuningClass::BinaryTradeoff);
        assert!(!cks.is_tuning_target());
    }

    #[test]
    fn dependent_bounds_parse() {
        let reg = ParamRegistry::standard();
        for d in reg.all() {
            for b in [&d.min, &d.max] {
                if let Bound::Expr(src) = b {
                    assert!(
                        super::super::expr::Expr::parse(src).is_ok(),
                        "bad expr on {}: {src}",
                        d.name
                    );
                }
            }
        }
    }

    #[test]
    fn tree_is_population_not_just_targets() {
        // The point of the extraction pipeline is filtering a large tree.
        let reg = ParamRegistry::standard();
        assert!(reg.len() >= 35, "tree too small: {}", reg.len());
    }
}
