//! The `/proc`-style parameter system: definitions, registry, expressions,
//! and the runtime tuning configuration.

pub mod config;
pub mod def;
pub mod expr;
pub mod registry;

pub use config::{ConfigError, TuningConfig, TUNABLE_NAMES};
pub use def::{Bound, Coverage, Impact, ParamDef, ParamKind, TuningClass};
pub use expr::{Env, Expr, ExprError};
pub use registry::ParamRegistry;
