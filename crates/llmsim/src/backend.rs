//! The backend handle agents hold.
//!
//! [`LlmBackend`] is the seam where a real provider could be plugged in;
//! [`SimLlm`] is the deterministic implementation used throughout the
//! reproduction. It provides exactly the three capabilities the agents need:
//!
//! 1. **fact recall** — grounded (truth passes through) or parametric
//!    (corrupted per profile), the knowledge-fidelity mechanism behind the
//!    RAG ablation;
//! 2. **decision noise** — discipline-modulated jitter applied to the expert
//!    policy's value choices (how Fig. 9's models differ);
//! 3. **accounting** — every prompt/response pair is token-metered through
//!    the prefix cache.

use crate::facts::{corrupt, ParamFact};
use crate::profiles::ModelProfile;
use crate::tokens::{estimate_tokens, PrefixCache, UsageMeter};
use simcore::rng::{combine, stable_hash};
use simcore::SimRng;

/// Minimal LLM interface the agents depend on.
pub trait LlmBackend {
    /// Model name (transcripts, cost table).
    fn model_name(&self) -> &str;

    /// Recall what the model knows about a parameter. `grounding` carries
    /// the retrieved documentation when RAG supplied it; `truth` is the
    /// ground-truth fact used to service grounded answers and to seed
    /// corruption.
    fn param_fact(&mut self, truth: &ParamFact, grounded: bool) -> ParamFact;

    /// A multiplicative jitter around 1.0 for value selection; tighter for
    /// disciplined models.
    fn decision_jitter(&mut self, context: &str) -> f64;

    /// With probability tied to (1 - discipline), the model deviates from
    /// the policy's first-choice move (picks a secondary candidate).
    fn deviates(&mut self, context: &str) -> bool;

    /// Meter one inference call.
    fn charge(&mut self, prompt: &str, response: &str);

    /// Usage so far.
    fn usage(&self) -> &UsageMeter;
}

/// Deterministic simulated backend.
#[derive(Debug, Clone)]
pub struct SimLlm {
    profile: ModelProfile,
    seed: u64,
    cache: PrefixCache,
    usage: UsageMeter,
    turn: u64,
}

impl SimLlm {
    /// Create a backend for `profile`, seeded for reproducibility.
    pub fn new(profile: ModelProfile, seed: u64) -> Self {
        SimLlm {
            profile,
            seed,
            cache: PrefixCache::new(),
            usage: UsageMeter::default(),
            turn: 0,
        }
    }

    /// The model profile.
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    fn rng_for(&self, context: &str) -> SimRng {
        SimRng::new(combine(
            combine(self.seed, stable_hash(self.profile.name)),
            stable_hash(context),
        ))
    }
}

impl LlmBackend for SimLlm {
    fn model_name(&self) -> &str {
        self.profile.name
    }

    fn param_fact(&mut self, truth: &ParamFact, grounded: bool) -> ParamFact {
        if grounded {
            ParamFact::grounded(&truth.name, &truth.definition, truth.min, truth.max)
        } else {
            corrupt(
                &self.profile,
                &truth.name,
                &truth.definition,
                truth.min,
                truth.max,
            )
        }
    }

    fn decision_jitter(&mut self, context: &str) -> f64 {
        let mut rng = self.rng_for(context);
        // Discipline 1.0 -> sigma 0; discipline 0.8 -> sigma 0.3.
        let sigma = (1.0 - self.profile.discipline).max(0.0) * 1.5;
        rng.lognormal_factor(sigma)
    }

    fn deviates(&mut self, context: &str) -> bool {
        let mut rng = self.rng_for(context);
        rng.chance((1.0 - self.profile.discipline) * 1.5)
    }

    fn charge(&mut self, prompt: &str, response: &str) {
        self.turn += 1;
        let input = estimate_tokens(prompt);
        let cached = self.cache.observe(prompt);
        let output = (estimate_tokens(response) as f64 * self.profile.verbosity).round() as u64;
        self.usage.record(input, cached, output);
    }

    fn usage(&self) -> &UsageMeter {
        &self.usage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::FactQuality;

    fn truth() -> ParamFact {
        ParamFact::grounded(
            "llite.statahead_max",
            "Maximum entries prefetched by statahead.",
            0,
            8192,
        )
    }

    #[test]
    fn grounded_recall_is_exact() {
        let mut b = SimLlm::new(ModelProfile::gpt_4o(), 1);
        let f = b.param_fact(&truth(), true);
        assert_eq!(f.def_quality, FactQuality::Correct);
        assert_eq!(f.range_quality, FactQuality::Correct);
        assert_eq!(f.max, 8192);
    }

    #[test]
    fn ungrounded_recall_matches_corruption_model() {
        let mut b = SimLlm::new(ModelProfile::llama_31_70b(), 1);
        let f = b.param_fact(&truth(), false);
        let expected = crate::facts::corrupt(
            &ModelProfile::llama_31_70b(),
            "llite.statahead_max",
            "Maximum entries prefetched by statahead.",
            0,
            8192,
        );
        assert_eq!(f, expected);
    }

    #[test]
    fn jitter_is_deterministic_and_disciplined() {
        let mut b = SimLlm::new(ModelProfile::claude_37_sonnet(), 7);
        let a = b.decision_jitter("stripe_count:attempt1");
        let a2 = b.decision_jitter("stripe_count:attempt1");
        assert_eq!(a.to_bits(), a2.to_bits());
        // Disciplined model jitters tightly.
        assert!((a - 1.0).abs() < 0.5);
    }

    #[test]
    fn less_disciplined_models_deviate_more() {
        let contexts: Vec<String> = (0..200).map(|i| format!("ctx{i}")).collect();
        let count = |p: ModelProfile| {
            let mut b = SimLlm::new(p, 3);
            contexts.iter().filter(|c| b.deviates(c)).count()
        };
        let steady = count(ModelProfile::claude_37_sonnet());
        let loose = count(ModelProfile::llama_31_70b());
        assert!(loose > steady, "loose {loose} !> steady {steady}");
    }

    #[test]
    fn charging_tracks_cache() {
        let mut b = SimLlm::new(ModelProfile::claude_37_sonnet(), 1);
        let system = "SYSTEM: you are a storage tuning agent. ".repeat(100);
        b.charge(&system, "ok");
        let longer = format!("{system} TURN 2: new observation.");
        b.charge(&longer, "a rationale");
        let u = b.usage();
        assert_eq!(u.calls, 2);
        assert!(u.cache_hit_ratio() > 0.3, "{}", u.cache_hit_ratio());
        assert!(u.output_tokens > 0);
    }

    #[test]
    fn verbosity_scales_output() {
        let resp = "r".repeat(400); // 100 tokens
        let mut terse = SimLlm::new(ModelProfile::gpt_4o(), 1); // 0.9
        terse.charge("p", &resp);
        let mut wordy = SimLlm::new(ModelProfile::llama_31_70b(), 1); // 1.2
        wordy.charge("p", &resp);
        assert_eq!(terse.usage().output_tokens, 90);
        assert_eq!(wordy.usage().output_tokens, 120);
    }
}
