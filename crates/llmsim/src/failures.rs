//! Deterministic seeded failure injection for the non-blocking seam.
//!
//! [`SimFailures`] is the failure-domain sibling of
//! [`SimLatency`](crate::SimLatency): it wraps any
//! [`NonBlockingBackend`] and turns a seeded fraction of calls into
//! [`CallStatus::Failed`] outcomes, with the verdict drawn **per
//! submission index** from the injection seed — exactly the discipline
//! `pfs::FaultPlan` applies to storage faults and `SimLatency` applies
//! to latency. Two consequences make the schedule safe for the
//! canonical-stream contract:
//!
//! * **Reproducible**: the verdict for submission `i` is a pure function
//!   of `(seed, i)`. Same seed, same profile ⇒ the same calls fail with
//!   the same errors, on every run, on every host.
//! * **Latency-invariant**: latency changes how many times a call is
//!   *polled*, never how many calls are *submitted*, so composing
//!   `SimFailures<SimLatency<_>>` yields identical failure schedules
//!   under any latency profile. This is what lets the CI determinism
//!   matrix demand byte-identical canonical streams across serial,
//!   parallel and injected-latency runs *with failures on*.
//!
//! A drawn failure surfaces on the poll where the inner backend first
//! reports the call complete (so latency ticks still elapse first), and
//! consumes the handle just as `Ready` would.

use crate::nonblocking::{
    CallError, CallHandle, CallStatus, Immediate, LlmCall, NonBlockingBackend,
};
use serde::{Deserialize, Serialize};
use simcore::rng::combine;
use simcore::SimRng;
use std::collections::BTreeMap;

/// Transient reason labels, drawn uniformly once a call is marked
/// transient-failed. Fixed set: the labels feed canonical events.
const TRANSIENT_REASONS: [&str; 3] = ["rate-limited", "gateway-timeout", "overloaded"];

/// Fatal reason labels, drawn uniformly once a call is marked fatal.
const FATAL_REASONS: [&str; 2] = ["invalid-request", "credentials-revoked"];

/// Per-call failure probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureProfile {
    /// Probability a call fails transiently (retryable).
    pub transient_rate: f64,
    /// Probability a call fails fatally (never retryable).
    pub fatal_rate: f64,
}

impl FailureProfile {
    /// The standard injection mix: 15% transient, 2% fatal — enough to
    /// exercise every retry path in a modest campaign without drowning it.
    pub fn standard() -> Self {
        FailureProfile {
            transient_rate: 0.15,
            fatal_rate: 0.02,
        }
    }
}

/// A seeded failure schedule: seed plus per-call probabilities.
///
/// The verdict for submission index `i` is
/// [`draw(i)`](FailureInjection::draw) — a pure function, so schedules
/// are reproducible across construction order, processes and hosts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureInjection {
    /// Root seed of the failure stream.
    pub seed: u64,
    /// Per-call failure probabilities.
    pub profile: FailureProfile,
}

impl FailureInjection {
    /// The [`FailureProfile::standard`] mix under `seed`.
    pub fn standard(seed: u64) -> Self {
        FailureInjection {
            seed,
            profile: FailureProfile::standard(),
        }
    }

    /// Canonical label for run records and reports
    /// (e.g. `"seed 9 (transient 0.15, fatal 0.02)"`).
    pub fn label(&self) -> String {
        format!(
            "seed {} (transient {}, fatal {})",
            self.seed, self.profile.transient_rate, self.profile.fatal_rate
        )
    }

    /// The verdict for submission index `submission`: `None` = the call
    /// succeeds, `Some(err)` = it concludes with `err`. One uniform roll
    /// decides the band (fatal first, then transient); a second draw
    /// picks the reason label. Pure in `(self, submission)`.
    pub fn draw(&self, submission: u64) -> Option<CallError> {
        let mut rng = SimRng::new(combine(self.seed, submission));
        let roll = rng.unit();
        if roll < self.profile.fatal_rate {
            let reason = FATAL_REASONS[rng.index(FATAL_REASONS.len())];
            Some(CallError::Fatal {
                reason: reason.to_string(),
            })
        } else if roll < self.profile.fatal_rate + self.profile.transient_rate {
            let reason = TRANSIENT_REASONS[rng.index(TRANSIENT_REASONS.len())];
            Some(CallError::Transient {
                reason: reason.to_string(),
            })
        } else {
            None
        }
    }
}

/// Deterministic seeded failure injection around any
/// [`NonBlockingBackend`].
///
/// `submit` draws the call's verdict from the injection seed × the
/// submission index, then forwards to the inner backend as usual. A call
/// marked failed still travels the inner transport (latency ticks still
/// elapse); when the inner backend first reports it complete, the poll
/// returns [`CallStatus::Failed`] instead of the reply and the handle is
/// consumed. Constructed [`transparent`](SimFailures::transparent), the
/// wrapper is an exact pass-through, so callers can keep one transport
/// type whether or not injection is configured.
#[derive(Debug, Clone)]
pub struct SimFailures<B = Immediate> {
    inner: B,
    injection: Option<FailureInjection>,
    submitted: u64,
    /// Our id → (inner handle, verdict drawn at submission).
    pending: BTreeMap<u64, (CallHandle, Option<CallError>)>,
}

impl SimFailures<Immediate> {
    /// Injection over the instant transport — the pure failure gate.
    pub fn gate(injection: FailureInjection) -> Self {
        SimFailures::wrapping(Immediate::new(), injection)
    }
}

impl<B> SimFailures<B> {
    /// Inject failures around `inner`.
    pub fn wrapping(inner: B, injection: FailureInjection) -> Self {
        SimFailures {
            inner,
            injection: Some(injection),
            submitted: 0,
            pending: BTreeMap::new(),
        }
    }

    /// Wrap `inner` with injection disabled: every call passes through
    /// untouched. Lets callers keep a single transport type.
    pub fn transparent(inner: B) -> Self {
        SimFailures {
            inner,
            injection: None,
            submitted: 0,
            pending: BTreeMap::new(),
        }
    }

    /// The injection schedule in force (`None` = transparent).
    pub fn injection(&self) -> Option<&FailureInjection> {
        self.injection.as_ref()
    }

    /// The wrapped backend.
    pub fn get_ref(&self) -> &B {
        &self.inner
    }

    /// The wrapped backend, mutably.
    pub fn get_mut(&mut self) -> &mut B {
        &mut self.inner
    }

    /// Unwrap the inner backend, dropping any in-flight calls.
    pub fn into_inner(self) -> B {
        self.inner
    }
}

impl<B: NonBlockingBackend> NonBlockingBackend for SimFailures<B> {
    fn submit(&mut self, call: LlmCall) -> CallHandle {
        let verdict = self
            .injection
            .as_ref()
            .and_then(|inj| inj.draw(self.submitted));
        let inner_handle = self.inner.submit(call);
        let id = self.submitted;
        self.submitted += 1;
        self.pending.insert(id, (inner_handle, verdict));
        CallHandle(id)
    }

    fn poll(&mut self, handle: CallHandle) -> CallStatus {
        let (inner_handle, _) = self
            .pending
            .get(&handle.0)
            .expect("polled unknown or already-completed call");
        match self.inner.poll(*inner_handle) {
            CallStatus::Pending => CallStatus::Pending,
            CallStatus::Failed(err) => {
                // The inner transport failed the call on its own; pass
                // that through — our verdict is moot.
                self.pending.remove(&handle.0);
                CallStatus::Failed(err)
            }
            CallStatus::Ready(reply) => {
                let (_, verdict) = self
                    .pending
                    .remove(&handle.0)
                    .expect("entry present: just polled it");
                match verdict {
                    Some(err) => CallStatus::Failed(err),
                    None => CallStatus::Ready(reply),
                }
            }
        }
    }

    fn cancel(&mut self, handle: CallHandle) {
        if let Some((inner_handle, _)) = self.pending.remove(&handle.0) {
            self.inner.cancel(inner_handle);
        }
    }

    fn in_flight(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nonblocking::{LatencyProfile, LlmReply, SimLatency};

    fn turn(i: u32) -> LlmCall {
        LlmCall::Turn {
            context: format!("t{i}"),
        }
    }

    /// Drive a freshly submitted call to completion, returning its status.
    fn settle<B: NonBlockingBackend>(backend: &mut B, call: LlmCall) -> CallStatus {
        let h = backend.submit(call);
        loop {
            match backend.poll(h) {
                CallStatus::Pending => continue,
                done => return done,
            }
        }
    }

    #[test]
    fn draws_are_pure_and_seed_sensitive() {
        let inj = FailureInjection::standard(7);
        let a: Vec<_> = (0..256).map(|i| inj.draw(i)).collect();
        let b: Vec<_> = (0..256).map(|i| inj.draw(i)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        let other = FailureInjection::standard(8);
        let c: Vec<_> = (0..256).map(|i| other.draw(i)).collect();
        assert_ne!(a, c, "different seed, different schedule");
        // The standard mix produces successes, transients and fatals.
        assert!(a.iter().any(|v| v.is_none()));
        assert!(a.iter().any(|v| matches!(v, Some(e) if e.is_transient())));
        assert!(a.iter().any(|v| matches!(v, Some(e) if !e.is_transient())));
    }

    #[test]
    fn injected_verdicts_surface_on_poll() {
        let inj = FailureInjection::standard(7);
        let mut gate = SimFailures::gate(inj);
        for i in 0..64 {
            let expected = inj.draw(i as u64);
            match (settle(&mut gate, turn(i)), expected) {
                (CallStatus::Ready(LlmReply::Done), None) => {}
                (CallStatus::Failed(got), Some(want)) => assert_eq!(got, want, "call {i}"),
                (got, want) => panic!("call {i}: got {got:?}, drew {want:?}"),
            }
        }
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn transparent_mode_is_a_pass_through() {
        let mut gate = SimFailures::transparent(Immediate::new());
        assert!(gate.injection().is_none());
        for i in 0..32 {
            assert_eq!(
                settle(&mut gate, turn(i)),
                CallStatus::Ready(LlmReply::Done),
                "call {i}"
            );
        }
    }

    /// The failure schedule is keyed by submission index, so it is
    /// identical whether or not latency delays the polls — the property
    /// the cross-latency byte-equality CI cell rests on.
    #[test]
    fn schedule_is_latency_invariant() {
        let inj = FailureInjection::standard(3);
        let statuses = |profile: LatencyProfile| -> Vec<CallStatus> {
            let mut t = SimFailures::wrapping(SimLatency::gate(profile, 11), inj);
            (0..48).map(|i| settle(&mut t, turn(i))).collect()
        };
        let instant = statuses(LatencyProfile::fixed(0));
        assert_eq!(instant, statuses(LatencyProfile::fixed(3)));
        assert_eq!(instant, statuses(LatencyProfile::uniform(1, 4)));
    }

    /// Latency ticks elapse before a drawn failure surfaces.
    #[test]
    fn failures_respect_the_latency_budget() {
        let inj = FailureInjection::standard(3);
        let failing = (0..)
            .find(|&i| inj.draw(i).is_some())
            .expect("standard mix fails eventually");
        let mut t = SimFailures::wrapping(SimLatency::gate(LatencyProfile::fixed(2), 11), inj);
        let mut last = None;
        for i in 0..=failing {
            let h = t.submit(turn(i as u32));
            last = Some(h);
            if i < failing {
                while t.poll(h) == CallStatus::Pending {}
            }
        }
        let h = last.expect("submitted at least one call");
        assert_eq!(t.poll(h), CallStatus::Pending, "tick 1 still pending");
        assert_eq!(t.poll(h), CallStatus::Pending, "tick 2 still pending");
        assert!(
            matches!(t.poll(h), CallStatus::Failed(_)),
            "failure surfaces only after the budget"
        );
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn cancel_kills_the_handle_through_the_wrapper() {
        let mut t = SimFailures::wrapping(
            SimLatency::gate(LatencyProfile::fixed(5), 1),
            FailureInjection::standard(1),
        );
        let h = t.submit(turn(0));
        assert_eq!(t.in_flight(), 1);
        assert_eq!(t.get_ref().in_flight(), 1);
        t.cancel(h);
        assert_eq!(t.in_flight(), 0);
        assert_eq!(t.get_ref().in_flight(), 0, "cancel propagates inward");
        // Cancelling twice is a no-op, not a panic.
        t.cancel(h);
    }

    #[test]
    #[should_panic(expected = "already-completed")]
    fn polling_a_consumed_handle_panics() {
        let mut gate = SimFailures::gate(FailureInjection::standard(1));
        let h = gate.submit(turn(0));
        loop {
            if gate.poll(h) != CallStatus::Pending {
                break;
            }
        }
        let _ = gate.poll(h);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(
            FailureInjection::standard(9).label(),
            "seed 9 (transient 0.15, fatal 0.02)"
        );
    }

    #[test]
    fn serde_roundtrip_is_exact() {
        let inj = FailureInjection {
            seed: 17,
            profile: FailureProfile {
                transient_rate: 0.25,
                fatal_rate: 0.0,
            },
        };
        let json = serde_json::to_string(&inj).expect("serialize");
        let back: FailureInjection = serde_json::from_str(&json).expect("parse");
        assert_eq!(inj, back);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_profile() -> impl Strategy<Value = FailureProfile> {
        // Rates sum below 1.0 so every band stays reachable.
        (0.0f64..0.5, 0.0f64..0.5).prop_map(|(transient_rate, fatal_rate)| FailureProfile {
            transient_rate,
            fatal_rate,
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Satellite: schedules are reproducible across construction
        /// order (the verdict for an index never depends on which indices
        /// were drawn before it) and injections round-trip through JSON
        /// exactly — mirroring the `FaultPlan` proptests.
        #[test]
        fn schedules_are_order_independent_and_roundtrip(
            seed in 0u64..1_000,
            profile in arb_profile(),
            indices in proptest::collection::vec(0u64..512, 1..32),
        ) {
            let inj = FailureInjection { seed, profile };

            // Forward order, reverse order and fresh-per-index draws all
            // agree: draw is pure in (injection, index).
            let forward: Vec<_> = indices.iter().map(|&i| inj.draw(i)).collect();
            let reverse: Vec<_> = indices.iter().rev().map(|&i| inj.draw(i)).collect();
            let reversed_back: Vec<_> = reverse.into_iter().rev().collect();
            prop_assert_eq!(&forward, &reversed_back);
            let fresh: Vec<_> = indices
                .iter()
                .map(|&i| FailureInjection { seed, profile }.draw(i))
                .collect();
            prop_assert_eq!(&forward, &fresh);

            // Fatal verdicts only appear with a nonzero fatal rate, and
            // likewise for transients.
            if profile.fatal_rate == 0.0 {
                prop_assert!(forward
                    .iter()
                    .all(|v| !matches!(v, Some(e) if !e.is_transient())));
            }
            if profile.transient_rate == 0.0 {
                prop_assert!(forward
                    .iter()
                    .all(|v| !matches!(v, Some(e) if e.is_transient())));
            }

            let json = serde_json::to_string(&inj).expect("serialize");
            let back: FailureInjection = serde_json::from_str(&json).expect("parse");
            prop_assert_eq!(inj, back);
        }
    }
}
