//! Parameter facts and the parametric-memory corruption model.
//!
//! A [`ParamFact`] is what a model "knows" about one tunable: a definition, a
//! valid range, and quality labels for each. Grounded answers copy the truth;
//! ungrounded answers pass through [`corrupt`], which deterministically (per
//! model × parameter) decides whether the definition/range survive, become
//! imprecise, or are hallucinated — mirroring Fig. 2, where three frontier
//! models all misstate `statahead_max`'s maximum and two flaw its definition.

use crate::profiles::ModelProfile;
use serde::{Deserialize, Serialize};
use simcore::rng::{combine, stable_hash};
use simcore::SimRng;

/// Quality of one recalled fact component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FactQuality {
    /// Matches ground truth.
    Correct,
    /// Partially right; usable direction, unreliable detail.
    Imprecise,
    /// Confidently wrong.
    Wrong,
}

/// What a model asserts about a parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamFact {
    /// Canonical parameter name.
    pub name: String,
    /// Asserted definition text.
    pub definition: String,
    /// Asserted lower bound.
    pub min: i64,
    /// Asserted upper bound.
    pub max: i64,
    /// Quality of the definition vs ground truth.
    pub def_quality: FactQuality,
    /// Quality of the range vs ground truth.
    pub range_quality: FactQuality,
    /// Whether the fact came from grounded (retrieved) context.
    pub grounded: bool,
}

impl ParamFact {
    /// A grounded (RAG-backed) fact: the truth, labelled as such.
    pub fn grounded(name: &str, definition: &str, min: i64, max: i64) -> Self {
        ParamFact {
            name: name.to_string(),
            definition: definition.to_string(),
            min,
            max,
            def_quality: FactQuality::Correct,
            range_quality: FactQuality::Correct,
            grounded: true,
        }
    }
}

/// Canned wrong definitions keyed by parameter family — the flavour of
/// confident hallucination the paper illustrates (e.g. interpreting stripe
/// count as "distributing the files of a directory more evenly across OSTs").
fn hallucinated_definition(name: &str) -> String {
    if name.contains("stripe_count") {
        "Controls how the files within a directory are distributed across \
         OSTs; setting it to -1 on a parent directory spreads its existing \
         files more evenly across all OSTs."
            .to_string()
    } else if name.contains("statahead") {
        "The number of file attributes cached per directory after a stat; \
         higher values keep more attributes resident in the inode cache."
            .to_string()
    } else if name.contains("read_ahead") {
        "The number of read RPCs batched together before dispatch to the OST.".to_string()
    } else if name.contains("dirty") {
        "The percentage of client memory reserved for dirty pages across all \
         file systems."
            .to_string()
    } else if name.contains("rpcs_in_flight") {
        "The number of retry attempts for a timed-out RPC before the import \
         is marked disconnected."
            .to_string()
    } else {
        format!(
            "An internal threshold controlling buffer management for `{name}` \
             on the client."
        )
    }
}

/// Niche parameters are rarely discussed in training corpora, so parametric
/// recall degrades further for them — the reason Fig. 2's example parameter
/// (`statahead_max`) defeats every frontier model.
fn niche_bonus(name: &str) -> f64 {
    if name.contains("statahead")
        || name.contains("mdc.")
        || name.contains("short_io")
        || name.contains("whole_mb")
        || name.contains("per_file")
        || name.contains("max_cached")
    {
        0.45
    } else {
        0.0
    }
}

/// Famous parameters carry a *canonical misconception*: striping is widely
/// discussed in forums and tutorials with a blurred meaning, which is why
/// §5.4's example has the agent reinterpreting stripe count as
/// "distributing a directory's files more evenly across all OSTs". Ungrounded
/// recall of these parameters is very likely to reproduce the popular wrong
/// definition — confidently, not imprecisely.
fn famous_misread(name: &str) -> bool {
    name.contains("stripe_count") || name.contains("stripe_size")
}

/// Produce the fact a model recalls from parametric memory (no grounding).
/// Deterministic per (model, parameter).
pub fn corrupt(
    profile: &ModelProfile,
    name: &str,
    true_definition: &str,
    true_min: i64,
    true_max: i64,
) -> ParamFact {
    let seed = combine(stable_hash(profile.name), stable_hash(name));
    let mut rng = SimRng::new(seed);
    let def_error = (profile.def_error_rate + niche_bonus(name)).min(0.95);
    let range_error = (profile.range_error_rate + niche_bonus(name)).min(0.97);

    if famous_misread(name) {
        // The canonical misconception dominates the training corpus for
        // these parameters; every model reproduces it confidently when
        // ungrounded (the §5.4 stripe example). The range keeps the
        // per-model dice.
        let (range_quality, min, max) = if rng.chance(range_error) {
            (FactQuality::Wrong, true_min, true_max.saturating_mul(4))
        } else {
            (FactQuality::Correct, true_min, true_max)
        };
        return ParamFact {
            name: name.to_string(),
            definition: hallucinated_definition(name),
            min,
            max,
            def_quality: FactQuality::Wrong,
            range_quality,
            grounded: false,
        };
    }

    let (def_quality, definition) = if rng.chance(def_error) {
        if rng.chance(profile.imprecision_rate) {
            (
                FactQuality::Imprecise,
                format!(
                    "{} (description recalled loosely; some behavioural \
                     details conflated with related parameters)",
                    truncate_half(true_definition)
                ),
            )
        } else {
            (FactQuality::Wrong, hallucinated_definition(name))
        }
    } else {
        (FactQuality::Correct, true_definition.to_string())
    };

    let (range_quality, min, max) = if rng.chance(range_error) {
        // Hallucinated ranges look plausible: right order of magnitude or a
        // "round" power of two, but not the documented bound.
        let wrong_max = match rng.index(3) {
            0 => (true_max / 2).max(true_min + 1),
            1 => true_max.saturating_mul(4),
            _ => {
                let mag = (true_max as f64).abs().max(2.0).log2().round() as u32;
                1i64 << mag.clamp(1, 40)
            }
        };
        let wrong_max = if wrong_max == true_max {
            true_max.saturating_add(true_max.max(1))
        } else {
            wrong_max
        };
        (FactQuality::Wrong, true_min, wrong_max)
    } else {
        (FactQuality::Correct, true_min, true_max)
    };

    ParamFact {
        name: name.to_string(),
        definition,
        min,
        max,
        def_quality,
        range_quality,
        grounded: false,
    }
}

fn truncate_half(s: &str) -> &str {
    let cut = s.len() / 2;
    // Cut at a char boundary at or after the midpoint.
    let mut idx = cut.min(s.len());
    while idx < s.len() && !s.is_char_boundary(idx) {
        idx += 1;
    }
    &s[..idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> ModelProfile {
        ModelProfile::gpt_45()
    }

    #[test]
    fn corruption_is_deterministic() {
        let a = corrupt(&profile(), "llite.statahead_max", "def", 0, 8192);
        let b = corrupt(&profile(), "llite.statahead_max", "def", 0, 8192);
        assert_eq!(a, b);
    }

    #[test]
    fn different_models_recall_differently() {
        let mut diffs = 0;
        for name in [
            "llite.statahead_max",
            "stripe_count",
            "osc.max_dirty_mb",
            "osc.max_rpcs_in_flight",
            "llite.max_read_ahead_mb",
            "osc.max_pages_per_rpc",
            "stripe_size",
            "mdc.max_rpcs_in_flight",
        ] {
            let a = corrupt(&ModelProfile::gpt_45(), name, "def", 0, 1000);
            let b = corrupt(&ModelProfile::gemini_25_pro(), name, "def", 0, 1000);
            if a.definition != b.definition || a.max != b.max {
                diffs += 1;
            }
        }
        assert!(diffs >= 2, "profiles should not recall identically");
    }

    #[test]
    fn wrong_range_differs_from_truth() {
        // Scan parameters until we find range corruption; the corrupted max
        // must differ from the true max.
        let p = ModelProfile::llama_31_70b(); // 0.9 range error rate
        let mut saw_wrong = false;
        for i in 0..40 {
            let name = format!("param.{i}");
            let f = corrupt(&p, &name, "def", 1, 4096);
            if f.range_quality == FactQuality::Wrong {
                assert_ne!(f.max, 4096, "{name}");
                saw_wrong = true;
            }
        }
        assert!(saw_wrong);
    }

    #[test]
    fn grounded_facts_are_truth() {
        let f = ParamFact::grounded("x", "the definition", 1, 10);
        assert_eq!(f.def_quality, FactQuality::Correct);
        assert_eq!(f.range_quality, FactQuality::Correct);
        assert!(f.grounded);
        assert_eq!((f.min, f.max), (1, 10));
    }

    #[test]
    fn hallucinated_definitions_cover_families() {
        for n in [
            "stripe_count",
            "llite.statahead_max",
            "llite.max_read_ahead_mb",
            "osc.max_dirty_mb",
            "osc.max_rpcs_in_flight",
            "other.param",
        ] {
            assert!(!hallucinated_definition(n).is_empty());
        }
    }

    #[test]
    fn statahead_paper_example_shape() {
        // Fig. 2: every frontier model misstates statahead_max's maximum.
        for p in [
            ModelProfile::gpt_45(),
            ModelProfile::gemini_25_pro(),
            ModelProfile::claude_37_sonnet(),
        ] {
            let f = corrupt(
                &p,
                "llite.statahead_max",
                "Maximum entries prefetched by the statahead thread.",
                0,
                8192,
            );
            // Not asserting wrongness for each (stochastic per model), but a
            // wrong range must never silently equal the truth.
            if f.range_quality == FactQuality::Wrong {
                assert_ne!(f.max, 8192);
            }
        }
    }
}
