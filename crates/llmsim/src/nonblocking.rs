//! The non-blocking backend seam.
//!
//! [`LlmBackend`] is synchronous: a caller invoking a
//! real provider API through it would pin its thread for the full network
//! round trip. This module supplies the seam that lets higher layers
//! overlap in-flight calls instead of blocking on them:
//!
//! * [`NonBlockingBackend`] — the submit/poll shape: [`submit`] hands the
//!   transport a reified [`LlmCall`] and returns a [`CallHandle`];
//!   [`poll`] reports [`CallStatus::Pending`] until the reply is in, then
//!   yields it as [`CallStatus::Ready`].
//! * [`SyncAdapter`] — the blanket adapter giving **every** existing
//!   synchronous [`LlmBackend`] the non-blocking shape:
//!   `submit` executes the call inline and the first `poll` is `Ready`.
//! * [`Immediate`] — the degenerate transport for callers that keep the
//!   semantic computation elsewhere (a session holding its own
//!   [`crate::SimLlm`]) and only need readiness gating.
//! * [`SimLatency`] — a wrapper injecting **deterministic seeded latency**
//!   (measured in poll ticks, not wall time) around any inner
//!   non-blocking backend, so tests and benches can exercise suspension
//!   and call overlap without timers or nondeterminism.
//! * [`crate::SimFailures`] — the failure-domain sibling: seeded
//!   per-submission error injection ([`CallStatus::Failed`] carrying a
//!   [`CallError`]) with the same determinism contract.
//!
//! ## The contract with callers
//!
//! A handle is live from `submit` until the `poll` that returns `Ready`
//! or `Failed` (either consumes it) or until [`cancel`]. Polling a
//! consumed, cancelled or foreign handle panics — sessions hold exactly
//! one in-flight call at a time, so a stale handle is a caller bug, not a
//! recoverable state.
//!
//! Latency is counted in *ticks*: each `poll` of a pending call burns one
//! tick. A driver that keeps polling therefore always makes progress, and
//! a multiplexing driver (the campaign worker loop) that polls K suspended
//! sessions round-robin advances all K calls concurrently — which is
//! exactly the overlap a real async provider would give, reproduced
//! deterministically.
//!
//! [`submit`]: NonBlockingBackend::submit
//! [`poll`]: NonBlockingBackend::poll
//! [`cancel`]: NonBlockingBackend::cancel

use crate::backend::LlmBackend;
use crate::facts::ParamFact;
use serde::{Deserialize, Serialize};
use simcore::rng::combine;
use simcore::SimRng;
use std::collections::BTreeMap;
use std::fmt;

/// Opaque identifier of one in-flight backend call.
///
/// Handles are only meaningful to the backend that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CallHandle(pub(crate) u64);

impl CallHandle {
    /// The raw id, for logs and telemetry.
    pub fn id(self) -> u64 {
        self.0
    }
}

/// One reified inference request — the wire form of the
/// [`LlmBackend`] methods, plus [`LlmCall::Turn`], the
/// session-level unit (one agent turn = one provider API call).
#[derive(Debug, Clone, PartialEq)]
pub enum LlmCall {
    /// Recall what the model knows about a parameter
    /// (see [`LlmBackend::param_fact`]).
    ParamFact {
        /// Ground-truth fact used to service grounded answers and to seed
        /// corruption.
        truth: ParamFact,
        /// Whether retrieved documentation grounds the answer.
        grounded: bool,
    },
    /// Multiplicative value-selection jitter for `context`.
    DecisionJitter {
        /// Decision-point label the jitter stream derives from.
        context: String,
    },
    /// Whether the model deviates from the policy's first choice.
    Deviates {
        /// Decision-point label the deviation stream derives from.
        context: String,
    },
    /// One whole agent turn. Carries no content of its own — the caller
    /// computes the turn through its synchronous backend once the
    /// transport reports the call complete. This is the granularity the
    /// session layer suspends at.
    Turn {
        /// Turn label (phase and index), for latency derivation and logs.
        context: String,
    },
}

impl LlmCall {
    /// The context label of the call (empty for [`LlmCall::ParamFact`],
    /// whose stream derives from the parameter name instead).
    pub fn context(&self) -> &str {
        match self {
            LlmCall::ParamFact { .. } => "",
            LlmCall::DecisionJitter { context }
            | LlmCall::Deviates { context }
            | LlmCall::Turn { context } => context,
        }
    }
}

/// The answer to a completed [`LlmCall`].
#[derive(Debug, Clone, PartialEq)]
pub enum LlmReply {
    /// Reply to [`LlmCall::ParamFact`].
    ParamFact(ParamFact),
    /// Reply to [`LlmCall::DecisionJitter`].
    DecisionJitter(f64),
    /// Reply to [`LlmCall::Deviates`].
    Deviates(bool),
    /// Reply to [`LlmCall::Turn`]: the transport round trip is done.
    Done,
}

/// Why a backend call concluded without a reply.
///
/// The split mirrors real provider error taxonomies: [`Transient`] covers
/// conditions a resubmission can clear (rate limiting, gateway timeouts,
/// load shedding), [`Fatal`] covers calls that can never succeed as issued
/// (malformed requests, revoked credentials). Retry layers key off
/// [`CallError::is_transient`]; everything else is presentation.
///
/// [`Transient`]: CallError::Transient
/// [`Fatal`]: CallError::Fatal
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CallError {
    /// A provider-side hiccup a retry can clear.
    Transient {
        /// Short provider-style reason label (e.g. `"rate-limited"`).
        reason: String,
    },
    /// The call can never succeed as issued; retrying is pointless.
    Fatal {
        /// Short provider-style reason label (e.g. `"invalid-request"`).
        reason: String,
    },
}

impl CallError {
    /// Whether a resubmission could clear this error.
    pub fn is_transient(&self) -> bool {
        matches!(self, CallError::Transient { .. })
    }

    /// The provider-style reason label.
    pub fn reason(&self) -> &str {
        match self {
            CallError::Transient { reason } | CallError::Fatal { reason } => reason,
        }
    }
}

impl fmt::Display for CallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CallError::Transient { reason } => write!(f, "transient: {reason}"),
            CallError::Fatal { reason } => write!(f, "fatal: {reason}"),
        }
    }
}

/// Outcome of polling an in-flight call.
#[derive(Debug, Clone, PartialEq)]
pub enum CallStatus {
    /// The call completed; the reply is yours and the handle is consumed.
    Ready(LlmReply),
    /// Still in flight — suspend and poll again later.
    Pending,
    /// The call concluded with an error; the handle is consumed. Retry
    /// decisions belong to the caller (see [`CallError::is_transient`]).
    Failed(CallError),
}

/// A backend that accepts calls without blocking on their completion.
///
/// See the [module docs](self) for the handle lifecycle contract.
pub trait NonBlockingBackend {
    /// Dispatch `call` and return a handle to poll it by.
    fn submit(&mut self, call: LlmCall) -> CallHandle;

    /// Check on an in-flight call. `Ready` consumes the handle.
    ///
    /// # Panics
    /// Panics on a handle this backend did not issue or has already
    /// completed or cancelled.
    fn poll(&mut self, handle: CallHandle) -> CallStatus;

    /// Abandon an in-flight call (e.g. the session aborted). No-op
    /// semantics for transports that cannot cancel; the handle is dead
    /// either way.
    fn cancel(&mut self, handle: CallHandle);

    /// Number of calls currently in flight.
    fn in_flight(&self) -> usize;
}

/// Blanket adapter: every synchronous [`LlmBackend`] viewed through the
/// non-blocking shape. `submit` executes the call inline on the wrapped
/// backend, so the first `poll` always returns [`CallStatus::Ready`] —
/// the zero-latency degenerate case the sync path is equivalent to.
#[derive(Debug, Clone)]
pub struct SyncAdapter<B> {
    inner: B,
    replies: BTreeMap<u64, LlmReply>,
    next_id: u64,
}

impl<B: LlmBackend> SyncAdapter<B> {
    /// Adapt a synchronous backend.
    pub fn new(inner: B) -> Self {
        SyncAdapter {
            inner,
            replies: BTreeMap::new(),
            next_id: 0,
        }
    }

    /// The wrapped backend.
    pub fn get_ref(&self) -> &B {
        &self.inner
    }

    /// The wrapped backend, mutably (e.g. to charge usage).
    pub fn get_mut(&mut self) -> &mut B {
        &mut self.inner
    }

    /// Unwrap, discarding any unclaimed replies.
    pub fn into_inner(self) -> B {
        self.inner
    }
}

impl<B: LlmBackend> NonBlockingBackend for SyncAdapter<B> {
    fn submit(&mut self, call: LlmCall) -> CallHandle {
        let reply = match call {
            LlmCall::ParamFact { truth, grounded } => {
                LlmReply::ParamFact(self.inner.param_fact(&truth, grounded))
            }
            LlmCall::DecisionJitter { context } => {
                LlmReply::DecisionJitter(self.inner.decision_jitter(&context))
            }
            LlmCall::Deviates { context } => LlmReply::Deviates(self.inner.deviates(&context)),
            LlmCall::Turn { .. } => LlmReply::Done,
        };
        let id = self.next_id;
        self.next_id += 1;
        self.replies.insert(id, reply);
        CallHandle(id)
    }

    fn poll(&mut self, handle: CallHandle) -> CallStatus {
        CallStatus::Ready(
            self.replies
                .remove(&handle.0)
                .expect("polled unknown or already-completed call"),
        )
    }

    fn cancel(&mut self, handle: CallHandle) {
        self.replies.remove(&handle.0);
    }

    fn in_flight(&self) -> usize {
        self.replies.len()
    }
}

/// Content-free transport that completes every call instantly with
/// [`LlmReply::Done`].
///
/// For callers that keep the semantic computation in a synchronous
/// backend they own (the session's [`crate::SimLlm`]) and use the
/// non-blocking seam purely for readiness: wrap `Immediate` in a
/// [`SimLatency`] and the caller suspends exactly as it would on a real
/// provider, while replies keep coming from the sync path bit for bit.
#[derive(Debug, Clone, Default)]
pub struct Immediate {
    live: BTreeMap<u64, ()>,
    next_id: u64,
}

impl Immediate {
    /// A fresh instant transport.
    pub fn new() -> Self {
        Immediate::default()
    }
}

impl NonBlockingBackend for Immediate {
    fn submit(&mut self, _call: LlmCall) -> CallHandle {
        let id = self.next_id;
        self.next_id += 1;
        self.live.insert(id, ());
        CallHandle(id)
    }

    fn poll(&mut self, handle: CallHandle) -> CallStatus {
        self.live
            .remove(&handle.0)
            .expect("polled unknown or already-completed call");
        CallStatus::Ready(LlmReply::Done)
    }

    fn cancel(&mut self, handle: CallHandle) {
        self.live.remove(&handle.0);
    }

    fn in_flight(&self) -> usize {
        self.live.len()
    }
}

/// How many poll ticks a simulated call stays in flight.
///
/// `min_ticks..=max_ticks`, drawn deterministically per call from the
/// wrapper's seed and the call's submission index — so a given session
/// always sees the same latency sequence regardless of what else runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyProfile {
    /// Fewest ticks a call can take (0 = can complete on the first poll).
    pub min_ticks: u32,
    /// Most ticks a call can take.
    pub max_ticks: u32,
}

impl LatencyProfile {
    /// Every call takes exactly `ticks` polls.
    pub fn fixed(ticks: u32) -> Self {
        LatencyProfile {
            min_ticks: ticks,
            max_ticks: ticks,
        }
    }

    /// Calls take between `min` and `max` ticks inclusive.
    ///
    /// # Panics
    /// Panics if `min > max`.
    pub fn uniform(min: u32, max: u32) -> Self {
        assert!(min <= max, "latency profile: min {min} > max {max}");
        LatencyProfile {
            min_ticks: min,
            max_ticks: max,
        }
    }

    /// Parse a CLI spelling: a single tick count (`"3"`) or an inclusive
    /// range (`"1..4"`).
    pub fn parse(s: &str) -> Option<Self> {
        if let Some((lo, hi)) = s.split_once("..") {
            let (min, max) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
            (min <= max).then(|| LatencyProfile::uniform(min, max))
        } else {
            s.trim().parse().ok().map(LatencyProfile::fixed)
        }
    }

    /// The CLI spelling (`"3"` or `"1..4"`).
    pub fn label(&self) -> String {
        if self.min_ticks == self.max_ticks {
            format!("{}", self.min_ticks)
        } else {
            format!("{}..{}", self.min_ticks, self.max_ticks)
        }
    }

    /// Whether every call completes on its first poll.
    pub fn is_instant(&self) -> bool {
        self.max_ticks == 0
    }

    fn draw(&self, seed: u64, submission: u64) -> u32 {
        if self.min_ticks == self.max_ticks {
            return self.min_ticks;
        }
        let span = (self.max_ticks - self.min_ticks + 1) as usize;
        self.min_ticks + SimRng::new(combine(seed, submission)).index(span) as u32
    }
}

/// Deterministic seeded latency around any [`NonBlockingBackend`].
///
/// `submit` forwards to the inner backend immediately (the call is "on
/// the wire") and assigns it a tick budget from the [`LatencyProfile`];
/// each `poll` of a pending call burns one tick, and only when the budget
/// is spent does the inner backend's status pass through. With the
/// default [`Immediate`] inner this is a pure readiness gate.
#[derive(Debug, Clone)]
pub struct SimLatency<B = Immediate> {
    inner: B,
    profile: LatencyProfile,
    seed: u64,
    submitted: u64,
    /// Our id → (inner handle, remaining ticks).
    pending: BTreeMap<u64, (CallHandle, u32)>,
    peak_in_flight: usize,
}

impl SimLatency<Immediate> {
    /// A readiness gate: seeded latency over the instant transport.
    pub fn gate(profile: LatencyProfile, seed: u64) -> Self {
        SimLatency::wrapping(Immediate::new(), profile, seed)
    }
}

impl<B> SimLatency<B> {
    /// Inject latency around `inner`.
    pub fn wrapping(inner: B, profile: LatencyProfile, seed: u64) -> Self {
        SimLatency {
            inner,
            profile,
            seed,
            submitted: 0,
            pending: BTreeMap::new(),
            peak_in_flight: 0,
        }
    }

    /// The latency profile in force.
    pub fn profile(&self) -> LatencyProfile {
        self.profile
    }

    /// Most calls ever simultaneously in flight through this wrapper.
    pub fn peak_in_flight(&self) -> usize {
        self.peak_in_flight
    }

    /// Unwrap the inner backend, dropping any in-flight calls.
    pub fn into_inner(self) -> B {
        self.inner
    }
}

impl<B: NonBlockingBackend> NonBlockingBackend for SimLatency<B> {
    fn submit(&mut self, call: LlmCall) -> CallHandle {
        let ticks = self.profile.draw(self.seed, self.submitted);
        let inner_handle = self.inner.submit(call);
        let id = self.submitted;
        self.submitted += 1;
        self.pending.insert(id, (inner_handle, ticks));
        self.peak_in_flight = self.peak_in_flight.max(self.pending.len());
        CallHandle(id)
    }

    fn poll(&mut self, handle: CallHandle) -> CallStatus {
        let (inner_handle, ticks) = self
            .pending
            .get_mut(&handle.0)
            .expect("polled unknown or already-completed call");
        if *ticks > 0 {
            *ticks -= 1;
            return CallStatus::Pending;
        }
        let inner_handle = *inner_handle;
        match self.inner.poll(inner_handle) {
            CallStatus::Pending => CallStatus::Pending,
            // Ready and Failed both consume the handle; either passes
            // through once the tick budget is spent.
            done => {
                self.pending.remove(&handle.0);
                done
            }
        }
    }

    fn cancel(&mut self, handle: CallHandle) {
        if let Some((inner_handle, _)) = self.pending.remove(&handle.0) {
            self.inner.cancel(inner_handle);
        }
    }

    fn in_flight(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::ModelProfile;
    use crate::SimLlm;

    fn truth() -> ParamFact {
        ParamFact::grounded("osc.max_dirty_mb", "Dirty page cache cap per OSC.", 0, 2048)
    }

    /// The blanket adapter computes exactly what the sync backend would.
    #[test]
    fn sync_adapter_matches_direct_calls() {
        let mut direct = SimLlm::new(ModelProfile::claude_37_sonnet(), 9);
        let mut adapted = SyncAdapter::new(SimLlm::new(ModelProfile::claude_37_sonnet(), 9));

        let h = adapted.submit(LlmCall::ParamFact {
            truth: truth(),
            grounded: false,
        });
        let CallStatus::Ready(LlmReply::ParamFact(fact)) = adapted.poll(h) else {
            panic!("sync adapter must be ready on first poll");
        };
        assert_eq!(fact, direct.param_fact(&truth(), false));

        let h = adapted.submit(LlmCall::DecisionJitter {
            context: "stripe_count:1".into(),
        });
        let CallStatus::Ready(LlmReply::DecisionJitter(j)) = adapted.poll(h) else {
            panic!("ready");
        };
        assert_eq!(
            j.to_bits(),
            direct.decision_jitter("stripe_count:1").to_bits()
        );

        let h = adapted.submit(LlmCall::Deviates {
            context: "ctx".into(),
        });
        let CallStatus::Ready(LlmReply::Deviates(d)) = adapted.poll(h) else {
            panic!("ready");
        };
        assert_eq!(d, direct.deviates("ctx"));
        assert_eq!(adapted.in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "already-completed")]
    fn polling_a_consumed_handle_panics() {
        let mut adapted = SyncAdapter::new(SimLlm::new(ModelProfile::gpt_4o(), 1));
        let h = adapted.submit(LlmCall::Turn {
            context: "t".into(),
        });
        let _ = adapted.poll(h);
        let _ = adapted.poll(h);
    }

    #[test]
    fn latency_holds_calls_for_their_tick_budget() {
        let mut gate = SimLatency::gate(LatencyProfile::fixed(3), 42);
        let h = gate.submit(LlmCall::Turn {
            context: "turn0".into(),
        });
        assert_eq!(gate.in_flight(), 1);
        for _ in 0..3 {
            assert_eq!(gate.poll(h), CallStatus::Pending);
        }
        assert_eq!(gate.poll(h), CallStatus::Ready(LlmReply::Done));
        assert_eq!(gate.in_flight(), 0);
        assert_eq!(gate.peak_in_flight(), 1);
    }

    #[test]
    fn latency_draws_are_deterministic_and_within_profile() {
        let profile = LatencyProfile::uniform(1, 4);
        let draws = |seed| -> Vec<u32> { (0..32).map(|i| profile.draw(seed, i)).collect() };
        let a = draws(7);
        assert_eq!(a, draws(7), "same seed, same latency sequence");
        assert_ne!(a, draws(8), "different seed, different sequence");
        assert!(a.iter().all(|&t| (1..=4).contains(&t)));
        assert!(a.iter().any(|&t| t != a[0]), "spread over the range");
    }

    #[test]
    fn overlapping_calls_are_tracked() {
        let mut gate = SimLatency::gate(LatencyProfile::fixed(2), 1);
        let a = gate.submit(LlmCall::Turn {
            context: "a".into(),
        });
        let b = gate.submit(LlmCall::Turn {
            context: "b".into(),
        });
        assert_eq!(gate.in_flight(), 2);
        assert_eq!(gate.peak_in_flight(), 2);
        // Round-robin polling drains both concurrently.
        assert_eq!(gate.poll(a), CallStatus::Pending);
        assert_eq!(gate.poll(b), CallStatus::Pending);
        assert_eq!(gate.poll(a), CallStatus::Pending);
        assert_eq!(gate.poll(b), CallStatus::Pending);
        assert_eq!(gate.poll(a), CallStatus::Ready(LlmReply::Done));
        assert_eq!(gate.poll(b), CallStatus::Ready(LlmReply::Done));
    }

    #[test]
    fn cancel_kills_the_handle() {
        let mut gate = SimLatency::gate(LatencyProfile::fixed(5), 1);
        let h = gate.submit(LlmCall::Turn {
            context: "t".into(),
        });
        gate.cancel(h);
        assert_eq!(gate.in_flight(), 0);
        // Cancelling twice is a no-op, not a panic.
        gate.cancel(h);
    }

    #[test]
    fn latency_profile_parsing() {
        assert_eq!(LatencyProfile::parse("3"), Some(LatencyProfile::fixed(3)));
        assert_eq!(
            LatencyProfile::parse("1..4"),
            Some(LatencyProfile::uniform(1, 4))
        );
        assert_eq!(LatencyProfile::parse("4..1"), None);
        assert_eq!(LatencyProfile::parse("fast"), None);
        assert_eq!(LatencyProfile::fixed(2).label(), "2");
        assert_eq!(LatencyProfile::uniform(0, 3).label(), "0..3");
        assert!(LatencyProfile::fixed(0).is_instant());
        assert!(!LatencyProfile::uniform(0, 1).is_instant());
    }

    /// Zero latency through the gate is indistinguishable from Immediate.
    #[test]
    fn instant_profile_is_ready_on_first_poll() {
        let mut gate = SimLatency::gate(LatencyProfile::fixed(0), 3);
        let h = gate.submit(LlmCall::Turn {
            context: "t".into(),
        });
        assert_eq!(gate.poll(h), CallStatus::Ready(LlmReply::Done));
    }

    /// SimLatency over the blanket adapter: the full seam composed — a
    /// sync backend behind simulated provider latency.
    #[test]
    fn latency_over_sync_adapter_delivers_the_sync_reply() {
        let mut direct = SimLlm::new(ModelProfile::gpt_4o(), 5);
        let expected = direct.decision_jitter("osc:attempt2");

        let adapter = SyncAdapter::new(SimLlm::new(ModelProfile::gpt_4o(), 5));
        let mut wired = SimLatency::wrapping(adapter, LatencyProfile::fixed(2), 11);
        let h = wired.submit(LlmCall::DecisionJitter {
            context: "osc:attempt2".into(),
        });
        assert_eq!(wired.poll(h), CallStatus::Pending);
        assert_eq!(wired.poll(h), CallStatus::Pending);
        let CallStatus::Ready(LlmReply::DecisionJitter(j)) = wired.poll(h) else {
            panic!("ready after ticks");
        };
        assert_eq!(j.to_bits(), expected.to_bits());
    }
}
