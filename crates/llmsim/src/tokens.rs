//! Token estimation, usage metering and the prefix prompt cache.
//!
//! Reproduces the §5.7 accounting: input/output token volumes per agent and
//! the prompt-cache economics ("between 85 and 90 percent of the total input
//! tokens are resolved via cache over the course of a tuning run", because
//! agent turns share a growing common prefix).

use serde::{Deserialize, Serialize};
use simcore::rng::stable_hash;
use std::collections::HashSet;

/// Rough GPT-style token estimate (~4 characters per token).
pub fn estimate_tokens(text: &str) -> u64 {
    (text.len() as u64).div_ceil(4)
}

/// Cache block size in tokens (providers cache at coarse prefix granularity).
pub const CACHE_BLOCK_TOKENS: u64 = 128;

/// Block-prefix prompt cache: a prompt's cached token count is the longest
/// chain of leading blocks that has been seen before.
#[derive(Debug, Default, Clone)]
pub struct PrefixCache {
    // determinism audit (D002): membership tests and inserts only — the
    // cached-token count depends on which hashes are present, never on
    // the set's internal order
    seen: HashSet<u64>,
}

impl PrefixCache {
    /// Create an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `prompt` and return the number of input tokens served from
    /// cache (multiple of [`CACHE_BLOCK_TOKENS`], capped by prompt length).
    pub fn observe(&mut self, prompt: &str) -> u64 {
        let total = estimate_tokens(prompt);
        let block_bytes = (CACHE_BLOCK_TOKENS * 4) as usize;
        let bytes = prompt.as_bytes();
        let mut cached_tokens = 0u64;
        let mut chain: u64 = 0xfeed_beef_cafe_f00d;
        let mut offset = 0usize;
        let mut still_prefix = true;
        while offset < bytes.len() {
            let end = (offset + block_bytes).min(bytes.len());
            // Chain hash: block content + everything before it.
            let block_hash = hash_bytes(&bytes[offset..end]);
            chain = chain.rotate_left(17).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ block_hash;
            let known = self.seen.contains(&chain);
            if still_prefix {
                if known {
                    cached_tokens +=
                        estimate_tokens(std::str::from_utf8(&bytes[offset..end]).unwrap_or(""));
                } else {
                    still_prefix = false;
                }
            }
            self.seen.insert(chain);
            offset = end;
        }
        cached_tokens.min(total)
    }
}

fn hash_bytes(b: &[u8]) -> u64 {
    // FNV over raw bytes; stable_hash is str-based, so inline the same walk.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &x in b {
        h ^= x as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    let _ = stable_hash; // keep the shared algorithm referenced for readers
    h
}

/// Per-agent usage accounting.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UsageMeter {
    /// Total input tokens across calls.
    pub input_tokens: u64,
    /// Input tokens resolved via the prefix cache.
    pub cached_input_tokens: u64,
    /// Total output tokens across calls.
    pub output_tokens: u64,
    /// Number of inference calls.
    pub calls: u64,
}

impl UsageMeter {
    /// Record one call.
    pub fn record(&mut self, input: u64, cached: u64, output: u64) {
        self.input_tokens += input;
        self.cached_input_tokens += cached.min(input);
        self.output_tokens += output;
        self.calls += 1;
    }

    /// Fraction of input tokens served from cache.
    pub fn cache_hit_ratio(&self) -> f64 {
        if self.input_tokens == 0 {
            0.0
        } else {
            self.cached_input_tokens as f64 / self.input_tokens as f64
        }
    }

    /// Merge another meter (e.g. across agents).
    pub fn merge(&mut self, other: &UsageMeter) {
        self.input_tokens += other.input_tokens;
        self.cached_input_tokens += other.cached_input_tokens;
        self.output_tokens += other.output_tokens;
        self.calls += other.calls;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_estimate_quarter_chars() {
        assert_eq!(estimate_tokens(""), 0);
        assert_eq!(estimate_tokens("abcd"), 1);
        assert_eq!(estimate_tokens("abcde"), 2);
        assert_eq!(estimate_tokens(&"x".repeat(400)), 100);
    }

    #[test]
    fn first_observation_is_uncached() {
        let mut c = PrefixCache::new();
        let prompt = "a".repeat(4096);
        assert_eq!(c.observe(&prompt), 0);
    }

    #[test]
    fn identical_prompt_fully_cached() {
        let mut c = PrefixCache::new();
        let prompt = "b".repeat(4096);
        c.observe(&prompt);
        let cached = c.observe(&prompt);
        assert_eq!(cached, estimate_tokens(&prompt));
    }

    #[test]
    fn growing_prompt_caches_shared_prefix() {
        let mut c = PrefixCache::new();
        let base = "system prompt and history ".repeat(100); // ~2.6k chars
        c.observe(&base);
        let longer = format!("{base}{}", "new turn content ".repeat(50));
        let cached = c.observe(&longer);
        let base_tokens = estimate_tokens(&base);
        // The shared prefix (all full blocks of base) must be cached.
        assert!(
            cached > base_tokens * 8 / 10,
            "cached {cached} of {base_tokens}"
        );
        assert!(cached <= estimate_tokens(&longer));
    }

    #[test]
    fn divergent_prefix_not_cached() {
        let mut c = PrefixCache::new();
        c.observe(&"prompt one ".repeat(200));
        let cached = c.observe(&"different lead ".repeat(200));
        assert_eq!(cached, 0);
    }

    #[test]
    fn meter_accounting() {
        let mut m = UsageMeter::default();
        m.record(1000, 900, 50);
        m.record(1000, 800, 50);
        assert_eq!(m.input_tokens, 2000);
        assert_eq!(m.cached_input_tokens, 1700);
        assert_eq!(m.output_tokens, 100);
        assert_eq!(m.calls, 2);
        assert!((m.cache_hit_ratio() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn meter_merge() {
        let mut a = UsageMeter::default();
        a.record(10, 5, 1);
        let mut b = UsageMeter::default();
        b.record(20, 10, 2);
        a.merge(&b);
        assert_eq!(a.input_tokens, 30);
        assert_eq!(a.calls, 2);
    }

    #[test]
    fn cached_never_exceeds_input() {
        let mut m = UsageMeter::default();
        m.record(10, 50, 1);
        assert_eq!(m.cached_input_tokens, 10);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The cache never reports more cached tokens than the prompt holds,
        /// and re-observing any prompt caches it fully.
        #[test]
        fn cache_bounds(prompts in proptest::collection::vec("[a-z ]{10,2000}", 1..12)) {
            let mut c = PrefixCache::new();
            for p in &prompts {
                let cached = c.observe(p);
                prop_assert!(cached <= estimate_tokens(p));
            }
            for p in &prompts {
                let cached = c.observe(p);
                prop_assert_eq!(cached, estimate_tokens(p), "repeat must fully cache");
            }
        }

        /// Extending a prompt never reduces its cached prefix length.
        #[test]
        fn extension_monotone(base in "[a-z ]{600,1500}", tail in "[a-z ]{1,400}") {
            let mut c = PrefixCache::new();
            c.observe(&base);
            let extended = format!("{base}{tail}");
            let cached = c.observe(&extended);
            // Cached tokens must cover at least all the full blocks of base.
            let base_tokens = estimate_tokens(&base);
            let full_blocks = base_tokens / CACHE_BLOCK_TOKENS * CACHE_BLOCK_TOKENS;
            prop_assert!(cached + CACHE_BLOCK_TOKENS >= full_blocks,
                         "cached {cached} < full blocks {full_blocks}");
        }

        /// Usage meters never overflow their own invariants under merge.
        #[test]
        fn meter_invariants(ops in proptest::collection::vec((0u64..10_000, 0u64..20_000, 0u64..5_000), 1..50)) {
            let mut m = UsageMeter::default();
            for (input, cached, output) in ops {
                m.record(input, cached, output);
                prop_assert!(m.cached_input_tokens <= m.input_tokens);
                prop_assert!((0.0..=1.0).contains(&m.cache_hit_ratio()));
            }
        }
    }
}
