//! Model profiles: the quality knobs that differentiate the LLMs the paper
//! evaluates (Fig. 2 hallucination rates, Fig. 9 tuning-agent comparison).
//!
//! Rates are calibrated to the qualitative picture in the paper: all frontier
//! models get parameter *ranges* wrong from memory most of the time; weaker
//! or older models also corrupt definitions; grounded answers are always
//! correct. `discipline` models how faithfully the agent applies expert
//! policy (exploration steadiness) — all three tuning-agent models land in a
//! similar band, as Fig. 9 reports.

use serde::{Deserialize, Serialize};

/// Quality profile of one LLM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Model name as reported in transcripts.
    pub name: &'static str,
    /// Provider label (for the cost table).
    pub provider: &'static str,
    /// P(parametric memory corrupts a parameter definition).
    pub def_error_rate: f64,
    /// P(definition is imprecise rather than outright wrong, given an error).
    pub imprecision_rate: f64,
    /// P(parametric memory corrupts a parameter's accepted range).
    pub range_error_rate: f64,
    /// 0..1: steadiness of policy application (1 = textbook expert moves).
    pub discipline: f64,
    /// Output-token multiplier relative to a terse baseline.
    pub verbosity: f64,
}

impl ModelProfile {
    /// Claude-3.7-Sonnet — the paper's default Tuning Agent.
    pub fn claude_37_sonnet() -> Self {
        ModelProfile {
            name: "claude-3.7-sonnet",
            provider: "Anthropic API",
            def_error_rate: 0.25,
            imprecision_rate: 0.6,
            range_error_rate: 0.75,
            discipline: 0.95,
            verbosity: 1.0,
        }
    }

    /// GPT-4o — the paper's Analysis Agent and RAG-extraction model.
    pub fn gpt_4o() -> Self {
        ModelProfile {
            name: "gpt-4o",
            provider: "OpenAI API",
            def_error_rate: 0.35,
            imprecision_rate: 0.5,
            range_error_rate: 0.8,
            discipline: 0.9,
            verbosity: 0.9,
        }
    }

    /// Llama-3.1-70B-Instruct — the open-weights comparison point.
    pub fn llama_31_70b() -> Self {
        ModelProfile {
            name: "llama-3.1-70b-instruct",
            provider: "TogetherAI API",
            def_error_rate: 0.5,
            imprecision_rate: 0.4,
            range_error_rate: 0.9,
            discipline: 0.8,
            verbosity: 1.2,
        }
    }

    /// GPT-4.5 — appears in the hallucination example (Fig. 2).
    pub fn gpt_45() -> Self {
        ModelProfile {
            name: "gpt-4.5",
            provider: "OpenAI API",
            def_error_rate: 0.45,
            imprecision_rate: 0.35,
            range_error_rate: 0.85,
            discipline: 0.92,
            verbosity: 1.1,
        }
    }

    /// Gemini-2.5-Pro — appears in the hallucination example (Fig. 2).
    pub fn gemini_25_pro() -> Self {
        ModelProfile {
            name: "gemini-2.5-pro",
            provider: "Google API",
            def_error_rate: 0.45,
            imprecision_rate: 0.4,
            range_error_rate: 0.85,
            discipline: 0.9,
            verbosity: 1.1,
        }
    }

    /// The three tuning-agent models of Fig. 9, in paper order.
    pub fn tuning_agents() -> Vec<ModelProfile> {
        vec![
            Self::claude_37_sonnet(),
            Self::gpt_4o(),
            Self::llama_31_70b(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_probabilities() {
        for p in [
            ModelProfile::claude_37_sonnet(),
            ModelProfile::gpt_4o(),
            ModelProfile::llama_31_70b(),
            ModelProfile::gpt_45(),
            ModelProfile::gemini_25_pro(),
        ] {
            for r in [
                p.def_error_rate,
                p.imprecision_rate,
                p.range_error_rate,
                p.discipline,
            ] {
                assert!((0.0..=1.0).contains(&r), "{}: {r}", p.name);
            }
            assert!(p.verbosity > 0.0);
        }
    }

    #[test]
    fn ranges_hallucinate_more_than_definitions() {
        // The paper's Fig. 2: all three frontier models got the max value
        // wrong while some definitions survived.
        for p in ModelProfile::tuning_agents() {
            assert!(p.range_error_rate > p.def_error_rate, "{}", p.name);
        }
    }

    #[test]
    fn tuning_agents_match_paper_lineup() {
        let names: Vec<_> = ModelProfile::tuning_agents()
            .iter()
            .map(|p| p.name)
            .collect();
        assert_eq!(
            names,
            vec!["claude-3.7-sonnet", "gpt-4o", "llama-3.1-70b-instruct"]
        );
    }
}
