//! # llmsim — a deterministic LLM substrate
//!
//! The paper drives its agents with GPT-4o, Claude-3.7-Sonnet and
//! Llama-3.1-70B over provider APIs; none are reachable here, so this crate
//! supplies the closest synthetic equivalent that exercises the same code
//! paths (see DESIGN.md §1):
//!
//! * [`profiles::ModelProfile`] — per-model quality knobs. The pivotal one is
//!   **parametric-memory fidelity**: when a model is asked about a file-system
//!   parameter *without grounding context*, it answers from a deterministic,
//!   per-(model, parameter) corrupted copy of the truth — reproducing the
//!   hallucination behaviour of Fig. 2. With grounding (RAG chunks in the
//!   prompt), every profile answers correctly, which is exactly the paper's
//!   claim about why RAG matters.
//! * [`facts`] — the `ParamFact` representation and its corruption model.
//! * [`tokens`] — token estimation, per-agent usage metering, and a
//!   block-prefix prompt cache reproducing the 85–90% cache-hit economics of
//!   §5.7.
//! * [`backend::SimLlm`] — the backend handle agents hold: fact queries,
//!   discipline-modulated decision noise, and prompt/response accounting.
//! * [`nonblocking`] — the submit/poll seam for providers that should not
//!   pin a thread per call: [`nonblocking::NonBlockingBackend`], the
//!   [`nonblocking::SyncAdapter`] blanket adapter over any sync backend,
//!   and [`nonblocking::SimLatency`], deterministic seeded latency for
//!   exercising suspension and call overlap in tests and benches.
//! * [`failures`] — the failure domain of the same seam:
//!   [`failures::SimFailures`] turns a seeded, submission-indexed fraction
//!   of calls into [`nonblocking::CallStatus::Failed`] outcomes so retry
//!   and isolation machinery can be exercised reproducibly.
//!
//! Real providers can be substituted by implementing [`backend::LlmBackend`]
//! (blocking) or [`nonblocking::NonBlockingBackend`] (submit/poll).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod backend;
pub mod facts;
pub mod failures;
pub mod nonblocking;
pub mod profiles;
pub mod tokens;

pub use backend::{LlmBackend, SimLlm};
pub use facts::{FactQuality, ParamFact};
pub use failures::{FailureInjection, FailureProfile, SimFailures};
pub use nonblocking::{
    CallError, CallHandle, CallStatus, LatencyProfile, LlmCall, LlmReply, NonBlockingBackend,
    SimLatency, SyncAdapter,
};
pub use profiles::ModelProfile;
pub use tokens::{estimate_tokens, PrefixCache, UsageMeter};
