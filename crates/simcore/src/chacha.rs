//! ChaCha8 keystream generator — the deterministic core behind [`crate::rng::SimRng`].
//!
//! Implements the ChaCha block function (Bernstein 2008; RFC 8439 layout)
//! with 8 rounds, keyed from a 32-byte seed and a 64-bit block counter with
//! a zero nonce. The 64-bit seeding path mirrors `rand`'s `seed_from_u64`
//! (SplitMix64 expansion of the word into the key) so seeds stay
//! well-distributed. Output words are consumed little-endian in block
//! order; [`ChaCha8::next_u64`] concatenates two consecutive u32s, matching
//! `rand_core`'s `fill_bytes`-based u64 extraction.

/// ChaCha8 stream with a retained seed (for child-stream derivation).
#[derive(Debug, Clone)]
pub struct ChaCha8 {
    seed: [u8; 32],
    counter: u64,
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means "refill needed".
    word_idx: usize,
}

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8 {
    /// Stream keyed by the full 32-byte seed.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        ChaCha8 {
            seed,
            counter: 0,
            block: [0; 16],
            word_idx: 16,
        }
    }

    /// Stream keyed from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut bytes = [0u8; 32];
        for chunk in bytes.chunks_exact_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        Self::from_seed(bytes)
    }

    /// The seed this stream was keyed with.
    pub fn get_seed(&self) -> [u8; 32] {
        self.seed
    }

    fn refill(&mut self) {
        let mut input = [0u32; 16];
        input[..4].copy_from_slice(&CONSTANTS);
        for (i, chunk) in self.seed.chunks_exact(4).enumerate() {
            input[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        input[12] = self.counter as u32;
        input[13] = (self.counter >> 32) as u32;
        // input[14], input[15]: zero nonce.
        let mut working = input;
        for _ in 0..4 {
            // One double round: a column round then a diagonal round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (w, inp) in working.iter_mut().zip(input.iter()) {
            *w = w.wrapping_add(*inp);
        }
        self.block = working;
        self.counter = self.counter.wrapping_add(1);
        self.word_idx = 0;
    }

    /// Next 32 keystream bits.
    pub fn next_u32(&mut self) -> u32 {
        if self.word_idx >= 16 {
            self.refill();
        }
        let w = self.block[self.word_idx];
        self.word_idx += 1;
        w
    }

    /// Next 64 keystream bits (low word first, `rand_core` convention).
    pub fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ECRYPT ChaCha8 known-answer test: 256-bit all-zero key, zero IV.
    /// The keystream begins `3e 00 ef 2f 89 5f 40 d6 7f 5b b8 e8 1f 09 a5
    /// a1 ...`; words are that byte stream read little-endian.
    #[test]
    fn zero_key_first_words_match_reference() {
        let mut c = ChaCha8::from_seed([0u8; 32]);
        let first: Vec<u32> = (0..4).map(|_| c.next_u32()).collect();
        let expected: Vec<u32> = [
            [0x3eu8, 0x00, 0xef, 0x2f],
            [0x89, 0x5f, 0x40, 0xd6],
            [0x7f, 0x5b, 0xb8, 0xe8],
            [0x1f, 0x09, 0xa5, 0xa1],
        ]
        .iter()
        .map(|b| u32::from_le_bytes(*b))
        .collect();
        assert_eq!(first, expected);
    }

    #[test]
    fn blocks_advance_and_are_deterministic() {
        let mut a = ChaCha8::seed_from_u64(42);
        let mut b = ChaCha8::seed_from_u64(42);
        let xs: Vec<u64> = (0..40).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..40).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // More than one block (16 words = 8 u64s) without repetition.
        let unique: std::collections::BTreeSet<_> = xs.iter().collect();
        assert_eq!(unique.len(), xs.len());
    }

    #[test]
    fn seed_from_u64_differs_per_seed() {
        let mut a = ChaCha8::seed_from_u64(1);
        let mut b = ChaCha8::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
