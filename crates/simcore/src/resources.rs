//! Calendar-based queueing resources.
//!
//! All contention in the PFS model flows through three primitives:
//!
//! * [`FifoServer`] — a single server with a FIFO queue. A request arriving at
//!   `a` with service time `s` starts at `max(a, busy_until)` and completes at
//!   `start + s`.
//! * [`MultiServer`] — `k` identical servers fed by one FIFO queue (models an
//!   MDS service pool or a disk with internal parallelism).
//! * [`Window`] — a sliding window of at most `k` in-flight operations (models
//!   `max_rpcs_in_flight`-style client-side concurrency caps). `admit` returns
//!   the earliest instant a new operation may be *issued*.
//!
//! Because requests are resolved analytically against a busy calendar rather
//! than via per-request events, a resource access is O(log k); the PFS model
//! only needs to guarantee that each resource sees arrivals in nondecreasing
//! time order (the engine's event loop provides exactly that).

use crate::time::{Duration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Outcome of scheduling a request on a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When service actually begins (>= arrival).
    pub start: SimTime,
    /// When service completes.
    pub end: SimTime,
}

impl Grant {
    /// Queueing delay experienced before service began.
    pub fn wait(&self, arrival: SimTime) -> Duration {
        self.start.saturating_since(arrival)
    }
}

/// Single-server FIFO queue with a busy-until calendar.
#[derive(Debug, Clone, Default)]
pub struct FifoServer {
    busy_until: SimTime,
    served: u64,
    busy_time: Duration,
}

impl FifoServer {
    /// Create an idle server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule a request arriving at `arrival` needing `service` time.
    pub fn schedule(&mut self, arrival: SimTime, service: Duration) -> Grant {
        let start = arrival.max(self.busy_until);
        let end = start + service;
        self.busy_until = end;
        self.served += 1;
        self.busy_time += service;
        Grant { start, end }
    }

    /// Earliest instant a new arrival would begin service.
    pub fn free_at(&self) -> SimTime {
        self.busy_until
    }

    /// Total number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Aggregate busy time (for utilisation reporting).
    pub fn busy_time(&self) -> Duration {
        self.busy_time
    }

    /// Utilisation over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        (self.busy_time.as_secs_f64() / horizon.as_secs_f64()).min(1.0)
    }
}

/// `k` identical servers behind one FIFO queue.
#[derive(Debug, Clone)]
pub struct MultiServer {
    free_times: BinaryHeap<Reverse<SimTime>>,
    capacity: usize,
    served: u64,
    busy_time: Duration,
}

impl MultiServer {
    /// Create a pool of `capacity` idle servers.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MultiServer capacity must be positive");
        let mut free_times = BinaryHeap::with_capacity(capacity);
        for _ in 0..capacity {
            free_times.push(Reverse(SimTime::ZERO));
        }
        MultiServer {
            free_times,
            capacity,
            served: 0,
            busy_time: Duration::ZERO,
        }
    }

    /// Schedule a request arriving at `arrival` needing `service` time on the
    /// earliest-free server.
    pub fn schedule(&mut self, arrival: SimTime, service: Duration) -> Grant {
        let Reverse(free) = self.free_times.pop().expect("capacity > 0");
        let start = arrival.max(free);
        let end = start + service;
        self.free_times.push(Reverse(end));
        self.served += 1;
        self.busy_time += service;
        Grant { start, end }
    }

    /// Earliest instant any server becomes free.
    pub fn earliest_free(&self) -> SimTime {
        self.free_times.peek().map(|r| r.0).unwrap_or(SimTime::ZERO)
    }

    /// Number of servers in the pool.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Aggregate busy time across all servers.
    pub fn busy_time(&self) -> Duration {
        self.busy_time
    }
}

/// Sliding window of at most `k` concurrently in-flight operations.
///
/// Unlike [`MultiServer`], the window does not *serve* anything itself; the
/// caller obtains an admission time, computes the operation's completion via
/// other resources, then reports it back with [`Window::complete`].
#[derive(Debug, Clone)]
pub struct Window {
    inflight_ends: BinaryHeap<Reverse<SimTime>>,
    capacity: usize,
    admitted: u64,
    stall_time: Duration,
}

impl Window {
    /// Create a window admitting up to `capacity` concurrent operations.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "Window capacity must be positive");
        Window {
            inflight_ends: BinaryHeap::new(),
            capacity,
            admitted: 0,
            stall_time: Duration::ZERO,
        }
    }

    /// Replace the capacity (used when a tunable changes between runs).
    pub fn set_capacity(&mut self, capacity: usize) {
        assert!(capacity > 0, "Window capacity must be positive");
        self.capacity = capacity;
    }

    /// Earliest instant at or after `arrival` when a slot is available.
    /// Call [`Window::complete`] once the operation's end time is known.
    pub fn admit(&mut self, arrival: SimTime) -> SimTime {
        // Retire operations that finished before this arrival.
        while let Some(&Reverse(end)) = self.inflight_ends.peek() {
            if end <= arrival {
                self.inflight_ends.pop();
            } else {
                break;
            }
        }
        if self.inflight_ends.len() < self.capacity {
            self.admitted += 1;
            return arrival;
        }
        // Window full: wait for the earliest in-flight op to retire.
        let Reverse(first_end) = self.inflight_ends.pop().expect("window non-empty");
        self.stall_time += first_end.saturating_since(arrival);
        self.admitted += 1;
        first_end.max(arrival)
    }

    /// Record that an admitted operation completes at `end`.
    pub fn complete(&mut self, end: SimTime) {
        self.inflight_ends.push(Reverse(end));
    }

    /// Earliest completion among in-flight operations, if any.
    pub fn earliest_inflight_end(&self) -> Option<SimTime> {
        self.inflight_ends.peek().map(|r| r.0)
    }

    /// The instant all currently in-flight operations have completed.
    pub fn drain_time(&self) -> SimTime {
        self.inflight_ends
            .iter()
            .map(|r| r.0)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Number of admissions so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Cumulative time spent stalled waiting for a slot.
    pub fn stall_time(&self) -> Duration {
        self.stall_time
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// A bandwidth-limited FIFO channel (NIC port, disk stream).
///
/// Service time is `bytes / bandwidth + per_op_overhead`, serialised through a
/// [`FifoServer`], which yields exact head-of-line blocking under contention.
#[derive(Debug, Clone)]
pub struct BandwidthChannel {
    server: FifoServer,
    bytes_per_sec: f64,
    per_op_overhead: Duration,
    bytes_moved: u64,
}

impl BandwidthChannel {
    /// Create a channel with the given capacity and fixed per-operation cost.
    ///
    /// # Panics
    /// Panics if `bytes_per_sec` is not strictly positive and finite.
    pub fn new(bytes_per_sec: f64, per_op_overhead: Duration) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
            "bandwidth must be positive"
        );
        BandwidthChannel {
            server: FifoServer::new(),
            bytes_per_sec,
            per_op_overhead,
            bytes_moved: 0,
        }
    }

    /// Time to move `bytes` through an uncontended channel.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        self.per_op_overhead + Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }

    /// Schedule a transfer of `bytes` arriving at `arrival`.
    pub fn schedule(&mut self, arrival: SimTime, bytes: u64) -> Grant {
        let service = self.transfer_time(bytes);
        self.bytes_moved += bytes;
        self.server.schedule(arrival, service)
    }

    /// Total bytes moved through the channel.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Earliest instant a new transfer would begin.
    pub fn free_at(&self) -> SimTime {
        self.server.free_at()
    }

    /// Configured bandwidth in bytes per second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }
    fn d(s: u64) -> Duration {
        Duration::from_secs(s)
    }

    #[test]
    fn fifo_serialises_back_to_back() {
        let mut srv = FifoServer::new();
        let g1 = srv.schedule(t(0), d(2));
        let g2 = srv.schedule(t(1), d(2));
        assert_eq!(g1.end, t(2));
        assert_eq!(g2.start, t(2));
        assert_eq!(g2.end, t(4));
        assert_eq!(g2.wait(t(1)), d(1));
    }

    #[test]
    fn fifo_idle_gap_respected() {
        let mut srv = FifoServer::new();
        srv.schedule(t(0), d(1));
        let g = srv.schedule(t(10), d(1));
        assert_eq!(g.start, t(10));
        assert_eq!(g.end, t(11));
        assert_eq!(srv.served(), 2);
        assert_eq!(srv.busy_time(), d(2));
    }

    #[test]
    fn fifo_utilization() {
        let mut srv = FifoServer::new();
        srv.schedule(t(0), d(5));
        assert!((srv.utilization(t(10)) - 0.5).abs() < 1e-12);
        assert_eq!(srv.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn multiserver_overlaps_up_to_capacity() {
        let mut pool = MultiServer::new(2);
        let g1 = pool.schedule(t(0), d(4));
        let g2 = pool.schedule(t(0), d(4));
        let g3 = pool.schedule(t(0), d(4));
        assert_eq!(g1.start, t(0));
        assert_eq!(g2.start, t(0));
        // Third request queues behind the earliest completion.
        assert_eq!(g3.start, t(4));
        assert_eq!(g3.end, t(8));
    }

    #[test]
    fn multiserver_matches_fifo_when_capacity_is_one() {
        let mut pool = MultiServer::new(1);
        let mut srv = FifoServer::new();
        for i in 0..20u64 {
            let arr = SimTime::from_millis(i * 137 % 900);
            // Arrivals must be nondecreasing for calendar resources; sort them.
            let arr = arr.max(pool.earliest_free().min(arr));
            let service = Duration::from_millis(50 + i * 7);
            let a = pool.schedule(arr, service);
            let b = srv.schedule(arr, service);
            assert_eq!(a, b, "iteration {i}");
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn multiserver_zero_capacity_panics() {
        let _ = MultiServer::new(0);
    }

    #[test]
    fn window_admits_immediately_when_open() {
        let mut w = Window::new(2);
        assert_eq!(w.admit(t(0)), t(0));
        w.complete(t(5));
        assert_eq!(w.admit(t(1)), t(1));
        w.complete(t(6));
        // Window now full until t=5.
        assert_eq!(w.admit(t(2)), t(5));
        assert_eq!(w.stall_time(), d(3));
    }

    #[test]
    fn window_retires_finished_ops() {
        let mut w = Window::new(1);
        assert_eq!(w.admit(t(0)), t(0));
        w.complete(t(1));
        // Arrival after the in-flight op completed: no stall.
        assert_eq!(w.admit(t(2)), t(2));
        assert_eq!(w.stall_time(), Duration::ZERO);
    }

    #[test]
    fn window_drain_time() {
        let mut w = Window::new(4);
        w.admit(t(0));
        w.complete(t(3));
        w.admit(t(0));
        w.complete(t(7));
        assert_eq!(w.drain_time(), t(7));
        assert_eq!(w.earliest_inflight_end(), Some(t(3)));
    }

    #[test]
    fn bandwidth_channel_transfer_time() {
        let ch = BandwidthChannel::new(1_000_000.0, Duration::from_micros(10));
        let tt = ch.transfer_time(1_000_000);
        assert_eq!(tt, Duration::from_secs(1) + Duration::from_micros(10));
    }

    #[test]
    fn bandwidth_channel_contention_serialises() {
        let mut ch = BandwidthChannel::new(1_000.0, Duration::ZERO);
        let g1 = ch.schedule(t(0), 1_000); // 1s
        let g2 = ch.schedule(t(0), 1_000); // queues
        assert_eq!(g1.end, t(1));
        assert_eq!(g2.start, t(1));
        assert_eq!(g2.end, t(2));
        assert_eq!(ch.bytes_moved(), 2_000);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn bandwidth_zero_panics() {
        let _ = BandwidthChannel::new(0.0, Duration::ZERO);
    }
}
