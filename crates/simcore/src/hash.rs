//! Deterministic fast hashing for canonical-path maps.
//!
//! `std`'s default [`std::collections::HashMap`] hasher is SipHash keyed by a
//! per-process random seed ([`std::hash::RandomState`]). That design is both
//! slower than the simulator needs on its hot point-lookup maps (page-cache
//! chunks, disk stream cursors, per-(client, OST) state) and a standing
//! determinism hazard: any map *iteration* on a canonical path would vary
//! run-to-run (detlint rule D002 polices exactly this).
//!
//! [`FxBuildHasher`] replaces it with the Fx word hash (the
//! rotate-xor-multiply scheme rustc uses), with **no** per-process key: the
//! hash of a value is a pure function of its bytes, identical on every
//! platform and in every process. That makes it strictly *more* deterministic
//! than `RandomState` — not a relaxation of the canonical-stream contract —
//! while cutting per-lookup cost several-fold for the small integer-tuple
//! keys the engine uses.
//!
//! Maps on canonical paths must still never expose their iteration order
//! (hash order is deterministic now, but it is not a *meaningful* order and
//! would change if the hash function ever did). Keep declaring them with the
//! literal `HashMap` spelling — `HashMap<K, V, FxBuildHasher>` — so detlint's
//! D002 iteration tracking keeps seeing them:
//!
//! ```
//! use simcore::hash::FxBuildHasher;
//! use std::collections::HashMap;
//!
//! let mut m: HashMap<(u32, u64), u64, FxBuildHasher> = HashMap::default();
//! m.insert((3, 7), 42);
//! assert_eq!(m.get(&(3, 7)), Some(&42));
//! ```
//!
//! Not a cryptographic hash: keys here come from deterministic op streams,
//! never from untrusted input, so HashDoS resistance buys nothing.

use std::hash::{BuildHasher, Hasher};

/// Multiplier of the Fx word hash (shared with rustc's `FxHasher`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx word hasher: one rotate-xor-multiply per input word.
///
/// State is a single `u64` starting at 0; every written word (or 8-byte
/// chunk of a byte slice, zero-padded little-endian) is folded in with
/// `hash = (hash.rotl(5) ^ word) * SEED`. Fixed-key and platform-independent
/// by construction.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn write_i8(&mut self, i: i8) {
        self.add(i as u8 as u64);
    }

    #[inline]
    fn write_i16(&mut self, i: i16) {
        self.add(i as u16 as u64);
    }

    #[inline]
    fn write_i32(&mut self, i: i32) {
        self.add(i as u32 as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add(i as u64);
    }

    #[inline]
    fn write_isize(&mut self, i: isize) {
        self.add(i as usize as u64);
    }
}

/// [`BuildHasher`] producing [`FxHasher`]s with no per-process key.
///
/// Because it implements `Default`, maps parameterized over it can be built
/// with plain `HashMap::default()`:
///
/// ```
/// use simcore::hash::FxBuildHasher;
/// use std::collections::HashMap;
///
/// let mut chunks: HashMap<u64, bool, FxBuildHasher> = HashMap::default();
/// chunks.insert(9, true);
/// assert!(chunks[&9]);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn hash_of(write: impl Fn(&mut FxHasher)) -> u64 {
        let mut h = FxBuildHasher.build_hasher();
        write(&mut h);
        h.finish()
    }

    /// The digest is a pure function of the input: frozen values so any
    /// change to the hash function (which would reshuffle deterministic-but-
    /// meaningless map internals) fails loudly instead of silently.
    #[test]
    fn digests_are_frozen() {
        assert_eq!(hash_of(|h| h.write_u64(0)), 0);
        assert_eq!(
            hash_of(|h| h.write_u64(1)),
            0x51_7c_c1_b7_27_22_0a_95u64.wrapping_mul(1)
        );
        let a = hash_of(|h| {
            h.write_u32(7);
            h.write_u32(9);
        });
        let b = hash_of(|h| {
            h.write_u32(7);
            h.write_u32(9);
        });
        assert_eq!(a, b);
        assert_ne!(a, hash_of(|h| h.write_u32(7)));
    }

    #[test]
    fn byte_slices_chunk_little_endian() {
        // A write() of exactly 8 bytes equals one u64 word write.
        let via_bytes = hash_of(|h| h.write(&42u64.to_le_bytes()));
        let via_word = hash_of(|h| h.write_u64(42));
        assert_eq!(via_bytes, via_word);
        // Short tails are zero-padded, not dropped.
        assert_ne!(hash_of(|h| h.write(b"ab")), hash_of(|h| h.write(b"a")));
    }

    #[test]
    fn order_sensitivity() {
        let ab = hash_of(|h| {
            h.write_u64(1);
            h.write_u64(2);
        });
        let ba = hash_of(|h| {
            h.write_u64(2);
            h.write_u64(1);
        });
        assert_ne!(ab, ba);
    }

    #[test]
    fn usable_as_map_hasher_with_tuple_keys() {
        let mut m: HashMap<(u32, u64), &str, FxBuildHasher> = HashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i as u64 * 3), "v");
        }
        assert_eq!(m.len(), 1000);
        assert!(m.contains_key(&(999, 2997)));
        assert!(!m.contains_key(&(1000, 3000)));
    }
}
