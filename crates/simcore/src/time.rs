//! Virtual simulation time.
//!
//! Time is represented as integer nanoseconds in a [`SimTime`] newtype. Using
//! integers (rather than `f64` seconds) keeps event ordering exact and makes
//! simulations bit-reproducible regardless of summation order.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant; used as an "infinitely far" sentinel.
    pub const FAR_FUTURE: SimTime = SimTime(u64::MAX);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Fractional seconds (for reporting only — never used in event ordering).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Raw nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Saturating difference: `self - earlier`, zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000_000)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Construct from nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    /// Negative or non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return Duration::ZERO;
        }
        Duration((s * 1e9).round() as u64)
    }

    /// Fractional seconds (reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Raw nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Scale by a non-negative factor, rounding to the nearest nanosecond.
    /// Used for multiplicative service-time noise.
    pub fn scale(self, factor: f64) -> Duration {
        Duration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Saturating addition of two spans.
    pub fn saturating_add(self, other: Duration) -> Duration {
        Duration(self.0.saturating_add(other.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.checked_add(rhs.0).expect("Duration overflow"))
    }
}

impl AddAssign<Duration> for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(Duration::from_secs(1).as_secs_f64(), 1.0);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_secs(1) + Duration::from_millis(500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!((t - SimTime::from_secs(1)).as_nanos(), 500_000_000);
    }

    #[test]
    fn max_min() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn from_secs_f64_clamps_bad_input() {
        assert_eq!(Duration::from_secs_f64(-1.0), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::NAN), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::INFINITY), Duration::ZERO);
    }

    #[test]
    fn scale_rounds() {
        let d = Duration::from_nanos(1000);
        assert_eq!(d.scale(1.5).as_nanos(), 1500);
        assert_eq!(d.scale(0.0), Duration::ZERO);
    }

    #[test]
    fn saturating_since() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.saturating_since(a), Duration::from_secs(1));
        assert_eq!(a.saturating_since(b), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }
}
