//! Property-based tests for the kernel primitives: the queueing-theory
//! invariants every downstream model depends on.

#![cfg(test)]

use crate::resources::{BandwidthChannel, FifoServer, MultiServer, Window};
use crate::stats::{Accumulator, Histogram};
use crate::time::{Duration, SimTime};
use crate::EventQueue;
use proptest::prelude::*;

fn arrivals() -> impl Strategy<Value = Vec<(u64, u64)>> {
    // (inter-arrival gap ns, service ns) pairs; gaps accumulate so arrival
    // times are nondecreasing, as the engine guarantees.
    proptest::collection::vec((0u64..5_000_000, 1u64..2_000_000), 1..60)
}

proptest! {
    /// FIFO: service intervals never overlap, never reorder, and each
    /// request starts no earlier than its arrival.
    #[test]
    fn fifo_is_work_conserving_and_ordered(reqs in arrivals()) {
        let mut srv = FifoServer::new();
        let mut t = 0u64;
        let mut last_end = SimTime::ZERO;
        let mut busy_sum = Duration::ZERO;
        for (gap, svc) in reqs {
            t += gap;
            let arrival = SimTime::from_nanos(t);
            let service = Duration::from_nanos(svc);
            let g = srv.schedule(arrival, service);
            prop_assert!(g.start >= arrival);
            prop_assert!(g.start >= last_end, "service overlap");
            prop_assert_eq!((g.end - g.start).as_nanos(), svc);
            last_end = g.end;
            busy_sum += service;
        }
        prop_assert_eq!(srv.busy_time(), busy_sum);
        // Utilisation can never exceed 1 over the horizon that includes all
        // service.
        prop_assert!(srv.utilization(last_end) <= 1.0 + 1e-12);
    }

    /// MultiServer with capacity k: at any instant at most k requests are in
    /// service, and its makespan is never worse than a single FIFO's.
    #[test]
    fn multiserver_respects_capacity(reqs in arrivals(), k in 1usize..6) {
        let mut pool = MultiServer::new(k);
        let mut fifo = FifoServer::new();
        let mut t = 0u64;
        let mut intervals: Vec<(u64, u64)> = Vec::new();
        let mut pool_makespan = SimTime::ZERO;
        let mut fifo_makespan = SimTime::ZERO;
        for (gap, svc) in reqs {
            t += gap;
            let arrival = SimTime::from_nanos(t);
            let service = Duration::from_nanos(svc);
            let g = pool.schedule(arrival, service);
            prop_assert!(g.start >= arrival);
            intervals.push((g.start.as_nanos(), g.end.as_nanos()));
            pool_makespan = pool_makespan.max(g.end);
            fifo_makespan = fifo_makespan.max(fifo.schedule(arrival, service).end);
        }
        // Concurrency check: for each interval start, count overlapping.
        for &(s, _) in &intervals {
            let overlapping = intervals
                .iter()
                .filter(|&&(a, b)| a <= s && s < b)
                .count();
            prop_assert!(overlapping <= k, "{overlapping} > {k} concurrent");
        }
        prop_assert!(pool_makespan <= fifo_makespan);
    }

    /// Window: admissions never exceed capacity concurrently (when completes
    /// are reported faithfully), and admission time is never before arrival.
    #[test]
    fn window_caps_concurrency(reqs in arrivals(), k in 1usize..8) {
        let mut w = Window::new(k);
        let mut t = 0u64;
        let mut inflight: Vec<(u64, u64)> = Vec::new(); // (admit, end)
        for (gap, svc) in reqs {
            t += gap;
            let arrival = SimTime::from_nanos(t);
            let admit = w.admit(arrival);
            prop_assert!(admit >= arrival);
            let end = admit + Duration::from_nanos(svc);
            w.complete(end);
            inflight.push((admit.as_nanos(), end.as_nanos()));
        }
        for &(s, _) in &inflight {
            let concurrent = inflight
                .iter()
                .filter(|&&(a, b)| a <= s && s < b)
                .count();
            prop_assert!(concurrent <= k, "{concurrent} > {k}");
        }
    }

    /// Bandwidth channel: total busy time equals bytes/bandwidth plus
    /// per-op overhead, independent of arrival pattern.
    #[test]
    fn bandwidth_conserves_service(reqs in arrivals()) {
        let bw = 1e9;
        let overhead_ns = 1000u64;
        let mut ch = BandwidthChannel::new(bw, Duration::from_nanos(overhead_ns));
        let mut t = 0u64;
        let mut expected = 0.0f64;
        for (gap, bytes) in &reqs {
            t += gap;
            ch.schedule(SimTime::from_nanos(t), *bytes);
            expected += *bytes as f64 / bw + overhead_ns as f64 * 1e-9;
        }
        let total: u64 = reqs.iter().map(|(_, b)| *b).sum();
        prop_assert_eq!(ch.bytes_moved(), total);
        prop_assert!(ch.free_at().as_secs_f64() >= expected - 1e-9);
    }

    /// EventQueue: pops are globally sorted by (time, insertion order).
    #[test]
    fn event_queue_total_order(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last = (SimTime::ZERO, 0usize);
        let mut popped = 0;
        while let Some((t, i)) = q.pop() {
            if t == last.0 {
                prop_assert!(i > last.1 || popped == 0, "FIFO tie-break violated");
            } else {
                prop_assert!(t > last.0);
            }
            last = (t, i);
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Accumulator merge is order-insensitive and matches sequential feed.
    #[test]
    fn accumulator_merge_associative(xs in proptest::collection::vec(-1e6f64..1e6, 2..100), split in 1usize..99) {
        let split = split.min(xs.len() - 1);
        let mut whole = Accumulator::new();
        for &x in &xs { whole.add(x); }
        let mut a = Accumulator::new();
        let mut b = Accumulator::new();
        for &x in &xs[..split] { a.add(x); }
        for &x in &xs[split..] { b.add(x); }
        let mut ab = a.clone(); ab.merge(&b);
        let mut ba = b.clone(); ba.merge(&a);
        prop_assert!((ab.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((ba.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((ab.variance() - whole.variance()).abs() < 1e-3);
        prop_assert_eq!(ab.count(), whole.count());
        prop_assert_eq!(ab.min(), whole.min());
        prop_assert_eq!(ab.max(), whole.max());
    }

    /// Histogram counts and sums are conserved under merge.
    #[test]
    fn histogram_merge_conserves(xs in proptest::collection::vec(0u64..1_000_000_000, 1..100), split in 1usize..99) {
        let split = split.min(xs.len());
        let mut whole = Histogram::new();
        for &x in &xs { whole.add(x); }
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for &x in &xs[..split] { a.add(x); }
        for &x in &xs[split..] { b.add(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert_eq!(a.sum(), whole.sum());
        prop_assert_eq!(a.modal_bin_floor(), whole.modal_bin_floor());
    }

    /// RNG streams with the same seed agree; derived streams are stable.
    #[test]
    fn rng_reproducibility(seed in 0u64..u64::MAX, label in "[a-z]{1,12}", idx in 0u64..1000) {
        let a = crate::SimRng::new(seed);
        let b = crate::SimRng::new(seed);
        let mut da = a.derive(&label, idx);
        let mut db = b.derive(&label, idx);
        for _ in 0..8 {
            prop_assert_eq!(da.unit().to_bits(), db.unit().to_bits());
        }
    }
}
