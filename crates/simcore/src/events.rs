//! Deterministic timestamped event queue.
//!
//! A thin wrapper over `BinaryHeap` that pops events in nondecreasing time
//! order and breaks ties by insertion sequence number, so two events scheduled
//! for the same instant always pop in the order they were pushed. This is the
//! property that makes the PFS engine's rank interleaving reproducible.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue of `(SimTime, E)` pairs with deterministic FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    last_popped: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Create an empty queue with room for `n` pending events.
    ///
    /// The PFS engine keeps at most one in-flight event per rank, so sizing
    /// the queue to the rank count up front means the steady-state push/pop
    /// cycle of the simulation loop never reallocates the heap.
    pub fn with_capacity(n: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(n),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Remove all pending events and rewind the clock to [`SimTime::ZERO`],
    /// keeping the heap's allocation so the queue can be reused for another
    /// run without reallocating.
    ///
    /// The sequence counter restarts too: a cleared queue breaks
    /// `(time, seq)` ties in exactly the order a fresh queue would.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
        self.last_popped = SimTime::ZERO;
    }

    /// Number of pending events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Schedule `event` at `time`.
    ///
    /// # Panics
    /// In debug builds, panics if `time` is earlier than the last popped event
    /// (scheduling into the past breaks causality).
    pub fn push(&mut self, time: SimTime, event: E) {
        debug_assert!(
            time >= self.last_popped,
            "event scheduled into the past: {time} < {}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.last_popped = entry.time;
        Some((entry.time, entry.event))
    }

    /// Pop *every* event sharing the earliest pending timestamp, appending
    /// them to `out` in FIFO sequence order, and return that timestamp.
    /// Returns `None` (and leaves `out` untouched) when the queue is empty.
    ///
    /// This is the batch form of [`pop`](Self::pop) for simulation loops that
    /// process events one virtual instant at a time. It is observationally
    /// identical to calling `pop` in a loop while the head's time equals the
    /// first popped time, under one condition the debug-build push assertion
    /// already enforces: events pushed *while processing* the batch are
    /// scheduled at or after the batch's timestamp, and any pushed exactly at
    /// it carry a later sequence number than every drained member — so they
    /// pop in a subsequent drain of the same instant, exactly where the
    /// one-at-a-time loop would deliver them.
    ///
    /// The caller owns `out`'s lifecycle (typically `clear()` + reuse across
    /// iterations), so the steady-state loop does no per-instant allocation.
    ///
    /// ```
    /// use simcore::{EventQueue, SimTime};
    ///
    /// let mut q = EventQueue::new();
    /// let t = SimTime::from_secs(1);
    /// q.push(t, "a");
    /// q.push(SimTime::from_secs(2), "later");
    /// q.push(t, "b");
    ///
    /// let mut batch = Vec::new();
    /// assert_eq!(q.pop_run_into(&mut batch), Some(t));
    /// assert_eq!(batch, vec!["a", "b"]); // FIFO within the instant
    /// assert_eq!(q.len(), 1); // "later" stays queued
    /// ```
    pub fn pop_run_into(&mut self, out: &mut Vec<E>) -> Option<SimTime> {
        let first = self.heap.peek()?.time;
        self.last_popped = first;
        while let Some(head) = self.heap.peek() {
            if head.time != first {
                break;
            }
            let entry = self.heap.pop().expect("peeked entry must pop");
            out.push(entry.event);
        }
        Some(first)
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Virtual time of the most recently popped event.
    pub fn now(&self) -> SimTime {
        self.last_popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), 1u32);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime::from_secs(5), 5);
        q.push(SimTime::from_secs(2), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        q.push(q.now() + Duration::from_secs(1), 3);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 5);
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    /// Regression pin for the heap-reuse change: `(time, seq)` ties pop in
    /// insertion order through interleaved pushes/pops, a `clear()`, and a
    /// pre-sized queue — the exact property the PFS engine's rank
    /// interleaving depends on.
    #[test]
    fn tie_order_survives_reuse_and_presizing() {
        let mut q = EventQueue::with_capacity(8);
        assert!(q.capacity() >= 8);
        let t = SimTime::from_secs(1);
        q.push(t, 10u32);
        q.push(t, 11);
        assert_eq!(q.pop().unwrap().1, 10);
        q.push(t, 12); // later seq than the pending 11
        assert_eq!(q.pop().unwrap().1, 11);
        assert_eq!(q.pop().unwrap().1, 12);

        // A cleared queue replays ties exactly like a fresh one.
        q.clear();
        assert_eq!(q.now(), SimTime::ZERO);
        let mut fresh = EventQueue::new();
        for (queue, tag) in [(&mut q, "reused"), (&mut fresh, "fresh")] {
            queue.push(t, 2u32);
            queue.push(SimTime::from_secs(2), 4);
            queue.push(t, 3);
            let popped: Vec<u32> = std::iter::from_fn(|| queue.pop().map(|(_, e)| e)).collect();
            assert_eq!(popped, vec![2, 3, 4], "{tag}");
        }

        // Reuse kept the allocation.
        assert!(q.capacity() >= 8);
    }

    /// Regression pin for batched draining: `pop_run_into` must deliver the
    /// exact sequence the one-at-a-time `pop` loop would, including events
    /// pushed *at the drained instant* while the batch is being processed
    /// (they land in a later drain of the same instant, after every member of
    /// the current batch).
    #[test]
    fn batched_drain_matches_serial_pop_order() {
        // Scenario: ranks 0..4 ready at t=1s; processing rank i schedules a
        // follow-up — even ranks at the same instant, odd ranks 1s later.
        let build = || {
            let mut q = EventQueue::new();
            for i in 0..4u32 {
                q.push(SimTime::from_secs(1), i);
            }
            q
        };
        let follow_up = |q: &mut EventQueue<u32>, now: SimTime, ev: u32| {
            if ev < 4 {
                let (delay, tag) = if ev % 2 == 0 {
                    (Duration::ZERO, 10 + ev)
                } else {
                    (Duration::from_secs(1), 20 + ev)
                };
                q.push(now + delay, tag);
            }
        };

        let mut serial = Vec::new();
        let mut q = build();
        while let Some((now, ev)) = q.pop() {
            serial.push((now, ev));
            follow_up(&mut q, now, ev);
        }

        let mut batched = Vec::new();
        let mut q = build();
        let mut batch = Vec::new();
        while let Some(now) = q.pop_run_into(&mut batch) {
            for ev in batch.drain(..) {
                batched.push((now, ev));
                follow_up(&mut q, now, ev);
            }
        }

        assert_eq!(serial, batched);
        // Sanity: same-instant follow-ups really did run at t=1s after the
        // whole original batch, and delayed ones at t=2s.
        let t1: Vec<u32> = serial
            .iter()
            .filter(|(t, _)| *t == SimTime::from_secs(1))
            .map(|&(_, e)| e)
            .collect();
        assert_eq!(t1, vec![0, 1, 2, 3, 10, 12]);
    }

    #[test]
    fn pop_run_into_on_empty_queue_is_none() {
        let mut q: EventQueue<u8> = EventQueue::new();
        let mut batch = vec![7u8]; // pre-existing contents must survive
        assert_eq!(q.pop_run_into(&mut batch), None);
        assert_eq!(batch, vec![7]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scheduled into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2), ());
        q.pop();
        q.push(SimTime::from_secs(1), ());
    }
}
