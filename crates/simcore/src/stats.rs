//! Online statistics for the measurement harness.
//!
//! The paper's protocol (§5.1) reports the mean of eight replications with a
//! 90% confidence interval; [`Accumulator`] implements Welford's online
//! mean/variance plus a small-sample t-based CI. [`Histogram`] provides the
//! log2-binned size distributions the Darshan tables and I/O reports use.

use serde::{Deserialize, Serialize};

/// Welford online mean/variance accumulator.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

/// Two-sided t critical values at 90% confidence for df = 1..=30.
/// (df > 30 falls back to the normal approximation 1.645.)
const T90: [f64; 30] = [
    6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812, 1.796, 1.782, 1.771,
    1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706,
    1.703, 1.701, 1.699, 1.697,
];

impl Accumulator {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n-1 denominator; 0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (NaN-free input assumed; +inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (-inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Half-width of the two-sided 90% confidence interval of the mean.
    /// Zero for fewer than two observations.
    pub fn ci90_half_width(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let df = (self.n - 1) as usize;
        let t = if df <= 30 { T90[df - 1] } else { 1.645 };
        t * self.std_dev() / (self.n as f64).sqrt()
    }

    /// `(mean, ci90_half_width)` convenience pair.
    pub fn mean_ci90(&self) -> (f64, f64) {
        (self.mean(), self.ci90_half_width())
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Accumulator) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A retained sample set with amortized single-sort percentile queries.
///
/// [`Accumulator`] is streaming but cannot answer order statistics;
/// `Samples` keeps the observations and sorts them **once**, lazily, when
/// the first percentile is queried after a mutation — instead of the
/// clone-and-sort-per-query pattern reporting code otherwise falls into.
/// Repeated queries between mutations are O(1). Used by the campaign
/// scheduler's `sched_stats` to summarize per-cell wall-time distributions.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    data: Vec<f64>,
    /// How many of the leading entries of `data` are already sorted.
    sorted_len: usize,
}

impl Samples {
    /// Create an empty sample set.
    pub fn new() -> Self {
        Samples::default()
    }

    /// Create an empty sample set with room for `n` observations.
    pub fn with_capacity(n: usize) -> Self {
        Samples {
            data: Vec::with_capacity(n),
            sorted_len: 0,
        }
    }

    /// Record one observation.
    ///
    /// NaN is rejected with a debug assertion — a NaN (e.g. a 0/0
    /// utilization feeding telemetry) carries no order information, so it
    /// can only corrupt percentile queries. In release builds, where the
    /// assertion is compiled out, a slipped-through NaN still cannot
    /// poison the sort: ordering uses [`f64::total_cmp`], which places
    /// NaN deterministically at the extremes instead of making the
    /// comparator panic or the sort order undefined.
    pub fn add(&mut self, x: f64) {
        debug_assert!(!x.is_nan(), "NaN observation pushed into Samples");
        self.data.push(x);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The observations in insertion order — only valid before the first
    /// percentile query (which reorders in place rather than cloning).
    pub fn raw(&self) -> &[f64] {
        &self.data
    }

    fn ensure_sorted(&mut self) {
        if self.sorted_len < self.data.len() {
            // Total order, not partial: never panics, and any NaN that
            // reached a release build sorts to the ends deterministically
            // rather than leaving the order (and every later percentile)
            // undefined.
            self.data.sort_unstable_by(f64::total_cmp);
            self.sorted_len = self.data.len();
        }
    }

    /// The `p`-th percentile (`0.0..=100.0`) with linear interpolation
    /// between order statistics; 0 when empty. Sorts at most once per
    /// batch of mutations.
    pub fn percentile(&mut self, p: f64) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let rank = (p.clamp(0.0, 100.0) / 100.0) * (self.data.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.data[lo] * (1.0 - frac) + self.data[hi] * frac
    }

    /// The median (50th percentile).
    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Largest observation (0 when empty).
    pub fn max(&mut self) -> f64 {
        self.percentile(100.0)
    }
}

/// Log2-binned histogram of non-negative integer values (sizes, latencies).
///
/// Bin `i` counts values in `[2^i, 2^(i+1))`; bin 0 also includes 0.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    bins: Vec<u64>,
    total: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create an empty histogram covering the full u64 range (64 bins).
    pub fn new() -> Self {
        Histogram {
            bins: vec![0; 64],
            total: 0,
            sum: 0,
        }
    }

    /// Record one value.
    pub fn add(&mut self, value: u64) {
        let bin = if value <= 1 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        self.bins[bin] += 1;
        self.total += 1;
        self.sum += value as u128;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Count in the bin containing `value`.
    pub fn count_at(&self, value: u64) -> u64 {
        let bin = if value <= 1 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        self.bins[bin]
    }

    /// Lower bound of the most populated bin (the modal size class).
    pub fn modal_bin_floor(&self) -> u64 {
        let (idx, _) = self
            .bins
            .iter()
            .enumerate()
            .max_by_key(|&(i, c)| (*c, std::cmp::Reverse(i)))
            .expect("64 bins");
        if idx == 0 {
            0
        } else {
            1u64 << idx
        }
    }

    /// Fraction of values strictly below `threshold`.
    pub fn fraction_below(&self, threshold: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        // Conservative: whole bins below the threshold's bin, since exact
        // values within a bin are not retained.
        let tbin = if threshold <= 1 {
            0
        } else {
            63 - threshold.leading_zeros() as usize
        };
        let below: u64 = self.bins[..tbin].iter().sum();
        below as f64 / self.total as f64
    }

    /// Iterate `(bin_floor, count)` over non-empty bins.
    pub fn non_empty_bins(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_basic_moments() {
        let mut a = Accumulator::new();
        for &x in &[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            a.add(x);
        }
        assert_eq!(a.count(), 8);
        assert!((a.mean() - 5.0).abs() < 1e-12);
        // Sample variance of that classic set is 32/7.
        assert!((a.variance() - 32.0 / 7.0).abs() < 1e-9);
        assert_eq!(a.min(), 2.0);
        assert_eq!(a.max(), 9.0);
    }

    #[test]
    fn ci90_matches_hand_computation() {
        let mut a = Accumulator::new();
        for &x in &[10.0, 12.0, 11.0, 13.0, 10.0, 12.0, 11.0, 13.0] {
            a.add(x);
        }
        // df = 7 -> t = 1.895
        let expected = 1.895 * a.std_dev() / (8f64).sqrt();
        assert!((a.ci90_half_width() - expected).abs() < 1e-12);
    }

    #[test]
    fn ci_zero_for_tiny_samples() {
        let mut a = Accumulator::new();
        assert_eq!(a.ci90_half_width(), 0.0);
        a.add(1.0);
        assert_eq!(a.ci90_half_width(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 % 11.0).collect();
        let mut whole = Accumulator::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut left = Accumulator::new();
        let mut right = Accumulator::new();
        for &x in &xs[..37] {
            left.add(x);
        }
        for &x in &xs[37..] {
            right.add(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty() {
        let mut a = Accumulator::new();
        a.add(5.0);
        let b = Accumulator::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = Accumulator::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 5.0);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new();
        h.add(0);
        h.add(1);
        h.add(2);
        h.add(3);
        h.add(65536);
        assert_eq!(h.count(), 5);
        assert_eq!(h.count_at(0), 2); // 0 and 1 share bin 0
        assert_eq!(h.count_at(2), 2); // 2 and 3 in [2,4)
        assert_eq!(h.count_at(65536), 1);
        assert_eq!(h.sum(), 65542);
    }

    #[test]
    fn histogram_modal_and_fraction() {
        let mut h = Histogram::new();
        for _ in 0..10 {
            h.add(2048); // bin [2048,4096)
        }
        for _ in 0..3 {
            h.add(1 << 20);
        }
        assert_eq!(h.modal_bin_floor(), 2048);
        assert!((h.fraction_below(1 << 20) - 10.0 / 13.0).abs() < 1e-12);
        assert_eq!(h.fraction_below(1), 0.0);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.add(10);
        b.add(10);
        b.add(1000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.count_at(10), 2);
        assert_eq!(a.count_at(1000), 1);
    }

    #[test]
    fn samples_percentiles_interpolate() {
        let mut s = Samples::with_capacity(4);
        assert_eq!(s.percentile(50.0), 0.0);
        // Insert unsorted; queries must see sorted order.
        for x in [4.0, 1.0, 3.0, 2.0] {
            s.add(x);
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.median(), 2.5);
        assert_eq!(s.percentile(100.0), 4.0);
        assert!((s.percentile(25.0) - 1.75).abs() < 1e-12);
        assert_eq!(s.sum(), 10.0);
    }

    #[test]
    fn samples_resort_after_mutation() {
        let mut s = Samples::new();
        s.add(10.0);
        assert_eq!(s.median(), 10.0);
        // A later, smaller observation must be seen by later queries.
        s.add(0.0);
        assert_eq!(s.median(), 5.0);
        assert_eq!(s.max(), 10.0);
        assert!(!s.is_empty());
        assert_eq!(s.raw().len(), 2);
    }

    /// Regression: a NaN observation is caught at the door in debug
    /// builds instead of silently poisoning later percentile queries.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "NaN observation")]
    fn samples_reject_nan_observations() {
        let mut s = Samples::new();
        s.add(f64::NAN);
    }

    /// Regression (release semantics): if a NaN slips into a build
    /// without debug assertions, sorting must neither panic (the old
    /// `partial_cmp(..).expect` did) nor scramble the real observations —
    /// `total_cmp` sends NaN to the ends and every interior percentile
    /// stays correct.
    #[test]
    #[cfg(not(debug_assertions))]
    fn samples_survive_nan_in_release() {
        let mut s = Samples::new();
        for x in [2.0, f64::NAN, 1.0, 3.0] {
            s.add(x);
        }
        assert_eq!(s.percentile(0.0), 1.0);
        // Positive NaN sorts after every number under total_cmp, so the
        // interior order statistics see [1, 2, 3, NaN].
        assert_eq!(s.median(), 2.5);
        assert!(s.max().is_nan());
    }

    /// `total_cmp` is bit-exact about signed zero: -0.0 sorts before 0.0.
    #[test]
    fn samples_order_signed_zeros_totally() {
        let mut s = Samples::new();
        s.add(0.0);
        s.add(-0.0);
        assert_eq!(s.percentile(0.0).to_bits(), (-0.0f64).to_bits());
        assert_eq!(s.percentile(100.0).to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn histogram_mean() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        h.add(4);
        h.add(8);
        assert_eq!(h.mean(), 6.0);
    }
}
