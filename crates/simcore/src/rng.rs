//! Deterministic randomness for simulations.
//!
//! All stochastic elements (service-time jitter, run-to-run noise, tie-break
//! perturbations) draw from a [`SimRng`], a seeded ChaCha8 stream. ChaCha is
//! used because its output is fully specified and stable across platforms —
//! a requirement for reproducible experiments. The cipher core is
//! implemented in [`crate::chacha`] (the build environment is offline, so
//! `rand_chacha` cannot be fetched); stream values are pinned by tests
//! below so any accidental change to the generator is caught.

use crate::chacha::ChaCha8;

/// Seeded simulation RNG with the distributions the PFS model needs.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha8,
}

impl SimRng {
    /// Create an RNG from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: ChaCha8::seed_from_u64(seed),
        }
    }

    /// Derive an independent child stream, keyed by `label` and `index`.
    ///
    /// Children are independent of the parent's future output, so adding a
    /// consumer never perturbs existing streams (the "seed hygiene" rule).
    pub fn derive(&self, label: &str, index: u64) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^= index;
        h = h.wrapping_mul(0x1000_0000_01b3);
        let base = self.inner.get_seed();
        let mut seed_word = u64::from_le_bytes(base[..8].try_into().expect("seed >= 8 bytes"));
        seed_word ^= h;
        SimRng::new(seed_word)
    }

    /// Uniform in `[0, 1)` (53-bit precision, the standard conversion).
    pub fn unit(&mut self) -> f64 {
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`. Returns `lo` when the interval is empty.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.unit()
    }

    /// Uniform integer in `[0, n)`. Returns 0 when `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        // Multiply-shift mapping (Lemire); bias is < 2^-64 * n, irrelevant
        // for the n <= dozens this simulator draws.
        let v = self.inner.next_u64() as u128;
        ((v * n as u128) >> 64) as usize
    }

    /// Bernoulli draw with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.unit() < p
    }

    /// Standard normal via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid log(0).
        let u1 = (1.0 - self.unit()).max(f64::MIN_POSITIVE);
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Lognormal multiplicative noise factor with unit median and the given
    /// `sigma` (σ of the underlying normal). `sigma <= 0` returns exactly 1.
    pub fn lognormal_factor(&mut self, sigma: f64) -> f64 {
        if sigma <= 0.0 {
            return 1.0;
        }
        (sigma * self.standard_normal()).exp()
    }

    /// Exponential with the given mean. `mean <= 0` returns 0.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        let u = (1.0 - self.unit()).max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }
}

/// Stable 64-bit FNV-1a hash of a string — used to key seeds off experiment
/// and workload names without depending on `DefaultHasher`'s unstable output.
pub fn stable_hash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Combine two hashes/seeds into one (order-sensitive).
pub fn combine(a: u64, b: u64) -> u64 {
    a ^ b
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .rotate_left(23)
        .wrapping_add(0x2545_f491_4f6c_dd1d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.unit().to_bits(), b.unit().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.unit() == b.unit()).count();
        assert!(same < 4);
    }

    #[test]
    fn derive_is_deterministic_and_distinct() {
        let root = SimRng::new(7);
        let mut c1 = root.derive("disk", 0);
        let mut c1b = root.derive("disk", 0);
        let mut c2 = root.derive("disk", 1);
        let mut c3 = root.derive("net", 0);
        assert_eq!(c1.unit().to_bits(), c1b.unit().to_bits());
        assert_ne!(c1.unit().to_bits(), c2.unit().to_bits());
        assert_ne!(c2.unit().to_bits(), c3.unit().to_bits());
    }

    #[test]
    fn unit_in_range() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let v = r.unit();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = SimRng::new(4);
        for _ in 0..1000 {
            let v = r.uniform(2.0, 5.0);
            assert!((2.0..5.0).contains(&v));
        }
        assert_eq!(r.uniform(5.0, 2.0), 5.0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn lognormal_centred_near_one() {
        let mut r = SimRng::new(6);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.lognormal_factor(0.05)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        assert_eq!(r.lognormal_factor(0.0), 1.0);
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::new(8);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert_eq!(r.exponential(0.0), 0.0);
    }

    #[test]
    fn stable_hash_is_stable() {
        // Pinned value: guards against accidental algorithm changes that would
        // silently reshuffle every experiment seed.
        assert_eq!(stable_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(stable_hash("IOR_16M"), stable_hash("IOR_16M"));
        assert_ne!(stable_hash("IOR_16M"), stable_hash("IOR_64K"));
    }

    #[test]
    fn combine_order_sensitive() {
        assert_ne!(combine(1, 2), combine(2, 1));
    }

    #[test]
    fn index_bounds() {
        let mut r = SimRng::new(9);
        assert_eq!(r.index(0), 0);
        for _ in 0..1000 {
            assert!(r.index(7) < 7);
        }
    }
}
