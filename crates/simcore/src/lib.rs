//! # simcore — discrete-event simulation kernel
//!
//! Foundation substrate for the STELLAR reproduction. The parallel-file-system
//! model in the `pfs` crate is built on the primitives defined here:
//!
//! * [`time::SimTime`] — virtual time as integer nanoseconds, total-ordered and
//!   overflow-checked in debug builds.
//! * [`events::EventQueue`] — a deterministic priority queue of timestamped
//!   events with FIFO tie-breaking.
//! * [`resources`] — queueing-theory building blocks (single/multi-server FIFO
//!   queues, bandwidth channels, sliding windows) expressed as *calendar*
//!   resources: each request is scheduled analytically against the resource's
//!   busy calendar, which keeps the simulation fast (no per-byte events) while
//!   preserving FIFO ordering and capacity limits exactly.
//! * [`rng::SimRng`] — seeded, reproducible randomness (ChaCha8) with the
//!   distributions the PFS model needs (lognormal service-time noise,
//!   exponentials, bounded uniforms).
//! * [`stats`] — online mean/variance accumulators, confidence intervals and
//!   log2 histograms used by the measurement harness.
//!
//! The kernel makes one global guarantee that everything downstream relies on:
//! **given the same seed and the same inputs, a simulation is bit-for-bit
//! reproducible** on every platform.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod chacha;
pub mod events;
pub mod hash;
pub mod resources;
pub mod rng;
pub mod stats;
pub mod time;

pub use events::EventQueue;
pub use rng::SimRng;
pub use time::SimTime;

#[cfg(test)]
mod proptests;
