//! `stellar-tune` argument validation: an empty or malformed grid — and
//! any malformed numeric flag — is a friendly usage error (exit code 2,
//! diagnostic on stderr), never a panic. Each case exits during argument
//! validation, before any tuning work starts, so these stay cheap.

use std::process::Command;

fn run(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_stellar-tune"))
        .args(args)
        .output()
        .expect("stellar-tune spawns");
    let code = out.status.code().expect("exits, not killed by signal");
    (code, String::from_utf8_lossy(&out.stderr).into_owned())
}

#[test]
fn empty_campaign_grid_is_a_usage_error() {
    // Only separators: every segment is empty, so the grid has no cells.
    let (code, stderr) = run(&["campaign", ","]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("empty workload list"), "{stderr}");
}

#[test]
fn missing_campaign_grid_is_a_usage_error() {
    let (code, stderr) = run(&["campaign"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("missing workload list"), "{stderr}");
}

#[test]
fn unknown_workload_is_a_usage_error() {
    let (code, stderr) = run(&["campaign", "NOPE_1M"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("unknown workload"), "{stderr}");
}

#[test]
fn empty_seed_list_is_a_usage_error() {
    let (code, stderr) = run(&["campaign", "IOR_16M", "--seeds", ","]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("no valid seeds"), "{stderr}");
}

#[test]
fn malformed_seed_is_a_usage_error() {
    let (code, stderr) = run(&["campaign", "IOR_16M", "--seeds", "1,x"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("bad seed `x`"), "{stderr}");
}

#[test]
fn malformed_numeric_flags_are_usage_errors() {
    for args in [
        &["tune", "IOR_16M", "--scale", "tiny"][..],
        &["tune", "IOR_16M", "--seed", "forty-two"][..],
        &["tune", "IOR_16M", "--attempts", "many"][..],
        &["campaign", "IOR_16M", "--scale", "tiny"][..],
        &["campaign", "IOR_16M", "--threads", "all"][..],
    ] {
        let (code, stderr) = run(args);
        assert_eq!(code, 2, "{args:?}: {stderr}");
        assert!(stderr.contains("bad "), "{args:?}: {stderr}");
    }
}

#[test]
fn malformed_failure_flags_are_usage_errors() {
    let (code, stderr) = run(&["tune", "IOR_16M", "--inject-failures", "x"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("bad --inject-failures"), "{stderr}");
    // A zero-attempt retry budget can never submit a call.
    let (code, stderr) = run(&["tune", "IOR_16M", "--retry", "0"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("bad --retry"), "{stderr}");
}

#[test]
fn unreadable_resume_record_is_a_usage_error() {
    let (code, stderr) = run(&[
        "campaign",
        "IOR_16M",
        "--scale",
        "0.05",
        "--resume",
        "/nonexistent/record.jsonl",
    ]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("bad run record"), "{stderr}");
}
