//! Campaigns: workload × seed grids over one engine.
//!
//! A [`Campaign`] runs a full grid of tuning runs — every configured
//! workload at every configured seed — with deterministic parallel
//! execution and shared rule-set accumulation, aggregating into a
//! [`CampaignReport`]. This is the substrate behind the paper's Fig. 6/7
//! rule-set sweeps and the multi-workload serving path on the roadmap.
//!
//! ## Determinism
//!
//! Per-cell seeds are derived with [`simcore::rng::combine`] from the
//! grid seed, the workload name and the cell's position, so a cell's
//! noise stream is independent of which thread executes it (the fully
//! derived seed bypasses the engine's `SeedPolicy`). Rule sharing
//! is round-structured (see [`RuleMode`]): within a round every cell reads
//! the *same* starting snapshot, and learned rules merge in grid order
//! after the round. [`Campaign::run`] (parallel) and
//! [`Campaign::run_serial`] therefore produce identical reports — asserted
//! by the `campaign_determinism` integration test.
//!
//! ## Rule storage
//!
//! Accumulated rules live in a [`ShardedRuleStore`] keyed by context-tag
//! signature and the engine's topology bucket. Round snapshots are O(1)
//! [`RuleSnapshot`]s — warm rounds no longer clone the whole rule set per
//! cell, so campaign cost stays flat as the store grows (see the
//! `rule_store` bench). Round merges touch only the shards the learned
//! rules land in, and merge order stays the grid order, keeping
//! serial == parallel.
//!
//! ## Scheduling
//!
//! Within a parallel round, workers claim cells in the order planned by
//! [`crate::sched`] — longest-processing-time-first over a cost model
//! seeded from each workload's `CostHint` and refined with measured wall
//! times after every round ([`Schedule::Adaptive`], the default).
//! Reordering never changes results (cells are independent and results
//! collect into grid-indexed slots), it only stops a late-claimed heavy
//! cell from stranding the round at its barrier; the
//! [`CampaignReport::sched_stats`] telemetry records makespans and worker
//! utilization so the effect is measurable (`perfsuite` / the
//! `campaign_sched` bench).
//!
//! ## Non-blocking backends
//!
//! When the engine injects backend latency
//! (`StellarBuilder::backend_latency` / CLI `--backend-latency`), cells
//! suspend while their agent turn's provider call is in flight instead of
//! pinning their worker. Workers multiplex: a worker whose open cells are
//! all suspended claims the next planned cell and keeps polling the
//! suspended set, so several backend calls overlap in flight on one
//! thread ([`crate::sched::RoundSched::max_in_flight`] records the peak).
//! Suspension changes only *when* cells execute — reports stay
//! bit-identical to the blocking path, property-tested in
//! `tests/integration_nonblocking.rs`.
//!
//! ## Failure domains
//!
//! Every cell is its own failure domain. A session that ends with a
//! structured [`SessionError`] (injected backend failures past the retry
//! budget — see [`crate::RetryPolicy`]) or *panics* mid-step is published
//! as [`CellOutcome::Failed`]; sibling cells keep running, the failed
//! cell's rules never merge, and the report accounts for it separately
//! ([`CampaignReport::failed_cells`]). Failure verdicts are drawn per
//! submission index ([`llmsim::SimFailures`]), so serial, parallel and
//! latency-injected runs of a failure-injected grid still produce
//! byte-identical canonical streams (`tests/integration_failures.rs`).
//!
//! ## Crash-consistent resume
//!
//! An interrupted campaign leaves a partial run record behind. Configure
//! an identical campaign and call [`Campaign::resume_from`] with the
//! parsed record: every *complete* round is replayed from the recorded
//! cells (re-notified and re-merged in grid order, never re-executed) and
//! only the remainder runs live. Because recorded runs round-trip
//! exactly, the resumed record and report are bit-identical to an
//! uninterrupted run's.
//!
//! ## Observation
//!
//! [`Campaign::observe`] attaches [`CampaignObserver`]s: canonical
//! lifecycle callbacks (campaign/round start, cells finished or failed in
//! grid order, rule merges, campaign end) fire deterministically on the
//! coordinating thread, while telemetry callbacks (claims, suspensions,
//! publishes, planned orders, round stats) stream live from the worker
//! loop. [`crate::obs`] builds the JSONL run record and the live
//! progress board on this seam; observation never changes the report
//! (pinned by `tests/integration_obs.rs`).

use crate::engine::{Stellar, TuningRun};
use crate::sched::{self, CostModel, RoundSched, SchedStats, Schedule};
use crate::session::{SessionError, SessionOutcome};
use agents::{RuleSet, RuleSnapshot, ShardedRuleStore};
use llmsim::{CallHandle, UsageMeter};
use serde::{Deserialize, Serialize};
use simcore::rng::{combine, stable_hash};
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;
use workloads::{Workload, WorkloadKind};

/// How cells share the accumulating rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RuleMode {
    /// Every cell starts from the campaign's starting rules; runs learn
    /// independently (the Fig. 5/7 "without rules" regime).
    #[default]
    Cold,
    /// Rounds accumulate: all cells of seed-round *r* start from the rules
    /// accumulated through round *r − 1*, and their learned rules merge —
    /// in grid order — before round *r + 1* (the Fig. 6 regime, made
    /// deterministic under parallelism).
    Warm,
}

impl RuleMode {
    /// The CLI/JSON name (`cold`, `warm`).
    pub fn label(self) -> &'static str {
        match self {
            RuleMode::Cold => "cold",
            RuleMode::Warm => "warm",
        }
    }
}

/// The static shape of a campaign, announced to
/// [`CampaignObserver::on_campaign_start`] before any cell executes.
#[derive(Debug, Clone)]
pub struct CampaignGrid {
    /// Workload labels, in grid order.
    pub workloads: Vec<String>,
    /// Grid seeds, in round order.
    pub seeds: Vec<u64>,
    /// Rule-sharing mode.
    pub mode: RuleMode,
    /// Workers the rounds will run over (1 for serial runs). Execution
    /// detail: part of the *telemetry* surface, never of the canonical
    /// record — serial and parallel runs of the same grid must produce
    /// byte-identical canonical streams.
    pub workers: usize,
    /// Ordering policy the rounds will plan with. Telemetry, like
    /// `workers`.
    pub schedule: Schedule,
    /// Label of the engine's [`pfs::FaultPlan`], when the campaign runs
    /// under one (`None` on a pristine cluster). Unlike `workers` and
    /// `schedule` this is *canonical*: faults change simulated results,
    /// so records of faulted and pristine campaigns must not compare
    /// equal.
    pub faults: Option<String>,
    /// Label of the engine's [`llmsim::FailureInjection`], when backend
    /// failures are injected (`None` on a perfect backend). Canonical,
    /// like `faults`: injection changes which cells fail.
    pub injection: Option<String>,
    /// Label of the engine's [`crate::RetryPolicy`], present exactly when
    /// `injection` is. Canonical: the retry budget decides which injected
    /// failure schedules a session survives.
    pub retry: Option<String>,
}

/// Streaming receiver for campaign progress, the grid-level sibling of
/// [`crate::RunObserver`]. All methods have no-op defaults.
///
/// ## Canonical vs telemetry callbacks
///
/// The callbacks split into two classes, mirroring the run-record schema
/// in [`crate::obs`]:
///
/// * **canonical** — [`on_campaign_start`](CampaignObserver::on_campaign_start),
///   [`on_round_start`](CampaignObserver::on_round_start),
///   [`on_cell_finished`](CampaignObserver::on_cell_finished),
///   [`on_cell_failed`](CampaignObserver::on_cell_failed),
///   [`on_rules_merged`](CampaignObserver::on_rules_merged) and
///   [`on_campaign_end`](CampaignObserver::on_campaign_end) fire on the
///   coordinating thread in a deterministic order (cells in grid order at
///   the end of each round), regardless of thread count, execution order
///   or backend latency;
/// * **telemetry** — [`on_round_planned`](CampaignObserver::on_round_planned),
///   [`on_cell_claimed`](CampaignObserver::on_cell_claimed),
///   [`on_cell_suspended`](CampaignObserver::on_cell_suspended),
///   [`on_cell_published`](CampaignObserver::on_cell_published) and
///   [`on_round_finished`](CampaignObserver::on_round_finished) report
///   *how* the grid executed — worker claims interleave live from worker
///   threads, so their order is real but not reproducible.
///
/// Observers must be [`Send`]: telemetry callbacks arrive from the worker
/// threads of [`Campaign::run`] (serialized through a lock — methods never
/// run concurrently, but may run on different threads).
pub trait CampaignObserver: Send {
    /// Canonical: the grid is about to execute.
    fn on_campaign_start(&mut self, grid: &CampaignGrid) {
        let _ = grid;
    }

    /// Canonical: a seed round is about to execute.
    fn on_round_start(&mut self, seed: u64) {
        let _ = seed;
    }

    /// Telemetry: the execution order planned for this round
    /// (grid indices, first-claimed first).
    fn on_round_planned(&mut self, seed: u64, schedule: Schedule, order: &[usize]) {
        let _ = (seed, schedule, order);
    }

    /// Telemetry: `worker` claimed the cell at `grid_idx`.
    fn on_cell_claimed(&mut self, worker: usize, seed: u64, grid_idx: usize, workload: &str) {
        let _ = (worker, seed, grid_idx, workload);
    }

    /// Telemetry: the cell at `grid_idx` suspended on an in-flight
    /// backend call (fires once per suspension, not once per poll).
    fn on_cell_suspended(&mut self, worker: usize, seed: u64, grid_idx: usize, call: CallHandle) {
        let _ = (worker, seed, grid_idx, call);
    }

    /// Telemetry: `worker` finished the cell at `grid_idx` after
    /// `busy_secs` of active stepping time.
    fn on_cell_published(&mut self, worker: usize, seed: u64, grid_idx: usize, busy_secs: f64) {
        let _ = (worker, seed, grid_idx, busy_secs);
    }

    /// Canonical: one finished cell, delivered in grid order after the
    /// round's barrier (not in completion order). Only fires for cells
    /// whose outcome is [`CellOutcome::Finished`]; failed cells go to
    /// [`on_cell_failed`](CampaignObserver::on_cell_failed) instead.
    fn on_cell_finished(&mut self, cell: &CampaignCell) {
        let _ = cell;
    }

    /// Canonical: one *failed* cell (structured session error or caught
    /// panic), delivered in grid order after the round's barrier exactly
    /// like [`on_cell_finished`](CampaignObserver::on_cell_finished).
    /// Failed cells merge no rules, so no
    /// [`on_rules_merged`](CampaignObserver::on_rules_merged) follows.
    fn on_cell_failed(&mut self, cell: &CampaignCell) {
        let _ = cell;
    }

    /// Canonical: one cell's learned rules merged into the store (grid
    /// order). `added` counts the rules the cell learned, `total` the
    /// store size after the merge.
    fn on_rules_merged(&mut self, workload: &str, added: usize, total: usize) {
        let _ = (workload, added, total);
    }

    /// Telemetry: the round's measured scheduling record.
    fn on_round_finished(&mut self, round: &RoundSched) {
        let _ = round;
    }

    /// Canonical: the campaign's aggregated report.
    fn on_campaign_end(&mut self, report: &CampaignReport) {
        let _ = report;
    }
}

/// Why a campaign cell produced no run. Structured and serializable: it
/// feeds the canonical stream ([`crate::obs::ObsEvent::CellFailed`]) and
/// the report's failed-cell accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CellFailure {
    /// The cell's session ended with a structured error (fatal backend
    /// call or exhausted retry budget).
    Session(SessionError),
    /// The cell's session panicked while stepping; the payload message.
    /// The panic was caught at the cell boundary — sibling cells and the
    /// campaign itself keep running.
    Panic(String),
}

impl fmt::Display for CellFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellFailure::Session(error) => write!(f, "{error}"),
            CellFailure::Panic(message) => write!(f, "panic: {message}"),
        }
    }
}

/// How a grid cell concluded: the finished run, or the failure that
/// isolated it.
#[derive(Debug, Clone)]
pub enum CellOutcome {
    /// The cell's session drained to a finished run.
    Finished(TuningRun),
    /// The cell failed; siblings were unaffected.
    Failed(CellFailure),
}

/// One executed grid cell.
#[derive(Debug, Clone)]
pub struct CampaignCell {
    /// Workload label.
    pub workload: String,
    /// The grid seed this cell ran under.
    pub seed: u64,
    /// The derived per-cell seed actually passed to the session.
    pub cell_seed: u64,
    /// How the cell concluded.
    pub outcome: CellOutcome,
}

impl CampaignCell {
    /// The finished run, `None` when the cell failed.
    pub fn run(&self) -> Option<&TuningRun> {
        match &self.outcome {
            CellOutcome::Finished(run) => Some(run),
            CellOutcome::Failed(_) => None,
        }
    }

    /// Whether the cell failed.
    pub fn is_failed(&self) -> bool {
        matches!(self.outcome, CellOutcome::Failed(_))
    }

    /// The failure that isolated the cell, `None` when it finished.
    pub fn failure(&self) -> Option<&CellFailure> {
        match &self.outcome {
            CellOutcome::Failed(failure) => Some(failure),
            CellOutcome::Finished(_) => None,
        }
    }
}

/// Turn a caught panic payload into the deterministic message most
/// panics carry (`panic!("...")` payloads are `&str` or `String`).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Aggregated campaign outcome.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// All cells, in grid order (seed-major, then workload).
    pub cells: Vec<CampaignCell>,
    /// The final rule set (starting rules plus merged learnings), as the
    /// flat serialization façade — save this with [`RuleSet::to_json`].
    pub rules: RuleSet,
    /// The same final rules in sharded form, for O(1) snapshots into
    /// follow-up campaigns and per-shard introspection
    /// ([`ShardedRuleStore::census`]; the CLI's `campaign --rule-shards`).
    pub rule_store: ShardedRuleStore,
    /// Scheduling telemetry: policy, chosen worker count (including
    /// whether the parallelism probe fell back), per-round makespans and
    /// worker utilization. Timing-derived, so unlike `cells`/`rules` it is
    /// not bit-reproducible across runs.
    pub sched_stats: SchedStats,
}

impl CampaignReport {
    /// The finished runs, in grid order (failed cells skipped).
    fn finished_runs(&self) -> impl Iterator<Item = &TuningRun> {
        self.cells.iter().filter_map(CampaignCell::run)
    }

    /// Mean best speedup across *finished* cells (0.0 when none finished).
    pub fn mean_best_speedup(&self) -> f64 {
        let finished = self.finished_runs().count();
        if finished == 0 {
            return 0.0;
        }
        self.finished_runs().map(|r| r.best_speedup).sum::<f64>() / finished as f64
    }

    /// Total configuration attempts consumed by finished cells.
    pub fn total_attempts(&self) -> usize {
        self.finished_runs().map(|r| r.attempts.len()).sum()
    }

    /// Total application executions (initial runs + attempts) of finished
    /// cells.
    pub fn total_evaluations(&self) -> usize {
        self.finished_runs().count() + self.total_attempts()
    }

    /// Summed token usage across finished cells: `(tuning, analysis)`.
    pub fn total_usage(&self) -> (UsageMeter, UsageMeter) {
        let mut tuning = UsageMeter::default();
        let mut analysis = UsageMeter::default();
        for r in self.finished_runs() {
            merge_usage(&mut tuning, &r.tuning_usage);
            merge_usage(&mut analysis, &r.analysis_usage);
        }
        (tuning, analysis)
    }

    /// Cells for one workload label, in grid order.
    pub fn cells_for(&self, workload: &str) -> Vec<&CampaignCell> {
        self.cells
            .iter()
            .filter(|c| c.workload == workload)
            .collect()
    }

    /// The best-performing finished cell, if any.
    pub fn best_cell(&self) -> Option<&CampaignCell> {
        self.cells.iter().filter(|c| !c.is_failed()).max_by(|a, b| {
            let (a, b) = (a.run().expect("finished"), b.run().expect("finished"));
            a.best_speedup.total_cmp(&b.best_speedup)
        })
    }

    /// The failed cells, in grid order (empty on a clean campaign).
    pub fn failed_cells(&self) -> Vec<&CampaignCell> {
        self.cells.iter().filter(|c| c.is_failed()).collect()
    }

    /// Fixed-width text summary (one row per cell).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&table::header());
        for c in &self.cells {
            match &c.outcome {
                CellOutcome::Finished(run) => out.push_str(&table::row(
                    &c.workload,
                    c.seed,
                    run.attempts.len(),
                    run.best_wall,
                    run.best_speedup,
                )),
                CellOutcome::Failed(_) => out.push_str(&table::failed_row(&c.workload, c.seed)),
            }
        }
        out.push_str(&table::trailer(
            self.mean_best_speedup(),
            self.cells.len(),
            self.total_evaluations(),
            self.rules.len(),
            self.rule_store.shard_count(),
            self.failed_cells().len(),
        ));
        // `sched_stats` is deliberately absent here: render() output is
        // bit-identical across reruns (a repo-wide invariant) while the
        // telemetry carries wall-clock timings — consumers print
        // `sched_stats.render()` on a diagnostic channel instead, as the
        // CLI does on stderr.
        out
    }
}

/// The campaign summary's fixed-width formats — single source of truth
/// for [`CampaignReport::render`] and the run-record replay
/// (`RunRecord::summary` promises a byte-identical table, so the format
/// strings must not fork).
pub(crate) mod table {
    /// Column header line.
    pub(crate) fn header() -> String {
        format!(
            "{:<18} {:>10} {:>8} {:>9} {:>9}\n",
            "workload", "seed", "attempts", "best", "speedup"
        )
    }

    /// One per-cell row.
    pub(crate) fn row(
        workload: &str,
        seed: u64,
        attempts: usize,
        best_wall: f64,
        best_speedup: f64,
    ) -> String {
        format!("{workload:<18} {seed:>10} {attempts:>8} {best_wall:>8.3}s {best_speedup:>8.2}x\n")
    }

    /// One failed-cell row: same column widths as [`row`], with the
    /// result columns blanked (`row` renders best as `{:>8.3}s` and
    /// speedup as `{:>8.2}x`, both 9 wide with their unit suffix).
    pub(crate) fn failed_row(workload: &str, seed: u64) -> String {
        format!(
            "{workload:<18} {seed:>10} {:>8} {:>9} {:>9}\n",
            "-", "failed", "-"
        )
    }

    /// The aggregate trailer line. The failed-cell suffix appears only
    /// when cells failed, so clean campaigns render byte-identically to
    /// the pre-failure-domain format.
    pub(crate) fn trailer(
        mean_best_speedup: f64,
        cells: usize,
        evaluations: usize,
        rules: usize,
        shards: usize,
        failed: usize,
    ) -> String {
        let mut line = format!(
            "mean speedup x{mean_best_speedup:.2} over {cells} cells ({evaluations} evaluations); {rules} rules accumulated in {shards} shards"
        );
        if failed > 0 {
            line.push_str(&format!("; {failed} cell(s) failed"));
        }
        line.push('\n');
        line
    }
}

fn merge_usage(into: &mut UsageMeter, from: &UsageMeter) {
    into.calls += from.calls;
    into.input_tokens += from.input_tokens;
    into.cached_input_tokens += from.cached_input_tokens;
    into.output_tokens += from.output_tokens;
}

/// A configurable workload × seed grid. See the module docs.
pub struct Campaign<'e> {
    engine: &'e Stellar,
    workloads: Vec<Box<dyn Workload>>,
    seeds: Vec<u64>,
    mode: RuleMode,
    base_rules: RuleSet,
    threads: usize,
    parallelism_fallback: bool,
    schedule: Schedule,
    order_override: Option<Vec<usize>>,
    /// Complete rounds reconstructed from a partial run record by
    /// [`Campaign::resume_from`]: replayed (re-notified, re-merged)
    /// instead of executed. Empty for fresh campaigns.
    replay: Vec<Vec<CampaignCell>>,
    // Behind a Mutex because telemetry callbacks fire from worker threads
    // while `run(&self)` only holds a shared borrow; the lock also keeps
    // multi-observer delivery atomic per event.
    observers: Mutex<Vec<Box<dyn CampaignObserver + 'e>>>,
}

impl<'e> Campaign<'e> {
    /// Empty campaign over `engine`: cold rules, hardware-sized thread
    /// pool, adaptive scheduling, no cells until workloads and seeds are
    /// added.
    pub fn new(engine: &'e Stellar) -> Self {
        // detlint::allow(D004): the documented default-worker-count fallback —
        // the probed value is observable only via sched_stats (see SchedStats::
        // default_workers_fallback), never via canonical events or stdout
        let detected = std::thread::available_parallelism();
        Campaign {
            engine,
            workloads: Vec::new(),
            seeds: Vec::new(),
            mode: RuleMode::Cold,
            base_rules: RuleSet::new(),
            threads: detected.as_ref().map(|n| n.get()).unwrap_or(1),
            // A failed probe used to default silently; record it so the
            // report can say why the campaign ran single-threaded.
            parallelism_fallback: detected.is_err(),
            schedule: Schedule::default(),
            order_override: None,
            replay: Vec::new(),
            observers: Mutex::new(Vec::new()),
        }
    }

    /// Attach a [`CampaignObserver`]. Multiple observers receive every
    /// event, in attachment order. Observation never changes the report —
    /// `tests/integration_obs.rs` pins observer-attached runs bit-identical
    /// to observer-free ones.
    pub fn observe(self, observer: Box<dyn CampaignObserver + 'e>) -> Self {
        self.observers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(observer);
        self
    }

    /// Deliver one event to every attached observer (no-op when none are
    /// attached — the common case pays one uncontended lock). Recovers a
    /// poisoned lock: if one worker's observer panicked (say, a run-record
    /// write hit a full disk), sibling workers must surface *that* panic
    /// through the thread join, not a misleading cascade of lock panics.
    fn notify(&self, mut f: impl FnMut(&mut dyn CampaignObserver)) {
        let mut obs = self
            .observers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for o in obs.iter_mut() {
            f(o.as_mut());
        }
    }

    /// Add one workload to the grid.
    pub fn workload(mut self, w: Box<dyn Workload>) -> Self {
        self.workloads.push(w);
        self
    }

    /// Add the named suite workloads at `scale` (1.0 = paper scale).
    pub fn kinds(mut self, kinds: &[WorkloadKind], scale: f64) -> Self {
        for kind in kinds {
            self.workloads.push(kind.spec_at(scale));
        }
        self
    }

    /// Grid seeds; each seed is one round across every workload.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds.extend(seeds);
        self
    }

    /// Rule-sharing mode (default [`RuleMode::Cold`]).
    pub fn rule_mode(mut self, mode: RuleMode) -> Self {
        self.mode = mode;
        self
    }

    /// Rules every cell (cold) or the first round (warm) starts from.
    pub fn starting_rules(mut self, rules: RuleSet) -> Self {
        self.base_rules = rules;
        self
    }

    /// Worker-thread cap for [`Campaign::run`] (at least 1).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self.parallelism_fallback = false; // explicit choice, not a fallback
        self
    }

    /// Cell-ordering policy for parallel rounds (default
    /// [`Schedule::Adaptive`]). Any policy yields the same report —
    /// scheduling only changes when cells *execute*, never what they
    /// compute (see [`crate::sched`]).
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Pin every parallel round's execution order to a fixed permutation
    /// of the workload indices, bypassing the planner.
    ///
    /// This is the verification seam behind the claim the scheduler rests
    /// on: *any* permutation must produce a bit-identical report. The
    /// `schedule_permutations_preserve_reports` property test drives it
    /// with LPT, reversed and seeded-random orders
    /// ([`crate::sched::permutation_from_seed`]).
    ///
    /// [`Campaign::run_serial`] ignores the override — serial rounds
    /// always execute (and report) grid order.
    ///
    /// # Panics
    /// [`Campaign::run`] panics if the override is not a permutation of
    /// `0..workloads`.
    pub fn order_override(mut self, order: Vec<usize>) -> Self {
        self.order_override = Some(order);
        self
    }

    /// The derived seed for a cell, independent of execution order.
    fn cell_seed(&self, seed: u64, workload_idx: usize) -> u64 {
        combine(
            combine(seed, stable_hash(&self.workloads[workload_idx].name())),
            workload_idx as u64,
        )
    }

    /// Open (but do not run) the session for one cell. The cell seed is
    /// fully derived (workload name + grid position already mixed in), so
    /// this bypasses the engine's SeedPolicy instead of letting
    /// PerWorkload hash the name in a second time. The snapshot clone is
    /// O(1): cells share the round's shards, not copies.
    fn open_session(
        &self,
        seed: u64,
        workload_idx: usize,
        rules: &RuleSnapshot,
    ) -> crate::session::TuningSession<'_> {
        crate::session::TuningSession::with_run_seed(
            self.engine,
            self.workloads[workload_idx].as_ref(),
            rules.clone(),
            self.cell_seed(seed, workload_idx),
        )
    }

    /// Execute one cell inside its failure domain: the session is stepped
    /// to its end behind `catch_unwind`, so a structured failure *and* an
    /// outright panic both become a [`CellOutcome::Failed`] instead of
    /// tearing down the campaign.
    fn run_cell(&self, seed: u64, workload_idx: usize, rules: &RuleSnapshot) -> CampaignCell {
        let session = self.open_session(seed, workload_idx, rules);
        // AssertUnwindSafe: on panic the session (and any in-flight call
        // it holds) is discarded wholesale, so no broken invariant can be
        // observed afterwards.
        let outcome = match std::panic::catch_unwind(AssertUnwindSafe(move || {
            let mut session = session;
            while !session.is_ended() {
                session.step();
            }
            session.into_outcome()
        })) {
            Ok(SessionOutcome::Finished(run)) => CellOutcome::Finished(run),
            Ok(SessionOutcome::Failed(error)) => CellOutcome::Failed(CellFailure::Session(error)),
            Err(payload) => CellOutcome::Failed(CellFailure::Panic(panic_message(payload))),
        };
        CampaignCell {
            workload: self.workloads[workload_idx].name(),
            seed,
            cell_seed: self.cell_seed(seed, workload_idx),
            outcome,
        }
    }

    /// One round (all workloads at one seed), parallel across `threads`,
    /// claiming cells in `order`. Returns `(cell, busy_secs)` pairs in
    /// grid order plus the round's peak of simultaneously in-flight
    /// backend calls on any one worker: results land in per-slot
    /// `OnceLock`s — one lock-free atomic publish per cell instead of
    /// the old `Mutex<Vec<Option<_>>>` that serialized every worker
    /// through one lock.
    ///
    /// ## Worker multiplexing
    ///
    /// Workers *step* sessions rather than draining them. On the instant
    /// backend a session never suspends, so a worker carries one cell to
    /// completion before claiming the next — exactly the historical
    /// behaviour. With backend latency injected, a session step can
    /// return [`SessionEvent::Waiting`]; once **all** of a worker's open
    /// cells are suspended it claims the next planned cell instead of
    /// idling, then keeps polling the suspended set round-robin. K
    /// backend calls thereby overlap in flight on a single thread, while
    /// results still publish into grid-indexed slots and rule merges stay
    /// in grid order — reports are bit-identical to the blocking path
    /// (property-tested in `tests/integration_nonblocking.rs`).
    fn round_parallel(
        &self,
        seed: u64,
        rules: &RuleSnapshot,
        order: &[usize],
    ) -> (Vec<(CampaignCell, f64)>, usize) {
        let n = self.workloads.len();
        debug_assert_eq!(order.len(), n);
        let slots: Vec<OnceLock<(CampaignCell, f64)>> = (0..n).map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        let in_flight_peak = AtomicUsize::new(0);
        let workers = self.threads.min(n).max(1);
        std::thread::scope(|scope| {
            for worker in 0..workers {
                let (slots, next, in_flight_peak) = (&slots, &next, &in_flight_peak);
                scope.spawn(move || {
                    struct Open<'s> {
                        grid_idx: usize,
                        session: crate::session::TuningSession<'s>,
                        /// Time this worker actively spent stepping the
                        /// cell — NOT claim-to-publish elapsed time,
                        /// which under multiplexing would also count
                        /// suspension and sibling cells' work, feeding
                        /// the adaptive cost model makespan-sized
                        /// "measurements" for every overlapped cell.
                        busy_secs: f64,
                        waiting: bool,
                    }
                    let mut open: Vec<Open> = Vec::new();
                    let mut peak = 0usize;
                    loop {
                        // Claim when idle (nothing open) or when every
                        // open cell is suspended on an in-flight call.
                        if (open.is_empty() || open.iter().all(|c| c.waiting))
                            && next.load(Ordering::Relaxed) < n
                        {
                            let k = next.fetch_add(1, Ordering::Relaxed);
                            if k < n {
                                let i = order[k];
                                open.push(Open {
                                    grid_idx: i,
                                    session: self.open_session(seed, i, rules),
                                    busy_secs: 0.0,
                                    waiting: false,
                                });
                                self.notify(|o| {
                                    o.on_cell_claimed(worker, seed, i, &self.workloads[i].name())
                                });
                            }
                        }
                        if open.is_empty() {
                            break;
                        }
                        // Advance every open cell by one step; a step on
                        // a suspended cell polls its call (one tick).
                        let mut idx = 0;
                        while idx < open.len() {
                            // detlint::allow(D001): per-cell active stepping time feeds the
                            // adaptive cost model and the strippable sched sidecar only
                            let t0 = Instant::now();
                            // The cell's failure domain: a panicking step
                            // fails *this* cell (the broken session is
                            // discarded) while siblings and other workers
                            // keep running.
                            let step = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                open[idx].session.step()
                            }));
                            open[idx].busy_secs += t0.elapsed().as_secs_f64();
                            let event = match step {
                                Ok(event) => event,
                                Err(payload) => {
                                    let done = open.swap_remove(idx);
                                    let i = done.grid_idx;
                                    let cell = CampaignCell {
                                        workload: self.workloads[i].name(),
                                        seed,
                                        cell_seed: self.cell_seed(seed, i),
                                        outcome: CellOutcome::Failed(CellFailure::Panic(
                                            panic_message(payload),
                                        )),
                                    };
                                    let set = slots[i].set((cell, done.busy_secs));
                                    assert!(set.is_ok(), "cell {i} executed twice");
                                    self.notify(|o| {
                                        o.on_cell_published(worker, seed, i, done.busy_secs)
                                    });
                                    continue; // swap_remove put a new cell at idx
                                }
                            };
                            let was_waiting = open[idx].waiting;
                            open[idx].waiting =
                                matches!(event, crate::session::SessionEvent::Waiting { .. });
                            // Announce the *transition* into suspension,
                            // not every poll of an already-waiting cell.
                            if open[idx].waiting && !was_waiting {
                                if let crate::session::SessionEvent::Waiting { call } = event {
                                    let i = open[idx].grid_idx;
                                    self.notify(|o| o.on_cell_suspended(worker, seed, i, call));
                                }
                            }
                            // A waiting cell holds a live in-flight call
                            // until a later step completes it, so this
                            // count is the worker's simultaneous
                            // in-flight calls at this instant.
                            peak = peak.max(open.iter().filter(|c| c.waiting).count());
                            if open[idx].session.is_ended() {
                                let done = open.swap_remove(idx);
                                let i = done.grid_idx;
                                let outcome = match done.session.into_outcome() {
                                    SessionOutcome::Finished(run) => CellOutcome::Finished(run),
                                    SessionOutcome::Failed(error) => {
                                        CellOutcome::Failed(CellFailure::Session(error))
                                    }
                                };
                                let cell = CampaignCell {
                                    workload: self.workloads[i].name(),
                                    seed,
                                    cell_seed: self.cell_seed(seed, i),
                                    outcome,
                                };
                                let set = slots[i].set((cell, done.busy_secs));
                                assert!(set.is_ok(), "cell {i} executed twice");
                                self.notify(|o| {
                                    o.on_cell_published(worker, seed, i, done.busy_secs)
                                });
                            } else {
                                idx += 1;
                            }
                        }
                    }
                    in_flight_peak.fetch_max(peak, Ordering::Relaxed);
                });
            }
        });
        let cells = slots
            .into_iter()
            .map(|s| s.into_inner().expect("every cell executed"))
            .collect();
        (cells, in_flight_peak.into_inner())
    }

    /// Serial counterpart of [`Campaign::round_parallel`]: one implicit
    /// worker (index 0) drains cells in grid order. Sessions are drained
    /// internally, so suspension telemetry is not observable here — only
    /// claims and publishes are reported.
    fn round_serial(&self, seed: u64, rules: &RuleSnapshot) -> Vec<(CampaignCell, f64)> {
        (0..self.workloads.len())
            .map(|i| {
                self.notify(|o| o.on_cell_claimed(0, seed, i, &self.workloads[i].name()));
                // detlint::allow(D001): serial-path cell timing, same sidecar-only
                // destination as the parallel claim loop's measurement
                let t0 = Instant::now();
                let cell = self.run_cell(seed, i, rules);
                let busy = t0.elapsed().as_secs_f64();
                self.notify(|o| o.on_cell_published(0, seed, i, busy));
                (cell, busy)
            })
            .collect()
    }

    fn execute(&self, parallel: bool) -> CampaignReport {
        assert!(
            !self.workloads.is_empty() && !self.seeds.is_empty(),
            "campaign grid is empty: add workloads and seeds"
        );
        let mut store = ShardedRuleStore::for_topology(self.engine.sim().topology().ost_count())
            .with_rules(&self.base_rules);
        // Cold rounds always start from the pre-campaign state; taking the
        // snapshot once up front shares it across every round for free.
        let base_snapshot = store.snapshot();
        let workers = if parallel {
            self.threads.min(self.workloads.len()).max(1)
        } else {
            1
        };
        let mut sched_stats = SchedStats {
            schedule: if parallel {
                self.schedule
            } else {
                Schedule::Fifo
            },
            threads_requested: self.threads,
            workers,
            parallelism_fallback: self.parallelism_fallback,
            rounds: Vec::with_capacity(self.seeds.len()),
        };
        // Cost model: parameter-derived hints up front, measured wall times
        // folded back in after every round (the adaptive feedback loop).
        // Only planned schedules consult it — serial runs, FIFO and order
        // overrides execute without paying for hints (whose default
        // derivation generates a stream set for custom workloads).
        let needs_model =
            parallel && self.order_override.is_none() && sched_stats.schedule != Schedule::Fifo;
        let mut model = needs_model.then(|| {
            let topo = self.engine.sim().topology();
            CostModel::from_hints(self.workloads.iter().map(|w| w.cost_hint(topo)))
        });
        if let Some(o) = self.order_override.as_ref().filter(|_| parallel) {
            let mut check = o.clone();
            check.sort_unstable();
            assert!(
                check.iter().copied().eq(0..self.workloads.len()),
                "order override must be a permutation of 0..{}",
                self.workloads.len()
            );
        }
        let injection = self.engine.options().failures.map(|f| f.label());
        let retry = injection
            .is_some()
            .then(|| self.engine.options().retry.label());
        let grid = CampaignGrid {
            workloads: self.workloads.iter().map(|w| w.name()).collect(),
            seeds: self.seeds.clone(),
            mode: self.mode,
            workers,
            schedule: sched_stats.schedule,
            faults: self.engine.options().faults.as_ref().map(|p| p.label()),
            injection,
            retry,
        };
        self.notify(|o| o.on_campaign_start(&grid));
        let mut cells = Vec::with_capacity(self.workloads.len() * self.seeds.len());
        for (round_idx, &seed) in self.seeds.iter().enumerate() {
            // Crash-consistent resume: rounds reconstructed from a
            // partial record replay — same canonical notifications, same
            // grid-order merges, no execution. Telemetry (which measures
            // execution) records a zeroed round, and the cost model is
            // not fed: replayed cells cost nothing here.
            if let Some(replayed) = self.replay.get(round_idx) {
                self.notify(|o| o.on_round_start(seed));
                for cell in replayed {
                    match &cell.outcome {
                        CellOutcome::Finished(run) => {
                            self.notify(|o| o.on_cell_finished(cell));
                            store.merge(run.new_rules.clone());
                            self.notify(|o| {
                                o.on_rules_merged(&cell.workload, run.new_rules.len(), store.len())
                            });
                        }
                        CellOutcome::Failed(_) => self.notify(|o| o.on_cell_failed(cell)),
                    }
                }
                sched_stats.rounds.push(RoundSched {
                    seed,
                    order: (0..self.workloads.len()).collect(),
                    cell_secs: vec![0.0; self.workloads.len()],
                    makespan_secs: 0.0,
                    utilization: 0.0,
                    max_in_flight: 0,
                });
                self.notify(|o| {
                    o.on_round_finished(sched_stats.rounds.last().expect("round just pushed"))
                });
                cells.extend(replayed.iter().cloned());
                continue;
            }
            // O(1) either way: snapshots share shards, they don't clone
            // rules — warm rounds no longer pay for the set they've grown.
            let snapshot = match self.mode {
                RuleMode::Cold => base_snapshot.clone(),
                RuleMode::Warm => store.snapshot(),
            };
            // Serial rounds always execute in grid order, so that is what
            // the telemetry must report (overrides only steer `run()`).
            let order = match (&model, self.order_override.as_ref().filter(|_| parallel)) {
                (_, Some(o)) => o.clone(),
                (Some(m), None) => sched::plan(sched_stats.schedule, m),
                (None, None) => (0..self.workloads.len()).collect(),
            };
            self.notify(|o| o.on_round_start(seed));
            self.notify(|o| o.on_round_planned(seed, sched_stats.schedule, &order));
            // detlint::allow(D001): round makespan is sched telemetry — rendered on
            // stderr and recorded in the strippable sidecar, never in canonical events
            let round_start = Instant::now();
            let (round, max_in_flight) = if parallel {
                self.round_parallel(seed, &snapshot, &order)
            } else {
                // Serial rounds drain cells one at a time: a suspended
                // cell is polled to completion before the next starts,
                // so exactly one call is in flight whenever the backend
                // actually suspends, and none on the instant backend.
                let suspends = self
                    .engine
                    .options()
                    .backend_latency
                    .is_some_and(|p| !p.is_instant());
                (self.round_serial(seed, &snapshot), usize::from(suspends))
            };
            let makespan_secs = round_start.elapsed().as_secs_f64();
            let cell_secs: Vec<f64> = round.iter().map(|(_, s)| *s).collect();
            if let Some(m) = model.as_mut() {
                // Failed cells measure time-to-failure, not workload
                // cost — don't let them skew the adaptive model.
                for (i, &secs) in cell_secs.iter().enumerate() {
                    if !round[i].0.is_failed() {
                        m.observe(i, secs);
                    }
                }
            }
            let busy: f64 = cell_secs.iter().sum();
            sched_stats.rounds.push(RoundSched {
                seed,
                order,
                cell_secs,
                makespan_secs,
                utilization: sched::round_utilization(busy, workers, makespan_secs),
                max_in_flight,
            });
            // Merge learnings in grid order — deterministic regardless of
            // which thread finished first. Only the shards the new rules
            // land in are copied; outstanding snapshots are untouched.
            // Canonical observer events follow the same grid order, so an
            // attached emitter's semantic stream is reproducible no matter
            // which worker finished which cell first. Failed cells merge
            // nothing — a partial session must not leak half-learned
            // rules into its siblings' snapshots.
            for (cell, _) in &round {
                match &cell.outcome {
                    CellOutcome::Finished(run) => {
                        self.notify(|o| o.on_cell_finished(cell));
                        store.merge(run.new_rules.clone());
                        self.notify(|o| {
                            o.on_rules_merged(&cell.workload, run.new_rules.len(), store.len())
                        });
                    }
                    CellOutcome::Failed(_) => self.notify(|o| o.on_cell_failed(cell)),
                }
            }
            self.notify(|o| {
                o.on_round_finished(sched_stats.rounds.last().expect("round just pushed"))
            });
            cells.extend(round.into_iter().map(|(cell, _)| cell));
        }
        let report = CampaignReport {
            cells,
            rules: store.to_rule_set(),
            rule_store: store,
            sched_stats,
        };
        self.notify(|o| o.on_campaign_end(&report));
        report
    }

    /// Run the grid with deterministic parallel execution.
    pub fn run(&self) -> CampaignReport {
        self.execute(true)
    }

    /// Run the grid serially (same result as [`Campaign::run`]).
    pub fn run_serial(&self) -> CampaignReport {
        self.execute(false)
    }

    /// Resume an interrupted campaign from its partial run record
    /// (crash-consistent: see the module docs).
    ///
    /// The campaign must be configured identically to the one that wrote
    /// the record — same workloads, seeds, rule mode, engine fault /
    /// failure-injection / retry configuration — which is validated
    /// against the record's `CampaignStart` event and every replayed
    /// cell's derived seed. Every *complete* round in the record (all
    /// cells present, every finished cell's rule merge recorded) is
    /// replayed instead of executed by the next [`Campaign::run`] /
    /// [`Campaign::run_serial`]; an incomplete trailing round — the one a
    /// crash tore — is discarded and recomputed live. The resulting
    /// report and re-emitted record are bit-identical to an
    /// uninterrupted run's.
    ///
    /// Use [`crate::obs::RunRecord::load_partial`] to parse a record
    /// whose final line was torn by the crash.
    pub fn resume_from(mut self, record: &crate::obs::RunRecord) -> Result<Self, String> {
        use crate::obs::ObsEvent;
        if self.workloads.is_empty() || self.seeds.is_empty() {
            return Err("campaign grid is empty: add workloads and seeds".to_string());
        }
        let names: Vec<String> = self.workloads.iter().map(|w| w.name()).collect();
        let options = self.engine.options();
        let mut events = record.events();
        let Some(ObsEvent::CampaignStart {
            workloads,
            seeds,
            mode,
            faults,
            injection,
            retry,
        }) = events.next()
        else {
            return Err("record does not begin with a CampaignStart event".to_string());
        };
        if *workloads != names {
            return Err(format!(
                "record workloads {workloads:?} do not match configured grid {names:?}"
            ));
        }
        if *seeds != self.seeds {
            return Err(format!(
                "record seeds {seeds:?} do not match configured seeds {:?}",
                self.seeds
            ));
        }
        if mode != self.mode.label() {
            return Err(format!(
                "record rule mode {mode:?} does not match configured {:?}",
                self.mode.label()
            ));
        }
        let engine_faults = options.faults.as_ref().map(|p| p.label());
        if *faults != engine_faults {
            return Err(format!(
                "record fault plan {faults:?} does not match engine {engine_faults:?}"
            ));
        }
        let engine_injection = options.failures.map(|f| f.label());
        let engine_retry = engine_injection.is_some().then(|| options.retry.label());
        if *injection != engine_injection {
            return Err(format!(
                "record failure injection {injection:?} does not match engine {engine_injection:?}"
            ));
        }
        if *retry != engine_retry {
            return Err(format!(
                "record retry policy {retry:?} does not match engine {engine_retry:?}"
            ));
        }
        let n = names.len();
        // A round is complete when all its cells were recorded *and*
        // every finished cell's rule merge made it to the record — the
        // merge is the last canonical effect a cell has, so a round with
        // all merges present replays to the exact post-round store state.
        let is_complete = |cells: &[CampaignCell], merges: usize| {
            cells.len() == n && merges == cells.iter().filter(|c| !c.is_failed()).count()
        };
        let mut rounds: Vec<Vec<CampaignCell>> = Vec::new();
        let mut pending: Option<(u64, Vec<CampaignCell>, usize)> = None;
        for event in events {
            match event {
                ObsEvent::RoundStart { seed } => {
                    if let Some((prev_seed, cells, merges)) = pending.take() {
                        if !is_complete(&cells, merges) {
                            return Err(format!(
                                "round seed {prev_seed} is incomplete but a later round follows"
                            ));
                        }
                        rounds.push(cells);
                    }
                    let expected = self.seeds.get(rounds.len()).copied();
                    if expected != Some(*seed) {
                        return Err(format!(
                            "round {} opened with seed {seed}, expected {expected:?}",
                            rounds.len()
                        ));
                    }
                    pending = Some((*seed, Vec::new(), 0));
                }
                ObsEvent::CellFinished {
                    workload,
                    seed,
                    cell_seed,
                    run,
                } => {
                    self.push_replay_cell(
                        &mut pending,
                        &names,
                        workload,
                        *seed,
                        *cell_seed,
                        CellOutcome::Finished(run.clone()),
                    )?;
                }
                ObsEvent::CellFailed {
                    workload,
                    seed,
                    cell_seed,
                    failure,
                } => {
                    self.push_replay_cell(
                        &mut pending,
                        &names,
                        workload,
                        *seed,
                        *cell_seed,
                        CellOutcome::Failed(failure.clone()),
                    )?;
                }
                ObsEvent::RuleMerge { .. } => {
                    if let Some((_, _, merges)) = pending.as_mut() {
                        *merges += 1;
                    }
                }
                // A CampaignEnd means the record is complete; resuming
                // replays everything and executes nothing, which is
                // harmless. Session-level events never appear in
                // campaign records.
                _ => {}
            }
        }
        if let Some((_, cells, merges)) = pending.take() {
            if is_complete(&cells, merges) {
                rounds.push(cells);
            }
            // else: the torn trailing round — recomputed live.
        }
        self.replay = rounds;
        Ok(self)
    }

    /// Validate and append one replayed cell to the pending round.
    #[allow(clippy::too_many_arguments)]
    fn push_replay_cell(
        &self,
        pending: &mut Option<(u64, Vec<CampaignCell>, usize)>,
        names: &[String],
        workload: &str,
        seed: u64,
        cell_seed: u64,
        outcome: CellOutcome,
    ) -> Result<(), String> {
        let Some((round_seed, cells, _)) = pending.as_mut() else {
            return Err(format!(
                "cell event for {workload} appears before any RoundStart"
            ));
        };
        if seed != *round_seed {
            return Err(format!(
                "cell {workload} carries seed {seed}, round is {round_seed}"
            ));
        }
        let idx = cells.len();
        if names.get(idx).map(String::as_str) != Some(workload) {
            return Err(format!(
                "cell {idx} of round seed {seed} is {workload}, expected {:?}",
                names.get(idx)
            ));
        }
        let expected_seed = self.cell_seed(seed, idx);
        if cell_seed != expected_seed {
            return Err(format!(
                "cell {workload} (seed {seed}) recorded cell seed {cell_seed}, derived {expected_seed}"
            ));
        }
        cells.push(CampaignCell {
            workload: workload.to_string(),
            seed,
            cell_seed,
            outcome,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StellarBuilder;

    fn engine() -> Stellar {
        StellarBuilder::new().build()
    }

    #[test]
    fn cold_campaign_aggregates_cells() {
        let e = engine();
        let report = Campaign::new(&e)
            .kinds(&[WorkloadKind::Ior16M, WorkloadKind::MdWorkbench8K], 0.1)
            .seeds([1])
            .run();
        assert_eq!(report.cells.len(), 2);
        assert!(report.mean_best_speedup() > 1.0);
        assert!(report.total_evaluations() > report.cells.len());
        let (tuning, analysis) = report.total_usage();
        assert!(tuning.calls > 0 && analysis.calls > 0);
        assert_eq!(report.cells_for("IOR_16M").len(), 1);
        assert!(report.best_cell().is_some());
        assert!(report.render().contains("mean speedup"));
    }

    #[test]
    fn warm_mode_passes_rules_to_later_rounds() {
        let e = engine();
        let base = Campaign::new(&e)
            .kinds(&[WorkloadKind::Ior16M], 0.1)
            .seeds([1, 2])
            .rule_mode(RuleMode::Warm)
            .run_serial();
        // Round 1 learned striping rules; round 2 consulted them, so its
        // first attempt must already be primed (rule-primed first guesses
        // are the Fig. 6 mechanism).
        assert!(!base.rules.is_empty(), "warm campaign accumulates rules");
        let round2 = base.cells[1].run().expect("round 2 finished");
        let first = round2.attempts.first().expect("round 2 tuned");
        assert!(
            first.speedup > 2.0,
            "rule-primed first attempt, got x{:.2}",
            first.speedup
        );
    }

    #[test]
    fn cell_seeds_are_position_independent() {
        let e = engine();
        let c = Campaign::new(&e)
            .kinds(&[WorkloadKind::Ior16M, WorkloadKind::Macsio16M], 0.1)
            .seeds([7]);
        assert_ne!(c.cell_seed(7, 0), c.cell_seed(7, 1));
        assert_ne!(c.cell_seed(7, 0), c.cell_seed(8, 0));
    }

    #[test]
    #[should_panic(expected = "campaign grid is empty")]
    fn empty_grid_panics() {
        let e = engine();
        let _ = Campaign::new(&e).run();
    }

    /// The satellite fix for the silent `available_parallelism` fallback:
    /// the report must say which policy ran, over how many workers, and
    /// what each round's makespan and utilization were.
    #[test]
    fn report_records_scheduling_telemetry() {
        let e = engine();
        let report = Campaign::new(&e)
            .kinds(&[WorkloadKind::Ior16M, WorkloadKind::MdWorkbench8K], 0.08)
            .seeds([1, 2])
            .threads(2)
            .schedule(Schedule::Lpt)
            .run();
        let s = &report.sched_stats;
        assert_eq!(s.schedule, Schedule::Lpt);
        assert_eq!(s.threads_requested, 2);
        assert_eq!(s.workers, 2);
        assert!(!s.parallelism_fallback, "explicit threads() is no fallback");
        assert_eq!(s.rounds.len(), 2);
        for r in &s.rounds {
            assert_eq!(r.cell_secs.len(), 2);
            assert!(r.makespan_secs > 0.0);
            assert!(r.cell_secs.iter().all(|&c| c > 0.0));
            assert!(r.utilization > 0.0 && r.utilization <= 1.0 + 1e-9);
            // LPT claims the heavy MDWorkbench cell (grid index 1) first —
            // from the static hint in round 1, from measurement in round 2.
            assert_eq!(r.order[0], 1, "seed {}: order {:?}", r.seed, r.order);
        }
        assert!(s.total_busy_secs() > 0.0);
        assert!(s.render().contains("sched: lpt over 2 worker(s)"));
        // render() stays timing-free so identical grids render
        // bit-identically across reruns.
        assert!(!report.render().contains("sched:"));
    }

    /// Serial runs record telemetry too, pinned to one worker in grid
    /// order, so serial/parallel comparisons read off one report shape.
    #[test]
    fn serial_sched_stats_use_one_worker() {
        let e = engine();
        let report = Campaign::new(&e)
            .kinds(&[WorkloadKind::Ior16M], 0.08)
            .seeds([5])
            .run_serial();
        let s = &report.sched_stats;
        assert_eq!(s.schedule, Schedule::Fifo);
        assert_eq!(s.workers, 1);
        assert_eq!(s.rounds[0].order, vec![0]);
        assert!(s.mean_utilization() > 0.9, "serial rounds have no idle");
    }

    /// A faulted engine stamps its plan label on the canonical grid, and
    /// composite (contention) workloads run as ordinary cells.
    #[test]
    fn faulted_composite_grid_carries_scenario_metadata() {
        use std::sync::{Arc, Mutex as StdMutex};
        struct Grab(Arc<StdMutex<Option<CampaignGrid>>>);
        impl CampaignObserver for Grab {
            fn on_campaign_start(&mut self, grid: &CampaignGrid) {
                *self.0.lock().unwrap() = Some(grid.clone());
            }
        }
        let topo = crate::engine::default_topology();
        let plan = pfs::FaultPlan::seeded(topo.ost_count(), 7);
        let e = StellarBuilder::new().faults(plan.clone()).build();
        let composite = workloads::Contention::new(vec![
            WorkloadKind::Ior64K.spec_at(0.05),
            WorkloadKind::MdWorkbench2K.spec_at(0.05),
        ]);
        let grabbed = Arc::new(StdMutex::new(None));
        let report = Campaign::new(&e)
            .workload(Box::new(composite))
            .seeds([1])
            .observe(Box::new(Grab(grabbed.clone())))
            .run_serial();
        assert_eq!(report.cells.len(), 1);
        let grid = grabbed.lock().unwrap().clone().expect("grid announced");
        assert_eq!(grid.faults, Some(plan.label()));
        assert!(grid.workloads[0].contains('+'), "{:?}", grid.workloads);
        // Pristine campaigns announce no fault label.
        let pristine = engine();
        let grabbed2 = Arc::new(StdMutex::new(None));
        let _ = Campaign::new(&pristine)
            .kinds(&[WorkloadKind::Ior64K], 0.05)
            .seeds([1])
            .observe(Box::new(Grab(grabbed2.clone())))
            .run_serial();
        let grid2 = grabbed2.lock().unwrap().clone().expect("grid announced");
        assert_eq!(grid2.faults, None);
    }

    /// With every backend call failing fatally, every cell fails — but
    /// the campaign still completes, accounts for the failures, and the
    /// zero-finished report guards hold.
    #[test]
    fn failed_cells_are_accounted_not_fatal() {
        let e = StellarBuilder::new()
            .failures(llmsim::FailureInjection {
                seed: 1,
                profile: llmsim::FailureProfile {
                    transient_rate: 0.0,
                    fatal_rate: 1.0,
                },
            })
            .build();
        let report = Campaign::new(&e)
            .kinds(&[WorkloadKind::Ior16M, WorkloadKind::MdWorkbench8K], 0.08)
            .seeds([1])
            .run_serial();
        assert_eq!(report.cells.len(), 2);
        assert_eq!(report.failed_cells().len(), 2);
        assert!(report.best_cell().is_none());
        assert_eq!(report.mean_best_speedup(), 0.0);
        assert_eq!(report.total_evaluations(), 0);
        assert!(report.rules.is_empty(), "failed cells merge no rules");
        for cell in &report.cells {
            assert!(matches!(
                cell.failure(),
                Some(CellFailure::Session(SessionError::FatalCall { .. }))
            ));
        }
        let rendered = report.render();
        assert!(rendered.contains("failed"), "{rendered}");
        assert!(rendered.contains("; 2 cell(s) failed"), "{rendered}");
    }

    /// Resume validation: a record from a different grid is rejected with
    /// a structured error, not replayed into a wrong report.
    #[test]
    fn resume_rejects_mismatched_records() {
        let e = engine();
        let text = format!(
            "{{\"v\":{},\"e\":{{\"CampaignStart\":{{\"workloads\":[\"OTHER\"],\"seeds\":[1],\"mode\":\"cold\",\"faults\":null,\"injection\":null,\"retry\":null}}}},\"t\":null}}\n",
            crate::obs::SCHEMA_VERSION
        );
        let record = crate::obs::RunRecord::parse(&text).expect("well-formed line");
        let err = Campaign::new(&e)
            .kinds(&[WorkloadKind::Ior16M], 0.08)
            .seeds([1])
            .resume_from(&record)
            .err()
            .expect("grid mismatch must be rejected");
        assert!(err.contains("workloads"), "{err}");
        // A record that is not a campaign record at all.
        let empty = crate::obs::RunRecord::default();
        let err = Campaign::new(&e)
            .kinds(&[WorkloadKind::Ior16M], 0.08)
            .seeds([1])
            .resume_from(&empty)
            .err()
            .expect("no CampaignStart");
        assert!(err.contains("CampaignStart"), "{err}");
    }

    /// Order overrides steer `run()` only: serial rounds execute — and
    /// report — grid order, without validating the unused override.
    #[test]
    fn serial_ignores_order_override() {
        let e = engine();
        let report = Campaign::new(&e)
            .kinds(&[WorkloadKind::Ior16M, WorkloadKind::Macsio16M], 0.05)
            .seeds([3])
            .order_override(vec![9, 9])
            .run_serial();
        assert_eq!(report.sched_stats.rounds[0].order, vec![0, 1]);
    }
}
