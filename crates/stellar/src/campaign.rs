//! Campaigns: workload × seed grids over one engine.
//!
//! A [`Campaign`] runs a full grid of tuning runs — every configured
//! workload at every configured seed — with deterministic parallel
//! execution and shared rule-set accumulation, aggregating into a
//! [`CampaignReport`]. This is the substrate behind the paper's Fig. 6/7
//! rule-set sweeps and the multi-workload serving path on the roadmap.
//!
//! ## Determinism
//!
//! Per-cell seeds are derived with [`simcore::rng::combine`] from the
//! grid seed, the workload name and the cell's position, so a cell's
//! noise stream is independent of which thread executes it (the fully
//! derived seed bypasses the engine's `SeedPolicy`). Rule sharing
//! is round-structured (see [`RuleMode`]): within a round every cell reads
//! the *same* starting snapshot, and learned rules merge in grid order
//! after the round. [`Campaign::run`] (parallel) and
//! [`Campaign::run_serial`] therefore produce identical reports — asserted
//! by the `campaign_determinism` integration test.
//!
//! ## Rule storage
//!
//! Accumulated rules live in a [`ShardedRuleStore`] keyed by context-tag
//! signature and the engine's topology bucket. Round snapshots are O(1)
//! [`RuleSnapshot`]s — warm rounds no longer clone the whole rule set per
//! cell, so campaign cost stays flat as the store grows (see the
//! `rule_store` bench). Round merges touch only the shards the learned
//! rules land in, and merge order stays the grid order, keeping
//! serial == parallel.
//!
//! ## Scheduling
//!
//! Within a parallel round, workers claim cells in the order planned by
//! [`crate::sched`] — longest-processing-time-first over a cost model
//! seeded from each workload's `CostHint` and refined with measured wall
//! times after every round ([`Schedule::Adaptive`], the default).
//! Reordering never changes results (cells are independent and results
//! collect into grid-indexed slots), it only stops a late-claimed heavy
//! cell from stranding the round at its barrier; the
//! [`CampaignReport::sched_stats`] telemetry records makespans and worker
//! utilization so the effect is measurable (`perfsuite` / the
//! `campaign_sched` bench).
//!
//! ## Non-blocking backends
//!
//! When the engine injects backend latency
//! (`StellarBuilder::backend_latency` / CLI `--backend-latency`), cells
//! suspend while their agent turn's provider call is in flight instead of
//! pinning their worker. Workers multiplex: a worker whose open cells are
//! all suspended claims the next planned cell and keeps polling the
//! suspended set, so several backend calls overlap in flight on one
//! thread ([`crate::sched::RoundSched::max_in_flight`] records the peak).
//! Suspension changes only *when* cells execute — reports stay
//! bit-identical to the blocking path, property-tested in
//! `tests/integration_nonblocking.rs`.

use crate::engine::{Stellar, TuningRun};
use crate::sched::{self, CostModel, RoundSched, SchedStats, Schedule};
use agents::{RuleSet, RuleSnapshot, ShardedRuleStore};
use llmsim::UsageMeter;
use simcore::rng::{combine, stable_hash};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;
use workloads::{Workload, WorkloadKind};

/// How cells share the accumulating rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RuleMode {
    /// Every cell starts from the campaign's starting rules; runs learn
    /// independently (the Fig. 5/7 "without rules" regime).
    #[default]
    Cold,
    /// Rounds accumulate: all cells of seed-round *r* start from the rules
    /// accumulated through round *r − 1*, and their learned rules merge —
    /// in grid order — before round *r + 1* (the Fig. 6 regime, made
    /// deterministic under parallelism).
    Warm,
}

/// One completed grid cell.
#[derive(Debug, Clone)]
pub struct CampaignCell {
    /// Workload label.
    pub workload: String,
    /// The grid seed this cell ran under.
    pub seed: u64,
    /// The derived per-cell seed actually passed to the session.
    pub cell_seed: u64,
    /// The finished tuning run.
    pub run: TuningRun,
}

/// Aggregated campaign outcome.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// All cells, in grid order (seed-major, then workload).
    pub cells: Vec<CampaignCell>,
    /// The final rule set (starting rules plus merged learnings), as the
    /// flat serialization façade — save this with [`RuleSet::to_json`].
    pub rules: RuleSet,
    /// The same final rules in sharded form, for O(1) snapshots into
    /// follow-up campaigns and per-shard introspection
    /// ([`ShardedRuleStore::census`]; the CLI's `campaign --rule-shards`).
    pub rule_store: ShardedRuleStore,
    /// Scheduling telemetry: policy, chosen worker count (including
    /// whether the parallelism probe fell back), per-round makespans and
    /// worker utilization. Timing-derived, so unlike `cells`/`rules` it is
    /// not bit-reproducible across runs.
    pub sched_stats: SchedStats,
}

impl CampaignReport {
    /// Mean best speedup across cells.
    pub fn mean_best_speedup(&self) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        self.cells.iter().map(|c| c.run.best_speedup).sum::<f64>() / self.cells.len() as f64
    }

    /// Total configuration attempts consumed.
    pub fn total_attempts(&self) -> usize {
        self.cells.iter().map(|c| c.run.attempts.len()).sum()
    }

    /// Total application executions (initial runs + attempts).
    pub fn total_evaluations(&self) -> usize {
        self.cells.len() + self.total_attempts()
    }

    /// Summed token usage across cells: `(tuning, analysis)`.
    pub fn total_usage(&self) -> (UsageMeter, UsageMeter) {
        let mut tuning = UsageMeter::default();
        let mut analysis = UsageMeter::default();
        for c in &self.cells {
            merge_usage(&mut tuning, &c.run.tuning_usage);
            merge_usage(&mut analysis, &c.run.analysis_usage);
        }
        (tuning, analysis)
    }

    /// Cells for one workload label, in grid order.
    pub fn cells_for(&self, workload: &str) -> Vec<&CampaignCell> {
        self.cells
            .iter()
            .filter(|c| c.workload == workload)
            .collect()
    }

    /// The best-performing cell, if any.
    pub fn best_cell(&self) -> Option<&CampaignCell> {
        self.cells.iter().max_by(|a, b| {
            a.run
                .best_speedup
                .partial_cmp(&b.run.best_speedup)
                .expect("finite")
        })
    }

    /// Fixed-width text summary (one row per cell).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:>10} {:>8} {:>9} {:>9}\n",
            "workload", "seed", "attempts", "best", "speedup"
        ));
        for c in &self.cells {
            out.push_str(&format!(
                "{:<18} {:>10} {:>8} {:>8.3}s {:>8.2}x\n",
                c.workload,
                c.seed,
                c.run.attempts.len(),
                c.run.best_wall,
                c.run.best_speedup
            ));
        }
        out.push_str(&format!(
            "mean speedup x{:.2} over {} cells ({} evaluations); {} rules accumulated in {} shards\n",
            self.mean_best_speedup(),
            self.cells.len(),
            self.total_evaluations(),
            self.rules.len(),
            self.rule_store.shard_count()
        ));
        // `sched_stats` is deliberately absent here: render() output is
        // bit-identical across reruns (a repo-wide invariant) while the
        // telemetry carries wall-clock timings — consumers print
        // `sched_stats.render()` on a diagnostic channel instead, as the
        // CLI does on stderr.
        out
    }
}

fn merge_usage(into: &mut UsageMeter, from: &UsageMeter) {
    into.calls += from.calls;
    into.input_tokens += from.input_tokens;
    into.cached_input_tokens += from.cached_input_tokens;
    into.output_tokens += from.output_tokens;
}

/// A configurable workload × seed grid. See the module docs.
pub struct Campaign<'e> {
    engine: &'e Stellar,
    workloads: Vec<Box<dyn Workload>>,
    seeds: Vec<u64>,
    mode: RuleMode,
    base_rules: RuleSet,
    threads: usize,
    parallelism_fallback: bool,
    schedule: Schedule,
    order_override: Option<Vec<usize>>,
}

impl<'e> Campaign<'e> {
    /// Empty campaign over `engine`: cold rules, hardware-sized thread
    /// pool, adaptive scheduling, no cells until workloads and seeds are
    /// added.
    pub fn new(engine: &'e Stellar) -> Self {
        let detected = std::thread::available_parallelism();
        Campaign {
            engine,
            workloads: Vec::new(),
            seeds: Vec::new(),
            mode: RuleMode::Cold,
            base_rules: RuleSet::new(),
            threads: detected.as_ref().map(|n| n.get()).unwrap_or(1),
            // A failed probe used to default silently; record it so the
            // report can say why the campaign ran single-threaded.
            parallelism_fallback: detected.is_err(),
            schedule: Schedule::default(),
            order_override: None,
        }
    }

    /// Add one workload to the grid.
    pub fn workload(mut self, w: Box<dyn Workload>) -> Self {
        self.workloads.push(w);
        self
    }

    /// Add the named suite workloads at `scale` (1.0 = paper scale).
    pub fn kinds(mut self, kinds: &[WorkloadKind], scale: f64) -> Self {
        for kind in kinds {
            self.workloads.push(kind.spec_at(scale));
        }
        self
    }

    /// Grid seeds; each seed is one round across every workload.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds.extend(seeds);
        self
    }

    /// Rule-sharing mode (default [`RuleMode::Cold`]).
    pub fn rule_mode(mut self, mode: RuleMode) -> Self {
        self.mode = mode;
        self
    }

    /// Rules every cell (cold) or the first round (warm) starts from.
    pub fn starting_rules(mut self, rules: RuleSet) -> Self {
        self.base_rules = rules;
        self
    }

    /// Worker-thread cap for [`Campaign::run`] (at least 1).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self.parallelism_fallback = false; // explicit choice, not a fallback
        self
    }

    /// Cell-ordering policy for parallel rounds (default
    /// [`Schedule::Adaptive`]). Any policy yields the same report —
    /// scheduling only changes when cells *execute*, never what they
    /// compute (see [`crate::sched`]).
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Pin every parallel round's execution order to a fixed permutation
    /// of the workload indices, bypassing the planner.
    ///
    /// This is the verification seam behind the claim the scheduler rests
    /// on: *any* permutation must produce a bit-identical report. The
    /// `schedule_permutations_preserve_reports` property test drives it
    /// with LPT, reversed and seeded-random orders
    /// ([`crate::sched::permutation_from_seed`]).
    ///
    /// [`Campaign::run_serial`] ignores the override — serial rounds
    /// always execute (and report) grid order.
    ///
    /// # Panics
    /// [`Campaign::run`] panics if the override is not a permutation of
    /// `0..workloads`.
    pub fn order_override(mut self, order: Vec<usize>) -> Self {
        self.order_override = Some(order);
        self
    }

    /// The derived seed for a cell, independent of execution order.
    fn cell_seed(&self, seed: u64, workload_idx: usize) -> u64 {
        combine(
            combine(seed, stable_hash(&self.workloads[workload_idx].name())),
            workload_idx as u64,
        )
    }

    /// Open (but do not run) the session for one cell. The cell seed is
    /// fully derived (workload name + grid position already mixed in), so
    /// this bypasses the engine's SeedPolicy instead of letting
    /// PerWorkload hash the name in a second time. The snapshot clone is
    /// O(1): cells share the round's shards, not copies.
    fn open_session(
        &self,
        seed: u64,
        workload_idx: usize,
        rules: &RuleSnapshot,
    ) -> crate::session::TuningSession<'_> {
        crate::session::TuningSession::with_run_seed(
            self.engine,
            self.workloads[workload_idx].as_ref(),
            rules.clone(),
            self.cell_seed(seed, workload_idx),
        )
    }

    fn run_cell(&self, seed: u64, workload_idx: usize, rules: &RuleSnapshot) -> CampaignCell {
        let run = self.open_session(seed, workload_idx, rules).drain();
        CampaignCell {
            workload: self.workloads[workload_idx].name(),
            seed,
            cell_seed: self.cell_seed(seed, workload_idx),
            run,
        }
    }

    /// One round (all workloads at one seed), parallel across `threads`,
    /// claiming cells in `order`. Returns `(cell, busy_secs)` pairs in
    /// grid order plus the round's peak of simultaneously in-flight
    /// backend calls on any one worker: results land in per-slot
    /// `OnceLock`s — one lock-free atomic publish per cell instead of
    /// the old `Mutex<Vec<Option<_>>>` that serialized every worker
    /// through one lock.
    ///
    /// ## Worker multiplexing
    ///
    /// Workers *step* sessions rather than draining them. On the instant
    /// backend a session never suspends, so a worker carries one cell to
    /// completion before claiming the next — exactly the historical
    /// behaviour. With backend latency injected, a session step can
    /// return [`SessionEvent::Waiting`]; once **all** of a worker's open
    /// cells are suspended it claims the next planned cell instead of
    /// idling, then keeps polling the suspended set round-robin. K
    /// backend calls thereby overlap in flight on a single thread, while
    /// results still publish into grid-indexed slots and rule merges stay
    /// in grid order — reports are bit-identical to the blocking path
    /// (property-tested in `tests/integration_nonblocking.rs`).
    fn round_parallel(
        &self,
        seed: u64,
        rules: &RuleSnapshot,
        order: &[usize],
    ) -> (Vec<(CampaignCell, f64)>, usize) {
        let n = self.workloads.len();
        debug_assert_eq!(order.len(), n);
        let slots: Vec<OnceLock<(CampaignCell, f64)>> = (0..n).map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        let in_flight_peak = AtomicUsize::new(0);
        let workers = self.threads.min(n).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    struct Open<'s> {
                        grid_idx: usize,
                        session: crate::session::TuningSession<'s>,
                        /// Time this worker actively spent stepping the
                        /// cell — NOT claim-to-publish elapsed time,
                        /// which under multiplexing would also count
                        /// suspension and sibling cells' work, feeding
                        /// the adaptive cost model makespan-sized
                        /// "measurements" for every overlapped cell.
                        busy_secs: f64,
                        waiting: bool,
                    }
                    let mut open: Vec<Open> = Vec::new();
                    let mut peak = 0usize;
                    loop {
                        // Claim when idle (nothing open) or when every
                        // open cell is suspended on an in-flight call.
                        if (open.is_empty() || open.iter().all(|c| c.waiting))
                            && next.load(Ordering::Relaxed) < n
                        {
                            let k = next.fetch_add(1, Ordering::Relaxed);
                            if k < n {
                                let i = order[k];
                                open.push(Open {
                                    grid_idx: i,
                                    session: self.open_session(seed, i, rules),
                                    busy_secs: 0.0,
                                    waiting: false,
                                });
                            }
                        }
                        if open.is_empty() {
                            break;
                        }
                        // Advance every open cell by one step; a step on
                        // a suspended cell polls its call (one tick).
                        let mut idx = 0;
                        while idx < open.len() {
                            let t0 = Instant::now();
                            let event = open[idx].session.step();
                            open[idx].busy_secs += t0.elapsed().as_secs_f64();
                            open[idx].waiting =
                                matches!(event, crate::session::SessionEvent::Waiting { .. });
                            // A waiting cell holds a live in-flight call
                            // until a later step completes it, so this
                            // count is the worker's simultaneous
                            // in-flight calls at this instant.
                            peak = peak.max(open.iter().filter(|c| c.waiting).count());
                            if open[idx].session.is_ended() {
                                let done = open.swap_remove(idx);
                                let i = done.grid_idx;
                                let cell = CampaignCell {
                                    workload: self.workloads[i].name(),
                                    seed,
                                    cell_seed: self.cell_seed(seed, i),
                                    run: done.session.into_run(),
                                };
                                let set = slots[i].set((cell, done.busy_secs));
                                assert!(set.is_ok(), "cell {i} executed twice");
                            } else {
                                idx += 1;
                            }
                        }
                    }
                    in_flight_peak.fetch_max(peak, Ordering::Relaxed);
                });
            }
        });
        let cells = slots
            .into_iter()
            .map(|s| s.into_inner().expect("every cell executed"))
            .collect();
        (cells, in_flight_peak.into_inner())
    }

    fn round_serial(&self, seed: u64, rules: &RuleSnapshot) -> Vec<(CampaignCell, f64)> {
        (0..self.workloads.len())
            .map(|i| {
                let t0 = Instant::now();
                let cell = self.run_cell(seed, i, rules);
                (cell, t0.elapsed().as_secs_f64())
            })
            .collect()
    }

    fn execute(&self, parallel: bool) -> CampaignReport {
        assert!(
            !self.workloads.is_empty() && !self.seeds.is_empty(),
            "campaign grid is empty: add workloads and seeds"
        );
        let mut store = ShardedRuleStore::for_topology(self.engine.sim().topology().ost_count())
            .with_rules(&self.base_rules);
        // Cold rounds always start from the pre-campaign state; taking the
        // snapshot once up front shares it across every round for free.
        let base_snapshot = store.snapshot();
        let workers = if parallel {
            self.threads.min(self.workloads.len()).max(1)
        } else {
            1
        };
        let mut sched_stats = SchedStats {
            schedule: if parallel {
                self.schedule
            } else {
                Schedule::Fifo
            },
            threads_requested: self.threads,
            workers,
            parallelism_fallback: self.parallelism_fallback,
            rounds: Vec::with_capacity(self.seeds.len()),
        };
        // Cost model: parameter-derived hints up front, measured wall times
        // folded back in after every round (the adaptive feedback loop).
        // Only planned schedules consult it — serial runs, FIFO and order
        // overrides execute without paying for hints (whose default
        // derivation generates a stream set for custom workloads).
        let needs_model =
            parallel && self.order_override.is_none() && sched_stats.schedule != Schedule::Fifo;
        let mut model = needs_model.then(|| {
            let topo = self.engine.sim().topology();
            CostModel::from_hints(self.workloads.iter().map(|w| w.cost_hint(topo)))
        });
        if let Some(o) = self.order_override.as_ref().filter(|_| parallel) {
            let mut check = o.clone();
            check.sort_unstable();
            assert!(
                check.iter().copied().eq(0..self.workloads.len()),
                "order override must be a permutation of 0..{}",
                self.workloads.len()
            );
        }
        let mut cells = Vec::with_capacity(self.workloads.len() * self.seeds.len());
        for &seed in &self.seeds {
            // O(1) either way: snapshots share shards, they don't clone
            // rules — warm rounds no longer pay for the set they've grown.
            let snapshot = match self.mode {
                RuleMode::Cold => base_snapshot.clone(),
                RuleMode::Warm => store.snapshot(),
            };
            // Serial rounds always execute in grid order, so that is what
            // the telemetry must report (overrides only steer `run()`).
            let order = match (&model, self.order_override.as_ref().filter(|_| parallel)) {
                (_, Some(o)) => o.clone(),
                (Some(m), None) => sched::plan(sched_stats.schedule, m),
                (None, None) => (0..self.workloads.len()).collect(),
            };
            let round_start = Instant::now();
            let (round, max_in_flight) = if parallel {
                self.round_parallel(seed, &snapshot, &order)
            } else {
                // Serial rounds drain cells one at a time: a suspended
                // cell is polled to completion before the next starts,
                // so exactly one call is in flight whenever the backend
                // actually suspends, and none on the instant backend.
                let suspends = self
                    .engine
                    .options()
                    .backend_latency
                    .is_some_and(|p| !p.is_instant());
                (self.round_serial(seed, &snapshot), usize::from(suspends))
            };
            let makespan_secs = round_start.elapsed().as_secs_f64();
            let cell_secs: Vec<f64> = round.iter().map(|(_, s)| *s).collect();
            if let Some(m) = model.as_mut() {
                for (i, &secs) in cell_secs.iter().enumerate() {
                    m.observe(i, secs);
                }
            }
            let busy: f64 = cell_secs.iter().sum();
            sched_stats.rounds.push(RoundSched {
                seed,
                order,
                cell_secs,
                makespan_secs,
                utilization: busy / (workers as f64 * makespan_secs).max(f64::MIN_POSITIVE),
                max_in_flight,
            });
            // Merge learnings in grid order — deterministic regardless of
            // which thread finished first. Only the shards the new rules
            // land in are copied; outstanding snapshots are untouched.
            for (cell, _) in &round {
                store.merge(cell.run.new_rules.clone());
            }
            cells.extend(round.into_iter().map(|(cell, _)| cell));
        }
        CampaignReport {
            cells,
            rules: store.to_rule_set(),
            rule_store: store,
            sched_stats,
        }
    }

    /// Run the grid with deterministic parallel execution.
    pub fn run(&self) -> CampaignReport {
        self.execute(true)
    }

    /// Run the grid serially (same result as [`Campaign::run`]).
    pub fn run_serial(&self) -> CampaignReport {
        self.execute(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StellarBuilder;

    fn engine() -> Stellar {
        StellarBuilder::new().build()
    }

    #[test]
    fn cold_campaign_aggregates_cells() {
        let e = engine();
        let report = Campaign::new(&e)
            .kinds(&[WorkloadKind::Ior16M, WorkloadKind::MdWorkbench8K], 0.1)
            .seeds([1])
            .run();
        assert_eq!(report.cells.len(), 2);
        assert!(report.mean_best_speedup() > 1.0);
        assert!(report.total_evaluations() > report.cells.len());
        let (tuning, analysis) = report.total_usage();
        assert!(tuning.calls > 0 && analysis.calls > 0);
        assert_eq!(report.cells_for("IOR_16M").len(), 1);
        assert!(report.best_cell().is_some());
        assert!(report.render().contains("mean speedup"));
    }

    #[test]
    fn warm_mode_passes_rules_to_later_rounds() {
        let e = engine();
        let base = Campaign::new(&e)
            .kinds(&[WorkloadKind::Ior16M], 0.1)
            .seeds([1, 2])
            .rule_mode(RuleMode::Warm)
            .run_serial();
        // Round 1 learned striping rules; round 2 consulted them, so its
        // first attempt must already be primed (rule-primed first guesses
        // are the Fig. 6 mechanism).
        assert!(!base.rules.is_empty(), "warm campaign accumulates rules");
        let round2 = &base.cells[1];
        let first = round2.run.attempts.first().expect("round 2 tuned");
        assert!(
            first.speedup > 2.0,
            "rule-primed first attempt, got x{:.2}",
            first.speedup
        );
    }

    #[test]
    fn cell_seeds_are_position_independent() {
        let e = engine();
        let c = Campaign::new(&e)
            .kinds(&[WorkloadKind::Ior16M, WorkloadKind::Macsio16M], 0.1)
            .seeds([7]);
        assert_ne!(c.cell_seed(7, 0), c.cell_seed(7, 1));
        assert_ne!(c.cell_seed(7, 0), c.cell_seed(8, 0));
    }

    #[test]
    #[should_panic(expected = "campaign grid is empty")]
    fn empty_grid_panics() {
        let e = engine();
        let _ = Campaign::new(&e).run();
    }

    /// The satellite fix for the silent `available_parallelism` fallback:
    /// the report must say which policy ran, over how many workers, and
    /// what each round's makespan and utilization were.
    #[test]
    fn report_records_scheduling_telemetry() {
        let e = engine();
        let report = Campaign::new(&e)
            .kinds(&[WorkloadKind::Ior16M, WorkloadKind::MdWorkbench8K], 0.08)
            .seeds([1, 2])
            .threads(2)
            .schedule(Schedule::Lpt)
            .run();
        let s = &report.sched_stats;
        assert_eq!(s.schedule, Schedule::Lpt);
        assert_eq!(s.threads_requested, 2);
        assert_eq!(s.workers, 2);
        assert!(!s.parallelism_fallback, "explicit threads() is no fallback");
        assert_eq!(s.rounds.len(), 2);
        for r in &s.rounds {
            assert_eq!(r.cell_secs.len(), 2);
            assert!(r.makespan_secs > 0.0);
            assert!(r.cell_secs.iter().all(|&c| c > 0.0));
            assert!(r.utilization > 0.0 && r.utilization <= 1.0 + 1e-9);
            // LPT claims the heavy MDWorkbench cell (grid index 1) first —
            // from the static hint in round 1, from measurement in round 2.
            assert_eq!(r.order[0], 1, "seed {}: order {:?}", r.seed, r.order);
        }
        assert!(s.total_busy_secs() > 0.0);
        assert!(s.render().contains("sched: lpt over 2 worker(s)"));
        // render() stays timing-free so identical grids render
        // bit-identically across reruns.
        assert!(!report.render().contains("sched:"));
    }

    /// Serial runs record telemetry too, pinned to one worker in grid
    /// order, so serial/parallel comparisons read off one report shape.
    #[test]
    fn serial_sched_stats_use_one_worker() {
        let e = engine();
        let report = Campaign::new(&e)
            .kinds(&[WorkloadKind::Ior16M], 0.08)
            .seeds([5])
            .run_serial();
        let s = &report.sched_stats;
        assert_eq!(s.schedule, Schedule::Fifo);
        assert_eq!(s.workers, 1);
        assert_eq!(s.rounds[0].order, vec![0]);
        assert!(s.mean_utilization() > 0.9, "serial rounds have no idle");
    }

    /// Order overrides steer `run()` only: serial rounds execute — and
    /// report — grid order, without validating the unused override.
    #[test]
    fn serial_ignores_order_override() {
        let e = engine();
        let report = Campaign::new(&e)
            .kinds(&[WorkloadKind::Ior16M, WorkloadKind::Macsio16M], 0.05)
            .seeds([3])
            .order_override(vec![9, 9])
            .run_serial();
        assert_eq!(report.sched_stats.rounds[0].order, vec![0, 1]);
    }
}
