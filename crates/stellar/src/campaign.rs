//! Campaigns: workload × seed grids over one engine.
//!
//! A [`Campaign`] runs a full grid of tuning runs — every configured
//! workload at every configured seed — with deterministic parallel
//! execution and shared rule-set accumulation, aggregating into a
//! [`CampaignReport`]. This is the substrate behind the paper's Fig. 6/7
//! rule-set sweeps and the multi-workload serving path on the roadmap.
//!
//! ## Determinism
//!
//! Per-cell seeds are derived with [`simcore::rng::combine`] from the
//! grid seed, the workload name and the cell's position, so a cell's
//! noise stream is independent of which thread executes it (the fully
//! derived seed bypasses the engine's `SeedPolicy`). Rule sharing
//! is round-structured (see [`RuleMode`]): within a round every cell reads
//! the *same* starting snapshot, and learned rules merge in grid order
//! after the round. [`Campaign::run`] (parallel) and
//! [`Campaign::run_serial`] therefore produce identical reports — asserted
//! by the `campaign_determinism` integration test.
//!
//! ## Rule storage
//!
//! Accumulated rules live in a [`ShardedRuleStore`] keyed by context-tag
//! signature and the engine's topology bucket. Round snapshots are O(1)
//! [`RuleSnapshot`]s — warm rounds no longer clone the whole rule set per
//! cell, so campaign cost stays flat as the store grows (see the
//! `rule_store` bench). Round merges touch only the shards the learned
//! rules land in, and merge order stays the grid order, keeping
//! serial == parallel.

use crate::engine::{Stellar, TuningRun};
use agents::{RuleSet, RuleSnapshot, ShardedRuleStore};
use llmsim::UsageMeter;
use simcore::rng::{combine, stable_hash};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use workloads::{Workload, WorkloadKind};

/// How cells share the accumulating rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RuleMode {
    /// Every cell starts from the campaign's starting rules; runs learn
    /// independently (the Fig. 5/7 "without rules" regime).
    #[default]
    Cold,
    /// Rounds accumulate: all cells of seed-round *r* start from the rules
    /// accumulated through round *r − 1*, and their learned rules merge —
    /// in grid order — before round *r + 1* (the Fig. 6 regime, made
    /// deterministic under parallelism).
    Warm,
}

/// One completed grid cell.
#[derive(Debug, Clone)]
pub struct CampaignCell {
    /// Workload label.
    pub workload: String,
    /// The grid seed this cell ran under.
    pub seed: u64,
    /// The derived per-cell seed actually passed to the session.
    pub cell_seed: u64,
    /// The finished tuning run.
    pub run: TuningRun,
}

/// Aggregated campaign outcome.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// All cells, in grid order (seed-major, then workload).
    pub cells: Vec<CampaignCell>,
    /// The final rule set (starting rules plus merged learnings), as the
    /// flat serialization façade — save this with [`RuleSet::to_json`].
    pub rules: RuleSet,
    /// The same final rules in sharded form, for O(1) snapshots into
    /// follow-up campaigns and per-shard introspection
    /// ([`ShardedRuleStore::census`]; the CLI's `campaign --rule-shards`).
    pub rule_store: ShardedRuleStore,
}

impl CampaignReport {
    /// Mean best speedup across cells.
    pub fn mean_best_speedup(&self) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        self.cells.iter().map(|c| c.run.best_speedup).sum::<f64>() / self.cells.len() as f64
    }

    /// Total configuration attempts consumed.
    pub fn total_attempts(&self) -> usize {
        self.cells.iter().map(|c| c.run.attempts.len()).sum()
    }

    /// Total application executions (initial runs + attempts).
    pub fn total_evaluations(&self) -> usize {
        self.cells.len() + self.total_attempts()
    }

    /// Summed token usage across cells: `(tuning, analysis)`.
    pub fn total_usage(&self) -> (UsageMeter, UsageMeter) {
        let mut tuning = UsageMeter::default();
        let mut analysis = UsageMeter::default();
        for c in &self.cells {
            merge_usage(&mut tuning, &c.run.tuning_usage);
            merge_usage(&mut analysis, &c.run.analysis_usage);
        }
        (tuning, analysis)
    }

    /// Cells for one workload label, in grid order.
    pub fn cells_for(&self, workload: &str) -> Vec<&CampaignCell> {
        self.cells
            .iter()
            .filter(|c| c.workload == workload)
            .collect()
    }

    /// The best-performing cell, if any.
    pub fn best_cell(&self) -> Option<&CampaignCell> {
        self.cells.iter().max_by(|a, b| {
            a.run
                .best_speedup
                .partial_cmp(&b.run.best_speedup)
                .expect("finite")
        })
    }

    /// Fixed-width text summary (one row per cell).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:>10} {:>8} {:>9} {:>9}\n",
            "workload", "seed", "attempts", "best", "speedup"
        ));
        for c in &self.cells {
            out.push_str(&format!(
                "{:<18} {:>10} {:>8} {:>8.3}s {:>8.2}x\n",
                c.workload,
                c.seed,
                c.run.attempts.len(),
                c.run.best_wall,
                c.run.best_speedup
            ));
        }
        out.push_str(&format!(
            "mean speedup x{:.2} over {} cells ({} evaluations); {} rules accumulated in {} shards\n",
            self.mean_best_speedup(),
            self.cells.len(),
            self.total_evaluations(),
            self.rules.len(),
            self.rule_store.shard_count()
        ));
        out
    }
}

fn merge_usage(into: &mut UsageMeter, from: &UsageMeter) {
    into.calls += from.calls;
    into.input_tokens += from.input_tokens;
    into.cached_input_tokens += from.cached_input_tokens;
    into.output_tokens += from.output_tokens;
}

/// A configurable workload × seed grid. See the module docs.
pub struct Campaign<'e> {
    engine: &'e Stellar,
    workloads: Vec<Box<dyn Workload>>,
    seeds: Vec<u64>,
    mode: RuleMode,
    base_rules: RuleSet,
    threads: usize,
}

impl<'e> Campaign<'e> {
    /// Empty campaign over `engine`: cold rules, hardware-sized thread
    /// pool, no cells until workloads and seeds are added.
    pub fn new(engine: &'e Stellar) -> Self {
        Campaign {
            engine,
            workloads: Vec::new(),
            seeds: Vec::new(),
            mode: RuleMode::Cold,
            base_rules: RuleSet::new(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// Add one workload to the grid.
    pub fn workload(mut self, w: Box<dyn Workload>) -> Self {
        self.workloads.push(w);
        self
    }

    /// Add the named suite workloads at `scale` (1.0 = paper scale).
    pub fn kinds(mut self, kinds: &[WorkloadKind], scale: f64) -> Self {
        for kind in kinds {
            self.workloads.push(kind.spec_at(scale));
        }
        self
    }

    /// Grid seeds; each seed is one round across every workload.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds.extend(seeds);
        self
    }

    /// Rule-sharing mode (default [`RuleMode::Cold`]).
    pub fn rule_mode(mut self, mode: RuleMode) -> Self {
        self.mode = mode;
        self
    }

    /// Rules every cell (cold) or the first round (warm) starts from.
    pub fn starting_rules(mut self, rules: RuleSet) -> Self {
        self.base_rules = rules;
        self
    }

    /// Worker-thread cap for [`Campaign::run`] (at least 1).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// The derived seed for a cell, independent of execution order.
    fn cell_seed(&self, seed: u64, workload_idx: usize) -> u64 {
        combine(
            combine(seed, stable_hash(&self.workloads[workload_idx].name())),
            workload_idx as u64,
        )
    }

    fn run_cell(&self, seed: u64, workload_idx: usize, rules: &RuleSnapshot) -> CampaignCell {
        let w = &self.workloads[workload_idx];
        let cell_seed = self.cell_seed(seed, workload_idx);
        // The cell seed is fully derived (workload name + grid position
        // already mixed in), so bypass the engine's SeedPolicy instead of
        // letting PerWorkload hash the name in a second time. The snapshot
        // clone is O(1): cells share the round's shards, not copies.
        let run = crate::session::TuningSession::with_run_seed(
            self.engine,
            w.as_ref(),
            rules.clone(),
            cell_seed,
        )
        .drain();
        CampaignCell {
            workload: w.name(),
            seed,
            cell_seed,
            run,
        }
    }

    /// One round (all workloads at one seed), parallel across `threads`.
    fn round_parallel(&self, seed: u64, rules: &RuleSnapshot) -> Vec<CampaignCell> {
        let n = self.workloads.len();
        let results: Mutex<Vec<Option<CampaignCell>>> = Mutex::new((0..n).map(|_| None).collect());
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(n).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let cell = self.run_cell(seed, i, rules);
                    results.lock().expect("no poisoned workers")[i] = Some(cell);
                });
            }
        });
        results
            .into_inner()
            .expect("scope joined")
            .into_iter()
            .map(|c| c.expect("every cell executed"))
            .collect()
    }

    fn round_serial(&self, seed: u64, rules: &RuleSnapshot) -> Vec<CampaignCell> {
        (0..self.workloads.len())
            .map(|i| self.run_cell(seed, i, rules))
            .collect()
    }

    fn execute(&self, parallel: bool) -> CampaignReport {
        assert!(
            !self.workloads.is_empty() && !self.seeds.is_empty(),
            "campaign grid is empty: add workloads and seeds"
        );
        let mut store = ShardedRuleStore::for_topology(self.engine.sim().topology().ost_count())
            .with_rules(&self.base_rules);
        // Cold rounds always start from the pre-campaign state; taking the
        // snapshot once up front shares it across every round for free.
        let base_snapshot = store.snapshot();
        let mut cells = Vec::with_capacity(self.workloads.len() * self.seeds.len());
        for &seed in &self.seeds {
            // O(1) either way: snapshots share shards, they don't clone
            // rules — warm rounds no longer pay for the set they've grown.
            let snapshot = match self.mode {
                RuleMode::Cold => base_snapshot.clone(),
                RuleMode::Warm => store.snapshot(),
            };
            let round = if parallel {
                self.round_parallel(seed, &snapshot)
            } else {
                self.round_serial(seed, &snapshot)
            };
            // Merge learnings in grid order — deterministic regardless of
            // which thread finished first. Only the shards the new rules
            // land in are copied; outstanding snapshots are untouched.
            for cell in &round {
                store.merge(cell.run.new_rules.clone());
            }
            cells.extend(round);
        }
        CampaignReport {
            cells,
            rules: store.to_rule_set(),
            rule_store: store,
        }
    }

    /// Run the grid with deterministic parallel execution.
    pub fn run(&self) -> CampaignReport {
        self.execute(true)
    }

    /// Run the grid serially (same result as [`Campaign::run`]).
    pub fn run_serial(&self) -> CampaignReport {
        self.execute(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StellarBuilder;

    fn engine() -> Stellar {
        StellarBuilder::new().build()
    }

    #[test]
    fn cold_campaign_aggregates_cells() {
        let e = engine();
        let report = Campaign::new(&e)
            .kinds(&[WorkloadKind::Ior16M, WorkloadKind::MdWorkbench8K], 0.1)
            .seeds([1])
            .run();
        assert_eq!(report.cells.len(), 2);
        assert!(report.mean_best_speedup() > 1.0);
        assert!(report.total_evaluations() > report.cells.len());
        let (tuning, analysis) = report.total_usage();
        assert!(tuning.calls > 0 && analysis.calls > 0);
        assert_eq!(report.cells_for("IOR_16M").len(), 1);
        assert!(report.best_cell().is_some());
        assert!(report.render().contains("mean speedup"));
    }

    #[test]
    fn warm_mode_passes_rules_to_later_rounds() {
        let e = engine();
        let base = Campaign::new(&e)
            .kinds(&[WorkloadKind::Ior16M], 0.1)
            .seeds([1, 2])
            .rule_mode(RuleMode::Warm)
            .run_serial();
        // Round 1 learned striping rules; round 2 consulted them, so its
        // first attempt must already be primed (rule-primed first guesses
        // are the Fig. 6 mechanism).
        assert!(!base.rules.is_empty(), "warm campaign accumulates rules");
        let round2 = &base.cells[1];
        let first = round2.run.attempts.first().expect("round 2 tuned");
        assert!(
            first.speedup > 2.0,
            "rule-primed first attempt, got x{:.2}",
            first.speedup
        );
    }

    #[test]
    fn cell_seeds_are_position_independent() {
        let e = engine();
        let c = Campaign::new(&e)
            .kinds(&[WorkloadKind::Ior16M, WorkloadKind::Macsio16M], 0.1)
            .seeds([7]);
        assert_ne!(c.cell_seed(7, 0), c.cell_seed(7, 1));
        assert_ne!(c.cell_seed(7, 0), c.cell_seed(8, 0));
    }

    #[test]
    #[should_panic(expected = "campaign grid is empty")]
    fn empty_grid_panics() {
        let e = engine();
        let _ = Campaign::new(&e).run();
    }
}
