//! The replicated measurement protocol of §5.1: eight runs per
//! configuration, mean with 90% confidence interval, fresh file-system state
//! per run. Replications execute in parallel (rayon).

use pfs::params::TuningConfig;
use pfs::PfsSimulator;
use rayon::prelude::*;
use simcore::rng::{combine, stable_hash};
use simcore::stats::Accumulator;
use workloads::Workload;

/// Replications per configuration (the paper's protocol).
pub const DEFAULT_REPS: usize = 8;

/// Measure `workload` under `cfg`: per-rep wall times and the accumulator.
/// `label` keys the seed stream so different experiments never share noise.
pub fn measure(
    sim: &PfsSimulator,
    workload: &dyn Workload,
    cfg: &TuningConfig,
    reps: usize,
    label: &str,
) -> (Accumulator, Vec<f64>) {
    let base = combine(stable_hash(label), stable_hash(&workload.name()));
    let walls: Vec<f64> = (0..reps)
        .into_par_iter()
        .map(|rep| {
            let seed = combine(base, rep as u64 + 1);
            let streams = workload.generate(sim.topology(), base);
            sim.run(streams, cfg, seed).wall_secs
        })
        .collect();
    let mut acc = Accumulator::new();
    for &w in &walls {
        acc.add(w);
    }
    (acc, walls)
}

/// Single evaluation (used inside search loops): mean of `reps` runs.
pub fn evaluate(
    sim: &PfsSimulator,
    workload: &dyn Workload,
    cfg: &TuningConfig,
    reps: usize,
    label: &str,
) -> f64 {
    measure(sim, workload, cfg, reps, label).0.mean()
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::WorkloadKind;

    #[test]
    fn measurement_is_reproducible_and_noisy() {
        let sim = PfsSimulator::new(crate::engine::default_topology());
        let w = WorkloadKind::Ior16M.spec().scaled(0.05);
        let cfg = TuningConfig::lustre_default();
        let (a, walls_a) = measure(&sim, w.as_ref(), &cfg, 4, "test");
        let (b, walls_b) = measure(&sim, w.as_ref(), &cfg, 4, "test");
        assert_eq!(walls_a, walls_b, "same label => same seeds");
        assert_eq!(a.count(), 4);
        // Run-to-run noise exists across replications.
        assert!(a.std_dev() > 0.0);
        let (c, _) = measure(&sim, w.as_ref(), &cfg, 4, "other-label");
        assert_ne!(b.mean().to_bits(), c.mean().to_bits());
    }

    #[test]
    fn ci_shrinks_with_more_reps() {
        // A single salt can get an unluckily tight 3-rep draw, so assert
        // the statistical property on the mean ratio across several
        // independent noise streams instead of one hand-picked seed.
        let sim = PfsSimulator::new(crate::engine::default_topology());
        let w = WorkloadKind::Macsio16M.spec().scaled(0.2);
        let cfg = TuningConfig::lustre_default();
        let salts = ["ci-a", "ci-b", "ci-c", "ci-d"];
        let mean_ratio: f64 = salts
            .iter()
            .map(|salt| {
                let (small, _) = measure(&sim, w.as_ref(), &cfg, 3, salt);
                let (big, _) = measure(&sim, w.as_ref(), &cfg, 12, salt);
                big.ci90_half_width() / small.ci90_half_width().max(1e-12)
            })
            .sum::<f64>()
            / salts.len() as f64;
        assert!(
            mean_ratio < 1.0,
            "mean CI ratio {mean_ratio:.3} (12 vs 3 reps)"
        );
    }
}
