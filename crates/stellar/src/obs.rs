//! Observability: structured run records and live campaign progress.
//!
//! Everything the engine streams through [`crate::RunObserver`] and
//! [`crate::CampaignObserver`] can be captured as a durable, typed,
//! machine-checkable artifact — one JSON object per line (JSONL). The
//! module supplies the three consumers the ROADMAP's "observer-driven
//! UIs" item called for:
//!
//! * [`JsonlEmitter`] — an observer that streams every event as a
//!   [`RecordLine`] (CLI `tune --emit` / `campaign --emit`);
//! * [`ProgressRenderer`] — an observer that draws a live per-worker /
//!   per-round status board on stderr (CLI `campaign --progress`);
//! * [`RunRecord`] — the parsed form of an emitted file, able to
//!   re-render the run summary from the record alone (the
//!   `stellar-replay` binary).
//!
//! ## The determinism contract
//!
//! Every line splits into a **canonical** part (`e`, an [`ObsEvent`]) and
//! a **sidecar** part (`t`, a [`Sidecar`]). The canonical stream is
//! *deterministic by construction*: field order is fixed by declaration
//! order, no wall-clock values appear (simulated seconds are results, not
//! timings), session events are latency-invariant (PR 4's seam), and
//! campaign cell events are delivered in grid order at each round's
//! barrier rather than in completion order. Everything measured from the
//! host — elapsed time, worker claims, suspensions, execution order,
//! scheduler telemetry — lives in the sidecar.
//!
//! Strip the sidecar and the record is byte-identical across serial,
//! parallel and latency-injected runs of the same seeded grid:
//!
//! ```sh
//! jq -c 'select(.e != null) | del(.t)' run.jsonl
//! ```
//!
//! which is exactly what the CI `determinism` job diffs (and what
//! [`RunRecord::canonical_jsonl`] reproduces without jq).
//!
//! ## Schema versioning
//!
//! Every line carries `v:` [`SCHEMA_VERSION`]. The version bumps on any
//! change that could alter the meaning of an existing field or the
//! canonical byte stream of an unchanged run — adding an event *variant*
//! included, because externally tagged enums make unknown variants a
//! parse error. Parsers accept exactly their own version: a replay tool
//! from the future must say "record is v1, I speak v2", never guess.

use crate::campaign::{CampaignCell, CampaignGrid, CampaignObserver, CampaignReport, CellFailure};
use crate::engine::{AttemptRecord, TuningRun};
use crate::sched::{RoundSched, Schedule};
use crate::session::{RunObserver, SessionError, SessionEvent};
use agents::{AnalysisQuestion, Answer, IoReport};
use llmsim::{CallError, CallHandle, UsageMeter};
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{BufWriter, IsTerminal, Write};
use std::path::Path;
use std::time::Instant;

/// Version stamped on every emitted [`RecordLine`] (see the module docs
/// for the bump policy).
///
/// v2: [`ObsEvent::SessionStart`] gained `scenario` (the run regime's
/// scenario labels) and [`ObsEvent::CampaignStart`] gained `faults` (the
/// engine's fault-plan label) — both canonical, since faulted and
/// pristine runs must not record identically.
///
/// v3: the failure domain. New canonical variants [`ObsEvent::Retry`]
/// (a transient backend failure consumed a retry attempt),
/// [`ObsEvent::SessionFailed`] (a session ended with a structured
/// [`SessionError`]) and [`ObsEvent::CellFailed`] (a campaign cell was
/// isolated); [`ObsEvent::CampaignStart`] gained `injection` and `retry`
/// (the failure-injection and retry-policy labels — canonical, because
/// injection changes which cells fail) and [`ObsEvent::CampaignEnd`]
/// gained `failed`. Externally tagged enums make new variants a parse
/// error for old readers, hence the bump.
pub const SCHEMA_VERSION: u32 = 3;

/// A canonical (deterministic) run-record event.
///
/// Session-level variants mirror [`SessionEvent`] — except `Waiting`,
/// which is a scheduling artifact and therefore lives in the sidecar as
/// [`SchedNote::Waiting`], exactly as the live observer API splits
/// [`RunObserver::on_event`] from [`RunObserver::on_waiting`]. Campaign
/// variants are produced by the [`CampaignObserver`] callbacks that fire
/// in grid order on the coordinating thread.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ObsEvent {
    /// A tuning session opened (workload label + fully derived run seed).
    SessionStart {
        /// Workload label.
        workload: String,
        /// The session's fully derived run seed.
        run_seed: u64,
        /// Scenario labels of the run regime (`"degraded-topology"`,
        /// `"noisy-neighbor"`), empty for a pristine single-job run.
        /// Canonical: rules learned under a scenario shard separately,
        /// so the record must say which regime produced it.
        scenario: Vec<String>,
    },
    /// The initial default-configuration execution.
    InitialRun {
        /// Simulated wall time, seconds (a result, not a host timing).
        wall_secs: f64,
    },
    /// The Analysis Agent's initial I/O report.
    AnalysisReport {
        /// The report.
        report: IoReport,
    },
    /// One minor-loop exchange.
    MinorLoop {
        /// The question the Tuning Agent posed.
        question: AnalysisQuestion,
        /// The Analysis Agent's answer.
        answer: Answer,
    },
    /// One configuration attempt.
    Attempt {
        /// The attempt record (config, simulated wall time, speedup).
        record: AttemptRecord,
    },
    /// One transcript line the Tuning Agent narrated.
    Transcript {
        /// The line.
        line: String,
    },
    /// Token-usage growth since the previous `Usage` event of this
    /// session (deltas, not totals — sum them to reconstruct the meters).
    Usage {
        /// Tuning Agent usage delta.
        tuning: UsageMeter,
        /// Analysis Agent usage delta.
        analysis: UsageMeter,
    },
    /// A transient backend failure consumed a retry attempt and the call
    /// was resubmitted. **Canonical**: failure verdicts are drawn per
    /// submission index, so the retry sequence is latency- and
    /// execution-shape-invariant (see [`RunObserver::on_retry`]).
    Retry {
        /// Turn label of the retried logical call.
        context: String,
        /// 1-based submission number of the resubmission.
        attempt: u32,
        /// What the previous submission failed with.
        error: CallError,
    },
    /// The session concluded.
    SessionEnd {
        /// End-Tuning justification (or abort reason).
        reason: String,
    },
    /// The session ended with a structured failure instead of a run —
    /// terminal, in place of [`ObsEvent::SessionEnd`].
    SessionFailed {
        /// What ended the session.
        error: SessionError,
    },
    /// A campaign grid is about to execute. Deliberately excludes worker
    /// count and schedule policy — execution details are sidecar-only, so
    /// serial and parallel runs stay canonically identical.
    CampaignStart {
        /// Workload labels, grid order.
        workloads: Vec<String>,
        /// Grid seeds, round order.
        seeds: Vec<u64>,
        /// Rule-sharing mode label (`cold` / `warm`).
        mode: String,
        /// Label of the engine's fault plan, `None` on a pristine
        /// cluster. Canonical — faults change simulated results.
        faults: Option<String>,
        /// Label of the engine's failure injection, `None` on a perfect
        /// backend. Canonical — injection changes which cells fail.
        injection: Option<String>,
        /// Label of the engine's retry policy, present exactly when
        /// `injection` is. Canonical — the budget decides survival.
        retry: Option<String>,
    },
    /// A seed round is about to execute.
    RoundStart {
        /// The round's grid seed.
        seed: u64,
    },
    /// One finished campaign cell, in grid order at the round barrier.
    CellFinished {
        /// Workload label.
        workload: String,
        /// Grid seed.
        seed: u64,
        /// Derived per-cell seed.
        cell_seed: u64,
        /// The complete tuning run, transcript and usage included.
        run: TuningRun,
    },
    /// One *failed* campaign cell, in grid order at the round barrier —
    /// the isolated sibling of [`ObsEvent::CellFinished`].
    CellFailed {
        /// Workload label.
        workload: String,
        /// Grid seed.
        seed: u64,
        /// Derived per-cell seed.
        cell_seed: u64,
        /// What isolated the cell.
        failure: CellFailure,
    },
    /// One cell's learned rules merged into the campaign store.
    RuleMerge {
        /// Workload whose rules merged.
        workload: String,
        /// Rules the cell learned.
        added: usize,
        /// Store size after the merge.
        total: usize,
    },
    /// The campaign's aggregate outcome.
    CampaignEnd {
        /// Cells executed (finished and failed).
        cells: usize,
        /// Application executions (initial runs + attempts) of finished
        /// cells.
        evaluations: usize,
        /// Mean best speedup across finished cells.
        mean_best_speedup: f64,
        /// Final rule count.
        rules: usize,
        /// Final shard count.
        shards: usize,
        /// Cells that failed (0 on a clean campaign).
        failed: usize,
    },
}

/// A scheduling/timing note — the non-deterministic half of the record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SchedNote {
    /// The session is suspended on an in-flight backend call.
    Waiting {
        /// Raw call handle id.
        call: u64,
    },
    /// The execution order planned for a round.
    RoundPlanned {
        /// Grid seed.
        seed: u64,
        /// Ordering policy label.
        schedule: String,
        /// Grid indices, first-claimed first.
        order: Vec<usize>,
    },
    /// A worker claimed a cell.
    CellClaimed {
        /// Worker index.
        worker: usize,
        /// Grid seed.
        seed: u64,
        /// Grid index of the cell.
        grid_idx: usize,
        /// Workload label.
        workload: String,
    },
    /// A cell suspended on an in-flight backend call.
    CellSuspended {
        /// Worker index.
        worker: usize,
        /// Grid seed.
        seed: u64,
        /// Grid index of the cell.
        grid_idx: usize,
        /// Raw call handle id.
        call: u64,
    },
    /// A worker finished a cell.
    CellPublished {
        /// Worker index.
        worker: usize,
        /// Grid seed.
        seed: u64,
        /// Grid index of the cell.
        grid_idx: usize,
        /// Active stepping time the worker spent on the cell.
        busy_secs: f64,
    },
    /// A round's measured scheduling record.
    RoundStats {
        /// Grid seed.
        seed: u64,
        /// Measured round duration, host seconds.
        makespan_secs: f64,
        /// Worker busy fraction.
        utilization: f64,
        /// Peak simultaneously in-flight backend calls on one worker.
        max_in_flight: usize,
        /// Active per-cell seconds, grid order.
        cell_secs: Vec<f64>,
    },
}

/// The timing sidecar attached to every line. The determinism diff
/// strips this field wholesale (`jq 'del(.t)'`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sidecar {
    /// Host seconds elapsed since the previous emitted line.
    pub host_secs: f64,
    /// Scheduling note, when this line is telemetry rather than a
    /// canonical event.
    pub note: Option<SchedNote>,
}

/// One line of a run record: schema version, optional canonical event,
/// optional sidecar. Emitted lines always carry the sidecar; exactly one
/// of `e`/`t.note` is populated per line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordLine {
    /// Schema version ([`SCHEMA_VERSION`] at emission time).
    pub v: u32,
    /// Canonical event (`null` on telemetry-only lines).
    pub e: Option<ObsEvent>,
    /// Timing sidecar.
    pub t: Option<Sidecar>,
}

/// The stripped form the determinism diff compares: version + canonical
/// event, sidecar removed. Serialized, this matches
/// `jq -c 'select(.e != null) | del(.t)'` byte for byte. (Hand-written
/// impl: the vendored serde derive does not support lifetime generics.)
struct CanonLine<'a> {
    v: u32,
    e: &'a ObsEvent,
}

impl Serialize for CanonLine<'_> {
    fn to_content(&self) -> serde::Content {
        serde::Content::Map(vec![
            ("v".to_string(), self.v.to_content()),
            ("e".to_string(), self.e.to_content()),
        ])
    }
}

/// A parsed run record: the typed form of an emitted JSONL file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunRecord {
    /// Every line, in file order.
    pub lines: Vec<RecordLine>,
}

impl RunRecord {
    /// Parse a JSONL document. Rejects lines whose schema version is not
    /// exactly [`SCHEMA_VERSION`] (see the module docs' version policy)
    /// and reports the first malformed line with its 1-based number.
    pub fn parse(text: &str) -> Result<RunRecord, String> {
        /// Version-only probe, checked *before* the full line parses: a
        /// future-version record with event variants this reader doesn't
        /// know must report the version mismatch, not an unknown-variant
        /// parse error.
        #[derive(Deserialize)]
        struct VersionProbe {
            v: u32,
        }
        let mut lines = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            if raw.trim().is_empty() {
                continue;
            }
            let probe: VersionProbe =
                serde_json::from_str(raw).map_err(|e| format!("line {}: {e}", i + 1))?;
            if probe.v != SCHEMA_VERSION {
                return Err(format!(
                    "line {}: record is schema v{}, this reader speaks v{SCHEMA_VERSION}",
                    i + 1,
                    probe.v
                ));
            }
            let line: RecordLine =
                serde_json::from_str(raw).map_err(|e| format!("line {}: {e}", i + 1))?;
            lines.push(line);
        }
        Ok(RunRecord { lines })
    }

    /// Read and parse a record file.
    pub fn load(path: impl AsRef<Path>) -> Result<RunRecord, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::parse(&text)
    }

    /// Parse a *partial* record — one whose writer was interrupted
    /// mid-line. Exactly like [`RunRecord::parse`], except a malformed
    /// **final** line (the torn write) is dropped instead of failing the
    /// parse. Corruption anywhere else is still an error: only the tail
    /// of an append-only file can be crash-torn. This is the entry point
    /// [`crate::Campaign::resume_from`] expects.
    pub fn parse_partial(text: &str) -> Result<RunRecord, String> {
        match Self::parse(text) {
            Ok(record) => Ok(record),
            Err(err) => {
                let last_line = text
                    .lines()
                    .enumerate()
                    .filter(|(_, raw)| !raw.trim().is_empty())
                    .map(|(i, _)| i + 1)
                    .last();
                let torn_tail = last_line.is_some_and(|n| err.starts_with(&format!("line {n}:")));
                if !torn_tail {
                    return Err(err);
                }
                let keep: String = text
                    .lines()
                    .take(last_line.expect("checked above") - 1)
                    .flat_map(|l| [l, "\n"])
                    .collect();
                Self::parse(&keep)
            }
        }
    }

    /// Read and partially parse a record file (see
    /// [`RunRecord::parse_partial`]).
    pub fn load_partial(path: impl AsRef<Path>) -> Result<RunRecord, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::parse_partial(&text)
    }

    /// Re-emit the record as JSONL, byte-identical to what the emitter
    /// wrote (the round-trip property test pins `parse ∘ to_jsonl` as the
    /// identity).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(&serde_json::to_string(line).expect("record serializes"));
            out.push('\n');
        }
        out
    }

    /// The canonical stream: every event-bearing line with the sidecar
    /// stripped — the same bytes the CI determinism job produces with
    /// `jq -c 'select(.e != null) | del(.t)'` (modulo jq's own number
    /// re-rendering, which is applied uniformly to both sides of its
    /// diff).
    pub fn canonical_jsonl(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            if let Some(e) = &line.e {
                let canon = CanonLine { v: line.v, e };
                out.push_str(&serde_json::to_string(&canon).expect("record serializes"));
                out.push('\n');
            }
        }
        out
    }

    /// Canonical events, in record order.
    pub fn events(&self) -> impl Iterator<Item = &ObsEvent> {
        self.lines.iter().filter_map(|l| l.e.as_ref())
    }

    /// Sidecar notes, in record order.
    pub fn notes(&self) -> impl Iterator<Item = &SchedNote> {
        self.lines
            .iter()
            .filter_map(|l| l.t.as_ref().and_then(|t| t.note.as_ref()))
    }

    /// Total host seconds across all lines' sidecars.
    pub fn host_secs(&self) -> f64 {
        self.lines
            .iter()
            .filter_map(|l| l.t.as_ref().map(|t| t.host_secs))
            .sum()
    }

    /// Re-render the run summary from the record alone.
    ///
    /// For campaign records the per-cell table and trailer reproduce
    /// [`CampaignReport::render`] byte for byte (pinned by
    /// `tests/integration_obs.rs`); session records summarize the
    /// attempts and outcome. A telemetry coda (suspensions, host time)
    /// derived from the sidecar follows either way.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        if self.events().any(|e| {
            matches!(
                e,
                ObsEvent::CellFinished { .. }
                    | ObsEvent::CellFailed { .. }
                    | ObsEvent::CampaignStart { .. }
            )
        }) {
            out.push_str(&self.campaign_table());
        } else {
            out.push_str(&self.session_summary());
        }
        let waits = self
            .notes()
            .filter(|n| {
                matches!(
                    n,
                    SchedNote::Waiting { .. } | SchedNote::CellSuspended { .. }
                )
            })
            .count();
        out.push_str(&format!(
            "record: {} line(s), {} canonical event(s), {} suspension(s), {:.3}s host time\n",
            self.lines.len(),
            self.events().count(),
            waits,
            self.host_secs(),
        ));
        out
    }

    /// The per-cell table + trailer of a campaign record, built from the
    /// same format strings as [`CampaignReport::render`]
    /// (`campaign::table`), so replayed output is byte-identical to the
    /// live report by construction.
    fn campaign_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&crate::campaign::table::header());
        for e in self.events() {
            match e {
                ObsEvent::CellFinished {
                    workload,
                    seed,
                    run,
                    ..
                } => {
                    out.push_str(&crate::campaign::table::row(
                        workload,
                        *seed,
                        run.attempts.len(),
                        run.best_wall,
                        run.best_speedup,
                    ));
                }
                ObsEvent::CellFailed { workload, seed, .. } => {
                    out.push_str(&crate::campaign::table::failed_row(workload, *seed));
                }
                _ => {}
            }
        }
        if let Some(ObsEvent::CampaignEnd {
            cells,
            evaluations,
            mean_best_speedup,
            rules,
            shards,
            failed,
        }) = self
            .events()
            .find(|e| matches!(e, ObsEvent::CampaignEnd { .. }))
        {
            out.push_str(&crate::campaign::table::trailer(
                *mean_best_speedup,
                *cells,
                *evaluations,
                *rules,
                *shards,
                *failed,
            ));
        }
        out
    }

    fn session_summary(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            match e {
                ObsEvent::SessionStart {
                    workload,
                    run_seed,
                    scenario,
                } => {
                    if scenario.is_empty() {
                        out.push_str(&format!("workload: {workload} (run seed {run_seed})\n"));
                    } else {
                        out.push_str(&format!(
                            "workload: {workload} (run seed {run_seed}; scenario: {})\n",
                            scenario.join(", ")
                        ));
                    }
                }
                ObsEvent::InitialRun { wall_secs } => {
                    out.push_str(&format!("default: {wall_secs:.3}s\n"));
                }
                ObsEvent::Attempt { record } => {
                    out.push_str(&format!(
                        "  attempt {}: {:.3}s (x{:.2})\n",
                        record.iteration, record.wall_secs, record.speedup
                    ));
                }
                ObsEvent::Retry {
                    context,
                    attempt,
                    error,
                } => {
                    out.push_str(&format!("  retry {attempt} at {context}: {error}\n"));
                }
                ObsEvent::SessionFailed { error } => {
                    out.push_str(&format!("failed: {error}\n"));
                }
                ObsEvent::SessionEnd { reason } => {
                    let attempts = self
                        .events()
                        .filter(|e| matches!(e, ObsEvent::Attempt { .. }))
                        .count();
                    let best = self
                        .events()
                        .filter_map(|e| match e {
                            ObsEvent::Attempt { record } => Some(record.speedup),
                            _ => None,
                        })
                        .fold(1.0f64, f64::max);
                    out.push_str(&format!(
                        "best: x{best:.2} in {attempts} attempts — {reason}\n"
                    ));
                }
                ObsEvent::RuleMerge { added, total, .. } => {
                    out.push_str(&format!("rules: {added} learned, {total} in store\n"));
                }
                _ => {}
            }
        }
        out
    }
}

/// An observer that streams every event as one JSON object per line.
///
/// Implements both [`RunObserver`] (attach with
/// [`crate::TuningSession::observe`]) and [`CampaignObserver`] (attach
/// with [`crate::Campaign::observe`]); both impls also exist for
/// `&mut JsonlEmitter`, so callers can lend the emitter to a session or
/// campaign and keep using it afterwards (e.g. to append a
/// [`ObsEvent::RuleMerge`] after merging a finished run's rules, as the
/// CLI does).
///
/// Write failures panic: a run record that silently loses lines is worse
/// than no record.
pub struct JsonlEmitter<W: Write> {
    writer: W,
    clock: Instant,
    prev_tuning: UsageMeter,
    prev_analysis: UsageMeter,
    /// The in-flight call already noted as waiting, if any: sessions call
    /// `on_waiting` once per *poll*, but the record notes one line per
    /// *suspension* (matching the campaign side's transition-only
    /// `on_cell_suspended`), so a 50-tick latency doesn't write 50 lines.
    last_wait: Option<u64>,
    lines: u64,
}

impl JsonlEmitter<BufWriter<File>> {
    /// Emitter writing to a freshly created (truncated) file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(JsonlEmitter::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlEmitter<W> {
    /// Emitter over any byte sink.
    pub fn new(writer: W) -> Self {
        JsonlEmitter {
            writer,
            // detlint::allow(D001): the obs sidecar is the one sanctioned home for
            // host timing; canonical events never read this clock
            clock: Instant::now(),
            prev_tuning: UsageMeter::default(),
            prev_analysis: UsageMeter::default(),
            last_wait: None,
            lines: 0,
        }
    }

    /// Lines emitted so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flush the underlying writer.
    pub fn finish(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }

    /// Unwrap the underlying writer (tests read the bytes back).
    pub fn into_inner(self) -> W {
        self.writer
    }

    /// Append a canonical event line.
    pub fn event(&mut self, e: ObsEvent) {
        // Any canonical session event means the suspended turn (if any)
        // completed; the next wait is a new suspension.
        self.last_wait = None;
        self.write_line(Some(e), None);
    }

    /// Note a wait, once per suspension: repeated polls of the same
    /// in-flight call add no lines.
    fn note_waiting(&mut self, call: u64) {
        if self.last_wait != Some(call) {
            self.last_wait = Some(call);
            self.telemetry(SchedNote::Waiting { call });
        }
    }

    /// Append a telemetry-only line.
    pub fn telemetry(&mut self, note: SchedNote) {
        self.write_line(None, Some(note));
    }

    fn write_line(&mut self, e: Option<ObsEvent>, note: Option<SchedNote>) {
        let host_secs = self.clock.elapsed().as_secs_f64();
        // detlint::allow(D001): sidecar `t.host_secs` refresh — stripped by
        // canonical_jsonl(), byte-equality is asserted on the stripped stream
        self.clock = Instant::now();
        let line = RecordLine {
            v: SCHEMA_VERSION,
            e,
            t: Some(Sidecar { host_secs, note }),
        };
        let json = serde_json::to_string(&line).expect("record line serializes");
        writeln!(self.writer, "{json}").expect("run record write failed");
        self.lines += 1;
    }

    /// Emit the delta between the previous and current usage snapshots
    /// (skipped when nothing changed, so waiting polls stay silent).
    fn usage_delta(&mut self, tuning: &UsageMeter, analysis: &UsageMeter) {
        fn delta(now: &UsageMeter, prev: &UsageMeter) -> UsageMeter {
            UsageMeter {
                input_tokens: now.input_tokens - prev.input_tokens,
                cached_input_tokens: now.cached_input_tokens - prev.cached_input_tokens,
                output_tokens: now.output_tokens - prev.output_tokens,
                calls: now.calls - prev.calls,
            }
        }
        let dt = delta(tuning, &self.prev_tuning);
        let da = delta(analysis, &self.prev_analysis);
        if dt == UsageMeter::default() && da == UsageMeter::default() {
            return;
        }
        self.prev_tuning = tuning.clone();
        self.prev_analysis = analysis.clone();
        self.event(ObsEvent::Usage {
            tuning: dt,
            analysis: da,
        });
    }
}

impl<W: Write> RunObserver for JsonlEmitter<W> {
    fn on_session_start(&mut self, workload: &str, run_seed: u64, scenario: &[&'static str]) {
        // Fresh per-session usage baselines: deltas are per session.
        self.prev_tuning = UsageMeter::default();
        self.prev_analysis = UsageMeter::default();
        self.event(ObsEvent::SessionStart {
            workload: workload.to_string(),
            run_seed,
            scenario: scenario.iter().map(|s| s.to_string()).collect(),
        });
    }

    fn on_event(&mut self, event: &SessionEvent) {
        let e = match event {
            SessionEvent::InitialRun { wall_secs } => ObsEvent::InitialRun {
                wall_secs: *wall_secs,
            },
            SessionEvent::AnalysisReport(report) => ObsEvent::AnalysisReport {
                report: report.clone(),
            },
            SessionEvent::MinorLoopQuestion { question, answer } => ObsEvent::MinorLoop {
                question: *question,
                answer: answer.clone(),
            },
            SessionEvent::Attempt(record) => ObsEvent::Attempt {
                record: record.clone(),
            },
            // Defensive: sessions report waits via on_waiting, never
            // on_event (pinned by session tests) — but a hand-driven
            // caller forwarding events manually still lands in the
            // sidecar, keeping the canonical stream latency-invariant.
            SessionEvent::Waiting { call } => {
                self.note_waiting(call.id());
                return;
            }
            SessionEvent::Ended { reason } => ObsEvent::SessionEnd {
                reason: reason.clone(),
            },
            SessionEvent::Failed { error } => ObsEvent::SessionFailed {
                error: error.clone(),
            },
        };
        self.event(e);
    }

    fn on_transcript(&mut self, line: &str) {
        self.event(ObsEvent::Transcript {
            line: line.to_string(),
        });
    }

    fn on_usage(&mut self, tuning: &UsageMeter, analysis: &UsageMeter) {
        self.usage_delta(tuning, analysis);
    }

    fn on_waiting(&mut self, call: CallHandle) {
        self.note_waiting(call.id());
    }

    fn on_retry(&mut self, context: &str, attempt: u32, error: &CallError) {
        self.event(ObsEvent::Retry {
            context: context.to_string(),
            attempt,
            error: error.clone(),
        });
    }
}

impl<W: Write> RunObserver for &mut JsonlEmitter<W> {
    fn on_session_start(&mut self, workload: &str, run_seed: u64, scenario: &[&'static str]) {
        (**self).on_session_start(workload, run_seed, scenario);
    }
    fn on_event(&mut self, event: &SessionEvent) {
        (**self).on_event(event);
    }
    fn on_transcript(&mut self, line: &str) {
        (**self).on_transcript(line);
    }
    fn on_usage(&mut self, tuning: &UsageMeter, analysis: &UsageMeter) {
        (**self).on_usage(tuning, analysis);
    }
    fn on_waiting(&mut self, call: CallHandle) {
        (**self).on_waiting(call);
    }
    fn on_retry(&mut self, context: &str, attempt: u32, error: &CallError) {
        (**self).on_retry(context, attempt, error);
    }
}

impl<W: Write + Send> CampaignObserver for JsonlEmitter<W> {
    fn on_campaign_start(&mut self, grid: &CampaignGrid) {
        // Workers and schedule are execution details: telemetry, not
        // canon (serial and parallel runs must emit identical canonical
        // streams). They reach the record via RoundPlanned notes.
        self.event(ObsEvent::CampaignStart {
            workloads: grid.workloads.clone(),
            seeds: grid.seeds.clone(),
            mode: grid.mode.label().to_string(),
            faults: grid.faults.clone(),
            injection: grid.injection.clone(),
            retry: grid.retry.clone(),
        });
    }

    fn on_round_start(&mut self, seed: u64) {
        self.event(ObsEvent::RoundStart { seed });
    }

    fn on_round_planned(&mut self, seed: u64, schedule: Schedule, order: &[usize]) {
        self.telemetry(SchedNote::RoundPlanned {
            seed,
            schedule: schedule.label().to_string(),
            order: order.to_vec(),
        });
    }

    fn on_cell_claimed(&mut self, worker: usize, seed: u64, grid_idx: usize, workload: &str) {
        self.telemetry(SchedNote::CellClaimed {
            worker,
            seed,
            grid_idx,
            workload: workload.to_string(),
        });
    }

    fn on_cell_suspended(&mut self, worker: usize, seed: u64, grid_idx: usize, call: CallHandle) {
        self.telemetry(SchedNote::CellSuspended {
            worker,
            seed,
            grid_idx,
            call: call.id(),
        });
    }

    fn on_cell_published(&mut self, worker: usize, seed: u64, grid_idx: usize, busy_secs: f64) {
        self.telemetry(SchedNote::CellPublished {
            worker,
            seed,
            grid_idx,
            busy_secs,
        });
    }

    fn on_cell_finished(&mut self, cell: &CampaignCell) {
        self.event(ObsEvent::CellFinished {
            workload: cell.workload.clone(),
            seed: cell.seed,
            cell_seed: cell.cell_seed,
            run: cell
                .run()
                .expect("on_cell_finished carries a finished cell")
                .clone(),
        });
    }

    fn on_cell_failed(&mut self, cell: &CampaignCell) {
        self.event(ObsEvent::CellFailed {
            workload: cell.workload.clone(),
            seed: cell.seed,
            cell_seed: cell.cell_seed,
            failure: cell
                .failure()
                .expect("on_cell_failed carries a failed cell")
                .clone(),
        });
    }

    fn on_rules_merged(&mut self, workload: &str, added: usize, total: usize) {
        self.event(ObsEvent::RuleMerge {
            workload: workload.to_string(),
            added,
            total,
        });
    }

    fn on_round_finished(&mut self, round: &RoundSched) {
        self.telemetry(SchedNote::RoundStats {
            seed: round.seed,
            makespan_secs: round.makespan_secs,
            utilization: round.utilization,
            max_in_flight: round.max_in_flight,
            cell_secs: round.cell_secs.clone(),
        });
    }

    fn on_campaign_end(&mut self, report: &CampaignReport) {
        self.event(ObsEvent::CampaignEnd {
            cells: report.cells.len(),
            evaluations: report.total_evaluations(),
            mean_best_speedup: report.mean_best_speedup(),
            rules: report.rules.len(),
            shards: report.rule_store.shard_count(),
            failed: report.failed_cells().len(),
        });
        // Best-effort flush so owned (moved-in) emitters persist without
        // further calls. Deliberately not .expect(): a flush failure here
        // would panic inside Campaign::execute and shadow the caller's
        // own error path — callers that need the result should lend
        // `&mut emitter` and check `finish()` afterwards, as the CLI
        // does (a buffered-writer flush error sticks: the retry there
        // reports it).
        let _ = self.finish();
    }
}

impl<W: Write + Send> CampaignObserver for &mut JsonlEmitter<W> {
    fn on_campaign_start(&mut self, grid: &CampaignGrid) {
        (**self).on_campaign_start(grid);
    }
    fn on_round_start(&mut self, seed: u64) {
        (**self).on_round_start(seed);
    }
    fn on_round_planned(&mut self, seed: u64, schedule: Schedule, order: &[usize]) {
        (**self).on_round_planned(seed, schedule, order);
    }
    fn on_cell_claimed(&mut self, worker: usize, seed: u64, grid_idx: usize, workload: &str) {
        (**self).on_cell_claimed(worker, seed, grid_idx, workload);
    }
    fn on_cell_suspended(&mut self, worker: usize, seed: u64, grid_idx: usize, call: CallHandle) {
        (**self).on_cell_suspended(worker, seed, grid_idx, call);
    }
    fn on_cell_published(&mut self, worker: usize, seed: u64, grid_idx: usize, busy_secs: f64) {
        (**self).on_cell_published(worker, seed, grid_idx, busy_secs);
    }
    fn on_cell_finished(&mut self, cell: &CampaignCell) {
        (**self).on_cell_finished(cell);
    }
    fn on_cell_failed(&mut self, cell: &CampaignCell) {
        (**self).on_cell_failed(cell);
    }
    fn on_rules_merged(&mut self, workload: &str, added: usize, total: usize) {
        (**self).on_rules_merged(workload, added, total);
    }
    fn on_round_finished(&mut self, round: &RoundSched) {
        (**self).on_round_finished(round);
    }
    fn on_campaign_end(&mut self, report: &CampaignReport) {
        (**self).on_campaign_end(report);
    }
}

/// A live per-worker / per-round status board, driven by the same
/// [`CampaignObserver`] stream the emitter records.
///
/// On a TTY ([`ProgressRenderer::stderr`] when stderr is a terminal) the
/// board redraws in place with ANSI cursor movement; otherwise it
/// degrades to plain progress lines (one per claim/publish/round), which
/// is what CI logs capture. Writes to stderr by design: campaign stdout
/// stays bit-identical across reruns (the workspace invariant).
pub struct ProgressRenderer<W: Write + Send> {
    out: W,
    live: bool,
    workloads: Vec<String>,
    rounds_total: usize,
    rounds_done: usize,
    current_seed: u64,
    /// Per-worker open cells: `(grid_idx, state)` per cell the worker
    /// currently holds. A multiplexing worker holds several at once (one
    /// stepping, the rest suspended on in-flight calls), so a single
    /// display slot per worker would misreport — publishing one cell
    /// must not show the worker "idle" while siblings are still open.
    worker_cells: Vec<Vec<(usize, String)>>,
    done_in_round: usize,
    total_done: usize,
    /// Lines the last live draw used (to rewind the cursor).
    drawn: usize,
}

impl ProgressRenderer<std::io::Stderr> {
    /// Renderer on stderr, live when stderr is a terminal.
    pub fn stderr() -> Self {
        let live = std::io::stderr().is_terminal();
        ProgressRenderer::new(std::io::stderr(), live)
    }
}

impl<W: Write + Send> ProgressRenderer<W> {
    /// Renderer over any sink. `live` enables in-place ANSI redraws.
    pub fn new(out: W, live: bool) -> Self {
        ProgressRenderer {
            out,
            live,
            workloads: Vec::new(),
            rounds_total: 0,
            rounds_done: 0,
            current_seed: 0,
            worker_cells: Vec::new(),
            done_in_round: 0,
            total_done: 0,
            drawn: 0,
        }
    }

    fn say(&mut self, line: &str) {
        // Progress is advisory: a broken stderr pipe must not kill the
        // campaign, unlike a broken run-record file.
        let _ = writeln!(self.out, "{line}");
    }

    fn redraw(&mut self) {
        if !self.live {
            return;
        }
        let mut board = String::new();
        if self.drawn > 0 {
            // Rewind over the previous board and clear downwards.
            board.push_str(&format!("\x1b[{}F\x1b[0J", self.drawn));
        }
        let head = format!(
            "round {}/{} (seed {}) — {}/{} cells done ({} total)",
            (self.rounds_done + 1).min(self.rounds_total.max(1)),
            self.rounds_total,
            self.current_seed,
            self.done_in_round,
            self.workloads.len(),
            self.total_done,
        );
        board.push_str(&head);
        board.push('\n');
        for (w, cells) in self.worker_cells.iter().enumerate() {
            let state = if cells.is_empty() {
                "idle".to_string()
            } else {
                cells
                    .iter()
                    .map(|(_, s)| s.as_str())
                    .collect::<Vec<_>>()
                    .join("; ")
            };
            board.push_str(&format!("  w{w}: {state}\n"));
        }
        self.drawn = 1 + self.worker_cells.len();
        let _ = write!(self.out, "{board}");
        let _ = self.out.flush();
    }
}

impl<W: Write + Send> CampaignObserver for ProgressRenderer<W> {
    fn on_campaign_start(&mut self, grid: &CampaignGrid) {
        self.workloads = grid.workloads.clone();
        self.rounds_total = grid.seeds.len();
        self.worker_cells = vec![Vec::new(); grid.workers];
        self.say(&format!(
            "campaign: {} workload(s) x {} seed(s), {} rules, {} over {} worker(s)",
            grid.workloads.len(),
            grid.seeds.len(),
            grid.mode.label(),
            grid.schedule.label(),
            grid.workers,
        ));
    }

    fn on_round_start(&mut self, seed: u64) {
        self.current_seed = seed;
        self.done_in_round = 0;
        if !self.live {
            self.say(&format!(
                "round {}/{}: seed {seed}",
                self.rounds_done + 1,
                self.rounds_total
            ));
        }
        self.redraw();
    }

    fn on_cell_claimed(&mut self, worker: usize, _seed: u64, grid_idx: usize, workload: &str) {
        if let Some(cells) = self.worker_cells.get_mut(worker) {
            cells.push((grid_idx, format!("tuning {workload}")));
        }
        if !self.live {
            self.say(&format!("  w{worker} > {workload}"));
        }
        self.redraw();
    }

    fn on_cell_suspended(&mut self, worker: usize, _seed: u64, grid_idx: usize, call: CallHandle) {
        let label = self
            .workloads
            .get(grid_idx)
            .map(String::as_str)
            .unwrap_or("?")
            .to_string();
        if let Some(cells) = self.worker_cells.get_mut(worker) {
            if let Some(cell) = cells.iter_mut().find(|(i, _)| *i == grid_idx) {
                cell.1 = format!("{label} waiting on call #{}", call.id());
            }
        }
        if !self.live {
            self.say(&format!(
                "  w{worker} ~ {label} waiting on call #{}",
                call.id()
            ));
        }
        self.redraw();
    }

    fn on_cell_published(&mut self, worker: usize, _seed: u64, grid_idx: usize, busy_secs: f64) {
        self.done_in_round += 1;
        self.total_done += 1;
        let label = self
            .workloads
            .get(grid_idx)
            .map(String::as_str)
            .unwrap_or("?")
            .to_string();
        if let Some(cells) = self.worker_cells.get_mut(worker) {
            cells.retain(|(i, _)| *i != grid_idx);
        }
        if !self.live {
            self.say(&format!("  w{worker} = {label} done in {busy_secs:.3}s"));
        }
        self.redraw();
    }

    fn on_cell_failed(&mut self, cell: &CampaignCell) {
        if !self.live {
            let failure = cell
                .failure()
                .map(|f| f.to_string())
                .unwrap_or_else(|| "unknown failure".to_string());
            self.say(&format!(
                "  ! {} (seed {}) failed: {failure}",
                cell.workload, cell.seed
            ));
        }
        self.redraw();
    }

    fn on_round_finished(&mut self, round: &RoundSched) {
        self.rounds_done += 1;
        if !self.live {
            self.say(&format!(
                "round seed {} finished: makespan {:.3}s, utilization {:.0}%, in-flight peak {}",
                round.seed,
                round.makespan_secs,
                round.utilization * 100.0,
                round.max_in_flight,
            ));
        }
        self.redraw();
    }

    fn on_campaign_end(&mut self, report: &CampaignReport) {
        if self.live && self.drawn > 0 {
            // Leave the final board in place; just step past it.
            let _ = writeln!(self.out);
            self.drawn = 0;
        }
        let failed = report.failed_cells().len();
        let failed_note = if failed > 0 {
            format!(", {failed} failed")
        } else {
            String::new()
        };
        self.say(&format!(
            "campaign done: {} cell(s){failed_note}, mean speedup x{:.2}",
            report.cells.len(),
            report.mean_best_speedup(),
        ));
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> RunRecord {
        RunRecord {
            lines: vec![
                RecordLine {
                    v: SCHEMA_VERSION,
                    e: Some(ObsEvent::SessionStart {
                        workload: "IOR_16M".into(),
                        run_seed: 7,
                        scenario: vec![],
                    }),
                    t: Some(Sidecar {
                        host_secs: 0.25,
                        note: None,
                    }),
                },
                RecordLine {
                    v: SCHEMA_VERSION,
                    e: None,
                    t: Some(Sidecar {
                        host_secs: 0.5,
                        note: Some(SchedNote::Waiting { call: 3 }),
                    }),
                },
                RecordLine {
                    v: SCHEMA_VERSION,
                    e: Some(ObsEvent::SessionEnd {
                        reason: "done".into(),
                    }),
                    t: Some(Sidecar {
                        host_secs: 0.25,
                        note: None,
                    }),
                },
            ],
        }
    }

    #[test]
    fn record_roundtrips_and_canonicalizes() {
        let rec = sample_record();
        let jsonl = rec.to_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        let back = RunRecord::parse(&jsonl).expect("parses");
        assert_eq!(back, rec);
        // Canonical stream: telemetry line dropped, sidecar stripped.
        let canon = rec.canonical_jsonl();
        assert_eq!(canon.lines().count(), 2);
        assert!(!canon.contains("host_secs"), "{canon}");
        assert!(!canon.contains("Waiting"), "{canon}");
        assert!(
            canon.starts_with("{\"v\":3,\"e\":{\"SessionStart\""),
            "{canon}"
        );
        assert!((rec.host_secs() - 1.0).abs() < 1e-12);
        assert_eq!(rec.notes().count(), 1);
    }

    #[test]
    fn parser_rejects_foreign_schema_versions() {
        let mut rec = sample_record();
        rec.lines[1].v = SCHEMA_VERSION + 1;
        let err = RunRecord::parse(&rec.to_jsonl()).expect_err("must reject");
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("schema v4"), "{err}");
        // Malformed JSON reports its line too.
        let err = RunRecord::parse("{\"v\":3,\"e\":null,\"t\":null}\nnot json\n")
            .expect_err("must reject");
        assert!(err.starts_with("line 2"), "{err}");
        // A future-version line with an event variant this reader does
        // not know must still report the version, not a parse error —
        // the version probe runs before full deserialization.
        let err = RunRecord::parse("{\"v\":4,\"e\":{\"FromTheFuture\":{}},\"t\":null}\n")
            .expect_err("must reject");
        assert!(err.contains("record is schema v4"), "{err}");
        // A v2 record (pre-failure-domain schema) is likewise foreign now.
        let err = RunRecord::parse("{\"v\":2,\"e\":null,\"t\":null}\n").expect_err("must reject");
        assert!(err.contains("record is schema v2"), "{err}");
    }

    /// The crash-resume entry point: a record whose final line was torn
    /// mid-write parses up to the tear; corruption anywhere else still
    /// fails, and untorn records parse identically to `parse`.
    #[test]
    fn partial_parse_drops_only_a_torn_final_line() {
        let rec = sample_record();
        let jsonl = rec.to_jsonl();
        // Untorn: identical to the strict parse.
        assert_eq!(RunRecord::parse_partial(&jsonl).expect("parses"), rec);
        // Torn tail: the final line is dropped, the rest survives.
        let torn = format!("{jsonl}{{\"v\":3,\"e\":{{\"Sess");
        let back = RunRecord::parse_partial(&torn).expect("torn tail tolerated");
        assert_eq!(back, rec);
        // Corruption mid-file is NOT a crash artifact: still an error.
        let mid = jsonl.replacen("SessionStart", "Sess", 1);
        let err = RunRecord::parse_partial(&mid).expect_err("mid-file corruption rejected");
        assert!(err.starts_with("line 1"), "{err}");
    }

    #[test]
    fn emitter_writes_one_json_object_per_line() {
        let mut em = JsonlEmitter::new(Vec::new());
        em.on_session_start("IOR_16M", 7, &[]);
        em.on_transcript("hello");
        // Three polls of the same in-flight call = ONE suspension note.
        em.on_waiting(dummy_handle());
        em.on_waiting(dummy_handle());
        em.on_waiting(dummy_handle());
        em.on_event(&SessionEvent::Ended {
            reason: "budget".into(),
        });
        assert_eq!(em.lines(), 4);
        let bytes = em.into_inner();
        let rec = RunRecord::parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
        assert_eq!(rec.lines.len(), 4);
        assert_eq!(rec.events().count(), 3);
        assert_eq!(rec.notes().count(), 1);
        let summary = rec.summary();
        assert!(
            summary.contains("workload: IOR_16M (run seed 7)"),
            "{summary}"
        );
        assert!(summary.contains("1 suspension(s)"), "{summary}");
    }

    #[test]
    fn session_start_records_scenario_labels() {
        let mut em = JsonlEmitter::new(Vec::new());
        em.on_session_start(
            "IOR_64K+MDWorkbench_2K",
            7,
            &["degraded-topology", "noisy-neighbor"],
        );
        let bytes = em.into_inner();
        let rec = RunRecord::parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
        let Some(ObsEvent::SessionStart { scenario, .. }) = rec.events().next() else {
            panic!("expected SessionStart first");
        };
        assert_eq!(scenario.len(), 2);
        let canon = rec.canonical_jsonl();
        assert!(
            canon.contains("\"scenario\":[\"degraded-topology\",\"noisy-neighbor\"]"),
            "{canon}"
        );
        let summary = rec.summary();
        assert!(
            summary.contains("scenario: degraded-topology, noisy-neighbor"),
            "{summary}"
        );
    }

    #[test]
    fn usage_events_are_deltas_and_skip_idle_snapshots() {
        let mut em = JsonlEmitter::new(Vec::new());
        let mut t = UsageMeter::default();
        let a = UsageMeter::default();
        t.record(100, 20, 10);
        em.on_usage(&t, &a);
        em.on_usage(&t, &a); // unchanged: no line
        t.record(50, 50, 5);
        em.on_usage(&t, &a);
        let bytes = em.into_inner();
        let rec = RunRecord::parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
        let deltas: Vec<&ObsEvent> = rec.events().collect();
        assert_eq!(deltas.len(), 2);
        let ObsEvent::Usage { tuning, .. } = deltas[1] else {
            panic!("expected usage, got {:?}", deltas[1]);
        };
        assert_eq!(tuning.input_tokens, 50);
        assert_eq!(tuning.calls, 1);
    }

    #[test]
    fn progress_renderer_narrates_in_plain_mode() {
        let mut pr = ProgressRenderer::new(Vec::new(), false);
        pr.on_campaign_start(&CampaignGrid {
            workloads: vec!["IOR_16M".into(), "MDWorkbench_8K".into()],
            seeds: vec![1, 2],
            mode: crate::RuleMode::Warm,
            workers: 2,
            schedule: Schedule::Lpt,
            faults: None,
            injection: None,
            retry: None,
        });
        pr.on_round_start(1);
        pr.on_cell_claimed(0, 1, 0, "IOR_16M");
        pr.on_cell_suspended(0, 1, 0, dummy_handle());
        pr.on_cell_published(0, 1, 0, 0.5);
        pr.on_cell_failed(&CampaignCell {
            workload: "MDWorkbench_8K".into(),
            seed: 1,
            cell_seed: 9,
            outcome: crate::campaign::CellOutcome::Failed(CellFailure::Panic("boom".into())),
        });
        let text = String::from_utf8(pr.out.clone()).unwrap();
        assert!(
            text.contains("2 workload(s) x 2 seed(s), warm rules, lpt over 2 worker(s)"),
            "{text}"
        );
        assert!(text.contains("w0 > IOR_16M"), "{text}");
        assert!(text.contains("waiting on call #"), "{text}");
        assert!(text.contains("w0 = IOR_16M done"), "{text}");
        assert!(
            text.contains("! MDWorkbench_8K (seed 1) failed: panic: boom"),
            "{text}"
        );
        assert!(
            !text.contains('\x1b'),
            "plain mode must not emit ANSI: {text}"
        );
    }

    /// A handle for tests: round-trips through the only public surface.
    fn dummy_handle() -> CallHandle {
        use llmsim::{LatencyProfile, LlmCall, NonBlockingBackend, SimLatency};
        let mut gate = SimLatency::gate(LatencyProfile::fixed(1), 1);
        gate.submit(LlmCall::Turn {
            context: "t".into(),
        })
    }
}
