//! Steppable tuning sessions.
//!
//! [`TuningSession`] factors the body of the old monolithic
//! `Stellar::tune()` into an observable state machine: each call to
//! [`TuningSession::step`] performs exactly one agent-visible action and
//! returns it as a [`SessionEvent`] — the initial default-configuration
//! run, the Analysis Agent's report, each minor-loop question, each
//! configuration attempt, and the final End-Tuning decision. Drained to
//! completion the session produces the exact [`TuningRun`] the monolithic
//! call did (`Stellar::tune` is now a thin wrapper over a session).
//!
//! Sessions support:
//!
//! * **observers** — [`RunObserver`]s attached via
//!   [`TuningSession::observe`] receive every event, every transcript line
//!   the Tuning Agent narrates (the same lines `TuningRun::transcript`
//!   records), and per-step [`UsageMeter`] snapshots for both agents;
//! * **abort/budget hooks** — [`TuningSession::abort`] ends the run before
//!   the next agent decision with a caller-supplied reason, and the attempt
//!   budget rides in `TuningOptions::max_attempts` (settable through
//!   `StellarBuilder::attempt_budget`);
//! * **suspension** — when the engine carries a
//!   [`llmsim::LatencyProfile`] (`StellarBuilder::backend_latency`, CLI
//!   `--backend-latency`), every agent turn goes through a non-blocking
//!   [`llmsim::SimLatency`] gate: [`TuningSession::step`] returns
//!   [`SessionEvent::Waiting`] instead of blocking while the simulated
//!   provider call is in flight, with all agent state intact. The caller
//!   keeps stepping (each step polls the call once) and the session
//!   resumes by itself when the call completes — the seam the campaign
//!   worker loop multiplexes suspended cells over. Waiting is a
//!   *scheduling artifact*: it is reported to observers only through
//!   [`RunObserver::on_waiting`], never `on_event`, so the semantic event
//!   stream, the transcript and every usage meter stay bit-identical to
//!   the instant-backend path (property-tested in
//!   `tests/integration_nonblocking.rs`);
//! * **failure domains** — when the engine injects backend failures
//!   (`StellarBuilder::failures`, CLI `--inject-failures`), calls can
//!   conclude [`llmsim::CallStatus::Failed`]. Transient errors are
//!   retried under the engine's [`RetryPolicy`] (resubmission after a
//!   poll-tick backoff, each retry reported canonically via
//!   [`RunObserver::on_retry`]); a fatal error or an exhausted budget
//!   ends the session with a structured [`SessionError`] and the terminal
//!   [`SessionEvent::Failed`] — never a panic. Because failure verdicts
//!   are drawn per *submission index* (see [`llmsim::SimFailures`]),
//!   retry schedules are identical under any latency profile, which
//!   keeps the canonical stream byte-identical across execution shapes
//!   even with injection on.

use crate::engine::{AttemptRecord, SeedPolicy, Stellar, TuningRun};
use agents::{
    AnalysisAgent, AnalysisQuestion, Answer, ContextTag, IoReport, RuleSnapshot, ToolCall,
    TuningAgent,
};
use darshan::Table;
use llmsim::{
    CallError, CallHandle, CallStatus, FailureInjection, LatencyProfile, LlmBackend, LlmCall,
    NonBlockingBackend, SimFailures, SimLatency, SimLlm, UsageMeter,
};
use pfs::params::{ParamRegistry, TuningConfig};
use serde::{Deserialize, Serialize};
use simcore::rng::{combine, stable_hash};
use std::fmt;
use workloads::Workload;

/// How a session treats [`llmsim::CallStatus::Failed`] backend calls.
///
/// Budgets are measured in the session's own deterministic units: attempts
/// per logical call and backoff in poll ticks, never wall time. The
/// pending-poll timeout is **off by default** because, unlike the
/// failure-verdict stream, it keys off *poll counts*, which the latency
/// profile changes — enabling it trades the cross-latency byte-equality
/// guarantee for bounded pending time (per-run determinism still holds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total submissions allowed per logical call, first try included.
    /// Treated as at least 1.
    pub max_attempts: u32,
    /// Polls to sit out after a transient failure before the resubmitted
    /// call is first polled.
    pub backoff_ticks: u32,
    /// Cancel-and-resubmit a call still pending after this many polls,
    /// consuming one attempt (so a transport that never completes cannot
    /// loop forever). `None` = wait indefinitely.
    pub pending_timeout: Option<u32>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_ticks: 1,
            pending_timeout: None,
        }
    }
}

impl RetryPolicy {
    /// `max_attempts`, floored at one submission.
    pub fn attempt_budget(&self) -> u32 {
        self.max_attempts.max(1)
    }

    /// Canonical label for run records
    /// (e.g. `"3 attempt(s), backoff 1 tick(s)"`).
    pub fn label(&self) -> String {
        let mut label = format!(
            "{} attempt(s), backoff {} tick(s)",
            self.attempt_budget(),
            self.backoff_ticks
        );
        if let Some(t) = self.pending_timeout {
            label.push_str(&format!(", timeout {t} poll(s)"));
        }
        label
    }
}

/// Why a session ended without a [`TuningRun`]. Structured, serializable
/// and deterministic — it feeds the canonical stream
/// ([`crate::obs::ObsEvent::SessionFailed`]) and campaign failed-cell
/// accounting.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionError {
    /// A backend call failed fatally; no retry can clear it.
    FatalCall {
        /// Turn label of the failed call.
        context: String,
        /// The provider error.
        error: CallError,
    },
    /// Transient failures exhausted the [`RetryPolicy`] budget.
    RetriesExhausted {
        /// Turn label of the failed call.
        context: String,
        /// Submissions spent (the full budget).
        attempts: u32,
        /// The last error observed.
        last: CallError,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::FatalCall { context, error } => {
                write!(f, "fatal backend call at {context}: {error}")
            }
            SessionError::RetriesExhausted {
                context,
                attempts,
                last,
            } => write!(
                f,
                "retry budget exhausted at {context} after {attempts} attempt(s): {last}"
            ),
        }
    }
}

/// Terminal state of a drained session: the finished run, or the
/// structured error that ended it. Returned by
/// [`TuningSession::drain_outcome`] / [`TuningSession::into_outcome`].
#[derive(Debug, Clone)]
pub enum SessionOutcome {
    /// The session completed and produced a run.
    Finished(TuningRun),
    /// The session ended with [`SessionEvent::Failed`].
    Failed(SessionError),
}

/// One agent-visible step of a tuning run.
#[derive(Debug, Clone)]
pub enum SessionEvent {
    /// The initial execution under the default configuration (iteration 0).
    InitialRun {
        /// Wall time of the default run, seconds.
        wall_secs: f64,
    },
    /// The Analysis Agent's initial I/O report (absent under the
    /// `No Analysis` ablation — the session skips straight to deciding).
    AnalysisReport(IoReport),
    /// One minor-loop exchange: the Tuning Agent asked, the Analysis Agent
    /// answered.
    MinorLoopQuestion {
        /// The question posed.
        question: AnalysisQuestion,
        /// The computed answer.
        answer: Answer,
    },
    /// One configuration attempt was executed.
    Attempt(AttemptRecord),
    /// The next agent turn's backend call is in flight; nothing happened
    /// this step. The session is suspended — step again to poll the call
    /// (each step burns one latency tick) until it completes, or run
    /// other work in between: all agent state is retained. Only produced
    /// when the engine injects backend latency; observers hear about it
    /// via [`RunObserver::on_waiting`], not `on_event`.
    Waiting {
        /// Handle of the in-flight call.
        call: CallHandle,
    },
    /// The run concluded.
    Ended {
        /// The agent's justification (or the abort reason).
        reason: String,
    },
    /// The run ended with a structured failure: a fatal backend error or
    /// an exhausted retry budget. Terminal, like [`SessionEvent::Ended`],
    /// but there is no [`TuningRun`] — use
    /// [`TuningSession::drain_outcome`] / [`TuningSession::into_outcome`]
    /// to collect the error without panicking.
    Failed {
        /// What ended the session.
        error: SessionError,
    },
}

/// Streaming receiver for session progress.
///
/// All methods have no-op defaults; implement the ones you need.
pub trait RunObserver {
    /// Called once, before the first step does any work, with the
    /// session's workload label, fully derived run seed, and the scenario
    /// labels of the run regime (`"degraded-topology"`, `"noisy-neighbor"`;
    /// empty for a pristine single-job run) — the metadata a run record
    /// needs to be replayable on its own (see
    /// [`crate::obs::ObsEvent::SessionStart`]).
    fn on_session_start(&mut self, workload: &str, run_seed: u64, scenario: &[&'static str]) {
        let _ = (workload, run_seed, scenario);
    }

    /// Called once per [`TuningSession::step`] with the produced event.
    fn on_event(&mut self, event: &SessionEvent) {
        let _ = event;
    }

    /// Called for each new transcript line the Tuning Agent narrates —
    /// the same lines, in the same order, that `TuningRun::transcript`
    /// records at the end of the run.
    fn on_transcript(&mut self, line: &str) {
        let _ = line;
    }

    /// Called after each step with current token-usage snapshots.
    fn on_usage(&mut self, tuning: &UsageMeter, analysis: &UsageMeter) {
        let _ = (tuning, analysis);
    }

    /// Called each time a step finds the session still waiting on an
    /// in-flight backend call. Deliberately separate from
    /// [`RunObserver::on_event`] so the semantic event order an observer
    /// records is identical whether or not the backend injects latency.
    fn on_waiting(&mut self, call: CallHandle) {
        let _ = call;
    }

    /// Called when a transient backend failure consumed an attempt and
    /// the call was resubmitted: `context` is the turn label, `attempt`
    /// the resubmission's 1-based number, `error` what the previous
    /// submission failed with. **Canonical**, unlike
    /// [`RunObserver::on_waiting`]: failure verdicts are drawn per
    /// submission index, so the retry sequence is identical across
    /// latency profiles and execution shapes.
    fn on_retry(&mut self, context: &str, attempt: u32, error: &CallError) {
        let _ = (context, attempt, error);
    }
}

enum Phase {
    /// Nothing ran yet.
    Start,
    /// Default run done; analysis + agent construction pending.
    Analyze,
    /// Agent loop in progress.
    Drive,
    /// Ended; `finished` holds the run.
    Done,
    /// Ended with a failure; `failed` holds the error.
    Failed,
}

/// What clearing the gate produced this step.
enum GateStatus {
    /// Gate clear — the turn may execute.
    Clear,
    /// Call in flight (or a retry backing off) — suspend. `retry` carries
    /// the canonical retry notification when this very step resubmitted
    /// after a transient failure.
    Waiting {
        /// The in-flight handle.
        call: CallHandle,
        /// `(context, attempt, error)` when a retry was just issued.
        retry: Option<(String, u32, CallError)>,
    },
    /// A fatal error or an exhausted budget: the session must fail.
    Failed(SessionError),
}

/// The non-blocking transport gate an agent turn must clear before it
/// executes. One call in flight at a time — a session is a single logical
/// conversation; overlap comes from multiplexing *sessions*, not calls.
///
/// The transport stacks the failure domain over the latency domain:
/// `SimFailures<SimLatency>` draws each call's failure verdict at
/// submission and its tick budget independently, so the failure schedule
/// is latency-invariant (see the module docs).
struct Gate {
    transport: SimFailures<SimLatency>,
    policy: RetryPolicy,
    pending: Option<CallHandle>,
    /// Turn label of the in-flight logical call.
    context: String,
    /// 1-based submission number of the in-flight attempt.
    attempt: u32,
    /// Polls spent on the current submission (pending-timeout clock).
    polls: u32,
    /// Polls still to sit out before a resubmitted call is polled.
    backoff_left: u32,
    turns: u64,
}

impl Gate {
    /// Poll (or open) the turn's call and report the gate's state.
    fn acquire(&mut self, phase_label: &str) -> GateStatus {
        let handle = match self.pending {
            Some(h) => h,
            None => {
                // New logical call: fresh turn label, first attempt.
                self.context = format!("{phase_label}:turn{}", self.turns);
                self.turns += 1;
                self.attempt = 1;
                self.backoff_left = 0;
                self.submit_attempt()
            }
        };
        // Retry backoff: the resubmitted call sits unpolled until the
        // backoff expires, so backoff is measured in poll ticks exactly
        // like the latency budget.
        if self.backoff_left > 0 {
            self.backoff_left -= 1;
            return GateStatus::Waiting {
                call: handle,
                retry: None,
            };
        }
        // Pending-poll timeout: cancel and resubmit, consuming an attempt
        // (a transport that never completes cannot loop forever).
        if let Some(limit) = self.policy.pending_timeout {
            if self.polls >= limit {
                self.transport.cancel(handle);
                self.pending = None;
                let error = CallError::Transient {
                    reason: "pending-poll timeout".to_string(),
                };
                return self.retry_or_fail(error);
            }
        }
        self.polls += 1;
        match self.transport.poll(handle) {
            CallStatus::Pending => GateStatus::Waiting {
                call: handle,
                retry: None,
            },
            CallStatus::Ready(_) => {
                self.pending = None;
                GateStatus::Clear
            }
            CallStatus::Failed(error) => {
                self.pending = None;
                if !error.is_transient() {
                    return GateStatus::Failed(SessionError::FatalCall {
                        context: self.context.clone(),
                        error,
                    });
                }
                self.retry_or_fail(error)
            }
        }
    }

    /// Submit (or resubmit) the current logical call.
    fn submit_attempt(&mut self) -> CallHandle {
        let h = self.transport.submit(LlmCall::Turn {
            context: self.context.clone(),
        });
        self.pending = Some(h);
        self.polls = 0;
        h
    }

    /// A transient failure consumed an attempt: resubmit under the budget
    /// or fail the session.
    fn retry_or_fail(&mut self, error: CallError) -> GateStatus {
        if self.attempt >= self.policy.attempt_budget() {
            return GateStatus::Failed(SessionError::RetriesExhausted {
                context: self.context.clone(),
                attempts: self.attempt,
                last: error,
            });
        }
        self.attempt += 1;
        self.backoff_left = self.policy.backoff_ticks;
        let call = self.submit_attempt();
        GateStatus::Waiting {
            call,
            retry: Some((self.context.clone(), self.attempt, error)),
        }
    }

    /// Abandon any in-flight call (abort path): the session must end on
    /// its next step, not wait out a provider round trip.
    fn cancel_pending(&mut self) {
        if let Some(h) = self.pending.take() {
            self.transport.cancel(h);
        }
    }
}

/// A steppable tuning run. See the module docs.
pub struct TuningSession<'a> {
    engine: &'a Stellar,
    workload: &'a dyn Workload,
    rules: RuleSnapshot,
    run_seed: u64,
    registry: ParamRegistry,
    analysis_backend: SimLlm,
    tuning_backend: SimLlm,
    observers: Vec<Box<dyn RunObserver + 'a>>,
    gate: Option<Gate>,
    phase: Phase,
    // Run state, filled as phases progress.
    default_cfg: TuningConfig,
    default_wall: f64,
    header: String,
    tables: Vec<Table>,
    report: Option<IoReport>,
    agent: Option<TuningAgent>,
    attempts: Vec<AttemptRecord>,
    transcript_cursor: usize,
    abort_reason: Option<String>,
    finished: Option<TuningRun>,
    failed: Option<SessionError>,
}

impl<'a> TuningSession<'a> {
    pub(crate) fn new(
        engine: &'a Stellar,
        workload: &'a dyn Workload,
        rules: RuleSnapshot,
        seed: u64,
    ) -> Self {
        let run_seed = match engine.options().seed_policy {
            SeedPolicy::PerWorkload => combine(seed, stable_hash(&workload.name())),
            SeedPolicy::Fixed => seed,
        };
        Self::with_run_seed(engine, workload, rules, run_seed)
    }

    /// Session with a fully derived run seed, bypassing the engine's
    /// [`SeedPolicy`]. Used by the campaign layer, whose per-cell seeds
    /// already mix in the workload name and grid position.
    pub(crate) fn with_run_seed(
        engine: &'a Stellar,
        workload: &'a dyn Workload,
        rules: RuleSnapshot,
        run_seed: u64,
    ) -> Self {
        let analysis_backend = SimLlm::new(
            engine.options().analysis_model.clone(),
            combine(run_seed, 1),
        );
        let tuning_backend =
            SimLlm::new(engine.options().tuning_model.clone(), combine(run_seed, 2));
        TuningSession {
            engine,
            workload,
            rules,
            run_seed,
            registry: ParamRegistry::standard(),
            analysis_backend,
            tuning_backend,
            observers: Vec::new(),
            gate: Self::build_gate(engine, run_seed),
            phase: Phase::Start,
            default_cfg: TuningConfig::lustre_default(),
            default_wall: 0.0,
            header: String::new(),
            tables: Vec::new(),
            report: None,
            agent: None,
            attempts: Vec::new(),
            transcript_cursor: 0,
            abort_reason: None,
            finished: None,
            failed: None,
        }
    }

    /// The transport gate, built when the engine injects latency and/or
    /// failures (instant latency when only failures are configured).
    /// Seeded per cell: a session's latency *and* failure sequences are
    /// pure functions of its run seed, independent of sibling cells.
    fn build_gate(engine: &Stellar, run_seed: u64) -> Option<Gate> {
        let options = engine.options();
        if options.backend_latency.is_none() && options.failures.is_none() {
            return None;
        }
        let latency = options.backend_latency.unwrap_or(LatencyProfile::fixed(0));
        let inner = SimLatency::gate(latency, combine(run_seed, 3));
        let transport = match options.failures {
            Some(injection) => SimFailures::wrapping(
                inner,
                FailureInjection {
                    seed: combine(combine(run_seed, 4), injection.seed),
                    profile: injection.profile,
                },
            ),
            None => SimFailures::transparent(inner),
        };
        Some(Gate {
            transport,
            policy: options.retry,
            pending: None,
            context: String::new(),
            attempt: 0,
            polls: 0,
            backoff_left: 0,
            turns: 0,
        })
    }

    /// Attach an observer. Multiple observers receive events in attachment
    /// order.
    pub fn observe(&mut self, observer: Box<dyn RunObserver + 'a>) -> &mut Self {
        self.observers.push(observer);
        self
    }

    /// Request the session end before its next agent decision. The reason
    /// appears in the final [`SessionEvent::Ended`] and `TuningRun`.
    pub fn abort(&mut self, reason: impl Into<String>) {
        if self.abort_reason.is_none() {
            self.abort_reason = Some(reason.into());
        }
    }

    /// Whether the run has concluded — finished ([`SessionEvent::Ended`])
    /// or failed ([`SessionEvent::Failed`]).
    pub fn is_ended(&self) -> bool {
        matches!(self.phase, Phase::Done | Phase::Failed)
    }

    /// Whether the run ended with [`SessionEvent::Failed`].
    pub fn is_failed(&self) -> bool {
        matches!(self.phase, Phase::Failed)
    }

    /// The structured error that ended the session, if it failed.
    pub fn error(&self) -> Option<&SessionError> {
        self.failed.as_ref()
    }

    /// Backend calls currently in flight through the session's transport
    /// gate (0 without injected latency/failures, and always 0 once the
    /// session has ended — aborts cancel the pending call).
    pub fn in_flight(&self) -> usize {
        self.gate.as_ref().map_or(0, |g| g.transport.in_flight())
    }

    /// Whether the session is suspended on an in-flight backend call —
    /// i.e. the last [`TuningSession::step`] returned
    /// [`SessionEvent::Waiting`] and the call has not completed since.
    pub fn is_waiting(&self) -> bool {
        self.gate.as_ref().is_some_and(|g| g.pending.is_some())
    }

    /// Attempts executed so far.
    pub fn attempts(&self) -> &[AttemptRecord] {
        &self.attempts
    }

    /// Configuration attempts still available under the budget.
    pub fn remaining_budget(&self) -> usize {
        self.engine
            .options()
            .tuning
            .max_attempts
            .saturating_sub(self.attempts.len())
    }

    /// Execute one step of the tuning run and report what happened.
    ///
    /// With backend latency injected, a step may instead return
    /// [`SessionEvent::Waiting`]: the turn's provider call is still in
    /// flight and no agent work happened. Step again to poll it.
    ///
    /// After the run has ended, further calls return the final
    /// [`SessionEvent::Ended`] again without side effects.
    pub fn step(&mut self) -> SessionEvent {
        // First step ever: announce the session before any work happens
        // (`Phase::Start` holds exactly until `step_start` runs below).
        if matches!(self.phase, Phase::Start) && !self.observers.is_empty() {
            let name = self.workload.name();
            let scenario = self.scenario_labels();
            for obs in &mut self.observers {
                obs.on_session_start(&name, self.run_seed, &scenario);
            }
        }
        match self.poll_gate() {
            GateStatus::Clear => {}
            GateStatus::Waiting { call, retry } => {
                if let Some((context, attempt, error)) = retry {
                    for obs in &mut self.observers {
                        obs.on_retry(&context, attempt, &error);
                    }
                }
                for obs in &mut self.observers {
                    obs.on_waiting(call);
                }
                return SessionEvent::Waiting { call };
            }
            GateStatus::Failed(error) => {
                let event = self.fail(error);
                self.notify(&event);
                return event;
            }
        }
        let event = match self.phase {
            Phase::Start => self.step_start(),
            Phase::Analyze => self.step_analyze(),
            Phase::Drive => self.step_drive(),
            Phase::Done => {
                return SessionEvent::Ended {
                    reason: self
                        .finished
                        .as_ref()
                        .map(|r| r.end_reason.clone())
                        .unwrap_or_default(),
                }
            }
            Phase::Failed => {
                return SessionEvent::Failed {
                    error: self.failed.clone().expect("failed phase carries its error"),
                }
            }
        };
        self.notify(&event);
        event
    }

    /// Non-blocking seam: phases that spend agent turns (analysis, every
    /// drive decision) must clear the transport gate first. The initial
    /// default run is simulator work, not an LLM call, so `Phase::Start`
    /// never gates; an abort abandons the in-flight call so the session
    /// ends without waiting it out.
    fn poll_gate(&mut self) -> GateStatus {
        if !matches!(self.phase, Phase::Analyze | Phase::Drive) {
            return GateStatus::Clear;
        }
        let aborting = self.abort_reason.is_some();
        let Some(gate) = self.gate.as_mut() else {
            return GateStatus::Clear;
        };
        if aborting {
            gate.cancel_pending();
            return GateStatus::Clear;
        }
        let label = match self.phase {
            Phase::Analyze => "analyze",
            _ => "drive",
        };
        gate.acquire(label)
    }

    /// Record the structured error and enter the terminal failed state.
    fn fail(&mut self, error: SessionError) -> SessionEvent {
        self.failed = Some(error.clone());
        self.phase = Phase::Failed;
        SessionEvent::Failed { error }
    }

    /// Drain the session to completion and return the finished run.
    ///
    /// # Panics
    /// Panics if the session fails (only possible with injected backend
    /// failures) — failure-aware callers use
    /// [`TuningSession::drain_outcome`].
    pub fn drain(mut self) -> TuningRun {
        while !self.is_ended() {
            self.step();
        }
        self.into_run()
    }

    /// Drain the session to completion and return how it ended — the
    /// finished run or the structured error. Never panics on failure.
    pub fn drain_outcome(mut self) -> SessionOutcome {
        while !self.is_ended() {
            self.step();
        }
        self.into_outcome()
    }

    /// The finished run. Panics if the session has not ended or ended in
    /// failure — check [`TuningSession::is_ended`] /
    /// [`TuningSession::is_failed`], or use the outcome variants.
    pub fn into_run(self) -> TuningRun {
        if let Some(error) = &self.failed {
            panic!("session failed ({error}); use drain_outcome()/into_outcome()");
        }
        self.finished
            .expect("session not finished; call step() until is_ended() or use drain()")
    }

    /// How the ended session concluded. Panics if the session has not
    /// ended yet.
    pub fn into_outcome(self) -> SessionOutcome {
        if let Some(error) = self.failed {
            return SessionOutcome::Failed(error);
        }
        SessionOutcome::Finished(
            self.finished
                .expect("session not finished; call step() until is_ended()"),
        )
    }

    // ------------------------------------------------------------------
    // Phase bodies. The operation order inside them reproduces the old
    // monolithic tune() exactly, so runs are bit-identical.
    // ------------------------------------------------------------------

    fn step_start(&mut self) -> SessionEvent {
        let (wall, header, tables) = self.engine.traced_run(
            self.workload,
            &self.default_cfg,
            combine(self.run_seed, 100),
        );
        self.default_wall = wall;
        self.header = header;
        self.tables = tables;
        self.phase = Phase::Analyze;
        SessionEvent::InitialRun { wall_secs: wall }
    }

    /// The scenario tags of this session's run regime: degraded topology
    /// when the engine carries a fault plan, noisy neighbor when the
    /// workload is a contention composite. Appended to rule-matching
    /// probes and to reflected rule contexts, so knowledge learned under
    /// one regime never crosses into another (scenario tags gate matching
    /// exactly — see [`ContextTag::is_scenario`]).
    fn scenario_tags(&self) -> Vec<ContextTag> {
        let mut tags = Vec::new();
        if self.engine.options().faults.is_some() {
            tags.push(ContextTag::DegradedTopology);
        }
        if self.workload.contended() {
            tags.push(ContextTag::NoisyNeighbor);
        }
        tags
    }

    /// Canonical-schema labels of the scenario tags (stable strings).
    fn scenario_labels(&self) -> Vec<&'static str> {
        self.scenario_tags()
            .into_iter()
            .filter_map(ContextTag::scenario_label)
            .collect()
    }

    fn build_agent(&mut self) {
        let matched: Vec<agents::Rule> = if self.engine.options().tuning.use_rules {
            let mut tags = self
                .report
                .as_ref()
                .map(ContextTag::tags_for)
                .unwrap_or_default();
            for t in self.scenario_tags() {
                if !tags.contains(&t) {
                    tags.push(t);
                }
            }
            self.rules.matching(&tags).into_iter().cloned().collect()
        } else {
            Vec::new()
        };
        self.agent = Some(TuningAgent::new(
            &mut self.tuning_backend,
            self.engine.options().tuning.clone(),
            self.engine.sim().topology().clone(),
            self.engine.params().to_vec(),
            self.engine.truths(),
            self.report.clone(),
            matched,
            self.default_wall,
        ));
    }

    fn step_analyze(&mut self) -> SessionEvent {
        if self.engine.options().tuning.use_analysis {
            let mut agent = AnalysisAgent::new(&mut self.analysis_backend);
            let report = agent.initial_report(&self.header, &self.tables);
            self.report = Some(report.clone());
            self.build_agent();
            self.phase = Phase::Drive;
            SessionEvent::AnalysisReport(report)
        } else {
            // No Analysis ablation: no report event; proceed directly to
            // the first agent decision so every step still does one thing.
            self.build_agent();
            self.phase = Phase::Drive;
            self.step_drive()
        }
    }

    fn step_drive(&mut self) -> SessionEvent {
        if let Some(reason) = self.abort_reason.take() {
            return self.finalize(reason);
        }
        let mut agent = self.agent.take().expect("agent exists in Drive phase");
        let event = match agent.decide(&mut self.tuning_backend) {
            ToolCall::Analyze(q) => {
                let mut analysis = AnalysisAgent::new(&mut self.analysis_backend);
                let answer = analysis.answer(q, &self.tables);
                agent.accept_answer(answer.clone());
                self.agent = Some(agent);
                SessionEvent::MinorLoopQuestion {
                    question: q,
                    answer,
                }
            }
            ToolCall::RunConfig { config, .. } => {
                // Hygiene between runs: a fresh simulator state per
                // execution (delete files, drop caches, remount).
                let config = config.clamped(&self.registry, self.engine.sim().topology());
                let iteration = self.attempts.len() + 1;
                let (wall, _h, tables) = self.engine.traced_run(
                    self.workload,
                    &config,
                    combine(self.run_seed, 100 + iteration as u64),
                );
                self.tables = tables;
                agent.record_result(config.clone(), wall);
                let record = AttemptRecord {
                    iteration,
                    config,
                    wall_secs: wall,
                    speedup: self.default_wall / wall.max(1e-9),
                };
                self.attempts.push(record.clone());
                self.agent = Some(agent);
                SessionEvent::Attempt(record)
            }
            ToolCall::EndTuning { reason } => {
                self.agent = Some(agent);
                self.finalize(reason)
            }
        };
        event
    }

    fn finalize(&mut self, reason: String) -> SessionEvent {
        let agent = self.agent.take().expect("agent exists at finalize");
        // Best over default + attempts.
        let (best_wall, best_config) = self
            .attempts
            .iter()
            .map(|a| (a.wall_secs, a.config.clone()))
            .chain(std::iter::once((
                self.default_wall,
                self.default_cfg.clone(),
            )))
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .expect("non-empty");

        // Reflect & Summarize; the caller merges into its global rule set.
        let transcript = agent.transcript().to_vec();
        let history = agent.history().to_vec();
        drop(agent);
        let scenario = self.scenario_tags();
        let new_rules = match &self.report {
            Some(r) => agents::reflect::reflect(
                &mut self.tuning_backend,
                r,
                &history,
                self.default_wall,
                &scenario,
            ),
            None => Vec::new(),
        };

        self.finished = Some(TuningRun {
            workload: self.workload.name(),
            default_wall: self.default_wall,
            attempts: std::mem::take(&mut self.attempts),
            best_wall,
            best_speedup: self.default_wall / best_wall.max(1e-9),
            best_config,
            end_reason: reason.clone(),
            new_rules,
            transcript,
            tuning_usage: self.tuning_backend.usage().clone(),
            analysis_usage: self.analysis_backend.usage().clone(),
        });
        self.phase = Phase::Done;
        SessionEvent::Ended { reason }
    }

    fn notify(&mut self, event: &SessionEvent) {
        if self.observers.is_empty() {
            return;
        }
        // Stream transcript lines the agent produced during this step
        // (borrowed, not cloned — `agent`/`finished` and `observers` are
        // disjoint fields).
        let lines: &[String] = match (&self.agent, &self.finished) {
            (Some(agent), _) => agent.transcript(),
            (None, Some(run)) => &run.transcript,
            (None, None) => &[],
        };
        for line in &lines[self.transcript_cursor.min(lines.len())..] {
            for obs in &mut self.observers {
                obs.on_transcript(line);
            }
        }
        self.transcript_cursor = lines.len();
        for obs in &mut self.observers {
            obs.on_event(event);
            obs.on_usage(self.tuning_backend.usage(), self.analysis_backend.usage());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StellarBuilder;
    use agents::RuleSet;
    use std::cell::RefCell;
    use std::rc::Rc;
    use workloads::WorkloadKind;

    /// Collects everything the session streams.
    #[derive(Default)]
    struct Recorder {
        lines: Vec<String>,
        events: Vec<String>,
        last_tuning_calls: u64,
        waits: u64,
        retries: Vec<(String, u32, CallError)>,
    }

    struct SharedRecorder(Rc<RefCell<Recorder>>);

    impl RunObserver for SharedRecorder {
        fn on_event(&mut self, event: &SessionEvent) {
            let tag = match event {
                SessionEvent::InitialRun { .. } => "initial",
                SessionEvent::AnalysisReport(_) => "report",
                SessionEvent::MinorLoopQuestion { .. } => "question",
                SessionEvent::Attempt(_) => "attempt",
                // Never delivered through on_event — asserted below by
                // comparing recorded orders with and without latency.
                SessionEvent::Waiting { .. } => "waiting",
                SessionEvent::Ended { .. } => "ended",
                SessionEvent::Failed { .. } => "failed",
            };
            self.0.borrow_mut().events.push(tag.to_string());
        }
        fn on_transcript(&mut self, line: &str) {
            self.0.borrow_mut().lines.push(line.to_string());
        }
        fn on_usage(&mut self, tuning: &UsageMeter, _analysis: &UsageMeter) {
            self.0.borrow_mut().last_tuning_calls = tuning.calls;
        }
        fn on_waiting(&mut self, _call: llmsim::CallHandle) {
            self.0.borrow_mut().waits += 1;
        }
        fn on_retry(&mut self, context: &str, attempt: u32, error: &CallError) {
            self.0
                .borrow_mut()
                .retries
                .push((context.to_string(), attempt, error.clone()));
        }
    }

    #[test]
    fn drained_session_is_bit_identical_to_tune() {
        let engine = Stellar::standard();
        let w = WorkloadKind::Ior16M.spec().scaled(0.1);
        let mut rules = RuleSet::new();
        let via_tune = engine.tune(w.as_ref(), &mut rules, 42);
        let via_session = engine.session(w.as_ref(), RuleSet::new(), 42).drain();

        assert_eq!(via_tune.workload, via_session.workload);
        assert_eq!(
            via_tune.default_wall.to_bits(),
            via_session.default_wall.to_bits()
        );
        assert_eq!(via_tune.attempts.len(), via_session.attempts.len());
        for (a, b) in via_tune.attempts.iter().zip(&via_session.attempts) {
            assert_eq!(a.config, b.config);
            assert_eq!(a.wall_secs.to_bits(), b.wall_secs.to_bits());
        }
        assert_eq!(via_tune.best_config, via_session.best_config);
        assert_eq!(
            via_tune.best_wall.to_bits(),
            via_session.best_wall.to_bits()
        );
        assert_eq!(via_tune.end_reason, via_session.end_reason);
        assert_eq!(via_tune.transcript, via_session.transcript);
        assert_eq!(via_tune.new_rules, via_session.new_rules);
        assert_eq!(
            via_tune.tuning_usage.input_tokens,
            via_session.tuning_usage.input_tokens
        );
        assert_eq!(
            via_tune.analysis_usage.input_tokens,
            via_session.analysis_usage.input_tokens
        );
        // tune() merged the session-learned rules into the caller's set.
        assert_eq!(rules.rules, {
            let mut r = RuleSet::new();
            r.merge(via_session.new_rules.clone());
            r.rules
        });
    }

    #[test]
    fn observer_streams_the_exact_transcript_and_event_order() {
        let engine = Stellar::standard();
        let w = WorkloadKind::MdWorkbench8K.spec().scaled(0.15);
        let recorder = Rc::new(RefCell::new(Recorder::default()));
        let mut session = engine.session(w.as_ref(), RuleSet::new(), 6);
        session.observe(Box::new(SharedRecorder(recorder.clone())));
        let run = session.drain();

        let rec = recorder.borrow();
        // Acceptance criterion: the observer received the same transcript
        // lines TuningRun.transcript records.
        assert_eq!(rec.lines, run.transcript);
        // Event order: initial run, analysis report, then the loop, ended.
        assert_eq!(rec.events.first().map(String::as_str), Some("initial"));
        assert_eq!(rec.events.get(1).map(String::as_str), Some("report"));
        assert_eq!(rec.events.last().map(String::as_str), Some("ended"));
        let attempts = rec.events.iter().filter(|e| *e == "attempt").count();
        assert_eq!(attempts, run.attempts.len());
        assert_eq!(rec.last_tuning_calls, run.tuning_usage.calls);
    }

    #[test]
    fn stepping_yields_initial_run_first_and_is_idempotent_after_end() {
        let engine = Stellar::standard();
        let w = WorkloadKind::Ior16M.spec().scaled(0.08);
        let mut session = engine.session(w.as_ref(), RuleSet::new(), 3);
        assert!(!session.is_ended());
        let first = session.step();
        assert!(matches!(first, SessionEvent::InitialRun { wall_secs } if wall_secs > 0.0));
        while !session.is_ended() {
            session.step();
        }
        let again = session.step();
        assert!(matches!(again, SessionEvent::Ended { .. }));
        let run = session.into_run();
        assert!(run.best_speedup >= 1.0);
    }

    /// The tentpole seam at session level: with backend latency injected,
    /// steps return `Waiting` while a turn's call is in flight (state
    /// intact, `is_waiting()` true), observers hear of waits only through
    /// `on_waiting`, and the drained run — events, transcript, usage —
    /// is bit-identical to the instant-backend session.
    #[test]
    fn latency_suspends_steps_but_never_changes_the_run() {
        let w = WorkloadKind::Ior16M.spec().scaled(0.08);
        let drive = |engine: &Stellar| {
            let recorder = Rc::new(RefCell::new(Recorder::default()));
            let mut session = engine.session(w.as_ref(), RuleSet::new(), 9);
            session.observe(Box::new(SharedRecorder(recorder.clone())));
            let mut waiting_steps = 0u64;
            while !session.is_ended() {
                if matches!(session.step(), SessionEvent::Waiting { .. }) {
                    waiting_steps += 1;
                    assert!(session.is_waiting(), "Waiting step leaves gate pending");
                }
            }
            assert!(!session.is_waiting());
            (session.into_run(), recorder, waiting_steps)
        };

        let instant = StellarBuilder::new().build();
        let (run_a, rec_a, waits_a) = drive(&instant);
        let latent = StellarBuilder::new()
            .backend_latency(llmsim::LatencyProfile::uniform(1, 3))
            .build();
        let (run_b, rec_b, waits_b) = drive(&latent);

        assert_eq!(waits_a, 0, "instant backend never suspends");
        assert!(waits_b > 0, "latency must suspend at least one turn");
        assert_eq!(rec_b.borrow().waits, waits_b, "on_waiting per Waiting step");
        // Semantic stream and result: bit-identical across the seam.
        assert_eq!(rec_a.borrow().events, rec_b.borrow().events);
        assert!(!rec_b.borrow().events.contains(&"waiting".to_string()));
        assert_eq!(rec_a.borrow().lines, rec_b.borrow().lines);
        assert_eq!(run_a.transcript, run_b.transcript);
        assert_eq!(run_a.best_wall.to_bits(), run_b.best_wall.to_bits());
        assert_eq!(run_a.best_config, run_b.best_config);
        assert_eq!(run_a.end_reason, run_b.end_reason);
        assert_eq!(run_a.new_rules, run_b.new_rules);
        assert_eq!(run_a.tuning_usage, run_b.tuning_usage);
        assert_eq!(run_a.analysis_usage, run_b.analysis_usage);
    }

    /// Aborting a suspended session abandons the in-flight call: the very
    /// next step ends the run (abort takes effect before the next agent
    /// decision, exactly as on the instant path) instead of waiting out
    /// the provider's remaining latency. Pins the full abort contract
    /// under `--backend-latency`: the in-flight `CallHandle` is cancelled
    /// on the backend (`in_flight` drops to 0) and an attached emitter
    /// still writes a well-formed final record.
    #[test]
    fn abort_while_waiting_ends_immediately() {
        let engine = StellarBuilder::new()
            .backend_latency(llmsim::LatencyProfile::fixed(50))
            .build();
        let w = WorkloadKind::Ior16M.spec().scaled(0.08);
        let mut emitter = crate::obs::JsonlEmitter::new(Vec::new());
        let mut session = engine.session(w.as_ref(), RuleSet::new(), 4);
        session.observe(Box::new(&mut emitter));
        session.step(); // initial run (ungated simulator work)
        let mut event = session.step(); // analyze turn: call goes in flight
        assert!(matches!(event, SessionEvent::Waiting { .. }));
        assert!(session.is_waiting());
        assert_eq!(session.in_flight(), 1);
        while matches!(event, SessionEvent::Waiting { .. }) {
            event = session.step();
        }
        assert!(matches!(event, SessionEvent::AnalysisReport(_)));
        let event = session.step(); // first agent decision goes in flight
        assert!(matches!(event, SessionEvent::Waiting { .. }));
        assert_eq!(session.in_flight(), 1);
        session.abort("deadline");
        let event = session.step();
        let SessionEvent::Ended { reason } = event else {
            panic!("expected Ended, got {event:?}");
        };
        assert_eq!(reason, "deadline");
        assert!(!session.is_waiting(), "abort cancels the in-flight call");
        assert_eq!(
            session.in_flight(),
            0,
            "the cancelled call is gone from the backend, not leaked"
        );
        let run = session.into_run();
        assert!(run.attempts.is_empty(), "aborted before any attempt");
        // The emitter's record is complete and well-formed: it parses,
        // and its canonical stream ends with the SessionEnd event
        // carrying the abort reason.
        let bytes = emitter.into_inner();
        let text = String::from_utf8(bytes).expect("utf-8 record");
        let record = crate::obs::RunRecord::parse(&text).expect("well-formed final record");
        let events = record.events();
        match events.last() {
            Some(crate::obs::ObsEvent::SessionEnd { reason }) => assert_eq!(reason, "deadline"),
            other => panic!("record must end with SessionEnd, got {other:?}"),
        }
    }

    #[test]
    fn abort_hook_ends_the_run_with_the_caller_reason() {
        let engine = Stellar::standard();
        let w = WorkloadKind::Ior16M.spec().scaled(0.08);
        let mut session = engine.session(w.as_ref(), RuleSet::new(), 4);
        session.step(); // initial run
        session.step(); // analysis report
        assert_eq!(session.remaining_budget(), 5);
        session.abort("operator requested shutdown");
        let event = session.step();
        let SessionEvent::Ended { reason } = event else {
            panic!("expected Ended, got {event:?}");
        };
        assert_eq!(reason, "operator requested shutdown");
        assert!(session.is_ended());
        let run = session.into_run();
        assert!(run.attempts.is_empty(), "aborted before any attempt");
        assert_eq!(run.end_reason, "operator requested shutdown");
        // Best falls back to the default configuration.
        assert_eq!(run.best_wall.to_bits(), run.default_wall.to_bits());
    }

    /// With every call failing transiently, the session burns its retry
    /// budget and ends in `SessionEvent::Failed` carrying
    /// `RetriesExhausted` — it never panics and never produces a run.
    #[test]
    fn exhausted_retries_fail_the_session_structurally() {
        let engine = StellarBuilder::new()
            .failures(llmsim::FailureInjection {
                seed: 1,
                profile: llmsim::FailureProfile {
                    transient_rate: 1.0,
                    fatal_rate: 0.0,
                },
            })
            .retry_policy(RetryPolicy {
                max_attempts: 3,
                backoff_ticks: 1,
                pending_timeout: None,
            })
            .build();
        let w = WorkloadKind::Ior16M.spec().scaled(0.08);
        let recorder = Rc::new(RefCell::new(Recorder::default()));
        let mut session = engine.session(w.as_ref(), RuleSet::new(), 5);
        session.observe(Box::new(SharedRecorder(recorder.clone())));
        let mut last = session.step();
        assert!(matches!(last, SessionEvent::InitialRun { .. }));
        while !session.is_ended() {
            last = session.step();
        }
        let SessionEvent::Failed { error } = &last else {
            panic!("expected Failed, got {last:?}");
        };
        let SessionError::RetriesExhausted { attempts, last, .. } = error else {
            panic!("expected RetriesExhausted, got {error:?}");
        };
        assert_eq!(*attempts, 3, "the full budget was spent");
        assert!(last.is_transient());
        assert!(session.is_failed());
        assert_eq!(session.in_flight(), 0, "no call left dangling");
        // Two resubmissions (attempts 2 and 3) were reported canonically.
        let rec = recorder.borrow();
        assert_eq!(
            rec.retries.iter().map(|(_, n, _)| *n).collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert_eq!(rec.events.last().map(String::as_str), Some("failed"));
        drop(rec);
        // Terminal state is idempotent, like Ended.
        assert!(matches!(session.step(), SessionEvent::Failed { .. }));
        let SessionOutcome::Failed(err) = session.into_outcome() else {
            panic!("outcome must be Failed");
        };
        assert!(matches!(err, SessionError::RetriesExhausted { .. }));
    }

    /// A fatal verdict fails the session on the spot, without consuming
    /// the retry budget.
    #[test]
    fn fatal_calls_fail_without_retrying() {
        let engine = StellarBuilder::new()
            .failures(llmsim::FailureInjection {
                seed: 2,
                profile: llmsim::FailureProfile {
                    transient_rate: 0.0,
                    fatal_rate: 1.0,
                },
            })
            .build();
        let w = WorkloadKind::Ior16M.spec().scaled(0.08);
        let recorder = Rc::new(RefCell::new(Recorder::default()));
        let mut session = engine.session(w.as_ref(), RuleSet::new(), 5);
        session.observe(Box::new(SharedRecorder(recorder.clone())));
        let outcome = session.drain_outcome();
        let SessionOutcome::Failed(SessionError::FatalCall { error, .. }) = outcome else {
            panic!("expected FatalCall, got {outcome:?}");
        };
        assert!(!error.is_transient());
        assert!(recorder.borrow().retries.is_empty(), "fatal never retries");
    }

    /// The deterministic-retry contract: under a mild injection the
    /// session recovers through retries and produces a run bit-identical
    /// across reruns — and identical under any latency profile, because
    /// failure verdicts are drawn per submission index, which latency
    /// cannot shift.
    #[test]
    fn retried_sessions_are_deterministic_and_latency_invariant() {
        let w = WorkloadKind::Ior16M.spec().scaled(0.08);
        let drive = |latency: Option<llmsim::LatencyProfile>| {
            let mut builder = StellarBuilder::new()
                .failures(llmsim::FailureInjection {
                    seed: 3,
                    profile: llmsim::FailureProfile {
                        transient_rate: 0.3,
                        fatal_rate: 0.0,
                    },
                })
                .retry_policy(RetryPolicy {
                    max_attempts: 10,
                    backoff_ticks: 1,
                    pending_timeout: None,
                });
            if let Some(profile) = latency {
                builder = builder.backend_latency(profile);
            }
            let engine = builder.build();
            let recorder = Rc::new(RefCell::new(Recorder::default()));
            let mut session = engine.session(w.as_ref(), RuleSet::new(), 9);
            session.observe(Box::new(SharedRecorder(recorder.clone())));
            let outcome = session.drain_outcome();
            let SessionOutcome::Finished(run) = outcome else {
                panic!("a 10-attempt budget must survive a 0.3 transient rate: {outcome:?}");
            };
            let Ok(rec) = Rc::try_unwrap(recorder) else {
                panic!("the recorder must have a sole owner after the drain");
            };
            let rec = rec.into_inner();
            (run, rec.events, rec.retries)
        };

        let (run_a, events_a, retries_a) = drive(None);
        assert!(!retries_a.is_empty(), "the injection must bite");
        let (run_b, events_b, retries_b) = drive(None);
        assert_eq!(retries_a, retries_b, "same seed, same retry schedule");
        assert_eq!(events_a, events_b);
        assert_eq!(run_a.best_wall.to_bits(), run_b.best_wall.to_bits());
        assert_eq!(run_a.transcript, run_b.transcript);

        let (run_c, events_c, retries_c) = drive(Some(llmsim::LatencyProfile::uniform(1, 3)));
        assert_eq!(retries_a, retries_c, "latency cannot shift the schedule");
        assert_eq!(events_a, events_c);
        assert_eq!(run_a.best_wall.to_bits(), run_c.best_wall.to_bits());
        assert_eq!(run_a.tuning_usage, run_c.tuning_usage);
    }

    /// The pending-poll timeout cancels a stuck call, resubmits, and
    /// consumes an attempt — so a transport that outlasts every budgeted
    /// attempt fails the session instead of hanging it.
    #[test]
    fn pending_timeout_consumes_the_budget() {
        let engine = StellarBuilder::new()
            .backend_latency(llmsim::LatencyProfile::fixed(100))
            .retry_policy(RetryPolicy {
                max_attempts: 2,
                backoff_ticks: 0,
                pending_timeout: Some(5),
            })
            .build();
        let w = WorkloadKind::Ior16M.spec().scaled(0.08);
        let session = engine.session(w.as_ref(), RuleSet::new(), 7);
        let outcome = session.drain_outcome();
        let SessionOutcome::Failed(SessionError::RetriesExhausted { attempts, last, .. }) = outcome
        else {
            panic!("expected RetriesExhausted via timeout, got {outcome:?}");
        };
        assert_eq!(attempts, 2);
        assert_eq!(last.reason(), "pending-poll timeout");
    }
}
