//! # stellar — the Storage Tuning Engine, end to end
//!
//! Wires the substrates together into the system of Fig. 1:
//!
//! * **Offline** — [`engine::Stellar::new`] builds the RAG extractor over the
//!   synthetic manual and runs the §4.2 pipeline, yielding the 13 tunables
//!   with grounded descriptions and dependent ranges.
//! * **Online** — [`engine::Stellar::tune`] executes a *Tuning Run*: initial
//!   default execution under Darshan, Analysis Agent report, Tuning Agent
//!   trial-and-error loop (≤ 5 configurations), Reflect & Summarize, and
//!   global rule-set accumulation. Between runs the simulator state is
//!   rebuilt from scratch (the paper's delete/clear/remount hygiene).
//! * **Baselines** — [`baselines::expert_oracle`] (the human-expert stand-in:
//!   coordinate descent with a large evaluation budget) and
//!   [`baselines::random_search`] (the iteration-hungry classical contrast).
//! * **Experiments** — [`experiments`] contains one driver per paper figure
//!   and table; the `bench` crate's binaries print their outputs.

pub mod baselines;
pub mod engine;
pub mod experiments;
pub mod measure;

pub use engine::{AttemptRecord, Stellar, StellarOptions, TuningRun};
