//! # stellar — the Storage Tuning Engine, end to end
//!
//! Wires the substrates together into the system of Fig. 1, exposed as a
//! three-layer API:
//!
//! * **Builder** — [`StellarBuilder`] constructs the engine: fluent setters
//!   for topology, per-agent model profiles, behaviour switches, attempt
//!   budget and seed policy; `build()` runs the offline §4.2 RAG pipeline,
//!   yielding the 13 tunables with grounded descriptions and dependent
//!   ranges.
//! * **Session** — [`TuningSession`] executes a *Tuning Run* step by step:
//!   initial default execution under Darshan, Analysis Agent report,
//!   Tuning Agent trial-and-error loop (≤ 5 configurations), Reflect &
//!   Summarize. Each [`TuningSession::step`] returns a [`SessionEvent`];
//!   [`RunObserver`]s stream transcripts and token usage; sessions can be
//!   aborted mid-run, and under injected backend latency
//!   (`StellarBuilder::backend_latency`) they *suspend* on in-flight
//!   provider calls ([`SessionEvent::Waiting`]) instead of blocking.
//!   Injected backend *failures* (`StellarBuilder::failures`) are retried
//!   under a deterministic [`RetryPolicy`]; a fatal error or an exhausted
//!   budget ends the session with a structured [`SessionError`]
//!   ([`SessionEvent::Failed`]), never a panic.
//!   [`Stellar::tune`] remains as a thin wrapper draining
//!   a session to completion. Between runs the simulator state is rebuilt
//!   from scratch (the paper's delete/clear/remount hygiene).
//! * **Campaign** — [`Campaign`] runs workload × seed grids with shared
//!   rule-set accumulation (warm/cold modes) and deterministic parallel
//!   execution, aggregating into a [`CampaignReport`] — the substrate for
//!   the Fig. 6/7 sweeps and multi-workload serving. Cells are failure
//!   domains: a failed or panicking cell publishes
//!   [`CellOutcome::Failed`] while its siblings keep running, and an
//!   interrupted campaign can be resumed crash-consistently from its
//!   partial run record ([`Campaign::resume_from`]).
//!
//! Accumulated rules live in a sharded, copy-on-write
//! [`agents::ShardedRuleStore`]; sessions and campaign rounds read O(1)
//! [`agents::RuleSnapshot`]s instead of cloning the set (see
//! `ARCHITECTURE.md` at the repository root for the full data flow).
//!
//! Both layers stream progress: sessions to [`RunObserver`]s, campaigns
//! to [`CampaignObserver`]s. The [`obs`] module turns those streams into
//! durable artifacts — [`JsonlEmitter`] writes a versioned, deterministic
//! JSONL run record (CLI `--emit`), [`ProgressRenderer`] draws a live
//! status board (CLI `--progress`), and [`RunRecord`] parses a record
//! back for the `stellar-replay` binary.
//!
//! Baselines ([`baselines::expert_oracle`], [`baselines::random_search`])
//! and per-figure [`experiments`] drivers ride on top; the `bench` crate's
//! binaries print their outputs.
//!
//! # Example
//!
//! One tuning run, stepped to completion:
//!
//! ```
//! use agents::RuleSet;
//! use stellar::{SessionEvent, StellarBuilder};
//! use workloads::WorkloadKind;
//!
//! let engine = StellarBuilder::new().attempt_budget(5).build();
//! let workload = WorkloadKind::Ior16M.spec().scaled(0.05);
//! let mut session = engine.session(workload.as_ref(), RuleSet::new(), 42);
//! let mut attempts = 0;
//! while !session.is_ended() {
//!     if let SessionEvent::Attempt(_) = session.step() {
//!         attempts += 1;
//!     }
//! }
//! let run = session.into_run();
//! assert_eq!(run.attempts.len(), attempts);
//! assert!(run.best_speedup >= 1.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod baselines;
pub mod builder;
pub mod campaign;
pub mod engine;
pub mod experiments;
pub mod measure;
pub mod obs;
pub mod sched;
pub mod session;

pub use builder::StellarBuilder;
pub use campaign::{
    Campaign, CampaignCell, CampaignGrid, CampaignObserver, CampaignReport, CellFailure,
    CellOutcome, RuleMode,
};
pub use engine::{default_topology, AttemptRecord, SeedPolicy, Stellar, StellarOptions, TuningRun};
pub use obs::{JsonlEmitter, ObsEvent, ProgressRenderer, RecordLine, RunRecord, SchedNote};
pub use sched::{CostModel, SchedStats, Schedule};
pub use session::{
    RetryPolicy, RunObserver, SessionError, SessionEvent, SessionOutcome, TuningSession,
};
