//! `stellar-replay` — read a JSONL run record back and re-render it.
//!
//! ```text
//! stellar-replay <file.jsonl>            summarize the run from the record
//! stellar-replay <file.jsonl> --events   re-render every canonical event
//! stellar-replay <file.jsonl> --notes    dump the scheduling/timing sidecar
//! ```
//!
//! Records are written by `stellar-tune tune --emit` / `campaign --emit`
//! (one [`stellar::RecordLine`] per line, schema-versioned — see
//! `stellar::obs`). The summary is reproduced from the record alone: for
//! campaign records the per-cell table and trailer are byte-identical to
//! what `stellar-tune campaign` printed live.

use stellar::{ObsEvent, RunRecord, SchedNote};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!("usage: stellar-replay <file.jsonl> [--events] [--notes]");
        std::process::exit(2);
    };
    let record = match RunRecord::load(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bad run record: {e}");
            std::process::exit(1);
        }
    };
    let has = |name: &str| args.iter().any(|a| a == name);
    if has("--events") {
        for e in record.events() {
            println!("{}", render_event(e));
        }
    }
    if has("--notes") {
        for n in record.notes() {
            println!("{}", render_note(n));
        }
    }
    if !has("--events") && !has("--notes") {
        print!("{}", record.summary());
    }
}

/// One human-readable line per canonical event — the offline counterpart
/// of watching `tune --stream` / `campaign --progress` live.
fn render_event(e: &ObsEvent) -> String {
    match e {
        ObsEvent::SessionStart {
            workload,
            run_seed,
            scenario,
        } => {
            if scenario.is_empty() {
                format!("session: {workload} (run seed {run_seed})")
            } else {
                format!(
                    "session: {workload} (run seed {run_seed}; scenario: {})",
                    scenario.join(", ")
                )
            }
        }
        ObsEvent::InitialRun { wall_secs } => format!("initial run: {wall_secs:.3}s"),
        ObsEvent::AnalysisReport { report } => format!(
            "analysis report: {:?}, {} data op(s), {} meta op(s)",
            report.classify(),
            report.data_ops,
            report.meta_ops
        ),
        ObsEvent::MinorLoop { question, answer } => {
            format!("minor loop: {question:?} -> {}", answer.text)
        }
        ObsEvent::Attempt { record } => format!(
            "attempt {}: {:.3}s (x{:.2})",
            record.iteration, record.wall_secs, record.speedup
        ),
        ObsEvent::Transcript { line } => format!("  | {line}"),
        ObsEvent::Usage { tuning, analysis } => format!(
            "usage: +{} tuning call(s) (+{} in / +{} out), +{} analysis call(s)",
            tuning.calls, tuning.input_tokens, tuning.output_tokens, analysis.calls
        ),
        ObsEvent::Retry {
            context,
            attempt,
            error,
        } => format!("  retry {attempt} at {context}: {error}"),
        ObsEvent::SessionEnd { reason } => format!("session ended: {reason}"),
        ObsEvent::SessionFailed { error } => format!("session failed: {error}"),
        ObsEvent::CampaignStart {
            workloads,
            seeds,
            mode,
            faults,
            injection,
            retry,
        } => {
            let mut line = format!(
                "campaign: [{}] x {} seed(s), {} rules",
                workloads.join(", "),
                seeds.len(),
                mode,
            );
            if let Some(label) = faults {
                line.push_str(&format!(", faults: {label}"));
            }
            if let Some(label) = injection {
                line.push_str(&format!(", failures: {label}"));
            }
            if let Some(label) = retry {
                line.push_str(&format!(", retry: {label}"));
            }
            line
        }
        ObsEvent::RoundStart { seed } => format!("round: seed {seed}"),
        ObsEvent::CellFinished {
            workload,
            seed,
            run,
            ..
        } => format!(
            "cell: {workload} @ seed {seed} -> x{:.2} in {} attempt(s) ({})",
            run.best_speedup,
            run.attempts.len(),
            run.end_reason
        ),
        ObsEvent::CellFailed {
            workload,
            seed,
            failure,
            ..
        } => format!("cell: {workload} @ seed {seed} -> failed ({failure})"),
        ObsEvent::RuleMerge {
            workload,
            added,
            total,
        } => format!("rules: {workload} merged {added} -> {total} in store"),
        ObsEvent::CampaignEnd {
            cells,
            evaluations,
            mean_best_speedup,
            rules,
            shards,
            failed,
        } => format!(
            "campaign ended: {cells} cell(s){}, {evaluations} evaluation(s), \
             mean x{mean_best_speedup:.2}, {rules} rule(s) in {shards} shard(s)",
            if *failed > 0 {
                format!(" ({failed} failed)")
            } else {
                String::new()
            }
        ),
    }
}

fn render_note(n: &SchedNote) -> String {
    match n {
        SchedNote::Waiting { call } => format!("waiting on call #{call}"),
        SchedNote::RoundPlanned {
            seed,
            schedule,
            order,
        } => format!("seed {seed}: planned {order:?} ({schedule})"),
        SchedNote::CellClaimed {
            worker,
            seed,
            grid_idx,
            workload,
        } => format!("seed {seed}: w{worker} claimed [{grid_idx}] {workload}"),
        SchedNote::CellSuspended {
            worker,
            seed,
            grid_idx,
            call,
        } => format!("seed {seed}: w{worker} suspended [{grid_idx}] on call #{call}"),
        SchedNote::CellPublished {
            worker,
            seed,
            grid_idx,
            busy_secs,
        } => format!("seed {seed}: w{worker} published [{grid_idx}] after {busy_secs:.3}s"),
        SchedNote::RoundStats {
            seed,
            makespan_secs,
            utilization,
            max_in_flight,
            cell_secs,
        } => format!(
            "seed {seed}: makespan {makespan_secs:.3}s, utilization {:.0}%, \
             in-flight peak {max_in_flight}, {} cell(s)",
            utilization * 100.0,
            cell_secs.len()
        ),
    }
}
