//! `stellar-tune` — command-line frontend for the STELLAR engine.
//!
//! ```text
//! stellar-tune workloads                         list known workloads
//! stellar-tune extract                           run the offline RAG extraction
//! stellar-tune tune IOR_16M [options]            run one tuning run
//! stellar-tune campaign IOR_16M,MACSio_16M [options]   run a workload × seed grid
//! stellar-tune baseline IOR_16M [--scale f]      expert oracle + random search
//! stellar-tune rules <file.json>                 pretty-print a rule set
//!
//! tune options:
//!   --scale <f>        workload scale factor (default 1.0)
//!   --attempts <n>     configuration budget (default 5)
//!   --model <name>     claude-3.7-sonnet | gpt-4o | llama-3.1-70b
//!   --rules <file>     load the global rule set from a JSON file
//!   --save-rules <f>   write the updated rule set back
//!   --seed <n>         experiment seed (default 42)
//!   --stream           print agent transcript lines as they happen
//!   --emit <path>      write the run record as JSONL (see stellar::obs;
//!                      replay with `stellar-replay <path>`)
//!   --backend-latency <t|a..b>   simulated provider latency in poll ticks
//!                      (fixed or inclusive range); sessions suspend
//!                      instead of blocking — results are unchanged
//!   --faults <seed>    run under a seeded OST fault plan (degradation,
//!                      dropout, recovery scheduled in simulated time);
//!                      learned rules shard under "degraded-topology"
//!   --inject-failures <seed>   fail a seeded fraction of backend calls
//!                      (transient + fatal); transients retry under the
//!                      engine's retry policy, fatal errors end the
//!                      session with a structured failure
//!   --retry <n>        total submissions allowed per backend call under
//!                      --inject-failures (default 3)
//!   --no-analysis / --no-descriptions / --no-rules   ablation switches
//!
//! campaign options (plus --scale/--rules/--save-rules/--attempts/--model/
//!                   --backend-latency/--faults/--inject-failures/--retry/
//!                   --emit); a grid cell label
//!                   may be a composite `A+B`, which co-schedules the named
//!                   workloads over shared OSTs (noisy-neighbor contention):
//!   --seeds <a,b,c>    grid seeds (default 42)
//!   --warm             accumulate rules across seed rounds
//!   --serial           disable parallel cell execution
//!   --threads <n>      worker threads (default: hardware parallelism)
//!   --schedule <s>     cell order: fifo | lpt | adaptive (default adaptive)
//!   --progress         draw a live per-worker status board on stderr
//!   --rule-shards      print the final sharded rule store's census
//!   --resume <record.jsonl>   replay the completed rounds of a partial
//!                      run record (same grid and flags) and execute only
//!                      the remainder; the final report is bit-identical
//!                      to an uninterrupted run
//! ```

use agents::RuleSet;
use llmsim::{LatencyProfile, ModelProfile};
use stellar::baselines::{expert_oracle, random_search};
use stellar::{Campaign, RuleMode, RunObserver, Schedule, Stellar, StellarBuilder};
use workloads::{WorkloadKind, BENCHMARKS, REAL_APPS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("workloads") => cmd_workloads(),
        Some("extract") => cmd_extract(),
        Some("tune") => cmd_tune(&args[1..]),
        Some("campaign") => cmd_campaign(&args[1..]),
        Some("baseline") => cmd_baseline(&args[1..]),
        Some("rules") => cmd_rules(&args[1..]),
        _ => {
            eprintln!("usage: stellar-tune <workloads|extract|tune|campaign|baseline|rules> ...");
            eprintln!("see the crate docs or README for options");
            2
        }
    };
    std::process::exit(code);
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Strictly parse a numeric `--flag <value>`: an absent flag yields
/// `default`, but a present-and-malformed value is a usage error (friendly
/// message, exit 2) — never a silent fall-back to the default.
fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, i32> {
    match flag_value(args, name) {
        Some(v) => v.parse().map_err(|_| {
            eprintln!("bad {name} `{v}`; expected a number");
            2
        }),
        None => Ok(default),
    }
}

fn parse_workload(args: &[String]) -> Result<WorkloadKind, i32> {
    let Some(label) = args.first() else {
        eprintln!("missing workload label; try `stellar-tune workloads`");
        return Err(2);
    };
    WorkloadKind::from_label(label).ok_or_else(|| {
        eprintln!("unknown workload `{label}`; try `stellar-tune workloads`");
        2
    })
}

fn cmd_workloads() -> i32 {
    println!("benchmarks:");
    for k in BENCHMARKS {
        println!("  {:<16} {}", k.label(), k.spec().describe());
    }
    println!("real applications:");
    for k in REAL_APPS {
        println!("  {:<16} {}", k.label(), k.spec().describe());
    }
    0
}

fn cmd_extract() -> i32 {
    let engine = Stellar::standard();
    let report = engine.extraction_report();
    println!(
        "extracted {} of {} parameters ({} writable, {} documented, {} non-binary)",
        report.selected, report.total_params, report.writable, report.sufficient, report.non_binary
    );
    for p in engine.params() {
        println!(
            "  {:<34} default {}{}{}",
            p.name,
            p.default,
            if p.unit.is_empty() { "" } else { " " },
            p.unit
        );
    }
    0
}

/// Build an engine from the shared CLI flags (`--attempts`, `--model`,
/// ablation switches).
fn engine_from_flags(args: &[String]) -> Result<Stellar, i32> {
    let mut builder = StellarBuilder::new()
        .use_analysis(!has_flag(args, "--no-analysis"))
        .use_descriptions(!has_flag(args, "--no-descriptions"))
        .use_rules(!has_flag(args, "--no-rules"));
    if let Some(v) = flag_value(args, "--attempts") {
        match v.parse() {
            Ok(n) => builder = builder.attempt_budget(n),
            Err(_) => {
                eprintln!("bad --attempts `{v}`; expected a number");
                return Err(2);
            }
        }
    }
    if let Some(model) = flag_value(args, "--model") {
        builder = builder.tuning_model(match model.as_str() {
            "claude-3.7-sonnet" => ModelProfile::claude_37_sonnet(),
            "gpt-4o" => ModelProfile::gpt_4o(),
            "llama-3.1-70b" => ModelProfile::llama_31_70b(),
            other => {
                eprintln!("unknown model `{other}`");
                return Err(2);
            }
        });
    }
    if let Some(spec) = flag_value(args, "--backend-latency") {
        match LatencyProfile::parse(&spec) {
            Some(profile) => builder = builder.backend_latency(profile),
            None => {
                eprintln!("bad --backend-latency `{spec}`; use ticks (`3`) or a range (`1..4`)");
                return Err(2);
            }
        }
    }
    if let Some(spec) = flag_value(args, "--faults") {
        match spec.parse::<u64>() {
            Ok(fault_seed) => {
                let topo = stellar::default_topology();
                builder = builder.faults(pfs::FaultPlan::seeded(topo.ost_count(), fault_seed));
            }
            Err(_) => {
                eprintln!("bad --faults `{spec}`; use an integer fault-plan seed");
                return Err(2);
            }
        }
    }
    if let Some(spec) = flag_value(args, "--inject-failures") {
        match spec.parse::<u64>() {
            Ok(seed) => builder = builder.failures(llmsim::FailureInjection::standard(seed)),
            Err(_) => {
                eprintln!("bad --inject-failures `{spec}`; use an integer injection seed");
                return Err(2);
            }
        }
    }
    if let Some(spec) = flag_value(args, "--retry") {
        match spec.parse::<u32>() {
            Ok(n) if n >= 1 => {
                builder = builder.retry_policy(stellar::RetryPolicy {
                    max_attempts: n,
                    ..Default::default()
                });
            }
            _ => {
                eprintln!("bad --retry `{spec}`; use a positive total attempt count");
                return Err(2);
            }
        }
    }
    Ok(builder.build())
}

/// Open the `--emit <path>` run-record emitter, if requested.
fn open_emitter(
    args: &[String],
) -> Result<Option<stellar::JsonlEmitter<std::io::BufWriter<std::fs::File>>>, i32> {
    match flag_value(args, "--emit") {
        Some(path) => match stellar::JsonlEmitter::create(&path) {
            Ok(em) => Ok(Some(em)),
            Err(e) => {
                eprintln!("cannot create run record {path}: {e}");
                Err(1)
            }
        },
        None => Ok(None),
    }
}

fn load_rules(args: &[String]) -> Result<RuleSet, i32> {
    match flag_value(args, "--rules") {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(json) => RuleSet::from_json(&json).map_err(|e| {
                eprintln!("bad rule set {path}: {e}");
                1
            }),
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                Err(1)
            }
        },
        None => Ok(RuleSet::new()),
    }
}

fn save_rules(args: &[String], rules: &RuleSet) -> i32 {
    if let Some(path) = flag_value(args, "--save-rules") {
        if let Err(e) = std::fs::write(&path, rules.to_json()) {
            eprintln!("cannot write {path}: {e}");
            return 1;
        }
        println!("rule set ({} rules) written to {path}", rules.len());
    }
    0
}

/// Observer printing transcript lines live (`tune --stream`).
///
/// Transcript lines go to stdout (they are latency-invariant, so stdout
/// stays bit-identical across reruns); suspensions and usage growth go to
/// stderr — under `--backend-latency` a streamed run used to go silent
/// for every in-flight provider call, which read as a hang.
#[derive(Default)]
struct StreamPrinter {
    tuning_calls: u64,
    analysis_calls: u64,
    last_wait: Option<u64>,
}

impl RunObserver for StreamPrinter {
    fn on_transcript(&mut self, line: &str) {
        println!("{line}");
    }

    fn on_waiting(&mut self, call: llmsim::CallHandle) {
        // Once per suspension, not once per poll of the same call.
        if self.last_wait != Some(call.id()) {
            self.last_wait = Some(call.id());
            eprintln!("... waiting on backend call #{}", call.id());
        }
    }

    fn on_usage(&mut self, tuning: &llmsim::UsageMeter, analysis: &llmsim::UsageMeter) {
        // One line per new inference call, not per step.
        if tuning.calls != self.tuning_calls || analysis.calls != self.analysis_calls {
            self.tuning_calls = tuning.calls;
            self.analysis_calls = analysis.calls;
            eprintln!(
                "usage: tuning {} call(s) / {} in / {} out; analysis {} call(s) / {} in / {} out",
                tuning.calls,
                tuning.input_tokens,
                tuning.output_tokens,
                analysis.calls,
                analysis.input_tokens,
                analysis.output_tokens,
            );
        }
    }
}

fn cmd_tune(args: &[String]) -> i32 {
    let kind = match parse_workload(args) {
        Ok(k) => k,
        Err(c) => return c,
    };
    let scale: f64 = match parse_flag(args, "--scale", 1.0) {
        Ok(v) => v,
        Err(c) => return c,
    };
    let seed: u64 = match parse_flag(args, "--seed", 42) {
        Ok(v) => v,
        Err(c) => return c,
    };
    let engine = match engine_from_flags(args) {
        Ok(e) => e,
        Err(c) => return c,
    };
    let mut rules = match load_rules(args) {
        Ok(r) => r,
        Err(c) => return c,
    };

    let mut emitter = match open_emitter(args) {
        Ok(e) => e,
        Err(c) => return c,
    };

    let workload = kind.spec_at(scale);
    let mut session = engine.session(workload.as_ref(), rules.clone(), seed);
    if has_flag(args, "--stream") {
        session.observe(Box::new(StreamPrinter::default()));
    }
    if let Some(em) = emitter.as_mut() {
        // Lend the emitter to the session; it is handed back below to
        // record the rule merge and flush.
        session.observe(Box::new(em));
    }
    let run = match session.drain_outcome() {
        stellar::SessionOutcome::Finished(run) => run,
        stellar::SessionOutcome::Failed(error) => {
            // The failure is structured, never a panic: report it, then
            // still settle the run record so the failure is durable.
            eprintln!("tuning run failed: {error}");
            if let Some(em) = emitter.as_mut() {
                if let Err(e) = em.finish() {
                    eprintln!("cannot flush run record: {e}");
                } else {
                    eprintln!("run record: {} line(s) emitted", em.lines());
                }
            }
            return 1;
        }
    };
    rules.merge(run.new_rules.clone());

    println!("workload: {} (scale {scale})", run.workload);
    println!("default: {:.3}s", run.default_wall);
    for a in &run.attempts {
        println!(
            "  attempt {}: {:.3}s (x{:.2})",
            a.iteration, a.wall_secs, a.speedup
        );
    }
    println!(
        "best: x{:.2} in {} attempts — {}",
        run.best_speedup,
        run.attempts.len(),
        run.end_reason
    );
    println!("{}", run.best_config.render());
    // Results and learned rules persist before the run record settles: a
    // full disk under --emit must not discard the finished run.
    let save_code = save_rules(args, &rules);
    if let Some(em) = emitter.as_mut() {
        em.event(stellar::ObsEvent::RuleMerge {
            workload: run.workload.clone(),
            added: run.new_rules.len(),
            total: rules.len(),
        });
        if let Err(e) = em.finish() {
            eprintln!("cannot flush run record: {e}");
            return 1;
        }
        eprintln!("run record: {} line(s) emitted", em.lines());
    }
    save_code
}

/// Parse one campaign cell label at `scale`: a single suite workload, or
/// a `A+B` composite that co-schedules the named workloads as contending
/// jobs over shared OSTs ([`workloads::Contention`]).
fn parse_cell(label: &str, scale: f64) -> Result<Box<dyn workloads::Workload>, i32> {
    if label.contains('+') {
        let mut jobs = Vec::new();
        for part in label.split('+') {
            match WorkloadKind::from_label(part) {
                Some(k) => jobs.push(k.spec_at(scale)),
                None => {
                    eprintln!(
                        "unknown workload `{part}` in composite `{label}`; \
                         try `stellar-tune workloads`"
                    );
                    return Err(2);
                }
            }
        }
        Ok(Box::new(workloads::Contention::new(jobs)))
    } else {
        match WorkloadKind::from_label(label) {
            Some(k) => Ok(k.spec_at(scale)),
            None => {
                eprintln!("unknown workload `{label}`; try `stellar-tune workloads`");
                Err(2)
            }
        }
    }
}

fn cmd_campaign(args: &[String]) -> i32 {
    let Some(list) = args.first() else {
        eprintln!("missing workload list; try `stellar-tune campaign IOR_16M,MACSio_16M`");
        return 2;
    };
    let scale: f64 = match parse_flag(args, "--scale", 1.0) {
        Ok(v) => v,
        Err(c) => return c,
    };
    let mut cells = Vec::new();
    for label in list.split(',').map(str::trim).filter(|l| !l.is_empty()) {
        match parse_cell(label, scale) {
            Ok(w) => cells.push(w),
            Err(c) => return c,
        }
    }
    if cells.is_empty() {
        eprintln!("empty workload list; try `stellar-tune campaign IOR_16M,MACSio_16M`");
        return 2;
    }
    let mut seeds: Vec<u64> = Vec::new();
    match flag_value(args, "--seeds") {
        Some(list) => {
            for v in list.split(',').map(str::trim).filter(|v| !v.is_empty()) {
                match v.parse() {
                    Ok(seed) => seeds.push(seed),
                    Err(_) => {
                        eprintln!("bad seed `{v}` in --seeds");
                        return 2;
                    }
                }
            }
        }
        None => seeds.push(42),
    }
    if seeds.is_empty() {
        eprintln!("--seeds produced no valid seeds");
        return 2;
    }
    let engine = match engine_from_flags(args) {
        Ok(e) => e,
        Err(c) => return c,
    };
    let rules = match load_rules(args) {
        Ok(r) => r,
        Err(c) => return c,
    };

    let mut emitter = match open_emitter(args) {
        Ok(e) => e,
        Err(c) => return c,
    };

    let mut campaign = Campaign::new(&engine);
    for w in cells {
        campaign = campaign.workload(w);
    }
    campaign = campaign
        .seeds(seeds)
        .starting_rules(rules)
        .rule_mode(if has_flag(args, "--warm") {
            RuleMode::Warm
        } else {
            RuleMode::Cold
        });
    if let Some(v) = flag_value(args, "--threads") {
        match v.parse() {
            Ok(n) => campaign = campaign.threads(n),
            Err(_) => {
                eprintln!("bad --threads `{v}`; expected a number");
                return 2;
            }
        }
    }
    if let Some(name) = flag_value(args, "--schedule") {
        match Schedule::parse(&name) {
            Some(s) => campaign = campaign.schedule(s),
            None => {
                eprintln!("unknown schedule `{name}`; use fifo, lpt or adaptive");
                return 2;
            }
        }
    }
    if let Some(path) = flag_value(args, "--resume") {
        let record = match stellar::RunRecord::load_partial(&path) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("bad run record {path}: {e}");
                return 2;
            }
        };
        match campaign.resume_from(&record) {
            Ok(c) => campaign = c,
            Err(e) => {
                eprintln!("cannot resume from {path}: {e}");
                return 2;
            }
        }
    }
    if let Some(em) = emitter.as_mut() {
        campaign = campaign.observe(Box::new(em));
    }
    if has_flag(args, "--progress") {
        campaign = campaign.observe(Box::new(stellar::ProgressRenderer::stderr()));
    }
    let report = if has_flag(args, "--serial") {
        campaign.run_serial()
    } else {
        campaign.run()
    };
    // The campaign borrows the emitter through its observer box; release
    // it before flushing (which happens last — the computed report and
    // saved rules must survive a run-record write failure).
    drop(campaign);
    print!("{}", report.render());
    // Timing telemetry goes to stderr: stdout stays bit-identical across
    // reruns of the same command (the workspace determinism invariant).
    eprintln!("{}", report.sched_stats.render());
    let (tuning, analysis) = report.total_usage();
    println!(
        "tokens: tuning {} in / {} out ({:.0}% cached), analysis {} in / {} out",
        tuning.input_tokens,
        tuning.output_tokens,
        tuning.cache_hit_ratio() * 100.0,
        analysis.input_tokens,
        analysis.output_tokens,
    );
    if has_flag(args, "--rule-shards") {
        let store = &report.rule_store;
        println!(
            "rule shards: {} rules in {} shards (topology bucket {})",
            store.len(),
            store.shard_count(),
            store.topo_bucket()
        );
        for entry in store.census() {
            println!(
                "  {:>4} rule(s)  [mask {:#05x}] {}",
                entry.rules,
                entry.signature.tag_mask,
                entry.signature.label()
            );
        }
    }
    let save_code = save_rules(args, &report.rules);
    if let Some(mut em) = emitter.take() {
        if let Err(e) = em.finish() {
            eprintln!("cannot flush run record: {e}");
            return 1;
        }
        eprintln!("run record: {} line(s) emitted", em.lines());
    }
    save_code
}

fn cmd_baseline(args: &[String]) -> i32 {
    let kind = match parse_workload(args) {
        Ok(k) => k,
        Err(c) => return c,
    };
    let scale: f64 = flag_value(args, "--scale")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let engine = Stellar::standard();
    let w = kind.spec_at(scale);
    let default = stellar::measure::evaluate(
        engine.sim(),
        w.as_ref(),
        &pfs::params::TuningConfig::lustre_default(),
        2,
        "cli-default",
    );
    println!("default: {default:.3}s");
    let oracle = expert_oracle(engine.sim(), w.as_ref(), 2, 2);
    println!(
        "expert oracle: {:.3}s (x{:.2}) after {} evaluations",
        oracle.wall_secs,
        default / oracle.wall_secs,
        oracle.evaluations
    );
    let rand = random_search(engine.sim(), w.as_ref(), 20, 7);
    println!(
        "random search (20 samples): {:.3}s (x{:.2})",
        rand.wall_secs,
        default / rand.wall_secs
    );
    0
}

fn cmd_rules(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("usage: stellar-tune rules <file.json>");
        return 2;
    };
    match std::fs::read_to_string(path) {
        Ok(json) => match RuleSet::from_json(&json) {
            Ok(rs) => {
                println!("{} rules:", rs.len());
                for r in &rs.rules {
                    println!("- [{}] {}", r.parameter, r.rule_description);
                    println!("    context: {}", r.tuning_context);
                }
                0
            }
            Err(e) => {
                eprintln!("bad rule set: {e}");
                1
            }
        },
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            1
        }
    }
}
