//! Cost-model-driven scheduling of campaign rounds.
//!
//! A campaign round is a set of independent cells (one per workload) that
//! must all finish before the round's rule merge — a classic makespan
//! problem. The historical scheduler drained cells in naive grid (FIFO)
//! order from an atomic counter, so one late-claimed heavy MDWorkbench
//! cell could strand every other worker at the round barrier.
//!
//! This module supplies the three pieces the [`crate::Campaign`] runner
//! composes:
//!
//! * a [`CostModel`] seeded from parameter-derived [`CostHint`]s
//!   (`workloads::Workload::cost_hint`) and refined with measured per-cell
//!   wall times after every round (exponential moving average), so later
//!   rounds schedule on observation instead of estimation;
//! * [`plan`], which turns the model into a deterministic execution order —
//!   longest-processing-time-first for [`Schedule::Lpt`] /
//!   [`Schedule::Adaptive`], grid order for [`Schedule::Fifo`];
//! * [`makespan`], a greedy list-scheduling simulator mirroring the
//!   runner's claim loop, used by benches and the `perfsuite` binary to
//!   compare policies on measured costs independently of host core count.
//!
//! ## Why reordering preserves determinism
//!
//! Scheduling only permutes *execution* order within a round. Cells are
//! data-independent — every cell of a round reads the same starting
//! [`agents::RuleSnapshot`] and its noise stream derives from the grid
//! seed and cell position, not the executing thread or instant — and the
//! runner still collects results into grid-indexed slots and merges
//! learned rules in grid order. Any permutation therefore yields a
//! bit-identical [`crate::CampaignReport`] (property-tested in
//! `tests/integration_campaign.rs`).

use simcore::stats::Samples;
use workloads::CostHint;

/// Cell-ordering policy for a campaign round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// Naive grid order — the historical behaviour, kept as the explicit
    /// baseline the `campaign_sched` bench compares against.
    Fifo,
    /// Longest-processing-time-first over the static, parameter-derived
    /// cost hints.
    Lpt,
    /// LPT over measured per-cell wall times (EMA-smoothed), falling back
    /// to the static hints until a workload has been observed once.
    #[default]
    Adaptive,
}

impl Schedule {
    /// Parse a CLI name (`fifo`, `lpt`, `adaptive`).
    pub fn parse(s: &str) -> Option<Schedule> {
        match s {
            "fifo" => Some(Schedule::Fifo),
            "lpt" => Some(Schedule::Lpt),
            "adaptive" => Some(Schedule::Adaptive),
            _ => None,
        }
    }

    /// The CLI/JSON name.
    pub fn label(self) -> &'static str {
        match self {
            Schedule::Fifo => "fifo",
            Schedule::Lpt => "lpt",
            Schedule::Adaptive => "adaptive",
        }
    }
}

/// Smoothing factor for measured-cost feedback: new observations get half
/// the weight, so one noisy round cannot thrash the order.
const EMA_ALPHA: f64 = 0.5;

/// Per-workload cost estimates: static hints refined by observation.
#[derive(Debug, Clone)]
pub struct CostModel {
    hints: Vec<f64>,
    measured: Vec<Option<f64>>,
    /// EMA of measured seconds per hint-weight unit — the anchor that
    /// rescales unobserved hints into seconds-space so adaptive costs
    /// compare like with like (see [`CostModel::cost`]).
    hint_scale: Option<f64>,
}

impl CostModel {
    /// Model seeded from the grid's parameter-derived hints, in grid
    /// (workload index) order.
    pub fn from_hints(hints: impl IntoIterator<Item = CostHint>) -> Self {
        let hints: Vec<f64> = hints.into_iter().map(|h| h.weight()).collect();
        let measured = vec![None; hints.len()];
        CostModel {
            hints,
            measured,
            hint_scale: None,
        }
    }

    /// Number of workloads modeled.
    pub fn len(&self) -> usize {
        self.hints.len()
    }

    /// Whether the model covers no workloads.
    pub fn is_empty(&self) -> bool {
        self.hints.is_empty()
    }

    /// Feed back one measured cell wall time for workload `idx`.
    ///
    /// Besides the per-workload EMA, each observation with a positive
    /// hint refreshes the model's seconds-per-hint-unit anchor, so
    /// workloads that have *not* been observed yet are costed in the same
    /// unit as those that have.
    pub fn observe(&mut self, idx: usize, secs: f64) {
        let m = &mut self.measured[idx];
        *m = Some(match *m {
            Some(prev) => prev * (1.0 - EMA_ALPHA) + secs * EMA_ALPHA,
            None => secs,
        });
        if self.hints[idx] > 0.0 {
            let ratio = secs / self.hints[idx];
            self.hint_scale = Some(match self.hint_scale {
                Some(prev) => prev * (1.0 - EMA_ALPHA) + ratio * EMA_ALPHA,
                None => ratio,
            });
        }
    }

    /// The scheduling cost of workload `idx` under `schedule`.
    ///
    /// Hint weights (op-count scale) and measured wall times (seconds)
    /// are different units, and a round *can* be partially observed — a
    /// cell aborts, or the grid grows between rounds — so adaptive mode
    /// must never compare them raw: an unobserved hint in the millions
    /// would dwarf every measured cost and hijack the order. Once
    /// anything has been observed, unobserved hints are rescaled into
    /// seconds-space through the anchor ratio maintained by
    /// [`CostModel::observe`]; before the first observation all costs are
    /// hints, which compare consistently among themselves.
    pub fn cost(&self, idx: usize, schedule: Schedule) -> f64 {
        match schedule {
            Schedule::Fifo | Schedule::Lpt => self.hints[idx],
            Schedule::Adaptive => self.measured[idx].unwrap_or_else(|| match self.hint_scale {
                Some(scale) => self.hints[idx] * scale,
                None => self.hints[idx],
            }),
        }
    }

    /// Whether workload `idx` has been observed at least once.
    pub fn is_observed(&self, idx: usize) -> bool {
        self.measured[idx].is_some()
    }
}

/// The deterministic execution order for one round.
///
/// FIFO returns grid order; LPT/adaptive sort descending by modeled cost,
/// breaking ties by grid index so equal-cost cells keep a stable order.
pub fn plan(schedule: Schedule, model: &CostModel) -> Vec<usize> {
    let mut order: Vec<usize> = (0..model.len()).collect();
    if schedule != Schedule::Fifo {
        order.sort_by(|&a, &b| {
            model
                .cost(b, schedule)
                .total_cmp(&model.cost(a, schedule))
                .then(a.cmp(&b))
        });
    }
    order
}

/// Greedy list-scheduling makespan: cells execute in `order`, each claimed
/// by the earliest-free of `workers` workers (ties to the lowest worker).
///
/// This mirrors the claim loop in `Campaign::round_parallel` exactly, so
/// benches can compare policies from measured per-cell costs without
/// needing the host to actually have that many cores.
pub fn makespan(order: &[usize], costs: &[f64], workers: usize) -> f64 {
    let w = workers.clamp(1, order.len().max(1));
    let mut busy = vec![0.0f64; w];
    for &i in order {
        let k = (0..w)
            .min_by(|&a, &b| busy[a].total_cmp(&busy[b]).then(a.cmp(&b)))
            .expect("at least one worker");
        busy[k] += costs[i];
    }
    busy.iter().fold(0.0, |m, &b| m.max(b))
}

/// A deterministic pseudo-random permutation of `0..n` derived from
/// `seed` (Fisher–Yates over a [`simcore::SimRng`] stream).
///
/// Used by the determinism property test and the `campaign_sched` bench
/// to exercise arbitrary execution orders through
/// [`crate::Campaign::order_override`].
pub fn permutation_from_seed(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = simcore::SimRng::new(seed);
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.index(i + 1);
        order.swap(i, j);
    }
    order
}

/// Worker busy fraction for one round: `busy / (workers × makespan)`.
///
/// Guards the degenerate single-cell round whose measured makespan is
/// below the host clock's granularity: dividing by a zero (or epsilon)
/// makespan used to report an infinite utilization, which then turned the
/// makespan-weighted campaign mean into `inf × 0 = NaN`. A round that
/// took no measurable time reports 0 — it contributes nothing to the
/// weighted mean either way.
pub fn round_utilization(busy_secs: f64, workers: usize, makespan_secs: f64) -> f64 {
    if makespan_secs <= 0.0 || workers == 0 {
        return 0.0;
    }
    busy_secs / (workers as f64 * makespan_secs)
}

/// Scheduling telemetry for one executed round.
#[derive(Debug, Clone)]
pub struct RoundSched {
    /// The grid seed of this round.
    pub seed: u64,
    /// Execution order used (grid indices, first-claimed first).
    pub order: Vec<usize>,
    /// Active worker seconds per cell, in grid order: the time a worker
    /// actually spent stepping the cell. Under multiplexing this
    /// excludes suspension and sibling cells' work (claim-to-publish
    /// elapsed time would count both, handing the adaptive cost model
    /// makespan-sized "measurements" for every overlapped cell), so the
    /// numbers stay comparable across blocking and non-blocking runs.
    pub cell_secs: Vec<f64>,
    /// Measured wall-clock duration of the whole round.
    pub makespan_secs: f64,
    /// Worker busy fraction: `Σ cell_secs / (workers × makespan)`.
    pub utilization: f64,
    /// Most backend calls any single worker had simultaneously in flight
    /// during the round (a suspended cell holds exactly one). 0 when the
    /// backend completes instantly — nothing ever suspends; 1 when
    /// suspended cells are drained one at a time (serial rounds); ≥ 2
    /// means a worker multiplexed — that many provider calls genuinely
    /// overlapped on one thread.
    pub max_in_flight: usize,
}

/// Campaign-level scheduling telemetry, recorded on every
/// [`crate::CampaignReport`] so speedups are observable rather than vibes.
#[derive(Debug, Clone)]
pub struct SchedStats {
    /// The ordering policy the campaign ran under.
    pub schedule: Schedule,
    /// Worker threads requested (builder/CLI `--threads`).
    pub threads_requested: usize,
    /// Workers actually used per round (`min(threads, cells per round)`).
    pub workers: usize,
    /// Whether `available_parallelism` failed and the default worker count
    /// silently fell back to 1 — previously invisible, now recorded.
    pub parallelism_fallback: bool,
    /// Per-round telemetry, in seed order.
    pub rounds: Vec<RoundSched>,
}

impl SchedStats {
    /// Total measured cell seconds across all rounds.
    pub fn total_busy_secs(&self) -> f64 {
        self.rounds
            .iter()
            .map(|r| r.cell_secs.iter().sum::<f64>())
            .sum()
    }

    /// Total measured round makespan across all rounds.
    pub fn total_makespan_secs(&self) -> f64 {
        self.rounds.iter().map(|r| r.makespan_secs).sum()
    }

    /// Campaign-mean worker utilization, weighted by round makespan
    /// (0 when no rounds ran or nothing took measurable time).
    ///
    /// Weighting matters: an unweighted mean lets a 1-cell tail round
    /// lasting milliseconds drag the campaign figure exactly as hard as a
    /// full multi-minute round — the classic mis-weighted composite
    /// indicator. Weighted by duration, the mean equals total busy time
    /// over total worker-time, which is what "utilization of the
    /// campaign" actually means.
    pub fn mean_utilization(&self) -> f64 {
        let total: f64 = self.rounds.iter().map(|r| r.makespan_secs).sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.rounds
            .iter()
            .map(|r| r.utilization * r.makespan_secs)
            .sum::<f64>()
            / total
    }

    /// Most backend calls any single worker had simultaneously in flight
    /// across the campaign (0 when no rounds ran or nothing suspended;
    /// see [`RoundSched::max_in_flight`]).
    pub fn max_in_flight(&self) -> usize {
        self.rounds
            .iter()
            .map(|r| r.max_in_flight)
            .max()
            .unwrap_or(0)
    }

    /// `(p50, p90, max)` of per-cell wall times across the campaign,
    /// via a single-sort [`Samples`] set.
    pub fn cell_time_percentiles(&self) -> (f64, f64, f64) {
        let mut s = Samples::with_capacity(self.rounds.iter().map(|r| r.cell_secs.len()).sum());
        for r in &self.rounds {
            for &c in &r.cell_secs {
                s.add(c);
            }
        }
        (s.percentile(50.0), s.percentile(90.0), s.max())
    }

    /// One-line human summary for reports and the CLI.
    pub fn render(&self) -> String {
        let (p50, p90, max) = self.cell_time_percentiles();
        format!(
            "sched: {} over {} worker(s){} — {} round(s), makespan {:.3}s, \
             utilization {:.0}%, in-flight peak {}, cell p50/p90/max {:.3}/{:.3}/{:.3}s",
            self.schedule.label(),
            self.workers,
            if self.parallelism_fallback {
                " (parallelism probe failed; fell back to 1)"
            } else {
                ""
            },
            self.rounds.len(),
            self.total_makespan_secs(),
            self.mean_utilization() * 100.0,
            self.max_in_flight(),
            p50,
            p90,
            max,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hint(data_ops: u64) -> CostHint {
        CostHint {
            data_ops,
            meta_ops: 0,
            bytes: 0,
        }
    }

    #[test]
    fn schedule_parse_roundtrips() {
        for s in [Schedule::Fifo, Schedule::Lpt, Schedule::Adaptive] {
            assert_eq!(Schedule::parse(s.label()), Some(s));
        }
        assert_eq!(Schedule::parse("nope"), None);
        assert_eq!(Schedule::default(), Schedule::Adaptive);
    }

    #[test]
    fn fifo_keeps_grid_order_lpt_sorts_heaviest_first() {
        let model = CostModel::from_hints([hint(1), hint(100), hint(10), hint(100)]);
        assert_eq!(plan(Schedule::Fifo, &model), vec![0, 1, 2, 3]);
        // Descending by cost, equal costs tie-broken by grid index.
        assert_eq!(plan(Schedule::Lpt, &model), vec![1, 3, 2, 0]);
    }

    #[test]
    fn adaptive_prefers_measurement_over_hint() {
        let mut model = CostModel::from_hints([hint(1), hint(100)]);
        // Hints say cell 1 is heavy; measurement says otherwise.
        model.observe(0, 9.0);
        model.observe(1, 1.0);
        assert_eq!(plan(Schedule::Lpt, &model), vec![1, 0]);
        assert_eq!(plan(Schedule::Adaptive, &model), vec![0, 1]);
        // EMA smooths: a second observation moves halfway.
        model.observe(0, 1.0);
        assert!((model.cost(0, Schedule::Adaptive) - 5.0).abs() < 1e-12);
        assert!(model.is_observed(0) && model.is_observed(1));
        assert_eq!(model.len(), 2);
        assert!(!model.is_empty());
    }

    /// Regression: a partially observed round (cell aborted, or the grid
    /// grew between rounds) used to compare raw hint weights (op-count
    /// scale) against measured seconds, so an unobserved-but-cheap cell
    /// with a large hint outranked every measured cell. The anchor ratio
    /// rescales hints into seconds-space from the first observation on.
    #[test]
    fn adaptive_rescales_unobserved_hints_into_seconds() {
        // Hints say cell 0 is twice the work of cell 1.
        let mut model = CostModel::from_hints([hint(100), hint(50)]);
        // Only cell 0 has been observed: 10 seconds.
        model.observe(0, 10.0);
        assert!(!model.is_observed(1));
        // Cell 1's cost must be in seconds-space: 50 hint-units at the
        // observed 0.1 s/unit anchor = 5 s, NOT a raw 50 that would
        // out-rank the measured 10 s.
        assert!((model.cost(1, Schedule::Adaptive) - 5.0).abs() < 1e-12);
        assert!((model.cost(0, Schedule::Adaptive) - 10.0).abs() < 1e-12);
        // So the genuinely heavier (measured) cell schedules first.
        assert_eq!(plan(Schedule::Adaptive, &model), vec![0, 1]);
        // The anchor itself is EMA-smoothed across observations.
        model.observe(0, 30.0); // measured EMA -> 20; ratio EMA -> 0.2
        assert!((model.cost(1, Schedule::Adaptive) - 10.0).abs() < 1e-12);
        // Pure-hint schedules are unaffected (single consistent unit).
        assert!((model.cost(1, Schedule::Lpt) - 50.0).abs() < 1e-12);
    }

    /// Zero-weight hints must not poison the anchor (no 0-division).
    #[test]
    fn zero_hints_leave_the_anchor_alone() {
        let mut model = CostModel::from_hints([hint(0), hint(100)]);
        model.observe(0, 4.0);
        // No anchor yet (observed hint was 0): unobserved cost stays raw.
        assert!((model.cost(1, Schedule::Adaptive) - 100.0).abs() < 1e-12);
        model.observe(1, 1.0);
        assert!((model.cost(1, Schedule::Adaptive) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn makespan_rewards_lpt_on_skewed_rounds() {
        // One heavy straggler scheduled last under FIFO.
        let costs = [1.0, 1.0, 2.0, 3.0, 5.0];
        let model = CostModel::from_hints(costs.map(|c| hint(c as u64 * 100)));
        let fifo = makespan(&plan(Schedule::Fifo, &model), &costs, 2);
        let lpt = makespan(&plan(Schedule::Lpt, &model), &costs, 2);
        assert_eq!(fifo, 8.0); // [1+2+5 | 1+3]
        assert_eq!(lpt, 6.0); // [5+1 | 3+2+1]
        assert!(lpt <= fifo);
        // Degenerate worker counts clamp sanely.
        assert_eq!(makespan(&[0, 1], &[2.0, 3.0], 0), 5.0);
        assert_eq!(makespan(&[], &[], 4), 0.0);
    }

    /// Regression: plan() and makespan() sorted with
    /// `partial_cmp(..).expect("finite costs")`, so a single NaN wall
    /// time fed through observe() panicked the scheduler mid-campaign.
    /// Under total_cmp, +NaN orders above every finite cost: the run
    /// survives and the order stays deterministic.
    #[test]
    fn nan_costs_order_deterministically_without_panicking() {
        let mut model = CostModel::from_hints([hint(0), hint(1), hint(5)]);
        model.observe(0, f64::NAN);
        let order = plan(Schedule::Adaptive, &model);
        // +NaN sorts greatest, so the poisoned cell schedules first;
        // the rest keep the usual heaviest-first order.
        assert_eq!(order, vec![0, 2, 1]);
        assert_eq!(order, plan(Schedule::Adaptive, &model));
        // The worker pick survives a NaN busy clock too: that worker
        // never again compares least, so the remaining cells drain
        // deterministically through the healthy one.
        assert_eq!(makespan(&order, &[f64::NAN, 1.0, 2.0], 2), 3.0);
    }

    #[test]
    fn sched_stats_summarize() {
        let stats = SchedStats {
            schedule: Schedule::Lpt,
            threads_requested: 4,
            workers: 2,
            parallelism_fallback: false,
            rounds: vec![RoundSched {
                seed: 42,
                order: vec![1, 0],
                cell_secs: vec![1.0, 3.0],
                makespan_secs: 3.0,
                utilization: 4.0 / 6.0,
                max_in_flight: 1,
            }],
        };
        assert_eq!(stats.total_busy_secs(), 4.0);
        assert_eq!(stats.total_makespan_secs(), 3.0);
        assert!((stats.mean_utilization() - 2.0 / 3.0).abs() < 1e-12);
        let (p50, p90, max) = stats.cell_time_percentiles();
        assert_eq!(p50, 2.0);
        assert!(p90 > p50 && max == 3.0);
        let line = stats.render();
        assert!(line.contains("lpt over 2 worker(s)"), "{line}");
        assert_eq!(stats.max_in_flight(), 1);
        let empty = SchedStats {
            rounds: vec![],
            ..stats
        };
        assert_eq!(empty.mean_utilization(), 0.0);
        assert_eq!(empty.max_in_flight(), 0);
    }

    /// Regression: a single-cell round finishing under the host clock's
    /// granularity used to divide busy time by a zero makespan, reporting
    /// `inf` utilization — and the makespan-weighted campaign mean then
    /// evaluated `inf × 0 = NaN`, poisoning every later percentile and
    /// the rendered summary. Zero-duration rounds now report 0.
    #[test]
    fn zero_makespan_rounds_report_zero_utilization() {
        assert_eq!(round_utilization(0.0, 2, 0.0), 0.0);
        assert_eq!(round_utilization(1.0e-9, 4, 0.0), 0.0);
        assert_eq!(round_utilization(3.0, 0, 1.0), 0.0);
        assert!((round_utilization(4.0, 2, 3.0) - 2.0 / 3.0).abs() < 1e-12);
        // A zero-makespan tail round mixed into real rounds must leave
        // the weighted campaign mean finite and unchanged.
        let round = |makespan_secs: f64, busy: f64, workers: usize| RoundSched {
            seed: 9,
            order: vec![0],
            cell_secs: vec![busy],
            makespan_secs,
            utilization: round_utilization(busy, workers, makespan_secs),
            max_in_flight: 0,
        };
        let stats = SchedStats {
            schedule: Schedule::Adaptive,
            threads_requested: 1,
            workers: 1,
            parallelism_fallback: false,
            rounds: vec![round(10.0, 8.0, 1), round(0.0, 1.0e-9, 1)],
        };
        let mean = stats.mean_utilization();
        assert!(mean.is_finite(), "mean must not be NaN/inf: {mean}");
        assert!((mean - 0.8).abs() < 1e-12, "got {mean}");
        assert!(stats.render().contains("utilization 80%"));
    }

    /// Regression: the campaign mean used to average per-round
    /// utilization unweighted, so a millisecond 1-cell tail round dragged
    /// the figure as hard as a full round. The mean is now weighted by
    /// round makespan (≡ total busy over total worker-time).
    #[test]
    fn mean_utilization_weights_rounds_by_makespan() {
        let round = |makespan_secs: f64, utilization: f64| RoundSched {
            seed: 1,
            order: vec![0],
            cell_secs: vec![utilization * 2.0 * makespan_secs],
            makespan_secs,
            utilization,
            max_in_flight: 1,
        };
        let stats = SchedStats {
            schedule: Schedule::Adaptive,
            threads_requested: 2,
            workers: 2,
            parallelism_fallback: false,
            // A long fully-busy round and a tiny mostly-idle tail round.
            rounds: vec![round(10.0, 1.0), round(1.0, 0.1)],
        };
        let weighted = (10.0 * 1.0 + 1.0 * 0.1) / 11.0;
        assert!(
            (stats.mean_utilization() - weighted).abs() < 1e-12,
            "got {}, want {weighted} (unweighted mean would be 0.55)",
            stats.mean_utilization()
        );
        assert!(stats.mean_utilization() > 0.9, "tail round must not drag");
    }
}
