//! Tuning baselines.
//!
//! [`expert_oracle`] stands in for the paper's human expert (§5.2: full
//! benchmark information, Darshan traces, "practically unbounded time"):
//! coordinate descent over the 13 tunables with a curated value grid and a
//! triple-digit evaluation budget. Its evaluation count doubles as the
//! iteration-cost contrast with classical autotuners (§3: "hundreds to
//! thousands of iterations").
//!
//! [`random_search`] is the naive black-box contrast.

use crate::measure::evaluate;
use pfs::params::{ParamRegistry, TuningConfig, TUNABLE_NAMES};
use pfs::PfsSimulator;
use rayon::prelude::*;
use simcore::rng::{combine, stable_hash};
use simcore::SimRng;
use workloads::Workload;

/// Candidate grid per parameter (expert-curated, like a real tuning sweep).
pub fn candidate_values(name: &str, ost_count: u32) -> Vec<i64> {
    match name {
        "stripe_size" => vec![1 << 20, 4 << 20, 16 << 20, 64 << 20],
        "stripe_count" => vec![1, 2, ost_count as i64, -1],
        "osc.max_rpcs_in_flight" => vec![8, 32, 64, 128],
        "osc.max_pages_per_rpc" => vec![256, 1024, 4096],
        "osc.max_dirty_mb" => vec![32, 256, 512, 1024],
        "osc.short_io_bytes" => vec![0, 16384],
        "llite.max_cached_mb" => vec![65536],
        "llite.max_read_ahead_mb" => vec![0, 64, 512, 1024],
        "llite.max_read_ahead_per_file_mb" => vec![32, 256, 512],
        "llite.max_read_ahead_whole_mb" => vec![2, 32],
        "llite.statahead_max" => vec![0, 32, 8192],
        "mdc.max_rpcs_in_flight" => vec![8, 64, 128],
        "mdc.max_mod_rpcs_in_flight" => vec![7, 63, 127],
        _ => vec![],
    }
}

/// Result of a search baseline.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Best configuration found.
    pub config: TuningConfig,
    /// Its evaluated mean wall time.
    pub wall_secs: f64,
    /// Number of full application evaluations consumed.
    pub evaluations: usize,
}

/// Human-expert stand-in: coordinate descent, `passes` sweeps over all
/// parameters, each candidate evaluated as the mean of `reps` runs.
pub fn expert_oracle(
    sim: &PfsSimulator,
    workload: &dyn Workload,
    passes: usize,
    reps: usize,
) -> SearchResult {
    let registry = ParamRegistry::standard();
    let topo = sim.topology().clone();
    let label = format!("expert:{}", workload.name());
    let mut best = TuningConfig::lustre_default();
    let mut best_wall = evaluate(sim, workload, &best, reps, &label);
    let mut evaluations = reps;

    for pass in 0..passes {
        for name in TUNABLE_NAMES {
            let candidates = candidate_values(name, topo.ost_count());
            if candidates.len() <= 1 {
                continue;
            }
            let scored: Vec<(f64, TuningConfig)> = candidates
                .par_iter()
                .filter_map(|&v| {
                    let mut cfg = best.clone();
                    cfg.set(name, v).ok()?;
                    let cfg = cfg.clamped(&registry, &topo);
                    if cfg.get(name).ok()? != v && name != "stripe_count" {
                        // Clamped away: dependent bound rejected this value.
                        return None;
                    }
                    let wall = evaluate(
                        sim,
                        workload,
                        &cfg,
                        reps,
                        &format!("{label}:p{pass}:{name}:{v}"),
                    );
                    Some((wall, cfg))
                })
                .collect();
            evaluations += scored.len() * reps;
            for (wall, cfg) in scored {
                if wall < best_wall {
                    best_wall = wall;
                    best = cfg;
                }
            }
        }
    }
    SearchResult {
        config: best,
        wall_secs: best_wall,
        evaluations,
    }
}

/// Naive random search over the candidate grids.
pub fn random_search(
    sim: &PfsSimulator,
    workload: &dyn Workload,
    samples: usize,
    seed: u64,
) -> SearchResult {
    let registry = ParamRegistry::standard();
    let topo = sim.topology().clone();
    let label = format!("random:{}", workload.name());
    let mut rng = SimRng::new(combine(seed, stable_hash(&label)));
    let configs: Vec<TuningConfig> = (0..samples)
        .map(|_| {
            let mut cfg = TuningConfig::lustre_default();
            for name in TUNABLE_NAMES {
                let cands = candidate_values(name, topo.ost_count());
                if !cands.is_empty() {
                    let v = cands[rng.index(cands.len())];
                    let _ = cfg.set(name, v);
                }
            }
            cfg.clamped(&registry, &topo)
        })
        .collect();
    let scored: Vec<(f64, TuningConfig)> = configs
        .into_par_iter()
        .enumerate()
        .map(|(i, cfg)| {
            let wall = evaluate(sim, workload, &cfg, 1, &format!("{label}:{i}"));
            (wall, cfg)
        })
        .collect();
    let evaluations = scored.len();
    let (wall_secs, config) = scored
        .into_iter()
        .min_by(|a, b| a.0.total_cmp(&b.0))
        .expect("samples > 0");
    SearchResult {
        config,
        wall_secs,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::WorkloadKind;

    #[test]
    fn oracle_beats_default_on_ior() {
        let sim = PfsSimulator::new(crate::engine::default_topology());
        let w = WorkloadKind::Ior16M.spec().scaled(0.1);
        let default_wall = evaluate(
            &sim,
            w.as_ref(),
            &TuningConfig::lustre_default(),
            2,
            "t-default",
        );
        let r = expert_oracle(&sim, w.as_ref(), 1, 1);
        assert!(
            r.wall_secs < default_wall * 0.5,
            "oracle {:.2} !< default {default_wall:.2} * 0.5",
            r.wall_secs
        );
        assert!(r.config.stripe_count != 1, "must discover wide striping");
        assert!(r.evaluations > 20, "oracle consumed {}", r.evaluations);
    }

    #[test]
    fn oracle_keeps_stripe_one_for_metadata() {
        let sim = PfsSimulator::new(crate::engine::default_topology());
        let w = WorkloadKind::MdWorkbench8K.spec().scaled(0.15);
        let r = expert_oracle(&sim, w.as_ref(), 1, 1);
        assert_eq!(r.config.stripe_count, 1, "{:?}", r.config);
    }

    #[test]
    fn candidate_grids_are_valid() {
        let registry = ParamRegistry::standard();
        let topo = crate::engine::default_topology();
        for name in TUNABLE_NAMES {
            for v in candidate_values(name, topo.ost_count()) {
                let mut cfg = TuningConfig::lustre_default();
                cfg.set(name, v).unwrap();
                let clamped = cfg.clamped(&registry, &topo);
                clamped
                    .validate(&registry, &topo)
                    .unwrap_or_else(|e| panic!("{name}={v}: {e:?}"));
            }
        }
    }

    #[test]
    fn random_search_runs_and_counts() {
        let sim = PfsSimulator::new(crate::engine::default_topology());
        let w = WorkloadKind::Macsio16M.spec().scaled(0.2);
        let r = random_search(&sim, w.as_ref(), 6, 42);
        assert_eq!(r.evaluations, 6);
        assert!(r.wall_secs > 0.0);
    }
}
