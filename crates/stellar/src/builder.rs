//! Fluent construction of the STELLAR engine.
//!
//! [`StellarBuilder`] replaces the ad-hoc `Stellar::new(topo, options)`
//! construction that used to be scattered through the experiment drivers:
//! every knob — topology, per-agent model profiles, behaviour switches,
//! attempt budget, seed policy — has a named setter, and `build()` runs the
//! offline extraction phase exactly once.
//!
//! ```
//! use stellar::StellarBuilder;
//! use llmsim::ModelProfile;
//!
//! let engine = StellarBuilder::new()
//!     .tuning_model(ModelProfile::claude_37_sonnet())
//!     .attempt_budget(5)
//!     .build();
//! assert_eq!(engine.params().len(), 13);
//! ```

use crate::engine::{default_topology, SeedPolicy, Stellar, StellarOptions};
use agents::TuningOptions;
use llmsim::ModelProfile;
use pfs::topology::ClusterSpec;

/// Builder for [`Stellar`]. Defaults reproduce the paper's setup: the
/// paper's cluster, Claude-3.7-Sonnet tuning / GPT-4o analysis, five
/// attempts, analysis + descriptions + rules enabled, per-workload seeds.
#[derive(Debug, Clone)]
pub struct StellarBuilder {
    topology: ClusterSpec,
    options: StellarOptions,
}

impl Default for StellarBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl StellarBuilder {
    /// Builder with the paper-default configuration.
    pub fn new() -> Self {
        StellarBuilder {
            topology: default_topology(),
            options: StellarOptions::default(),
        }
    }

    /// Simulated cluster to tune against.
    pub fn topology(mut self, topo: ClusterSpec) -> Self {
        self.topology = topo;
        self
    }

    /// Model profile behind the Tuning Agent.
    pub fn tuning_model(mut self, profile: ModelProfile) -> Self {
        self.options.tuning_model = profile;
        self
    }

    /// Model profile behind the Analysis Agent (and offline extraction).
    pub fn analysis_model(mut self, profile: ModelProfile) -> Self {
        self.options.analysis_model = profile;
        self
    }

    /// Replace the full set of agent behaviour switches.
    pub fn tuning_options(mut self, tuning: TuningOptions) -> Self {
        self.options.tuning = tuning;
        self
    }

    /// Configuration-attempt budget per run (the paper caps at 5).
    pub fn attempt_budget(mut self, attempts: usize) -> Self {
        self.options.tuning.max_attempts = attempts;
        self
    }

    /// Maximum minor-loop follow-up questions per run.
    pub fn max_follow_ups(mut self, n: usize) -> Self {
        self.options.tuning.max_follow_ups = n;
        self
    }

    /// Toggle the Analysis Agent (`false` = the `No Analysis` ablation).
    pub fn use_analysis(mut self, on: bool) -> Self {
        self.options.tuning.use_analysis = on;
        self
    }

    /// Toggle RAG descriptions (`false` = the `No Descriptions` ablation).
    pub fn use_descriptions(mut self, on: bool) -> Self {
        self.options.tuning.use_descriptions = on;
        self
    }

    /// Toggle global rule-set consultation.
    pub fn use_rules(mut self, on: bool) -> Self {
        self.options.tuning.use_rules = on;
        self
    }

    /// How run seeds derive from caller seeds (default:
    /// [`SeedPolicy::PerWorkload`]).
    pub fn seed_policy(mut self, policy: SeedPolicy) -> Self {
        self.options.seed_policy = policy;
        self
    }

    /// Inject deterministic seeded backend latency (`profile` ticks per
    /// agent turn): sessions suspend with [`crate::SessionEvent::Waiting`]
    /// while a call is in flight instead of blocking, and campaign
    /// workers overlap suspended cells. Off by default (instant backend).
    /// Reports stay bit-identical to the instant path.
    pub fn backend_latency(mut self, profile: llmsim::LatencyProfile) -> Self {
        self.options.backend_latency = Some(profile);
        self
    }

    /// Execute every simulated run under `plan`: OST service times scale by
    /// the plan's event-scheduled degradation factors (simulated time, never
    /// wall-clock). Sessions tag learned rules "degraded-topology" so fault
    /// knowledge shards separately. Empty plans are treated as pristine.
    pub fn faults(mut self, plan: pfs::FaultPlan) -> Self {
        self.options.faults = if plan.is_empty() { None } else { Some(plan) };
        self
    }

    /// Inject deterministic seeded backend failures: a
    /// [`llmsim::SimFailures`] layer turns the injection's fraction of
    /// calls into [`llmsim::CallStatus::Failed`] outcomes, drawn per
    /// submission index so the schedule is reproducible and
    /// latency-invariant. Sessions retry transients under the engine's
    /// [`crate::RetryPolicy`] and end in [`crate::SessionEvent::Failed`]
    /// when the budget is spent. Off by default (perfect backend).
    pub fn failures(mut self, injection: llmsim::FailureInjection) -> Self {
        self.options.failures = Some(injection);
        self
    }

    /// How sessions respond to failed backend calls (attempt budget,
    /// poll-tick backoff, optional pending-poll timeout). Defaults to
    /// [`crate::RetryPolicy::default`]; only consulted when latency
    /// and/or failures are injected.
    pub fn retry_policy(mut self, policy: crate::RetryPolicy) -> Self {
        self.options.retry = policy;
        self
    }

    /// Build the engine: construct the simulator and run the offline RAG
    /// extraction phase.
    pub fn build(self) -> Stellar {
        Stellar::new(self.topology, self.options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_standard_engine() {
        let built = StellarBuilder::new().build();
        let standard = Stellar::standard();
        assert_eq!(built.sim().topology(), standard.sim().topology());
        assert_eq!(built.params().len(), standard.params().len());
    }

    #[test]
    fn setters_land_in_options() {
        let engine = StellarBuilder::new()
            .tuning_model(ModelProfile::llama_31_70b())
            .analysis_model(ModelProfile::claude_37_sonnet())
            .attempt_budget(3)
            .max_follow_ups(0)
            .use_analysis(false)
            .use_descriptions(false)
            .use_rules(false)
            .seed_policy(SeedPolicy::Fixed)
            .build();
        let o = engine.options();
        assert_eq!(o.tuning_model.name, "llama-3.1-70b-instruct");
        assert_eq!(o.analysis_model.name, "claude-3.7-sonnet");
        assert_eq!(o.tuning.max_attempts, 3);
        assert_eq!(o.tuning.max_follow_ups, 0);
        assert!(!o.tuning.use_analysis);
        assert!(!o.tuning.use_descriptions);
        assert!(!o.tuning.use_rules);
        assert!(matches!(o.seed_policy, SeedPolicy::Fixed));
    }

    #[test]
    fn faults_land_in_options() {
        let topo = default_topology();
        let plan = pfs::FaultPlan::seeded(topo.ost_count(), 7);
        let engine = StellarBuilder::new().faults(plan.clone()).build();
        assert_eq!(engine.options().faults.as_ref(), Some(&plan));
        // Empty plans normalize to pristine.
        let engine = StellarBuilder::new()
            .faults(pfs::FaultPlan::default())
            .build();
        assert!(engine.options().faults.is_none());
    }

    #[test]
    fn failure_knobs_land_in_options() {
        let injection = llmsim::FailureInjection::standard(9);
        let policy = crate::RetryPolicy {
            max_attempts: 5,
            backoff_ticks: 2,
            pending_timeout: Some(64),
        };
        let engine = StellarBuilder::new()
            .failures(injection)
            .retry_policy(policy)
            .build();
        assert_eq!(engine.options().failures, Some(injection));
        assert_eq!(engine.options().retry, policy);
        // Defaults: perfect backend, standard retry policy.
        let engine = StellarBuilder::new().build();
        assert!(engine.options().failures.is_none());
        assert_eq!(engine.options().retry, crate::RetryPolicy::default());
    }

    #[test]
    fn custom_topology_reaches_the_simulator() {
        let mut topo = default_topology();
        topo.oss_count *= 2;
        let engine = StellarBuilder::new().topology(topo.clone()).build();
        assert_eq!(engine.sim().topology().oss_count, topo.oss_count);
    }
}
