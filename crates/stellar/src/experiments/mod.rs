//! Experiment drivers — one per paper figure/table (see DESIGN.md §4).
//!
//! Every driver takes a `scale` factor applied to workload sizes: `1.0`
//! reproduces the paper-scale runs (used by the bench binaries), smaller
//! values keep the integration tests fast. Scaling shrinks byte/file counts,
//! never the structure, so the qualitative shape is preserved.

pub mod casestudy;
pub mod cost;
pub mod figures;
pub mod iterations;
pub mod scaling;

pub use casestudy::case_study;
pub use cost::{cost_table, CostRow};
pub use figures::{
    fig2, fig5, fig6, fig7, fig8, fig9, params_table, Fig5Row, Fig8Row, Fig9Row, IterSeries,
};
pub use iterations::{iteration_cost, IterationRow};
pub use scaling::{scaling_experiment, ScaleRow};

use workloads::{Workload, WorkloadKind};

/// Instantiate a workload at the given scale.
pub(crate) fn scaled(kind: WorkloadKind, scale: f64) -> Box<dyn Workload> {
    kind.spec_at(scale)
}
