//! Iteration-cost comparison — the paper's central efficiency claim,
//! quantified.
//!
//! §1/§3: classical autotuners need "hundreds to thousands of iterations or
//! training samples"; LLM-assisted database tuners got that under 100; the
//! HPC cost model makes even 100 prohibitive; STELLAR converges in single
//! digits. This driver runs all three search regimes on the same workload
//! and reports (evaluations consumed, best speedup achieved) — the
//! cost/quality frontier behind Figs. 5–7.

use crate::baselines::{expert_oracle, random_search};
use crate::engine::Stellar;
use crate::measure::evaluate;
use agents::RuleSet;
use pfs::params::TuningConfig;
use serde::{Deserialize, Serialize};
use workloads::{Workload, WorkloadKind};

/// One tuner's cost/quality point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IterationRow {
    /// Tuner label.
    pub tuner: String,
    /// Full application executions consumed.
    pub evaluations: usize,
    /// Best speedup vs the default configuration.
    pub best_speedup: f64,
}

/// Compare STELLAR, the expert oracle, and random search budgets on one
/// workload. `random_budgets` controls the random-search sample points.
pub fn iteration_cost(
    kind: WorkloadKind,
    scale: f64,
    random_budgets: &[usize],
) -> Vec<IterationRow> {
    let engine = Stellar::standard();
    let w: Box<dyn Workload> = kind.spec_at(scale);
    let default_wall = evaluate(
        engine.sim(),
        w.as_ref(),
        &TuningConfig::lustre_default(),
        2,
        "itercost-default",
    );
    let mut rows = Vec::new();

    // STELLAR: evaluations = initial run + attempts.
    let mut rules = RuleSet::new();
    let run = engine.tune(w.as_ref(), &mut rules, 0x27E2);
    rows.push(IterationRow {
        tuner: "STELLAR (agentic)".into(),
        evaluations: 1 + run.attempts.len(),
        best_speedup: run.best_speedup,
    });

    // Random search at increasing budgets (the classical black-box regime).
    for &budget in random_budgets {
        let r = random_search(engine.sim(), w.as_ref(), budget, 0xBAD5EED);
        rows.push(IterationRow {
            tuner: format!("random search ({budget})"),
            evaluations: r.evaluations,
            best_speedup: default_wall / r.wall_secs.max(1e-9),
        });
    }

    // The expert oracle (coordinate descent, the paper's expert stand-in).
    let oracle = expert_oracle(engine.sim(), w.as_ref(), 2, 1);
    rows.push(IterationRow {
        tuner: "coordinate descent (expert oracle)".into(),
        evaluations: oracle.evaluations,
        best_speedup: default_wall / oracle.wall_secs.max(1e-9),
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stellar_dominates_the_low_budget_frontier() {
        let rows = iteration_cost(WorkloadKind::Ior16M, 0.08, &[6, 24]);
        let stellar = &rows[0];
        assert!(stellar.evaluations <= 6, "{}", stellar.evaluations);
        assert!(stellar.best_speedup > 3.0, "{}", stellar.best_speedup);
        // Random search with a comparable budget does far worse than
        // STELLAR; with 4x the budget it may approach but STELLAR stays
        // competitive at a fraction of the evaluations.
        let rand_small = rows
            .iter()
            .find(|r| r.tuner.contains("(6)"))
            .expect("budget row");
        assert!(
            stellar.best_speedup > rand_small.best_speedup * 0.9,
            "stellar {:.2} vs random(6) {:.2}",
            stellar.best_speedup,
            rand_small.best_speedup
        );
        // The oracle wins on quality but at two orders of magnitude more
        // evaluations — the §3 cost argument.
        let oracle = rows.last().expect("oracle row");
        assert!(oracle.evaluations > stellar.evaluations * 10);
    }
}
