//! §5.6 extension — scale-invariance of the agentic approach.
//!
//! The paper argues ("we argue that STELLAR's fundamental approach remains
//! scale-invariant") that larger systems widen the configuration space but
//! the analyze→configure→observe loop is unchanged, and that stronger
//! parallelism makes performance responses *more* pronounced. This driver
//! tests that claim directly: the same engine tunes the same workload on
//! clusters of growing size, and we track attempts used, achieved speedup,
//! and the gap to the expert oracle at each scale.

use crate::baselines::expert_oracle;
use crate::engine::Stellar;
use crate::measure::evaluate;
use agents::RuleSet;
use pfs::params::TuningConfig;
use pfs::topology::ClusterSpec;
use serde::{Deserialize, Serialize};
use workloads::WorkloadKind;

/// One cluster-size row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaleRow {
    /// OST count of the cluster.
    pub osts: u32,
    /// Client nodes.
    pub clients: u32,
    /// Total ranks.
    pub ranks: u32,
    /// Default wall time (1 evaluation).
    pub default_wall: f64,
    /// STELLAR best speedup.
    pub stellar_speedup: f64,
    /// Attempts STELLAR used.
    pub attempts: usize,
    /// Expert-oracle best speedup (1-pass search).
    pub oracle_speedup: f64,
    /// STELLAR's fraction of the oracle's gain (1.0 = matches the oracle).
    pub efficiency: f64,
}

/// Cluster spec scaled to `factor` times the paper deployment.
pub fn cluster_at(factor: u32) -> ClusterSpec {
    let mut topo = crate::engine::default_topology();
    topo.oss_count *= factor;
    topo.client_count *= factor;
    topo
}

/// Tune `workload_kind` at 1x, 2x and 4x the paper's cluster size.
pub fn scaling_experiment(workload_kind: WorkloadKind, scale: f64) -> Vec<ScaleRow> {
    [1u32, 2, 4]
        .into_iter()
        .map(|factor| {
            let topo = cluster_at(factor);
            let engine = Stellar::builder().topology(topo.clone()).build();
            let w = workload_kind.spec_at(scale);
            let default_wall = evaluate(
                engine.sim(),
                w.as_ref(),
                &TuningConfig::lustre_default(),
                1,
                &format!("scaling-default-{factor}"),
            );
            let mut rules = RuleSet::new();
            let run = engine.tune(w.as_ref(), &mut rules, 0x5CA1E + factor as u64);
            let oracle = expert_oracle(engine.sim(), w.as_ref(), 1, 1);
            let oracle_speedup = default_wall / oracle.wall_secs.max(1e-9);
            let efficiency = if oracle_speedup > 1.0 {
                ((run.best_speedup - 1.0) / (oracle_speedup - 1.0)).min(1.5)
            } else {
                1.0
            };
            ScaleRow {
                osts: topo.ost_count(),
                clients: topo.client_count,
                ranks: topo.total_ranks(),
                default_wall,
                stellar_speedup: run.best_speedup,
                attempts: run.attempts.len(),
                oracle_speedup,
                efficiency,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_clusters_amplify_striping_gains() {
        let rows = scaling_experiment(WorkloadKind::Ior16M, 0.1);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].osts, 5);
        assert_eq!(rows[2].osts, 20);
        // Scale-invariance: attempts stay single-digit at every scale…
        for r in &rows {
            assert!(
                r.attempts <= 5,
                "{} attempts at {} OSTs",
                r.attempts,
                r.osts
            );
            assert!(
                r.stellar_speedup > 2.0,
                "x{:.2} at {} OSTs",
                r.stellar_speedup,
                r.osts
            );
        }
        // …and the paper's claim that responses grow more pronounced with
        // scale: 4x cluster yields a larger striping win than 1x.
        assert!(
            rows[2].stellar_speedup > rows[0].stellar_speedup,
            "x{:.2} at 20 OSTs !> x{:.2} at 5 OSTs",
            rows[2].stellar_speedup,
            rows[0].stellar_speedup
        );
    }

    #[test]
    fn cluster_scaling_is_consistent() {
        let c = cluster_at(4);
        assert_eq!(c.ost_count(), 20);
        assert_eq!(c.total_ranks(), 200);
    }
}
