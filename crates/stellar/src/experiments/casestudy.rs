//! Fig. 10 — the narrated MDWorkbench_8K case study: initial report,
//! follow-up questions, first prediction, exploration, and the learned rule.

use crate::engine::Stellar;
use crate::experiments::scaled;
use agents::RuleSet;
use workloads::WorkloadKind;

/// Produce the case-study timeline as printable text.
pub fn case_study(scale: f64) -> String {
    let engine = Stellar::standard();
    let w = scaled(WorkloadKind::MdWorkbench8K, scale);
    let mut rules = RuleSet::new();
    let run = engine.tune(w.as_ref(), &mut rules, 0xCA5E);

    let mut out = String::new();
    out.push_str(&format!(
        "CASE STUDY: tuning {} (default run: {:.3}s)\n\
         ================================================================\n",
        run.workload, run.default_wall
    ));
    for line in &run.transcript {
        out.push_str(line);
        out.push('\n');
    }
    out.push_str(&format!(
        "----------------------------------------------------------------\n\
         concluded: {}\n\
         best configuration (x{:.2} speedup):\n{}\n",
        run.end_reason,
        run.best_speedup,
        run.best_config.render()
    ));
    if let Some(rule) = run.new_rules.first() {
        out.push_str(&format!(
            "----------------------------------------------------------------\n\
             example generated rule:\n{}\n",
            serde_json::to_string_pretty(rule).expect("rule serialises")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_study_contains_the_fig10_beats() {
        let text = case_study(0.15);
        // Initial analysis, follow-up questions, configuration runs with
        // rationale, end reasoning, and a learned rule.
        assert!(text.contains("CASE STUDY"));
        assert!(text.contains("[analysis]"), "{text}");
        assert!(text.contains("Configuration Runner"));
        assert!(text.contains("statahead"), "statahead should be tuned");
        assert!(text.contains("concluded:"));
        assert!(text.contains("Tuning Context"), "rule JSON present");
    }
}
