//! §5.7 — token usage and prompt-cache economics of a complete tuning run.

use crate::engine::Stellar;
use crate::experiments::scaled;
use agents::RuleSet;
use serde::{Deserialize, Serialize};
use workloads::WorkloadKind;

/// Per-agent usage row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostRow {
    /// Agent name ("Tuning Agent" / "Analysis Agent").
    pub agent: String,
    /// Model behind the agent.
    pub model: String,
    /// Total input tokens.
    pub input_tokens: u64,
    /// Input tokens resolved via prompt cache.
    pub cached_input_tokens: u64,
    /// Cache hit ratio.
    pub cache_ratio: f64,
    /// Output tokens.
    pub output_tokens: u64,
    /// Inference calls.
    pub calls: u64,
}

/// Run one complete tuning run (IOR_16M, as a representative workload) and
/// report per-agent token accounting.
pub fn cost_table(scale: f64) -> Vec<CostRow> {
    let engine = Stellar::standard();
    let w = scaled(WorkloadKind::Ior16M, scale);
    let mut rules = RuleSet::new();
    let run = engine.tune(w.as_ref(), &mut rules, 0xC057);
    vec![
        CostRow {
            agent: "Tuning Agent".into(),
            model: "claude-3.7-sonnet".into(),
            input_tokens: run.tuning_usage.input_tokens,
            cached_input_tokens: run.tuning_usage.cached_input_tokens,
            cache_ratio: run.tuning_usage.cache_hit_ratio(),
            output_tokens: run.tuning_usage.output_tokens,
            calls: run.tuning_usage.calls,
        },
        CostRow {
            agent: "Analysis Agent".into(),
            model: "gpt-4o".into(),
            input_tokens: run.analysis_usage.input_tokens,
            cached_input_tokens: run.analysis_usage.cached_input_tokens,
            cache_ratio: run.analysis_usage.cache_hit_ratio(),
            output_tokens: run.analysis_usage.output_tokens,
            calls: run.analysis_usage.calls,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_table_shape() {
        let rows = cost_table(0.08);
        assert_eq!(rows.len(), 2);
        let tuning = &rows[0];
        assert!(tuning.input_tokens > 5_000, "{}", tuning.input_tokens);
        assert!(tuning.output_tokens > 100);
        // §5.7: the iterative structure makes most input cache-resolvable.
        assert!(
            tuning.cache_ratio > 0.5,
            "cache ratio {:.2}",
            tuning.cache_ratio
        );
        assert!(rows[1].calls > 0);
    }
}
