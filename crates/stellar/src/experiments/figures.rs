//! Figure drivers: Fig. 2 (hallucination), Fig. 5 (tuning vs baselines),
//! Fig. 6 (rule-set interpolation), Fig. 7 (rule-set extrapolation),
//! Fig. 8 (ablations), Fig. 9 (model comparison), plus the §4.2 parameter
//! table.

use crate::baselines::expert_oracle;
use crate::builder::StellarBuilder;
use crate::campaign::Campaign;
use crate::engine::Stellar;
use crate::experiments::scaled;
use crate::measure::measure;
use agents::{RuleSet, TuningOptions};
use llmsim::{ModelProfile, SimLlm};
use pfs::params::ParamRegistry;
use ragx::truth::{score_parametric, score_rag, FactScore};
use ragx::{ExtractedParam, ExtractionReport, RagExtractor};
use serde::{Deserialize, Serialize};
use workloads::{WorkloadKind, BENCHMARKS, REAL_APPS};

/// Fig. 2: parametric-memory hallucination vs RAG extraction, scored over
/// the 13 tuning targets.
pub fn fig2() -> Vec<FactScore> {
    let registry = ParamRegistry::standard();
    let extractor = RagExtractor::standard();
    let mut rows: Vec<FactScore> = [
        ModelProfile::gpt_45(),
        ModelProfile::gemini_25_pro(),
        ModelProfile::claude_37_sonnet(),
    ]
    .iter()
    .map(|p| score_parametric(&registry, p))
    .collect();
    rows.push(score_rag(&extractor));
    rows
}

/// §4.2's output: the extracted parameter set and filter accounting.
pub fn params_table() -> (Vec<ExtractedParam>, ExtractionReport) {
    let extractor = RagExtractor::standard();
    let mut backend = SimLlm::new(ModelProfile::gpt_4o(), 0x7AB1E);
    extractor.extract(&mut backend)
}

/// One row of Fig. 5.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Row {
    /// Workload label.
    pub workload: String,
    /// Default configuration: mean wall ± 90% CI.
    pub default_mean: f64,
    /// CI half-width.
    pub default_ci: f64,
    /// Expert (oracle) configuration: mean wall ± CI.
    pub expert_mean: f64,
    /// CI half-width.
    pub expert_ci: f64,
    /// Evaluations the expert consumed (iteration-cost contrast).
    pub expert_evaluations: usize,
    /// STELLAR best configuration: mean wall ± CI.
    pub stellar_mean: f64,
    /// CI half-width.
    pub stellar_ci: f64,
    /// Configurations STELLAR tried (≤ 5).
    pub stellar_attempts: usize,
}

/// Fig. 5: default vs expert vs STELLAR (no rule set) on the five benchmarks.
pub fn fig5(scale: f64, reps: usize, oracle_passes: usize, oracle_reps: usize) -> Vec<Fig5Row> {
    let engine = Stellar::standard();
    BENCHMARKS
        .iter()
        .map(|&kind| {
            let w = scaled(kind, scale);
            let (default_acc, _) = measure(
                engine.sim(),
                w.as_ref(),
                &pfs::params::TuningConfig::lustre_default(),
                reps,
                "fig5-default",
            );
            let oracle = expert_oracle(engine.sim(), w.as_ref(), oracle_passes, oracle_reps);
            let (expert_acc, _) = measure(
                engine.sim(),
                w.as_ref(),
                &oracle.config,
                reps,
                "fig5-expert",
            );
            let mut rules = RuleSet::new();
            let run = engine.tune(w.as_ref(), &mut rules, 0xF15);
            let (stellar_acc, _) = measure(
                engine.sim(),
                w.as_ref(),
                &run.best_config,
                reps,
                "fig5-stellar",
            );
            Fig5Row {
                workload: kind.label().to_string(),
                default_mean: default_acc.mean(),
                default_ci: default_acc.ci90_half_width(),
                expert_mean: expert_acc.mean(),
                expert_ci: expert_acc.ci90_half_width(),
                expert_evaluations: oracle.evaluations,
                stellar_mean: stellar_acc.mean(),
                stellar_ci: stellar_acc.ci90_half_width(),
                stellar_attempts: run.attempts.len(),
            }
        })
        .collect()
}

/// Per-iteration speedup series for one workload, with and without the
/// global rule set (Figs. 6 and 7). Iteration 0 is the untuned run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IterSeries {
    /// Workload label.
    pub workload: String,
    /// Speedups per iteration without the rule set (index 0 = 1.0).
    pub without_rules: Vec<f64>,
    /// Speedups per iteration with the rule set.
    pub with_rules: Vec<f64>,
}

fn series_of(run: &crate::engine::TuningRun) -> Vec<f64> {
    let mut v = vec![1.0];
    v.extend(run.attempts.iter().map(|a| a.speedup));
    v
}

/// Fig. 6 — rule-set interpolation: tune every benchmark cold (accumulating
/// the global rule set), then re-tune each with the accumulated set.
/// Returns the series and the final rule set (reused by Fig. 7).
pub fn fig6(scale: f64) -> (Vec<IterSeries>, RuleSet) {
    let engine = Stellar::standard();
    let mut rules = RuleSet::new();
    let cold: Vec<_> = BENCHMARKS
        .iter()
        .map(|&kind| {
            let w = scaled(kind, scale);
            engine.tune(w.as_ref(), &mut rules, 0xF16)
        })
        .collect();
    // Second pass with the accumulated global rule set. Rule-set updates
    // from the warm pass merge too (the paper re-tunes "with the global
    // Rule Set applied").
    let mut warm_rules = rules.clone();
    let series = BENCHMARKS
        .iter()
        .zip(cold.iter())
        .map(|(&kind, cold_run)| {
            let w = scaled(kind, scale);
            let warm = engine.tune(w.as_ref(), &mut warm_rules, 0xF16 + 1);
            IterSeries {
                workload: kind.label().to_string(),
                without_rules: series_of(cold_run),
                with_rules: series_of(&warm),
            }
        })
        .collect();
    (series, rules)
}

/// Fig. 7 — rule-set extrapolation: the three previously unseen real
/// applications, tuned with and without the benchmark-derived rule set.
///
/// Runs as two cold [`Campaign`] grids over the real applications — one
/// starting from an empty rule set, one from the benchmark-derived set —
/// so the per-application runs execute in parallel, deterministically.
pub fn fig7(scale: f64, benchmark_rules: &RuleSet) -> Vec<IterSeries> {
    let engine = Stellar::standard();
    let grid = |rules: RuleSet, seed: u64| {
        Campaign::new(&engine)
            .kinds(&REAL_APPS, scale)
            .seeds([seed])
            .starting_rules(rules)
            .run()
    };
    let cold = grid(RuleSet::new(), 0xF17);
    let warm = grid(benchmark_rules.clone(), 0xF17 + 1);
    REAL_APPS
        .iter()
        .zip(cold.cells.iter().zip(&warm.cells))
        .map(|(&kind, (c, w))| IterSeries {
            workload: kind.label().to_string(),
            without_rules: series_of(c.run().expect("fig7 runs a perfect backend")),
            with_rules: series_of(w.run().expect("fig7 runs a perfect backend")),
        })
        .collect()
}

/// One ablation variant of Fig. 8.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Row {
    /// Variant label ("Full", "No Descriptions", "No Analysis").
    pub variant: String,
    /// Speedups per iteration (index 0 = untuned).
    pub speedups: Vec<f64>,
    /// Best speedup achieved.
    pub best: f64,
}

/// Fig. 8 — component ablations on MDWorkbench_8K.
pub fn fig8(scale: f64) -> Vec<Fig8Row> {
    let w = || scaled(WorkloadKind::MdWorkbench8K, scale);
    let variants: [(&str, TuningOptions); 3] = [
        ("Full", TuningOptions::default()),
        (
            "No Descriptions",
            TuningOptions {
                use_descriptions: false,
                ..Default::default()
            },
        ),
        (
            "No Analysis",
            TuningOptions {
                use_analysis: false,
                ..Default::default()
            },
        ),
    ];
    variants
        .into_iter()
        .map(|(label, tuning)| {
            let engine = StellarBuilder::new().tuning_options(tuning).build();
            let mut rules = RuleSet::new();
            let run = engine.tune(w().as_ref(), &mut rules, 0xF18);
            Fig8Row {
                variant: label.to_string(),
                speedups: series_of(&run),
                best: run.best_speedup,
            }
        })
        .collect()
}

/// One model row of Fig. 9.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9Row {
    /// Tuning Agent model name.
    pub model: String,
    /// Speedups per iteration on IOR_16M.
    pub speedups: Vec<f64>,
    /// Best speedup.
    pub best: f64,
    /// Attempts used.
    pub attempts: usize,
}

/// Fig. 9 — different LLMs as the Tuning Agent on IOR_16M (≤ 5 iterations).
pub fn fig9(scale: f64) -> Vec<Fig9Row> {
    ModelProfile::tuning_agents()
        .into_iter()
        .map(|profile| {
            let engine = StellarBuilder::new().tuning_model(profile.clone()).build();
            let w = scaled(WorkloadKind::Ior16M, scale);
            let mut rules = RuleSet::new();
            let run = engine.tune(w.as_ref(), &mut rules, 0xF19);
            Fig9Row {
                model: profile.name.to_string(),
                speedups: series_of(&run),
                best: run.best_speedup,
                attempts: run.attempts.len(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE: f64 = 0.08;

    #[test]
    fn fig2_rag_dominates() {
        let rows = fig2();
        assert_eq!(rows.len(), 4);
        let rag = rows.last().unwrap();
        assert!(rag.source.contains("RAG"));
        assert_eq!(rag.range_correct, 13);
        for model_row in &rows[..3] {
            assert!(model_row.range_wrong > 0, "{model_row:?}");
        }
    }

    #[test]
    fn params_table_selects_13() {
        let (params, report) = params_table();
        assert_eq!(params.len(), 13);
        assert_eq!(report.selected, 13);
        assert!(report.total_params > 30);
    }

    #[test]
    fn fig8_full_beats_ablations() {
        let rows = fig8(0.2);
        assert_eq!(rows.len(), 3);
        let full = rows.iter().find(|r| r.variant == "Full").unwrap().best;
        let no_desc = rows
            .iter()
            .find(|r| r.variant == "No Descriptions")
            .unwrap()
            .best;
        let no_analysis = rows
            .iter()
            .find(|r| r.variant == "No Analysis")
            .unwrap()
            .best;
        assert!(full > no_desc, "full {full:.3} !> no_desc {no_desc:.3}");
        assert!(
            full > no_analysis,
            "full {full:.3} !> no_analysis {no_analysis:.3}"
        );
    }

    #[test]
    fn fig9_all_models_achieve_speedup() {
        let rows = fig9(SCALE);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.attempts <= 5, "{}: {} attempts", r.model, r.attempts);
            assert!(r.best > 2.5, "{}: x{:.2}", r.model, r.best);
        }
    }
}
