//! The STELLAR engine: offline extraction + the online tuning run driver.
//!
//! The run driver itself lives in [`crate::session`]; [`Stellar::tune`] is
//! a thin compatibility wrapper that drains a [`crate::TuningSession`] to
//! completion. Construct engines with [`crate::StellarBuilder`] (or
//! [`Stellar::standard`] for the paper defaults).

use crate::session::TuningSession;
use agents::{RuleSet, RuleSnapshot, TuningOptions};
use darshan::{tables::to_tables, Collector, Table};
use llmsim::{ModelProfile, ParamFact, SimLlm, UsageMeter};
use pfs::params::{ParamRegistry, TuningConfig};
use pfs::topology::ClusterSpec;
use pfs::PfsSimulator;
use ragx::{ExtractedParam, ExtractionReport, RagExtractor};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use workloads::Workload;

/// The default simulated deployment: the paper's cluster.
///
/// Single source of truth for every construction path — the builder,
/// [`Stellar::standard`], experiment drivers and the CLI all call this
/// instead of re-deriving cluster specs per call site.
pub fn default_topology() -> ClusterSpec {
    ClusterSpec::paper_cluster()
}

/// How a session's run seed derives from the caller-supplied seed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SeedPolicy {
    /// Mix the workload name into the seed (`combine(seed,
    /// stable_hash(name))`), so the same caller seed gives every workload
    /// an independent noise stream. The historical and default behaviour.
    #[default]
    PerWorkload,
    /// Use the caller seed verbatim — callers manage stream separation
    /// themselves (campaign grids derive per-cell seeds explicitly).
    Fixed,
}

/// Engine-level options.
#[derive(Debug, Clone)]
pub struct StellarOptions {
    /// Tuning Agent model (Claude-3.7-Sonnet in the paper).
    pub tuning_model: ModelProfile,
    /// Analysis Agent model (GPT-4o in the paper).
    pub analysis_model: ModelProfile,
    /// Agent behaviour switches (ablations, attempt budget).
    pub tuning: TuningOptions,
    /// Run-seed derivation policy.
    pub seed_policy: SeedPolicy,
    /// When set, every agent turn goes through a non-blocking
    /// [`llmsim::SimLatency`] gate with this profile: sessions suspend
    /// ([`crate::SessionEvent::Waiting`]) instead of blocking while the
    /// simulated provider call is in flight, and campaign workers
    /// multiplex suspended cells. `None` (the default) keeps the
    /// historical instant-backend behaviour. Results are bit-identical
    /// either way — latency changes *when* work happens, never what it
    /// computes.
    pub backend_latency: Option<llmsim::LatencyProfile>,
    /// When set, every simulated run executes under this [`pfs::FaultPlan`]:
    /// OST service times scale by the plan's piecewise-constant degradation
    /// factors, evaluated in simulated (event-queue) time. Sessions tag
    /// their rule contexts "degraded-topology" so knowledge learned here
    /// shards separately from pristine runs. `None` is a pristine cluster.
    pub faults: Option<pfs::FaultPlan>,
    /// When set, agent turns can fail: a seeded
    /// [`llmsim::SimFailures`] injector turns a deterministic fraction of
    /// backend calls into [`llmsim::CallStatus::Failed`] outcomes
    /// (per-session streams derive from this injection's seed × the run
    /// seed). Sessions retry transients under [`StellarOptions::retry`]
    /// and end in [`crate::SessionEvent::Failed`] when the budget is
    /// spent. `None` (the default) is a perfect backend.
    pub failures: Option<llmsim::FailureInjection>,
    /// How sessions respond to failed backend calls. Only consulted when
    /// a transport gate exists (latency and/or failures injected).
    pub retry: crate::session::RetryPolicy,
}

impl Default for StellarOptions {
    fn default() -> Self {
        StellarOptions {
            tuning_model: ModelProfile::claude_37_sonnet(),
            analysis_model: ModelProfile::gpt_4o(),
            tuning: TuningOptions::default(),
            seed_policy: SeedPolicy::default(),
            backend_latency: None,
            faults: None,
            failures: None,
            retry: crate::session::RetryPolicy::default(),
        }
    }
}

/// One configuration attempt within a tuning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttemptRecord {
    /// 1-based attempt index.
    pub iteration: usize,
    /// Configuration tried.
    pub config: TuningConfig,
    /// Measured wall time.
    pub wall_secs: f64,
    /// Speedup vs the initial default run.
    pub speedup: f64,
}

/// A complete Tuning Run (initial execution through End Tuning).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningRun {
    /// Workload label.
    pub workload: String,
    /// Wall time of the initial default-configuration run (iteration 0).
    pub default_wall: f64,
    /// Tuned attempts in order.
    pub attempts: Vec<AttemptRecord>,
    /// Best wall time achieved (including the default if nothing beat it).
    pub best_wall: f64,
    /// Best configuration.
    pub best_config: TuningConfig,
    /// Best speedup vs default.
    pub best_speedup: f64,
    /// The agent's justification for ending.
    pub end_reason: String,
    /// Rules learned by Reflect & Summarize.
    pub new_rules: Vec<agents::Rule>,
    /// Narrated decision log (Fig. 10 material).
    pub transcript: Vec<String>,
    /// Tuning Agent token usage.
    pub tuning_usage: UsageMeter,
    /// Analysis Agent token usage.
    pub analysis_usage: UsageMeter,
}

/// The engine.
pub struct Stellar {
    sim: PfsSimulator,
    options: StellarOptions,
    params: Vec<ExtractedParam>,
    truths: BTreeMap<String, ParamFact>,
    extraction_report: ExtractionReport,
}

impl Stellar {
    /// Build the engine: construct the simulator for `topo` and run the
    /// offline RAG extraction phase.
    pub fn new(topo: ClusterSpec, options: StellarOptions) -> Self {
        let sim = PfsSimulator::new(topo);
        let extractor = RagExtractor::standard();
        let mut extraction_backend = SimLlm::new(options.analysis_model.clone(), 0x0FF1);
        let (params, extraction_report) = extractor.extract(&mut extraction_backend);
        let registry = ParamRegistry::standard();
        let mut truths = BTreeMap::new();
        for p in &params {
            if let Some(t) = ragx::truth::truth_fact(&registry, &p.name) {
                truths.insert(p.name.clone(), t);
            }
        }
        Stellar {
            sim,
            options,
            params,
            truths,
            extraction_report,
        }
    }

    /// A fluent builder with the paper-default configuration.
    pub fn builder() -> crate::StellarBuilder {
        crate::StellarBuilder::new()
    }

    /// Engine with the paper's cluster and default options.
    pub fn standard() -> Self {
        Self::new(default_topology(), StellarOptions::default())
    }

    /// The simulator (for baselines and measurement).
    pub fn sim(&self) -> &PfsSimulator {
        &self.sim
    }

    /// The engine options.
    pub fn options(&self) -> &StellarOptions {
        &self.options
    }

    /// The extracted tunables.
    pub fn params(&self) -> &[ExtractedParam] {
        &self.params
    }

    /// Ground-truth facts for the extracted tunables.
    pub(crate) fn truths(&self) -> &BTreeMap<String, ParamFact> {
        &self.truths
    }

    /// The offline extraction accounting.
    pub fn extraction_report(&self) -> &ExtractionReport {
        &self.extraction_report
    }

    /// Run one traced execution, returning wall time and the dataframes.
    pub(crate) fn traced_run(
        &self,
        workload: &dyn Workload,
        cfg: &TuningConfig,
        seed: u64,
    ) -> (f64, String, Vec<Table>) {
        let streams = workload.generate(self.sim.topology(), seed);
        let nprocs = self.sim.topology().total_ranks();
        let mut collector = Collector::new(workload.name(), nprocs);
        let result = self.sim.run_traced_faulted(
            streams,
            cfg,
            seed,
            self.options.faults.as_ref(),
            &mut collector,
        );
        let log = collector.finish();
        let (header, tables) = to_tables(&log);
        (result.wall_secs, header, tables)
    }

    /// Open a steppable tuning session against `workload`.
    ///
    /// The session consults `rules` when priming the Tuning Agent —
    /// anything convertible into a [`RuleSnapshot`]: a
    /// [`agents::ShardedRuleStore`] snapshot (O(1), the campaign path) or
    /// a flat [`RuleSet`] (partitioned into shards on entry). Merge the
    /// finished run's `new_rules` back into your global store to
    /// accumulate knowledge, as [`Stellar::tune`] does.
    pub fn session<'a>(
        &'a self,
        workload: &'a dyn Workload,
        rules: impl Into<RuleSnapshot>,
        seed: u64,
    ) -> TuningSession<'a> {
        TuningSession::new(self, workload, rules.into(), seed)
    }

    /// Execute a complete Tuning Run against `workload`, consulting and
    /// updating the global `rule_set`.
    ///
    /// Compatibility wrapper: drains a [`TuningSession`] to completion and
    /// merges the learned rules, reproducing the historical blocking
    /// behaviour bit for bit.
    pub fn tune(&self, workload: &dyn Workload, rule_set: &mut RuleSet, seed: u64) -> TuningRun {
        let run = self.session(workload, rule_set.clone(), seed).drain();
        rule_set.merge(run.new_rules.clone());
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::WorkloadKind;

    fn engine() -> Stellar {
        Stellar::standard()
    }

    #[test]
    fn offline_phase_extracts_13_params() {
        let e = engine();
        assert_eq!(e.params().len(), 13);
        assert_eq!(e.extraction_report().selected, 13);
    }

    #[test]
    fn tuning_run_improves_ior_16m_within_five_attempts() {
        let e = engine();
        let w = WorkloadKind::Ior16M.spec().scaled(0.1);
        let mut rules = RuleSet::new();
        let run = e.tune(w.as_ref(), &mut rules, 1);
        assert!(run.attempts.len() <= 5, "{} attempts", run.attempts.len());
        assert!(
            run.best_speedup > 3.0,
            "speedup {:.2} (attempts: {:?})",
            run.best_speedup,
            run.attempts.iter().map(|a| a.speedup).collect::<Vec<_>>()
        );
        assert!(!run.end_reason.is_empty());
        assert!(!run.new_rules.is_empty(), "should learn rules");
        assert!(!rules.is_empty(), "global rule set updated");
    }

    #[test]
    fn tuning_run_improves_mdworkbench() {
        let e = engine();
        let w = WorkloadKind::MdWorkbench8K.spec().scaled(0.3);
        let mut rules = RuleSet::new();
        let run = e.tune(w.as_ref(), &mut rules, 2);
        assert!(run.best_speedup > 1.1, "speedup {:.3}", run.best_speedup);
        // Metadata workload must keep stripe_count = 1.
        assert_eq!(run.best_config.stripe_count, 1);
        assert!(run.best_config.llite_statahead_max > 32);
    }

    #[test]
    fn rules_improve_first_attempt() {
        let e = engine();
        let w = WorkloadKind::Ior16M.spec().scaled(0.1);
        let mut rules = RuleSet::new();
        let cold = e.tune(w.as_ref(), &mut rules, 3);
        assert!(!rules.is_empty());
        let warm = e.tune(w.as_ref(), &mut rules, 4);
        let cold_first = cold.attempts.first().map(|a| a.speedup).unwrap_or(1.0);
        let warm_first = warm.attempts.first().map(|a| a.speedup).unwrap_or(1.0);
        assert!(
            warm_first >= cold_first * 0.85,
            "warm first guess {warm_first:.2} vs cold {cold_first:.2}              (must be at least comparable despite run noise)"
        );
        assert!(
            warm.attempts.len() <= cold.attempts.len(),
            "rules should not lengthen tuning"
        );
    }

    #[test]
    fn usage_metering_present() {
        let e = engine();
        let w = WorkloadKind::Macsio16M.spec().scaled(0.2);
        let mut rules = RuleSet::new();
        let run = e.tune(w.as_ref(), &mut rules, 5);
        assert!(run.tuning_usage.calls > 0);
        assert!(run.analysis_usage.calls > 0);
        assert!(run.tuning_usage.input_tokens > 1000);
    }

    #[test]
    fn transcript_narrates_the_run() {
        let e = engine();
        let w = WorkloadKind::MdWorkbench8K.spec().scaled(0.15);
        let mut rules = RuleSet::new();
        let run = e.tune(w.as_ref(), &mut rules, 6);
        let text = run.transcript.join("\n");
        assert!(text.contains("Configuration Runner"));
        assert!(text.contains("[result]"));
    }
}
