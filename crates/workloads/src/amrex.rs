//! AMReX plotfile-dump I/O kernel (§5.1.3: "highly concurrent,
//! block-structured adaptive mesh refinement").
//!
//! Models AMReX's native plotfile output: per refinement level, all ranks
//! append their grid (FAB) data to a small set of shared level files through
//! aggregated sequential writes; rank 0 additionally writes header metadata.
//! Several timesteps dump in sequence with computation in between — the
//! bursty checkpoint pattern the paper's intro motivates.

use crate::{scale_count, CostHint, Workload};
use pfs::ops::{DirId, FileId, IoOp, Module, RankStream};
use pfs::topology::ClusterSpec;
use serde::{Deserialize, Serialize};

/// AMReX I/O kernel configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AmrexIo {
    /// Number of refinement levels.
    pub levels: u32,
    /// Grid (FAB) bytes per rank at level 0; each finer level doubles it.
    pub base_grid_bytes: u64,
    /// Plotfile dumps (timesteps).
    pub steps: u32,
    /// Compute time between dumps, nanoseconds.
    pub compute_ns: u64,
}

const LEVEL_FILE_BASE: u32 = 1_000;
const HEADER_FILE_BASE: u32 = 900;

impl AmrexIo {
    /// Standard instance (per-rank totals chosen so a dump is a multi-GB
    /// cluster-wide burst at 50 ranks, as in real AMReX runs).
    pub fn standard() -> Self {
        AmrexIo {
            levels: 3,
            base_grid_bytes: 8 << 20,
            steps: 3,
            compute_ns: 150_000_000,
        }
    }

    fn level_bytes(&self, level: u32) -> u64 {
        self.base_grid_bytes << level
    }
}

impl Workload for AmrexIo {
    fn name(&self) -> String {
        "AMReX".into()
    }

    fn generate(&self, topo: &ClusterSpec, _seed: u64) -> Vec<RankStream> {
        let nranks = topo.total_ranks();
        let mut streams = Vec::with_capacity(nranks as usize);
        for rank in 0..nranks {
            let mut s = RankStream::new(rank, Module::MpiIo);
            for step in 0..self.steps {
                // Physics between dumps.
                s.push(IoOp::Compute {
                    nanos: self.compute_ns,
                });
                // Header metadata (rank 0 only): many small stdio writes.
                if rank == 0 {
                    let header = FileId(HEADER_FILE_BASE + step);
                    s.push(IoOp::Create {
                        file: header,
                        dir: DirId(0),
                    });
                    for i in 0..16u64 {
                        s.push(IoOp::Write {
                            file: header,
                            offset: i * 512,
                            len: 512,
                        });
                    }
                    s.push(IoOp::Close { file: header });
                }
                s.push(IoOp::Barrier);
                // Level data: shared file per level per step, each rank's
                // FABs land in a contiguous region (AMReX precomputes
                // offsets), written sequentially in 4 MiB chunks.
                for level in 0..self.levels {
                    let file = FileId(LEVEL_FILE_BASE + step * self.levels + level);
                    if rank == 0 {
                        s.push(IoOp::Create {
                            file,
                            dir: DirId(0),
                        });
                    } else {
                        s.push(IoOp::Open { file });
                    }
                    let bytes = self.level_bytes(level);
                    let base = rank as u64 * bytes;
                    let chunk = (4u64 << 20).min(bytes);
                    let mut off = 0;
                    while off < bytes {
                        let take = chunk.min(bytes - off);
                        s.push(IoOp::Write {
                            file,
                            offset: base + off,
                            len: take,
                        });
                        off += take;
                    }
                    s.push(IoOp::Close { file });
                }
                s.push(IoOp::Barrier);
            }
            streams.push(s);
        }
        streams
    }

    fn scaled(&self, factor: f64) -> Box<dyn Workload> {
        let mut w = self.clone();
        w.base_grid_bytes = (scale_count(self.base_grid_bytes >> 20, factor, 1)) << 20;
        w.steps = scale_count(self.steps as u64, factor.sqrt(), 1) as u32;
        Box::new(w)
    }

    fn cost_hint(&self, topo: &ClusterSpec) -> CostHint {
        let nranks = topo.total_ranks() as u64;
        let steps = self.steps as u64;
        let chunk = 4u64 << 20;
        let mut writes_per_rank = 0u64;
        let mut bytes_per_rank = 0u64;
        for level in 0..self.levels {
            let bytes = self.level_bytes(level);
            writes_per_rank += bytes.div_ceil(chunk.min(bytes).max(1));
            bytes_per_rank += bytes;
        }
        CostHint {
            // Grid data across all ranks plus rank 0's 16 header writes.
            data_ops: steps * (nranks * writes_per_rank + 16),
            // Per level: create/open + close on every rank; header file
            // create + close on rank 0.
            meta_ops: steps * (nranks * 2 * self.levels as u64 + 2),
            bytes: steps * (nranks * bytes_per_rank + 16 * 512),
        }
    }

    fn describe(&self) -> String {
        format!(
            "AMReX plotfile dumps: {} timesteps, {} AMR levels, {} MiB grid data \
             per rank at level 0 (doubling per level), aggregated sequential \
             writes to shared per-level files plus rank-0 header I/O",
            self.steps,
            self.levels,
            self.base_grid_bytes >> 20
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> ClusterSpec {
        ClusterSpec::tiny()
    }

    #[test]
    fn per_rank_bytes() {
        let w = AmrexIo::standard();
        let streams = w.generate(&topo(), 1);
        // Rank 1 writes only grid data: steps * (8+16+32) MiB.
        let expected = 3 * ((8u64 + 16 + 32) << 20);
        assert_eq!(streams[1].bytes_written(), expected);
        // Rank 0 adds 3 * 16 * 512 header bytes.
        assert_eq!(streams[0].bytes_written(), expected + 3 * 16 * 512);
    }

    #[test]
    fn rank_regions_disjoint_per_level_file() {
        let w = AmrexIo::standard();
        let streams = w.generate(&topo(), 1);
        use std::collections::BTreeMap;
        let mut extents: BTreeMap<u32, Vec<(u64, u64)>> = BTreeMap::new();
        for s in &streams {
            for op in &s.ops {
                if let IoOp::Write { file, offset, len } = op {
                    if file.0 >= LEVEL_FILE_BASE {
                        extents
                            .entry(file.0)
                            .or_default()
                            .push((*offset, offset + len));
                    }
                }
            }
        }
        for (f, mut v) in extents {
            v.sort();
            for w in v.windows(2) {
                assert!(w[0].1 <= w[1].0, "file {f}: {:?} overlaps {:?}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn compute_phases_present() {
        let w = AmrexIo::standard();
        let streams = w.generate(&topo(), 1);
        let computes = streams[0]
            .ops
            .iter()
            .filter(|o| matches!(o, IoOp::Compute { .. }))
            .count();
        assert_eq!(computes, 3);
    }

    #[test]
    fn barriers_uniform() {
        let w = AmrexIo::standard();
        let streams = w.generate(&topo(), 1);
        let counts: Vec<usize> = streams.iter().map(|s| s.barrier_count()).collect();
        assert!(counts.windows(2).all(|x| x[0] == x[1]));
    }

    #[test]
    fn scaled_shrinks() {
        let w = AmrexIo::standard();
        let small = w.scaled(0.25);
        let a = w.generate(&topo(), 1)[1].bytes_written();
        let b = small.generate(&topo(), 1)[1].bytes_written();
        assert!(b < a);
    }
}
