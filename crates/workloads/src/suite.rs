//! The named workload suite of the paper's evaluation: five benchmarks
//! (Fig. 5/6) and three real applications (Fig. 7).

use crate::amrex::AmrexIo;
use crate::io500::Io500;
use crate::ior::Ior;
use crate::macsio::Macsio;
use crate::mdworkbench::MdWorkbench;
use crate::Workload;
use serde::{Deserialize, Serialize};

/// Every named workload in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// IOR, random 64 KiB transfers, shared file.
    Ior64K,
    /// IOR, sequential 16 MiB transfers, shared file.
    Ior16M,
    /// MDWorkbench with 2 KiB files.
    MdWorkbench2K,
    /// MDWorkbench with 8 KiB files.
    MdWorkbench8K,
    /// IO500 composite.
    Io500,
    /// AMReX plotfile I/O kernel.
    Amrex,
    /// MACSio with 512 KiB objects.
    Macsio512K,
    /// MACSio with 16 MiB objects.
    Macsio16M,
}

/// The five benchmarks used for tuning-knowledge accumulation (Fig. 5/6).
pub const BENCHMARKS: [WorkloadKind; 5] = [
    WorkloadKind::Ior64K,
    WorkloadKind::Ior16M,
    WorkloadKind::MdWorkbench2K,
    WorkloadKind::MdWorkbench8K,
    WorkloadKind::Io500,
];

/// The three previously-unseen real applications (Fig. 7).
pub const REAL_APPS: [WorkloadKind; 3] = [
    WorkloadKind::Amrex,
    WorkloadKind::Macsio512K,
    WorkloadKind::Macsio16M,
];

impl WorkloadKind {
    /// The paper's label for this workload.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::Ior64K => "IOR_64K",
            WorkloadKind::Ior16M => "IOR_16M",
            WorkloadKind::MdWorkbench2K => "MDWorkbench_2K",
            WorkloadKind::MdWorkbench8K => "MDWorkbench_8K",
            WorkloadKind::Io500 => "IO500",
            WorkloadKind::Amrex => "AMReX",
            WorkloadKind::Macsio512K => "MACSio_512K",
            WorkloadKind::Macsio16M => "MACSio_16M",
        }
    }

    /// Instantiate the workload generator.
    pub fn spec(self) -> Box<dyn Workload> {
        match self {
            WorkloadKind::Ior64K => Box::new(Ior::ior_64k()),
            WorkloadKind::Ior16M => Box::new(Ior::ior_16m()),
            WorkloadKind::MdWorkbench2K => Box::new(MdWorkbench::mdw_2k()),
            WorkloadKind::MdWorkbench8K => Box::new(MdWorkbench::mdw_8k()),
            WorkloadKind::Io500 => Box::new(Io500::standard()),
            WorkloadKind::Amrex => Box::new(AmrexIo::standard()),
            WorkloadKind::Macsio512K => Box::new(Macsio::macsio_512k()),
            WorkloadKind::Macsio16M => Box::new(Macsio::macsio_16m()),
        }
    }

    /// Instantiate the workload at `scale` — the paper-scale spec for
    /// `scale == 1.0`, a scaled copy otherwise. The single home for the
    /// spec-vs-scaled selection every driver needs.
    pub fn spec_at(self, scale: f64) -> Box<dyn Workload> {
        if (scale - 1.0).abs() < 1e-9 {
            self.spec()
        } else {
            self.spec().scaled(scale)
        }
    }

    /// Parse a paper label.
    pub fn from_label(label: &str) -> Option<Self> {
        let all = [
            WorkloadKind::Ior64K,
            WorkloadKind::Ior16M,
            WorkloadKind::MdWorkbench2K,
            WorkloadKind::MdWorkbench8K,
            WorkloadKind::Io500,
            WorkloadKind::Amrex,
            WorkloadKind::Macsio512K,
            WorkloadKind::Macsio16M,
        ];
        all.into_iter().find(|k| k.label() == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfs::topology::ClusterSpec;

    #[test]
    fn labels_roundtrip() {
        for k in BENCHMARKS.iter().chain(REAL_APPS.iter()) {
            assert_eq!(WorkloadKind::from_label(k.label()), Some(*k));
        }
        assert_eq!(WorkloadKind::from_label("nope"), None);
    }

    #[test]
    fn specs_generate_for_paper_cluster() {
        let topo = ClusterSpec::paper_cluster();
        for k in BENCHMARKS.iter().chain(REAL_APPS.iter()) {
            let streams = k.spec().generate(&topo, 1);
            assert_eq!(streams.len(), 50, "{}", k.label());
            let barriers: Vec<usize> = streams.iter().map(|s| s.barrier_count()).collect();
            assert!(
                barriers.windows(2).all(|w| w[0] == w[1]),
                "{} barriers differ",
                k.label()
            );
        }
    }

    #[test]
    fn names_match_spec_labels() {
        for k in BENCHMARKS.iter().chain(REAL_APPS.iter()) {
            assert_eq!(k.spec().name(), k.label());
        }
    }

    #[test]
    fn describe_is_nonempty() {
        for k in BENCHMARKS.iter().chain(REAL_APPS.iter()) {
            assert!(!k.spec().describe().is_empty());
        }
    }

    /// Every suite workload's closed-form hint tracks the generated stream
    /// counts: op counts exact, bytes within 5% (MACSio jitters sizes).
    #[test]
    fn cost_hints_track_generated_streams() {
        let topo = ClusterSpec::tiny();
        for k in BENCHMARKS.iter().chain(REAL_APPS.iter()) {
            let w = k.spec();
            let hint = w.cost_hint(&topo);
            let exact = crate::CostHint::from_streams(&w.generate(&topo, 1));
            assert_eq!(hint.data_ops, exact.data_ops, "{}", k.label());
            assert_eq!(hint.meta_ops, exact.meta_ops, "{}", k.label());
            let err = (hint.bytes as f64 - exact.bytes as f64).abs() / exact.bytes as f64;
            assert!(
                err < 0.05,
                "{}: byte estimate off by {:.1}%",
                k.label(),
                err * 100.0
            );
        }
    }

    /// The scheduling skew the campaign scheduler exploits: MDWorkbench
    /// cells cost orders of magnitude more simulation work than the IOR
    /// cells that share their rounds.
    #[test]
    fn mdworkbench_dominates_benchmark_weights() {
        let topo = ClusterSpec::tiny();
        let weight = |k: WorkloadKind| k.spec().cost_hint(&topo).weight();
        for heavy in [WorkloadKind::MdWorkbench2K, WorkloadKind::MdWorkbench8K] {
            for light in [WorkloadKind::Ior64K, WorkloadKind::Ior16M] {
                assert!(
                    weight(heavy) > 4.0 * weight(light),
                    "{} should far outweigh {}",
                    heavy.label(),
                    light.label()
                );
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use pfs::ops::IoOp;
    use pfs::topology::ClusterSpec;
    use proptest::prelude::*;

    fn all_kinds() -> Vec<WorkloadKind> {
        BENCHMARKS.iter().chain(REAL_APPS.iter()).copied().collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Invariants every workload must satisfy at any scale and seed:
        /// uniform barrier counts, deterministic generation, and no write
        /// before a create/open of the same file within a rank.
        #[test]
        fn workload_invariants(
            kind_idx in 0usize..8,
            scale in 0.05f64..0.5,
            seed in 0u64..100,
        ) {
            let kind = all_kinds()[kind_idx];
            let topo = ClusterSpec::tiny();
            let w = kind.spec().scaled(scale);
            let streams = w.generate(&topo, seed);
            prop_assert_eq!(streams.len() as u32, topo.total_ranks());

            let barriers: Vec<usize> =
                streams.iter().map(|s| s.barrier_count()).collect();
            prop_assert!(barriers.windows(2).all(|x| x[0] == x[1]));

            let again = w.generate(&topo, seed);
            for (a, b) in streams.iter().zip(&again) {
                prop_assert_eq!(&a.ops, &b.ops);
            }

            // Within each rank: any write/read targets a file that rank has
            // created/opened earlier in program order OR that another rank
            // creates (shared files are opened, not created, by followers).
            for s in &streams {
                // determinism audit (D002): membership checks only, never
                // iterated — prop-assertion order follows the op stream
                let mut opened = std::collections::HashSet::new();
                for op in &s.ops {
                    match op {
                        IoOp::Create { file, .. } | IoOp::Open { file } => {
                            opened.insert(*file);
                        }
                        IoOp::Write { file, .. } | IoOp::Read { file, .. } => {
                            prop_assert!(
                                opened.contains(file),
                                "rank {} touches unopened {:?}",
                                s.rank,
                                file
                            );
                        }
                        IoOp::Unlink { file } => {
                            opened.remove(file);
                        }
                        _ => {}
                    }
                }
            }
        }
    }
}
