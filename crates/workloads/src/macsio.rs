//! MACSio multi-physics I/O proxy (§5.1.3: "designed to model I/O workloads
//! from multiphysics applications primarily, with highly variable data object
//! distribution and composition. Since MACSio's object size can be configured
//! to take on various sizes, we evaluate one configuration using an object
//! size of 512KB (MACSio_512K) and another using 16MB (MACSio_16MB)").
//!
//! Modeled in MIF (multiple independent files) mode with one file group per
//! client node: ranks on a node share one dump file, each writing its objects
//! into its own region. Object sizes jitter ±25% around the nominal size
//! ("highly variable data object distribution").

use crate::{scale_count, CostHint, Workload};
use pfs::ops::{DirId, FileId, IoOp, Module, RankStream};
use pfs::topology::ClusterSpec;
use serde::{Deserialize, Serialize};
use simcore::SimRng;

/// MACSio configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Macsio {
    /// Label ("MACSio_512K", "MACSio_16M").
    pub label: String,
    /// Nominal object size in bytes.
    pub object_bytes: u64,
    /// Objects per rank per dump.
    pub objects_per_rank: u32,
    /// Number of dumps.
    pub dumps: u32,
    /// Compute time between dumps, nanoseconds.
    pub compute_ns: u64,
}

const DUMP_FILE_BASE: u32 = 2_000;

impl Macsio {
    /// `MACSio_512K`: many half-MiB objects.
    pub fn macsio_512k() -> Self {
        Macsio {
            label: "MACSio_512K".into(),
            object_bytes: 512 * 1024,
            objects_per_rank: 48,
            dumps: 3,
            compute_ns: 120_000_000,
        }
    }

    /// `MACSio_16M`: few large objects.
    pub fn macsio_16m() -> Self {
        Macsio {
            label: "MACSio_16M".into(),
            object_bytes: 16 << 20,
            objects_per_rank: 6,
            dumps: 3,
            compute_ns: 120_000_000,
        }
    }

    /// Generous per-rank region within the group file (jitter never overflows
    /// into a neighbour's region because jitter is capped at +25%).
    fn region_bytes(&self) -> u64 {
        (self.object_bytes * 3 / 2) * self.objects_per_rank as u64
    }
}

impl Workload for Macsio {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn generate(&self, topo: &ClusterSpec, seed: u64) -> Vec<RankStream> {
        let nranks = topo.total_ranks();
        let mut streams = Vec::with_capacity(nranks as usize);
        for rank in 0..nranks {
            let client = topo.client_of_rank(rank);
            let local_rank = (rank % topo.ranks_per_client) as u64;
            let mut rng = SimRng::new(seed).derive(&self.label, rank as u64);
            let mut s = RankStream::new(rank, Module::Posix);
            for dump in 0..self.dumps {
                s.push(IoOp::Compute {
                    nanos: self.compute_ns,
                });
                // One MIF group file per client node per dump.
                let file = FileId(DUMP_FILE_BASE + dump * topo.client_count + client);
                if local_rank == 0 {
                    s.push(IoOp::Create {
                        file,
                        dir: DirId(0),
                    });
                } else {
                    s.push(IoOp::Open { file });
                }
                let region_base = local_rank * self.region_bytes();
                let mut off = region_base;
                for _ in 0..self.objects_per_rank {
                    // ±25% size jitter, 4 KiB aligned.
                    let jitter = 0.75 + 0.5 * rng.unit();
                    let len = (((self.object_bytes as f64 * jitter) as u64) / 4096).max(1) * 4096;
                    s.push(IoOp::Write {
                        file,
                        offset: off,
                        len,
                    });
                    off += len;
                }
                s.push(IoOp::Fsync { file });
                s.push(IoOp::Close { file });
                s.push(IoOp::Barrier);
            }
            streams.push(s);
        }
        streams
    }

    fn scaled(&self, factor: f64) -> Box<dyn Workload> {
        let mut w = self.clone();
        w.objects_per_rank = scale_count(self.objects_per_rank as u64, factor, 1) as u32;
        w.dumps = scale_count(self.dumps as u64, factor.sqrt(), 1) as u32;
        Box::new(w)
    }

    fn cost_hint(&self, topo: &ClusterSpec) -> CostHint {
        let nranks = topo.total_ranks() as u64;
        let dumps = self.dumps as u64;
        CostHint {
            data_ops: nranks * dumps * self.objects_per_rank as u64,
            // Per dump: create/open + fsync + close.
            meta_ops: nranks * dumps * 3,
            // Jitter is uniform on ±25%, so nominal size is the mean.
            bytes: nranks * dumps * self.objects_per_rank as u64 * self.object_bytes,
        }
    }

    fn describe(&self) -> String {
        format!(
            "MACSio MIF dumps: {} dumps, {} objects/rank of ~{} KiB (+/-25% size \
             jitter), one group file per client node, fsync before close",
            self.dumps,
            self.objects_per_rank,
            self.object_bytes >> 10
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> ClusterSpec {
        ClusterSpec::tiny()
    }

    #[test]
    fn object_sizes_jitter_around_nominal() {
        let w = Macsio::macsio_512k();
        let streams = w.generate(&topo(), 1);
        let sizes: Vec<u64> = streams[0]
            .ops
            .iter()
            .filter_map(|o| match o {
                IoOp::Write { len, .. } => Some(*len),
                _ => None,
            })
            .collect();
        assert!(!sizes.is_empty());
        let nominal = 512 * 1024;
        for &sz in &sizes {
            assert!(sz >= nominal * 3 / 4 - 4096, "{sz}");
            assert!(sz <= nominal * 5 / 4 + 4096, "{sz}");
        }
        // Actually variable.
        let mut uniq = sizes.clone();
        uniq.sort();
        uniq.dedup();
        assert!(uniq.len() > 1);
    }

    #[test]
    fn group_file_shared_within_client() {
        let w = Macsio::macsio_16m();
        let t = topo(); // 2 clients x 2 ranks
        let streams = w.generate(&t, 1);
        let file_of = |s: &RankStream| -> u32 {
            s.ops
                .iter()
                .find_map(|o| match o {
                    IoOp::Write { file, .. } => Some(file.0),
                    _ => None,
                })
                .unwrap()
        };
        // Ranks 0,1 on client 0 share; rank 2 on client 1 differs.
        assert_eq!(file_of(&streams[0]), file_of(&streams[1]));
        assert_ne!(file_of(&streams[0]), file_of(&streams[2]));
    }

    #[test]
    fn regions_disjoint_within_group() {
        let w = Macsio::macsio_512k();
        let streams = w.generate(&topo(), 1);
        // Ranks 0 and 1 share a file; extents must not overlap.
        let extents = |s: &RankStream| -> Vec<(u64, u64)> {
            s.ops
                .iter()
                .filter_map(|o| match o {
                    IoOp::Write { offset, len, .. } => Some((*offset, offset + len)),
                    _ => None,
                })
                .collect()
        };
        let mut all = extents(&streams[0]);
        all.extend(extents(&streams[1]));
        all.sort();
        // Same-dump overlaps only; different dumps use different files, but
        // regions repeat per dump — group by monotone runs instead: simply
        // check rank regions: rank0 < region_bytes, rank1 >= region_bytes.
        let w0_max = extents(&streams[0]).iter().map(|e| e.1).max().unwrap();
        let w1_min = extents(&streams[1]).iter().map(|e| e.0).min().unwrap();
        assert!(w0_max <= w1_min);
    }

    #[test]
    fn fsync_before_close() {
        let w = Macsio::macsio_16m();
        let streams = w.generate(&topo(), 1);
        let ops = &streams[0].ops;
        let fsync_pos = ops
            .iter()
            .position(|o| matches!(o, IoOp::Fsync { .. }))
            .unwrap();
        assert!(matches!(ops[fsync_pos + 1], IoOp::Close { .. }));
    }

    #[test]
    fn deterministic_per_seed() {
        let w = Macsio::macsio_512k();
        let a = w.generate(&topo(), 5);
        let b = w.generate(&topo(), 5);
        let c = w.generate(&topo(), 6);
        assert_eq!(a[0].ops, b[0].ops);
        assert_ne!(a[0].ops, c[0].ops);
    }

    #[test]
    fn scaled_shrinks() {
        let w = Macsio::macsio_512k();
        let small = w.scaled(0.2);
        assert!(
            small.generate(&topo(), 1)[0].bytes_written()
                < w.generate(&topo(), 1)[0].bytes_written()
        );
    }
}
