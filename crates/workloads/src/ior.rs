//! The IOR parallel I/O benchmark (LLNL), reduced to its op stream.
//!
//! §5.1.2: *"The first, labeled IOR_64K, has each MPI process concurrently
//! write/read a 128 MB block using 64 KB transfer size. The I/Os were
//! conducted randomly to a shared file. The second, labeled IOR_16M, has each
//! MPI process write/read three 128 MB blocks using a large transfer size of
//! 16 MB with a sequential access pattern to a shared file."*

use crate::{scale_count, CostHint, Workload};
use pfs::ops::{DirId, FileId, IoOp, Module, RankStream};
use pfs::topology::ClusterSpec;
use serde::{Deserialize, Serialize};
use simcore::SimRng;

/// Access pattern within each rank's block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pattern {
    /// Offsets ascend through the block.
    Sequential,
    /// Offsets are a random permutation of the block's transfer slots.
    Random,
}

/// IOR configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ior {
    /// Label ("IOR_64K", "IOR_16M", ...).
    pub label: String,
    /// Transfer size in bytes (`-t`).
    pub transfer: u64,
    /// Block size in bytes (`-b`).
    pub block: u64,
    /// Blocks (segments) per rank (`-s`).
    pub blocks_per_rank: u64,
    /// Access pattern (`-z` for random).
    pub pattern: Pattern,
    /// Whether a read-back phase follows the write phase (`-r`).
    pub read_phase: bool,
    /// Task shift for the read phase (`-C`): rank r reads rank (r+shift)'s
    /// data, defeating the client page cache.
    pub task_shift: u32,
    /// File-per-process mode (`-F`): each rank owns a private file instead of
    /// sharing [`IOR_FILE`]. Rank `r` creates `FileId(1 + r)`; the task-shifted
    /// read phase opens the neighbour's file. Defaults to `false` (shared
    /// file, the paper's configuration).
    #[serde(default)]
    pub file_per_process: bool,
}

/// The shared file IOR uses.
pub const IOR_FILE: FileId = FileId(1);

impl Ior {
    /// The paper's `IOR_64K`: random 64 KiB transfers, one 128 MiB block.
    pub fn ior_64k() -> Self {
        Ior {
            label: "IOR_64K".into(),
            transfer: 64 * 1024,
            block: 128 << 20,
            blocks_per_rank: 1,
            pattern: Pattern::Random,
            read_phase: true,
            task_shift: 10,
            file_per_process: false,
        }
    }

    /// The paper's `IOR_16M`: sequential 16 MiB transfers, three 128 MiB
    /// blocks.
    pub fn ior_16m() -> Self {
        Ior {
            label: "IOR_16M".into(),
            transfer: 16 << 20,
            block: 128 << 20,
            blocks_per_rank: 3,
            pattern: Pattern::Sequential,
            read_phase: true,
            task_shift: 10,
            file_per_process: false,
        }
    }

    /// `IOR_FPP`: file-per-process sequential writes (`-F`), the access shape
    /// datacenter-scale sweeps use so each client touches a sparse slice of
    /// the OST population. `blocks` 128 MiB-free: one `block`-byte block per
    /// rank with `transfer`-byte sequential transfers and a task-shifted
    /// read-back.
    pub fn ior_fpp(transfer: u64, block: u64) -> Self {
        Ior {
            label: "IOR_FPP".into(),
            transfer,
            block,
            blocks_per_rank: 1,
            pattern: Pattern::Sequential,
            read_phase: true,
            task_shift: 1,
            file_per_process: true,
        }
    }

    /// The file `rank` writes in file-per-process mode.
    fn fpp_file(rank: u64) -> FileId {
        FileId(1 + rank as u32)
    }

    /// Transfers per block.
    fn transfers_per_block(&self) -> u64 {
        self.block / self.transfer
    }

    /// Byte extent owned by `rank` for block `b` in the shared file
    /// (IOR segmented layout: segment b holds rank 0..n contiguous blocks).
    fn block_base(&self, rank: u64, b: u64, nranks: u64) -> u64 {
        (b * nranks + rank) * self.block
    }
}

impl Workload for Ior {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn generate(&self, topo: &ClusterSpec, seed: u64) -> Vec<RankStream> {
        let nranks = topo.total_ranks() as u64;
        let tpb = self.transfers_per_block();
        let mut streams = Vec::with_capacity(nranks as usize);
        for rank in 0..nranks {
            let mut s = RankStream::new(rank as u32, Module::MpiIo);
            let write_file = if self.file_per_process {
                // Every rank creates its own file (IOR -F).
                let f = Self::fpp_file(rank);
                s.push(IoOp::Create {
                    file: f,
                    dir: DirId(0),
                });
                f
            } else if rank == 0 {
                s.push(IoOp::Create {
                    file: IOR_FILE,
                    dir: DirId(0),
                });
                IOR_FILE
            } else {
                s.push(IoOp::Open { file: IOR_FILE });
                IOR_FILE
            };
            s.push(IoOp::Barrier);

            // Write phase.
            let mut rng = SimRng::new(seed).derive(&self.label, rank);
            for b in 0..self.blocks_per_rank {
                let base = if self.file_per_process {
                    b * self.block
                } else {
                    self.block_base(rank, b, nranks)
                };
                let mut slots: Vec<u64> = (0..tpb).collect();
                if self.pattern == Pattern::Random {
                    // Fisher-Yates with the rank's derived stream.
                    for i in (1..slots.len()).rev() {
                        let j = rng.index(i + 1);
                        slots.swap(i, j);
                    }
                }
                for &slot in &slots {
                    s.push(IoOp::Write {
                        file: write_file,
                        offset: base + slot * self.transfer,
                        len: self.transfer,
                    });
                }
            }
            s.push(IoOp::Close { file: write_file });
            s.push(IoOp::Barrier);

            // Read phase (task-shifted).
            if self.read_phase {
                let reader_of = (rank + self.task_shift as u64) % nranks;
                let read_file = if self.file_per_process {
                    Self::fpp_file(reader_of)
                } else {
                    IOR_FILE
                };
                s.push(IoOp::Open { file: read_file });
                for b in 0..self.blocks_per_rank {
                    let base = if self.file_per_process {
                        b * self.block
                    } else {
                        self.block_base(reader_of, b, nranks)
                    };
                    let mut slots: Vec<u64> = (0..tpb).collect();
                    if self.pattern == Pattern::Random {
                        for i in (1..slots.len()).rev() {
                            let j = rng.index(i + 1);
                            slots.swap(i, j);
                        }
                    }
                    for &slot in &slots {
                        s.push(IoOp::Read {
                            file: read_file,
                            offset: base + slot * self.transfer,
                            len: self.transfer,
                        });
                    }
                }
                s.push(IoOp::Close { file: read_file });
                s.push(IoOp::Barrier);
            }
            streams.push(s);
        }
        streams
    }

    fn scaled(&self, factor: f64) -> Box<dyn Workload> {
        let mut w = self.clone();
        // Scale the block count first; below one block, shrink the block.
        if self.blocks_per_rank > 1 {
            w.blocks_per_rank = scale_count(self.blocks_per_rank, factor, 1);
            if w.blocks_per_rank == 1 && factor * (self.blocks_per_rank as f64) < 1.0 {
                let f = factor * self.blocks_per_rank as f64;
                w.block = ((self.block as f64 * f) as u64 / self.transfer).max(1) * self.transfer;
            }
        } else {
            w.block = ((self.block as f64 * factor) as u64 / self.transfer).max(1) * self.transfer;
        }
        Box::new(w)
    }

    fn cost_hint(&self, topo: &ClusterSpec) -> CostHint {
        let nranks = topo.total_ranks() as u64;
        let phases = 1 + self.read_phase as u64;
        let transfers = self.blocks_per_rank * self.transfers_per_block();
        CostHint {
            data_ops: nranks * transfers * phases,
            // create/open + close per phase.
            meta_ops: nranks * 2 * phases,
            bytes: nranks * transfers * self.transfer * phases,
        }
    }

    fn describe(&self) -> String {
        format!(
            "IOR: each rank {}s {} blocks of {} MiB with {} KiB transfers to {}{}",
            match self.pattern {
                Pattern::Sequential => "sequentially write",
                Pattern::Random => "randomly write",
            },
            self.blocks_per_rank,
            self.block >> 20,
            self.transfer >> 10,
            if self.file_per_process {
                "a file per process"
            } else {
                "a shared file"
            },
            if self.read_phase {
                ", then reads back with task shift"
            } else {
                ""
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> ClusterSpec {
        ClusterSpec::tiny() // 4 ranks
    }

    #[test]
    fn ior_64k_shape() {
        let w = Ior::ior_64k();
        let streams = w.generate(&topo(), 1);
        assert_eq!(streams.len(), 4);
        let tpb = (128u64 << 20) / (64 * 1024);
        for s in &streams {
            assert_eq!(s.bytes_written(), 128 << 20);
            assert_eq!(s.bytes_read(), 128 << 20);
            let writes = s
                .ops
                .iter()
                .filter(|o| matches!(o, IoOp::Write { .. }))
                .count() as u64;
            assert_eq!(writes, tpb);
        }
    }

    #[test]
    fn ior_16m_sequential_offsets_ascend() {
        let w = Ior::ior_16m();
        let streams = w.generate(&topo(), 1);
        let s = &streams[0];
        let mut last = None;
        for op in &s.ops {
            if let IoOp::Write { offset, .. } = op {
                if let Some(prev) = last {
                    assert!(*offset > prev);
                }
                last = Some(*offset);
            }
        }
    }

    #[test]
    fn ior_random_is_permutation() {
        let w = Ior::ior_64k();
        let streams = w.generate(&topo(), 1);
        let mut offsets: Vec<u64> = streams[0]
            .ops
            .iter()
            .filter_map(|o| match o {
                IoOp::Write { offset, .. } => Some(*offset),
                _ => None,
            })
            .collect();
        let n = offsets.len() as u64;
        offsets.sort();
        offsets.dedup();
        assert_eq!(offsets.len() as u64, n, "offsets must be unique");
        // Not sorted originally (vanishingly unlikely for 2048 slots).
        let resorted: Vec<u64> = {
            let mut v: Vec<u64> = streams[0]
                .ops
                .iter()
                .filter_map(|o| match o {
                    IoOp::Write { offset, .. } => Some(*offset),
                    _ => None,
                })
                .collect();
            v.sort();
            v
        };
        let original: Vec<u64> = streams[0]
            .ops
            .iter()
            .filter_map(|o| match o {
                IoOp::Write { offset, .. } => Some(*offset),
                _ => None,
            })
            .collect();
        assert_ne!(original, resorted);
    }

    #[test]
    fn blocks_do_not_overlap_across_ranks() {
        let w = Ior::ior_16m();
        let t = topo();
        let streams = w.generate(&t, 1);
        let mut extents: Vec<(u64, u64)> = Vec::new();
        for s in &streams {
            for op in &s.ops {
                if let IoOp::Write { offset, len, .. } = op {
                    extents.push((*offset, offset + len));
                }
            }
        }
        extents.sort();
        for w in extents.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlap: {:?} vs {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn task_shift_reads_other_ranks_data() {
        let w = Ior::ior_16m();
        let t = topo(); // 4 ranks, shift 10 % 4 = 2
        let streams = w.generate(&t, 1);
        let first_write = streams[0]
            .ops
            .iter()
            .find_map(|o| match o {
                IoOp::Write { offset, .. } => Some(*offset),
                _ => None,
            })
            .unwrap();
        let first_read = streams[0]
            .ops
            .iter()
            .find_map(|o| match o {
                IoOp::Read { offset, .. } => Some(*offset),
                _ => None,
            })
            .unwrap();
        assert_ne!(first_write, first_read);
    }

    #[test]
    fn barriers_uniform() {
        let w = Ior::ior_64k();
        let streams = w.generate(&topo(), 1);
        let counts: Vec<usize> = streams.iter().map(|s| s.barrier_count()).collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(counts[0], 3);
    }

    #[test]
    fn generation_is_deterministic() {
        let w = Ior::ior_64k();
        let a = w.generate(&topo(), 42);
        let b = w.generate(&topo(), 42);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.ops, y.ops);
        }
    }

    #[test]
    fn cost_hint_matches_generated_streams() {
        for w in [Ior::ior_64k(), Ior::ior_16m()] {
            let t = topo();
            let exact = crate::CostHint::from_streams(&w.generate(&t, 1));
            assert_eq!(w.cost_hint(&t), exact, "{}", w.label);
        }
    }

    #[test]
    fn fpp_each_rank_owns_a_private_file() {
        let w = Ior::ior_fpp(1 << 20, 4 << 20);
        let streams = w.generate(&topo(), 1); // 4 ranks
        for (rank, s) in streams.iter().enumerate() {
            let own = FileId(1 + rank as u32);
            assert!(
                matches!(s.ops[0], IoOp::Create { file, .. } if file == own),
                "rank {rank} must create its own file"
            );
            for op in &s.ops {
                if let IoOp::Write { file, .. } = op {
                    assert_eq!(*file, own);
                }
            }
        }
        // Write extents within one file start at 0 and stay inside the block.
        let writes: Vec<u64> = streams[0]
            .ops
            .iter()
            .filter_map(|o| match o {
                IoOp::Write { offset, .. } => Some(*offset),
                _ => None,
            })
            .collect();
        assert_eq!(writes[0], 0);
        assert!(writes.iter().all(|&o| o < 4 << 20));
    }

    #[test]
    fn fpp_read_phase_is_task_shifted_to_neighbour_file() {
        let w = Ior::ior_fpp(1 << 20, 4 << 20); // task_shift 1
        let streams = w.generate(&topo(), 1); // 4 ranks
        for (rank, s) in streams.iter().enumerate() {
            let neighbour = FileId(1 + ((rank as u32 + 1) % 4));
            for op in &s.ops {
                if let IoOp::Read { file, .. } = op {
                    assert_eq!(*file, neighbour, "rank {rank} reads its neighbour");
                }
            }
        }
    }

    #[test]
    fn fpp_cost_hint_matches_generated_streams() {
        let w = Ior::ior_fpp(1 << 20, 4 << 20);
        let t = topo();
        let exact = crate::CostHint::from_streams(&w.generate(&t, 1));
        assert_eq!(w.cost_hint(&t), exact);
    }

    #[test]
    fn fpp_deserializes_with_default_false() {
        let json = serde_json::to_string(&Ior::ior_64k()).unwrap();
        let stripped = json.replace(",\"file_per_process\":false", "");
        assert_ne!(json, stripped, "field must serialize");
        let w: Ior = serde_json::from_str(&stripped).unwrap();
        assert!(!w.file_per_process);
    }

    #[test]
    fn scaled_shrinks_bytes() {
        let w = Ior::ior_16m();
        let small = w.scaled(0.25);
        let streams = small.generate(&topo(), 1);
        assert!(streams[0].bytes_written() < 3 * (128 << 20));
        assert!(streams[0].bytes_written() > 0);
    }
}
