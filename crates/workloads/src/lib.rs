//! # workloads — benchmark and application op-stream generators
//!
//! Reimplements, against the simulator's operation vocabulary, every workload
//! the paper evaluates (§5.1.2–§5.1.3):
//!
//! * [`ior::Ior`] — the IOR parallel I/O benchmark. Two named configurations:
//!   `IOR_64K` (random 64 KiB transfers into a 128 MiB block per process,
//!   shared file) and `IOR_16M` (sequential 16 MiB transfers, three 128 MiB
//!   blocks per process, shared file), both with a task-shifted read-back
//!   phase (IOR's `-C` reorder, which defeats the client cache).
//! * [`mdworkbench::MdWorkbench`] — the metadata benchmark: per-process
//!   directories pre-filled with small files, then rounds of
//!   open/write/close/stat/open/read/close/unlink per file.
//! * [`io500::Io500`] — the IO500 composite: IOR-Easy, IOR-Hard, MDTest-Easy,
//!   MDTest-Hard phases in sequence.
//! * [`amrex::AmrexIo`] — a block-structured AMR plotfile dump kernel
//!   (aggregated large sequential writes to per-level shared files plus small
//!   header I/O).
//! * [`macsio::Macsio`] — the multi-physics I/O proxy with configurable
//!   object sizes (`MACSio_512K`, `MACSio_16M`), multiple-independent-file
//!   mode grouped per client node.
//!
//! All generators implement [`Workload`], are deterministic given a seed, and
//! support [`Workload::scaled`] down-scaling so unit tests stay fast while
//! benches run at paper scale. Each generator also derives a [`CostHint`]
//! from its parameters — the campaign scheduler's a-priori estimate of how
//! much simulation work a cell costs (see `stellar::sched`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod amrex;
pub mod contention;
pub mod io500;
pub mod ior;
pub mod macsio;
pub mod mdworkbench;
pub mod suite;

pub use contention::Contention;
pub use suite::{WorkloadKind, BENCHMARKS, REAL_APPS};

use pfs::ops::RankStream;
use pfs::topology::ClusterSpec;

/// A parameter-derived estimate of how much *simulation* work one run of a
/// workload costs, used by the campaign scheduler to order cells before any
/// wall time has been observed.
///
/// Simulation cost is driven by the number of operations the engine must
/// event-step (each op is at least one event plus resource-calendar work),
/// with bytes contributing through per-RPC striping and aggregation. The
/// hint does not need to be accurate in absolute terms — only its *relative
/// order* matters for longest-processing-time-first scheduling, and the
/// adaptive scheduler replaces it with measured wall times after one round.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostHint {
    /// Estimated data operations (reads + writes) across all ranks.
    pub data_ops: u64,
    /// Estimated metadata operations (create/open/close/stat/unlink/mkdir/
    /// fsync/readdir) across all ranks.
    pub meta_ops: u64,
    /// Estimated bytes moved (written + read) across all ranks.
    pub bytes: u64,
}

impl CostHint {
    /// Collapse the hint into one scalar scheduling weight.
    ///
    /// Operations dominate (each is an event plus calendar bookkeeping);
    /// metadata ops weigh double (MDS window + glimpse chain); bytes add
    /// one unit per RPC-sized (8 MiB) piece for striping/aggregation work.
    pub fn weight(&self) -> f64 {
        self.data_ops as f64
            + 2.0 * self.meta_ops as f64
            + self.bytes as f64 / (8.0 * 1024.0 * 1024.0)
    }

    /// Exact hint for an already-generated set of streams (used by the
    /// default [`Workload::cost_hint`] and by tests as ground truth).
    pub fn from_streams(streams: &[RankStream]) -> Self {
        let mut hint = CostHint::default();
        for s in streams {
            for op in &s.ops {
                use pfs::ops::IoOp;
                match op {
                    IoOp::Write { len, .. } | IoOp::Read { len, .. } => {
                        hint.data_ops += 1;
                        hint.bytes += len;
                    }
                    IoOp::Barrier | IoOp::Compute { .. } => {}
                    _ => hint.meta_ops += 1,
                }
            }
        }
        hint
    }
}

/// A workload: generates per-rank operation streams for a cluster.
///
/// `Send + Sync` so measurement harnesses can evaluate replications in
/// parallel.
pub trait Workload: Send + Sync {
    /// Human-readable workload name (matches the paper's labels).
    fn name(&self) -> String;

    /// Generate one stream per rank. Deterministic in `seed`.
    fn generate(&self, topo: &ClusterSpec, seed: u64) -> Vec<RankStream>;

    /// A copy with workload size scaled by `factor` (for fast tests).
    fn scaled(&self, factor: f64) -> Box<dyn Workload>;

    /// One-paragraph description fed to agent context and docs.
    fn describe(&self) -> String;

    /// Estimated per-run cost for `topo`, derived from the workload's
    /// parameters without generating streams.
    ///
    /// The default generates one stream set (seed 0) and counts — correct
    /// for any implementor but O(workload size); the suite workloads all
    /// override it with closed-form parameter math.
    fn cost_hint(&self, topo: &ClusterSpec) -> CostHint {
        CostHint::from_streams(&self.generate(topo, 0))
    }

    /// Whether this workload models noisy-neighbor contention (two or more
    /// co-scheduled jobs sharing the cluster). Scenario-tagging in the agent
    /// layer keys off this marker; plain workloads report `false`.
    fn contended(&self) -> bool {
        false
    }
}

/// Apply a scale factor to a count, keeping at least `min`.
pub(crate) fn scale_count(n: u64, factor: f64, min: u64) -> u64 {
    ((n as f64 * factor).round() as u64).max(min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_count_floors() {
        assert_eq!(scale_count(100, 0.1, 1), 10);
        assert_eq!(scale_count(3, 0.1, 1), 1);
        assert_eq!(scale_count(10, 1.0, 1), 10);
    }
}
