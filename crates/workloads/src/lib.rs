//! # workloads — benchmark and application op-stream generators
//!
//! Reimplements, against the simulator's operation vocabulary, every workload
//! the paper evaluates (§5.1.2–§5.1.3):
//!
//! * [`ior::Ior`] — the IOR parallel I/O benchmark. Two named configurations:
//!   `IOR_64K` (random 64 KiB transfers into a 128 MiB block per process,
//!   shared file) and `IOR_16M` (sequential 16 MiB transfers, three 128 MiB
//!   blocks per process, shared file), both with a task-shifted read-back
//!   phase (IOR's `-C` reorder, which defeats the client cache).
//! * [`mdworkbench::MdWorkbench`] — the metadata benchmark: per-process
//!   directories pre-filled with small files, then rounds of
//!   open/write/close/stat/open/read/close/unlink per file.
//! * [`io500::Io500`] — the IO500 composite: IOR-Easy, IOR-Hard, MDTest-Easy,
//!   MDTest-Hard phases in sequence.
//! * [`amrex::AmrexIo`] — a block-structured AMR plotfile dump kernel
//!   (aggregated large sequential writes to per-level shared files plus small
//!   header I/O).
//! * [`macsio::Macsio`] — the multi-physics I/O proxy with configurable
//!   object sizes (`MACSio_512K`, `MACSio_16M`), multiple-independent-file
//!   mode grouped per client node.
//!
//! All generators implement [`Workload`], are deterministic given a seed, and
//! support [`Workload::scaled`] down-scaling so unit tests stay fast while
//! benches run at paper scale.

pub mod amrex;
pub mod io500;
pub mod ior;
pub mod macsio;
pub mod mdworkbench;
pub mod suite;

pub use suite::{WorkloadKind, BENCHMARKS, REAL_APPS};

use pfs::ops::RankStream;
use pfs::topology::ClusterSpec;

/// A workload: generates per-rank operation streams for a cluster.
///
/// `Send + Sync` so measurement harnesses can evaluate replications in
/// parallel.
pub trait Workload: Send + Sync {
    /// Human-readable workload name (matches the paper's labels).
    fn name(&self) -> String;

    /// Generate one stream per rank. Deterministic in `seed`.
    fn generate(&self, topo: &ClusterSpec, seed: u64) -> Vec<RankStream>;

    /// A copy with workload size scaled by `factor` (for fast tests).
    fn scaled(&self, factor: f64) -> Box<dyn Workload>;

    /// One-paragraph description fed to agent context and docs.
    fn describe(&self) -> String;
}

/// Apply a scale factor to a count, keeping at least `min`.
pub(crate) fn scale_count(n: u64, factor: f64, min: u64) -> u64 {
    ((n as f64 * factor).round() as u64).max(min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_count_floors() {
        assert_eq!(scale_count(100, 0.1, 1), 10);
        assert_eq!(scale_count(3, 0.1, 1), 1);
        assert_eq!(scale_count(10, 1.0, 1), 10);
    }
}
