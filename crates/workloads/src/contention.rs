//! Noisy-neighbor contention: a composite [`Workload`] that interleaves two
//! or more jobs' operation streams over the same cluster.
//!
//! The engine's event queue already interleaves *ranks* in global time
//! order; [`Contention`] lets it interleave *jobs* the same way. Each
//! component job generates its streams from a seed derived by job index, its
//! file and directory namespaces are shifted into disjoint ranges, and each
//! rank's merged stream concatenates the jobs' barrier-delimited phases so
//! all ranks keep a uniform barrier count (the engine's invariant). The
//! merged streams therefore contain exactly the union of the component jobs'
//! operations — which makes the composite [`CostHint`] closed-form: it is
//! the sum of the component hints, and stays as exact as they are.

use crate::{CostHint, Workload};
use pfs::ops::{DirId, FileId, IoOp, Module, RankStream};
use pfs::topology::ClusterSpec;
use simcore::rng::combine;

/// Namespace stride between component jobs: job `j`'s file and directory ids
/// are shifted by `j * JOB_ID_STRIDE`, far above any id a suite generator
/// produces on its own.
pub const JOB_ID_STRIDE: u32 = 1 << 20;

/// Two or more workloads co-scheduled on one cluster, contending for the
/// same OSTs, NICs, and MDS.
pub struct Contention {
    jobs: Vec<Box<dyn Workload>>,
}

impl Contention {
    /// Compose `jobs` into one contended workload.
    ///
    /// # Panics
    /// If fewer than two jobs are given — one job alone is not contention.
    pub fn new(jobs: Vec<Box<dyn Workload>>) -> Self {
        assert!(jobs.len() >= 2, "Contention needs at least two jobs");
        Contention { jobs }
    }

    /// The component jobs.
    pub fn jobs(&self) -> &[Box<dyn Workload>] {
        &self.jobs
    }
}

/// Shift every file/dir id in `op` by `base` (namespace isolation per job).
fn remap(op: IoOp, base: u32) -> IoOp {
    let f = |FileId(id): FileId| FileId(id + base);
    let d = |DirId(id): DirId| DirId(id + base);
    match op {
        IoOp::Mkdir { dir } => IoOp::Mkdir { dir: d(dir) },
        IoOp::Create { file, dir } => IoOp::Create {
            file: f(file),
            dir: d(dir),
        },
        IoOp::Open { file } => IoOp::Open { file: f(file) },
        IoOp::Close { file } => IoOp::Close { file: f(file) },
        IoOp::Write { file, offset, len } => IoOp::Write {
            file: f(file),
            offset,
            len,
        },
        IoOp::Read { file, offset, len } => IoOp::Read {
            file: f(file),
            offset,
            len,
        },
        IoOp::Stat { file } => IoOp::Stat { file: f(file) },
        IoOp::Unlink { file } => IoOp::Unlink { file: f(file) },
        IoOp::Fsync { file } => IoOp::Fsync { file: f(file) },
        IoOp::Readdir { dir } => IoOp::Readdir { dir: d(dir) },
        IoOp::Barrier | IoOp::Compute { .. } => op,
    }
}

/// Split a stream's ops into barrier-delimited phases (barriers removed).
fn phases(ops: &[IoOp]) -> Vec<Vec<IoOp>> {
    let mut out = vec![Vec::new()];
    for op in ops {
        if matches!(op, IoOp::Barrier) {
            out.push(Vec::new());
        } else {
            out.last_mut().expect("phases always non-empty").push(*op);
        }
    }
    out
}

impl Workload for Contention {
    fn name(&self) -> String {
        self.jobs
            .iter()
            .map(|j| j.name())
            .collect::<Vec<_>>()
            .join("+")
    }

    fn generate(&self, topo: &ClusterSpec, seed: u64) -> Vec<RankStream> {
        // Each job gets its own derived seed and namespace base.
        let per_job: Vec<Vec<RankStream>> = self
            .jobs
            .iter()
            .enumerate()
            .map(|(j, job)| job.generate(topo, combine(seed, j as u64 + 1)))
            .collect();
        let rank_count = per_job.iter().map(Vec::len).max().unwrap_or(0);
        // Phase count is uniform per job (the engine asserts per-job barrier
        // uniformity); the composite pads shorter jobs with empty phases so
        // every merged rank sees the same barrier count.
        let phase_count = per_job
            .iter()
            .filter_map(|streams| streams.first().map(|s| s.barrier_count() + 1))
            .max()
            .unwrap_or(1);

        (0..rank_count)
            .map(|r| {
                let module = per_job
                    .iter()
                    .find_map(|streams| streams.get(r).map(|s| s.module))
                    .unwrap_or(Module::Posix);
                let rank = per_job
                    .iter()
                    .find_map(|streams| streams.get(r).map(|s| s.rank))
                    .unwrap_or(r as u32);
                let job_phases: Vec<Vec<Vec<IoOp>>> = per_job
                    .iter()
                    .map(|streams| {
                        streams
                            .get(r)
                            .map(|s| phases(&s.ops))
                            .unwrap_or_else(|| vec![Vec::new()])
                    })
                    .collect();
                let mut merged = RankStream::new(rank, module);
                for p in 0..phase_count {
                    if p > 0 {
                        merged.push(IoOp::Barrier);
                    }
                    for (j, ph) in job_phases.iter().enumerate() {
                        let base = j as u32 * JOB_ID_STRIDE;
                        if let Some(seg) = ph.get(p) {
                            for op in seg {
                                merged.push(remap(*op, base));
                            }
                        }
                    }
                }
                merged
            })
            .collect()
    }

    fn scaled(&self, factor: f64) -> Box<dyn Workload> {
        Box::new(Contention {
            jobs: self.jobs.iter().map(|j| j.scaled(factor)).collect(),
        })
    }

    fn describe(&self) -> String {
        let parts = self
            .jobs
            .iter()
            .map(|j| j.name())
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{} co-scheduled jobs ({parts}) contending for the same OSTs, \
             NICs, and MDS; streams interleaved phase-by-phase over disjoint \
             file namespaces",
            self.jobs.len()
        )
    }

    fn cost_hint(&self, topo: &ClusterSpec) -> CostHint {
        // Closed-form: the merged streams are exactly the union of the
        // component ops (remap preserves kinds and lengths, barriers don't
        // count), so the composite hint is the component sum.
        let mut total = CostHint::default();
        for job in &self.jobs {
            let h = job.cost_hint(topo);
            total.data_ops += h.data_ops;
            total.meta_ops += h.meta_ops;
            total.bytes += h.bytes;
        }
        total
    }

    fn contended(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::WorkloadKind;

    fn two_job() -> Contention {
        Contention::new(vec![
            WorkloadKind::Ior64K.spec_at(0.05),
            WorkloadKind::MdWorkbench2K.spec_at(0.05),
        ])
    }

    #[test]
    fn name_joins_components() {
        assert_eq!(two_job().name(), "IOR_64K+MDWorkbench_2K");
    }

    #[test]
    #[should_panic(expected = "at least two jobs")]
    fn rejects_single_job() {
        let _ = Contention::new(vec![WorkloadKind::Ior64K.spec_at(0.05)]);
    }

    #[test]
    fn merged_streams_have_uniform_barriers() {
        let topo = ClusterSpec::tiny();
        let streams = two_job().generate(&topo, 7);
        assert_eq!(streams.len(), topo.total_ranks() as usize);
        let counts: Vec<usize> = streams.iter().map(RankStream::barrier_count).collect();
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "barrier counts differ: {counts:?}"
        );
    }

    #[test]
    fn merged_streams_are_the_union_of_component_ops() {
        let topo = ClusterSpec::tiny();
        let c = two_job();
        let merged = c.generate(&topo, 7);
        let mut expect_data_ops = 0u64;
        let mut expect_bytes = 0u64;
        for (j, job) in c.jobs().iter().enumerate() {
            for s in job.generate(&topo, combine(7, j as u64 + 1)) {
                for op in &s.ops {
                    if matches!(op, IoOp::Write { .. } | IoOp::Read { .. }) {
                        expect_data_ops += 1;
                        expect_bytes += op.bytes();
                    }
                }
            }
        }
        let got = CostHint::from_streams(&merged);
        assert_eq!(got.data_ops, expect_data_ops);
        assert_eq!(got.bytes, expect_bytes);
    }

    #[test]
    fn namespaces_are_disjoint_across_jobs() {
        let topo = ClusterSpec::tiny();
        let c = two_job();
        let merged = c.generate(&topo, 3);
        let mut job0 = std::collections::BTreeSet::new();
        let mut job1 = std::collections::BTreeSet::new();
        for s in &merged {
            for op in &s.ops {
                let file = match op {
                    IoOp::Create { file, .. }
                    | IoOp::Open { file }
                    | IoOp::Close { file }
                    | IoOp::Write { file, .. }
                    | IoOp::Read { file, .. }
                    | IoOp::Stat { file }
                    | IoOp::Unlink { file }
                    | IoOp::Fsync { file } => Some(file.0),
                    _ => None,
                };
                if let Some(id) = file {
                    if id < JOB_ID_STRIDE {
                        job0.insert(id);
                    } else {
                        job1.insert(id);
                    }
                }
            }
        }
        assert!(!job0.is_empty() && !job1.is_empty());
        assert!(job1.iter().all(|id| *id >= JOB_ID_STRIDE));
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let topo = ClusterSpec::tiny();
        let c = two_job();
        let a = c.generate(&topo, 11);
        let b = c.generate(&topo, 11);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        let c2 = c.generate(&topo, 12);
        assert_ne!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&c2).unwrap()
        );
    }

    #[test]
    fn cost_hint_is_component_sum() {
        let topo = ClusterSpec::tiny();
        let c = two_job();
        let sum = c.jobs().iter().fold(CostHint::default(), |acc, j| {
            let h = j.cost_hint(&topo);
            CostHint {
                data_ops: acc.data_ops + h.data_ops,
                meta_ops: acc.meta_ops + h.meta_ops,
                bytes: acc.bytes + h.bytes,
            }
        });
        assert_eq!(c.cost_hint(&topo), sum);
    }

    #[test]
    fn cost_hint_tracks_generated_streams() {
        // Same exactness contract as the suite workloads: op counts exact,
        // bytes within 5% of ground truth from an actual generation.
        let topo = ClusterSpec::tiny();
        let c = two_job();
        let hint = c.cost_hint(&topo);
        let truth = CostHint::from_streams(&c.generate(&topo, 1));
        assert_eq!(hint.data_ops, truth.data_ops, "data ops");
        assert_eq!(hint.meta_ops, truth.meta_ops, "meta ops");
        let err = (hint.bytes as f64 - truth.bytes as f64).abs() / truth.bytes as f64;
        assert!(
            err < 0.05,
            "bytes err {err} (hint {hint:?} truth {truth:?})"
        );
    }

    #[test]
    fn contended_marker_is_set() {
        assert!(two_job().contended());
        assert!(!WorkloadKind::Ior64K.spec().contended());
    }

    #[test]
    fn scaled_scales_components() {
        let topo = ClusterSpec::tiny();
        let big = two_job();
        let small = big.scaled(0.5);
        assert!(small.contended());
        assert_eq!(small.name(), big.name());
        let hb = big.cost_hint(&topo);
        let hs = small.cost_hint(&topo);
        assert!(hs.bytes < hb.bytes, "{} !< {}", hs.bytes, hb.bytes);
    }
}
